// Post-event desk report: when a major catastrophe strikes, produce the
// portfolio's position within seconds — per-layer immediate losses, the
// event's place among the book's drivers, the conditional year outlook,
// capital attribution, and a severity-stressed re-run (climate loading).
//
// Hosted on the resident analysis service (src/service/): the book is
// registered once, the baseline run is a cold quote that captures the
// ground-up losses, the rest-of-season window re-run rides the delta path
// (terms/window-only change), and the severity stress — which rewrites the
// ELT structure — registers a second book and runs cold, demonstrating
// exactly which mutations invalidate the ground-up cache.
//
// Exercises: metrics/event_response, metrics/allocation, elt/scaled_lookup,
// the service session/cache/delta flow and the io/report renderer.
//
//   $ ./event_response
//
#include <cstdio>
#include <iostream>
#include <memory>

#include "elt/scaled_lookup.hpp"
#include "elt/synthetic.hpp"
#include "io/report.hpp"
#include "metrics/allocation.hpp"
#include "metrics/ep_curve.hpp"
#include "metrics/event_response.hpp"
#include "service/analysis_service.hpp"
#include "yet/generator.hpp"

int main() {
  using namespace are;
  constexpr std::size_t kCatalogSize = 100'000;

  // The book: three layers over shared synthetic ELTs (shared events =>
  // correlated layers, like books written on the same region).
  std::vector<std::shared_ptr<const elt::ILossLookup>> lookups;
  for (std::uint64_t e = 0; e < 6; ++e) {
    elt::SyntheticEltConfig config;
    config.catalog_size = kCatalogSize;
    config.entries = 10'000;
    config.elt_id = e;
    config.loss_scale = 300e3;
    lookups.push_back(elt::make_lookup(elt::LookupKind::kDirectAccess,
                                       elt::make_synthetic_elt(config), kCatalogSize));
  }

  core::Portfolio portfolio;
  const double attachments[] = {2e6, 5e6, 10e6};
  for (std::uint32_t l = 0; l < 3; ++l) {
    core::Layer layer;
    layer.id = 100 + l;
    layer.terms = financial::LayerTerms::cat_xl(attachments[l], attachments[l]);
    for (std::uint64_t e = l; e < l + 4; ++e) {  // overlapping ELT coverage
      layer.elts.push_back({lookups[e], financial::FinancialTerms{0.0, financial::kUnlimited,
                                                                  0.9, 1.0}});
    }
    portfolio.layers.push_back(std::move(layer));
  }

  yet::YetConfig yet_config;
  yet_config.num_trials = 10'000;
  yet_config.events_per_trial = 800.0;
  yet_config.count_model = yet::CountModel::kPoisson;

  service::AnalysisService analysis_service(
      yet::generate_uniform_yet(yet_config, kCatalogSize), {});
  const yet::YearEventTable& yet_table = analysis_service.session().yet_table();
  analysis_service.register_portfolio("book", portfolio);

  const auto report_latency = [](const char* what, const service::QuoteResponse& response) {
    std::printf("[service] %-28s %-6s %7.1f ms\n", what,
                std::string(service::to_string(response.source)).c_str(),
                1e3 * response.wall_seconds);
  };

  // Baseline position: a cold quote (captures ground-up losses for later).
  const auto base = analysis_service.quote({.portfolio_id = "book"});
  report_latency("baseline", base);
  const core::YearLossTable& ylt = base.outcome->ylt;

  // --- 1. The event strikes: immediate position ----------------------------
  // Pick the book's single worst driver as "the event that just happened".
  const auto drivers =
      metrics::top_contributing_events(portfolio.layers[2], yet_table, kCatalogSize, 5);
  const yet::EventId the_event = drivers.front().event;

  std::printf("\n== post-event report: catalog event %u ==\n\n", the_event);
  io::TextTable impact({"layer", "immediate ceded loss", "conditional-year EL"});
  const auto losses = metrics::event_losses(portfolio, the_event);
  for (std::size_t l = 0; l < portfolio.num_layers(); ++l) {
    impact.add_row({"layer_" + std::to_string(portfolio.layers[l].id),
                    io::format_money(losses[l]),
                    io::format_money(metrics::conditional_expected_loss(ylt, l, yet_table,
                                                                        the_event))});
  }
  std::cout << impact << "\n";

  // --- 2. Where the event sits among the book's drivers ---------------------
  io::TextTable top({"rank", "event", "occurrences", "per-occurrence loss", "annual EL"});
  for (std::size_t rank = 0; rank < drivers.size(); ++rank) {
    top.add_row({std::to_string(rank + 1), std::to_string(drivers[rank].event),
                 std::to_string(drivers[rank].occurrences),
                 io::format_money(drivers[rank].occurrence_loss),
                 io::format_money(drivers[rank].expected_annual_loss)});
  }
  std::printf("top drivers of layer_%u:\n", portfolio.layers[2].id);
  std::cout << top << "\n";

  // --- 3. Capital attribution ------------------------------------------------
  const auto allocation = metrics::allocate_tvar(ylt, 0.99);
  io::TextTable capital({"layer", "co-TVaR(99%)", "share"});
  for (std::size_t l = 0; l < portfolio.num_layers(); ++l) {
    capital.add_row({"layer_" + std::to_string(portfolio.layers[l].id),
                     io::format_money(allocation.layer_contributions[l]),
                     io::format_percent(allocation.layer_shares[l])});
  }
  std::cout << "capital attribution (sums to portfolio TVaR "
            << io::format_money(allocation.portfolio_tvar) << "):\n"
            << capital << "\n";
  std::printf("diversification benefit: %s\n\n",
              io::format_percent(metrics::diversification_benefit(ylt, 0.99)).c_str());

  // --- 4. Severity stress (+20% climate loading on every ELT) ----------------
  // Scaling the lookups rewrites the ELT structure, which the ground-up
  // cache depends on — so this registers as its own book and runs cold.
  core::Portfolio stressed = portfolio;
  for (auto& layer : stressed.layers) {
    for (auto& layer_elt : layer.elts) {
      layer_elt.lookup = std::make_shared<elt::ScaledLookup>(layer_elt.lookup, 1.2);
    }
  }
  analysis_service.register_portfolio("book-stressed", std::move(stressed));
  const auto stress_response = analysis_service.quote({.portfolio_id = "book-stressed"});
  report_latency("+20% severity stress", stress_response);
  const core::YearLossTable& stressed_ylt = stress_response.outcome->ylt;
  io::TextTable stress({"layer", "base EL", "stressed EL", "change"});
  for (std::size_t l = 0; l < portfolio.num_layers(); ++l) {
    const metrics::EpCurve base_curve(ylt.layer_losses(l));
    const metrics::EpCurve stressed_curve(stressed_ylt.layer_losses(l));
    const double change =
        stressed_curve.expected_loss() / std::max(base_curve.expected_loss(), 1.0) - 1.0;
    stress.add_row({"layer_" + std::to_string(portfolio.layers[l].id),
                    io::format_money(base_curve.expected_loss()),
                    io::format_money(stressed_curve.expected_loss()),
                    io::format_percent(change)});
  }
  std::cout << "+20% severity stress (input-side, so remote layers attach):\n" << stress << "\n";

  // --- 5. Rest-of-season exposure --------------------------------------------
  // The event struck at mid-year: what does the remaining half-year hold?
  // A window-only change on the same book — the service replays the captured
  // ground-up losses (delta), skipping fetch and lookups entirely.
  const auto season_response = analysis_service.quote(
      {.portfolio_id = "book", .window = core::CoverageWindow{0.5f, 1.0f}});
  report_latency("rest-of-season (window)", season_response);
  const core::YearLossTable& remainder = season_response.outcome->ylt;
  io::TextTable season({"layer", "full-year EL", "remaining-half EL"});
  for (std::size_t l = 0; l < portfolio.num_layers(); ++l) {
    const metrics::EpCurve full(ylt.layer_losses(l));
    const metrics::EpCurve half(remainder.layer_losses(l));
    season.add_row({"layer_" + std::to_string(portfolio.layers[l].id),
                    io::format_money(full.expected_loss()),
                    io::format_money(half.expected_loss())});
  }
  std::cout << "rest-of-year outlook (coverage window [0.5, 1.0)):\n" << season;
  return 0;
}
