// Post-event desk report: when a major catastrophe strikes, produce the
// portfolio's position within seconds — per-layer immediate losses, the
// event's place among the book's drivers, the conditional year outlook,
// capital attribution, and a severity-stressed re-run (climate loading).
//
// Exercises: metrics/event_response, metrics/allocation, elt/scaled_lookup,
// core/windowed_engine and the io/report renderer.
//
//   $ ./event_response
//
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/analysis.hpp"
#include "elt/scaled_lookup.hpp"
#include "elt/synthetic.hpp"
#include "io/report.hpp"
#include "metrics/allocation.hpp"
#include "metrics/ep_curve.hpp"
#include "metrics/event_response.hpp"
#include "yet/generator.hpp"

int main() {
  using namespace are;
  constexpr std::size_t kCatalogSize = 100'000;

  // The book: three layers over shared synthetic ELTs (shared events =>
  // correlated layers, like books written on the same region).
  std::vector<std::shared_ptr<const elt::ILossLookup>> lookups;
  for (std::uint64_t e = 0; e < 6; ++e) {
    elt::SyntheticEltConfig config;
    config.catalog_size = kCatalogSize;
    config.entries = 10'000;
    config.elt_id = e;
    config.loss_scale = 300e3;
    lookups.push_back(elt::make_lookup(elt::LookupKind::kDirectAccess,
                                       elt::make_synthetic_elt(config), kCatalogSize));
  }

  core::Portfolio portfolio;
  const double attachments[] = {2e6, 5e6, 10e6};
  for (std::uint32_t l = 0; l < 3; ++l) {
    core::Layer layer;
    layer.id = 100 + l;
    layer.terms = financial::LayerTerms::cat_xl(attachments[l], attachments[l]);
    for (std::uint64_t e = l; e < l + 4; ++e) {  // overlapping ELT coverage
      layer.elts.push_back({lookups[e], financial::FinancialTerms{0.0, financial::kUnlimited,
                                                                  0.9, 1.0}});
    }
    portfolio.layers.push_back(std::move(layer));
  }

  yet::YetConfig yet_config;
  yet_config.num_trials = 10'000;
  yet_config.events_per_trial = 800.0;
  yet_config.count_model = yet::CountModel::kPoisson;
  const auto yet_table = yet::generate_uniform_yet(yet_config, kCatalogSize);
  const auto ylt = core::run({portfolio, yet_table});

  // --- 1. The event strikes: immediate position ----------------------------
  // Pick the book's single worst driver as "the event that just happened".
  const auto drivers =
      metrics::top_contributing_events(portfolio.layers[2], yet_table, kCatalogSize, 5);
  const yet::EventId the_event = drivers.front().event;

  std::printf("== post-event report: catalog event %u ==\n\n", the_event);
  io::TextTable impact({"layer", "immediate ceded loss", "conditional-year EL"});
  const auto losses = metrics::event_losses(portfolio, the_event);
  for (std::size_t l = 0; l < portfolio.num_layers(); ++l) {
    impact.add_row({"layer_" + std::to_string(portfolio.layers[l].id),
                    io::format_money(losses[l]),
                    io::format_money(metrics::conditional_expected_loss(ylt, l, yet_table,
                                                                        the_event))});
  }
  std::cout << impact << "\n";

  // --- 2. Where the event sits among the book's drivers ---------------------
  io::TextTable top({"rank", "event", "occurrences", "per-occurrence loss", "annual EL"});
  for (std::size_t rank = 0; rank < drivers.size(); ++rank) {
    top.add_row({std::to_string(rank + 1), std::to_string(drivers[rank].event),
                 std::to_string(drivers[rank].occurrences),
                 io::format_money(drivers[rank].occurrence_loss),
                 io::format_money(drivers[rank].expected_annual_loss)});
  }
  std::printf("top drivers of layer_%u:\n", portfolio.layers[2].id);
  std::cout << top << "\n";

  // --- 3. Capital attribution ------------------------------------------------
  const auto allocation = metrics::allocate_tvar(ylt, 0.99);
  io::TextTable capital({"layer", "co-TVaR(99%)", "share"});
  for (std::size_t l = 0; l < portfolio.num_layers(); ++l) {
    capital.add_row({"layer_" + std::to_string(portfolio.layers[l].id),
                     io::format_money(allocation.layer_contributions[l]),
                     io::format_percent(allocation.layer_shares[l])});
  }
  std::cout << "capital attribution (sums to portfolio TVaR "
            << io::format_money(allocation.portfolio_tvar) << "):\n"
            << capital << "\n";
  std::printf("diversification benefit: %s\n\n",
              io::format_percent(metrics::diversification_benefit(ylt, 0.99)).c_str());

  // --- 4. Severity stress (+20% climate loading on every ELT) ----------------
  core::Portfolio stressed = portfolio;
  for (auto& layer : stressed.layers) {
    for (auto& layer_elt : layer.elts) {
      layer_elt.lookup = std::make_shared<elt::ScaledLookup>(layer_elt.lookup, 1.2);
    }
  }
  const auto stressed_ylt = core::run({stressed, yet_table});
  io::TextTable stress({"layer", "base EL", "stressed EL", "change"});
  for (std::size_t l = 0; l < portfolio.num_layers(); ++l) {
    const metrics::EpCurve base_curve(ylt.layer_losses(l));
    const metrics::EpCurve stressed_curve(stressed_ylt.layer_losses(l));
    const double change =
        stressed_curve.expected_loss() / std::max(base_curve.expected_loss(), 1.0) - 1.0;
    stress.add_row({"layer_" + std::to_string(portfolio.layers[l].id),
                    io::format_money(base_curve.expected_loss()),
                    io::format_money(stressed_curve.expected_loss()),
                    io::format_percent(change)});
  }
  std::cout << "+20% severity stress (input-side, so remote layers attach):\n" << stress << "\n";

  // --- 5. Rest-of-season exposure --------------------------------------------
  // The event struck at mid-year: what does the remaining half-year hold?
  const auto remainder = core::run(
      {portfolio, yet_table,
       {.engine = core::EngineKind::kWindowed, .window = core::CoverageWindow{0.5f, 1.0f}}});
  io::TextTable season({"layer", "full-year EL", "remaining-half EL"});
  for (std::size_t l = 0; l < portfolio.num_layers(); ++l) {
    const metrics::EpCurve full(ylt.layer_losses(l));
    const metrics::EpCurve half(remainder.layer_losses(l));
    season.add_row({"layer_" + std::to_string(portfolio.layers[l].id),
                    io::format_money(full.expected_loss()),
                    io::format_money(half.expected_loss())});
  }
  std::cout << "rest-of-year outlook (coverage window [0.5, 1.0)):\n" << season;
  return 0;
}
