// Real-time pricing scenario (paper §IV): "an underwriter can evaluate
// different contractual terms and pricing while discussing a deal with a
// client over the phone."
//
// The expensive inputs (YET, ELT lookup tables) are built once; each
// what-if quote then re-runs aggregate analysis for a single layer with
// new terms and reports the quote and its latency. With ~50K trials the
// paper targets sub-second re-quotes.
//
//   $ ./realtime_pricing [num_trials]
//
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/analysis.hpp"
#include "elt/synthetic.hpp"
#include "metrics/ep_curve.hpp"
#include "parallel/thread_pool.hpp"
#include "pricing/pricing.hpp"
#include "yet/generator.hpp"

namespace {

struct Proposal {
  const char* description;
  are::financial::LayerTerms terms;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace are;
  using Clock = std::chrono::steady_clock;

  const std::uint64_t trials = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  constexpr std::size_t kCatalogSize = 500'000;
  constexpr std::size_t kNumElts = 8;

  // --- One-off setup (happens before the phone rings) ---------------------
  std::printf("preparing book: %llu trials, %zu ELTs over a %zu-event catalog...\n",
              static_cast<unsigned long long>(trials), kNumElts, kCatalogSize);
  const auto setup_start = Clock::now();

  yet::YetConfig yet_config;
  yet_config.num_trials = trials;
  yet_config.events_per_trial = 1000.0;
  yet_config.count_model = yet::CountModel::kPoisson;
  const yet::YearEventTable yet_table = yet::generate_uniform_yet(yet_config, kCatalogSize);

  core::Layer book;
  book.id = 1;
  for (std::size_t e = 0; e < kNumElts; ++e) {
    elt::SyntheticEltConfig config;
    config.catalog_size = kCatalogSize;
    config.entries = 15'000;
    config.elt_id = e;
    config.loss_scale = 400e3;
    core::LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess,
                                        elt::make_synthetic_elt(config), kCatalogSize);
    layer_elt.terms.share = 0.85;
    book.elts.push_back(std::move(layer_elt));
  }
  parallel::ThreadPool pool;  // reused across quotes

  const double setup_seconds = std::chrono::duration<double>(Clock::now() - setup_start).count();
  std::printf("setup done in %.2f s\n\n", setup_seconds);

  // --- The phone call: five alternative structures -------------------------
  const std::vector<Proposal> proposals = {
      {"20M xs 20M per occurrence", financial::LayerTerms::cat_xl(20e6, 20e6)},
      {"30M xs 30M per occurrence", financial::LayerTerms::cat_xl(30e6, 30e6)},
      {"stop-loss 60M xs 40M aggregate", financial::LayerTerms::aggregate_xl(40e6, 60e6)},
      {"20M xs 20M occ + 60M aggregate cap", {20e6, 20e6, 0.0, 60e6}},
      {"20M xs 20M occ + 10M agg deductible", {20e6, 20e6, 10e6, financial::kUnlimited}},
  };

  core::Portfolio portfolio;
  portfolio.layers.push_back(book);

  for (const Proposal& proposal : proposals) {
    const auto quote_start = Clock::now();
    portfolio.layers[0].terms = proposal.terms;

    // Borrowed pool: the engine reuses the warm workers across quotes.
    const auto ylt = core::run({portfolio, yet_table, {.pool = &pool}});
    const auto quote = pricing::price_layer(ylt.layer_losses(0), proposal.terms);
    const metrics::EpCurve curve(ylt.layer_losses(0));

    const double millis =
        1e3 * std::chrono::duration<double>(Clock::now() - quote_start).count();
    std::printf("%-38s -> %s | 250y PML %.1fM | quoted in %.0f ms\n", proposal.description,
                pricing::describe(quote).c_str(), curve.probable_maximum_loss(250.0) / 1e6,
                millis);
  }

  std::printf("\n(paper target: sub-second re-quotes at 50K trials)\n");
  return 0;
}
