// Real-time pricing scenario (paper §IV): "an underwriter can evaluate
// different contractual terms and pricing while discussing a deal with a
// client over the phone."
//
// Hosted on the resident analysis service (src/service/): the expensive
// inputs (YET, ELT lookup tables, thread pool) are loaded once into an
// AnalysisService; each what-if quote is a terms override on the registered
// book. The first quote runs cold and captures the book's ground-up losses;
// every later terms tweak replays them (delta re-pricing — no event fetch,
// no ELT lookups), a repeat of a structure is a cache hit, and all three
// latencies are printed side by side.
//
//   $ ./realtime_pricing [num_trials]
//
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "elt/synthetic.hpp"
#include "metrics/ep_curve.hpp"
#include "pricing/pricing.hpp"
#include "service/analysis_service.hpp"
#include "yet/generator.hpp"

namespace {

struct Proposal {
  const char* description;
  are::financial::LayerTerms terms;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace are;

  const std::uint64_t trials = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  constexpr std::size_t kCatalogSize = 500'000;
  constexpr std::size_t kNumElts = 8;

  // --- One-off setup (happens before the phone rings) ---------------------
  std::printf("preparing book: %llu trials, %zu ELTs over a %zu-event catalog...\n",
              static_cast<unsigned long long>(trials), kNumElts, kCatalogSize);

  yet::YetConfig yet_config;
  yet_config.num_trials = trials;
  yet_config.events_per_trial = 1000.0;
  yet_config.count_model = yet::CountModel::kPoisson;

  core::Layer book;
  book.id = 1;
  for (std::size_t e = 0; e < kNumElts; ++e) {
    elt::SyntheticEltConfig config;
    config.catalog_size = kCatalogSize;
    config.entries = 15'000;
    config.elt_id = e;
    config.loss_scale = 400e3;
    core::LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess,
                                        elt::make_synthetic_elt(config), kCatalogSize);
    layer_elt.terms.share = 0.85;
    book.elts.push_back(std::move(layer_elt));
  }
  core::Portfolio portfolio;
  portfolio.layers.push_back(std::move(book));

  // The resident service owns the YET and the warm thread pool; the book is
  // registered once and every quote below is a terms override against it.
  service::AnalysisService analysis_service(
      yet::generate_uniform_yet(yet_config, kCatalogSize), {});
  analysis_service.register_portfolio("deal", std::move(portfolio));
  std::printf("setup done\n\n");

  // --- The phone call: five alternative structures -------------------------
  const std::vector<Proposal> proposals = {
      {"20M xs 20M per occurrence", financial::LayerTerms::cat_xl(20e6, 20e6)},
      {"30M xs 30M per occurrence", financial::LayerTerms::cat_xl(30e6, 30e6)},
      {"stop-loss 60M xs 40M aggregate", financial::LayerTerms::aggregate_xl(40e6, 60e6)},
      {"20M xs 20M occ + 60M aggregate cap", {20e6, 20e6, 0.0, 60e6}},
      {"20M xs 20M occ + 10M agg deductible", {20e6, 20e6, 10e6, financial::kUnlimited}},
  };

  const auto quote_once = [&](const Proposal& proposal) {
    service::QuoteRequest request;
    request.portfolio_id = "deal";
    request.overrides.push_back({1, proposal.terms});
    const service::QuoteResponse response = analysis_service.quote(request);
    const metrics::EpCurve curve(response.outcome->ylt.layer_losses(0));
    std::printf("%-38s -> %s | 250y PML %.1fM | %s in %.1f ms\n", proposal.description,
                pricing::describe(response.outcome->quotes[0]).c_str(),
                curve.probable_maximum_loss(250.0) / 1e6,
                std::string(service::to_string(response.source)).c_str(),
                1e3 * response.wall_seconds);
    return response;
  };

  // First pass: quote 1 is cold (and captures the ground-up losses); quotes
  // 2-5 are terms-only changes, so they replay as deltas.
  for (const Proposal& proposal : proposals) quote_once(proposal);

  // The client circles back to the first structure: a result-cache hit.
  std::printf("\nclient returns to the opening structure:\n");
  quote_once(proposals[0]);

  std::printf("\n(paper target: sub-second re-quotes at 50K trials; the delta path\n"
              " re-runs only the terms + aggregation phases over cached losses)\n");
  return 0;
}
