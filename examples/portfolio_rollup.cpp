// Portfolio roll-up: aggregate analysis across a whole book of layers
// (paper §IV discusses 5000-contract portfolios on weekly update cycles),
// followed by portfolio-level risk reporting: per-layer quotes, the
// portfolio AEP curve, PMLs at standard return periods, and diversification
// (portfolio TVaR vs sum of standalone TVaRs).
//
//   $ ./portfolio_rollup [num_layers] [num_trials]
//
#include <cstdio>
#include <cstdlib>

#include "core/analysis.hpp"
#include "elt/synthetic.hpp"
#include "io/csv.hpp"
#include "metrics/ep_curve.hpp"
#include "pricing/pricing.hpp"
#include "yet/generator.hpp"

int main(int argc, char** argv) {
  using namespace are;

  const std::size_t num_layers = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;
  const std::uint64_t trials = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000;
  constexpr std::size_t kCatalogSize = 300'000;

  yet::YetConfig yet_config;
  yet_config.num_trials = trials;
  yet_config.events_per_trial = 900.0;
  yet_config.count_model = yet::CountModel::kNegativeBinomial;  // clustered cat years
  const yet::YearEventTable yet_table = yet::generate_uniform_yet(yet_config, kCatalogSize);

  // A book of layers with varied sizes, attachment points and ELT counts.
  core::Portfolio portfolio;
  for (std::size_t l = 0; l < num_layers; ++l) {
    core::Layer layer;
    layer.id = static_cast<std::uint32_t>(1000 + l);
    const double attachment = 5e6 * static_cast<double>(1 + l % 4);
    layer.terms.occurrence_retention = attachment;
    layer.terms.occurrence_limit = 2.0 * attachment;
    layer.terms.aggregate_limit = 8.0 * attachment;

    const std::size_t elt_count = 3 + (l * 7) % 10;  // 3..12 ELTs per layer
    for (std::size_t e = 0; e < elt_count; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = kCatalogSize;
      config.entries = 10'000;
      config.elt_id = l * 100 + e;
      config.loss_scale = 300e3;
      core::LayerElt layer_elt;
      layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess,
                                          elt::make_synthetic_elt(config), kCatalogSize);
      layer_elt.terms.share = 0.8;
      layer.elts.push_back(std::move(layer_elt));
    }
    portfolio.layers.push_back(std::move(layer));
  }

  std::printf("rolling up %zu layers over %llu trials...\n", num_layers,
              static_cast<unsigned long long>(trials));
  const auto ylt = core::run({portfolio, yet_table});

  // Per-layer technical quotes.
  double standalone_tvar_sum = 0.0;
  for (std::size_t l = 0; l < portfolio.num_layers(); ++l) {
    const auto quote = pricing::price_layer(ylt.layer_losses(l), portfolio.layers[l].terms);
    const metrics::EpCurve curve(ylt.layer_losses(l));
    standalone_tvar_sum += curve.tail_value_at_risk(0.99);
    std::printf("  layer %u: %s\n", portfolio.layers[l].id, pricing::describe(quote).c_str());
  }

  // Portfolio view.
  const auto total_losses = ylt.portfolio_losses();
  const metrics::EpCurve portfolio_curve(total_losses);
  std::printf("\nportfolio AEP curve (PML by return period):\n");
  const auto table = portfolio_curve.table(metrics::standard_return_periods());
  for (const auto& point : table) {
    std::printf("  %6.0fy : %12.0f\n", point.return_period, point.loss);
  }

  const double portfolio_tvar = portfolio_curve.tail_value_at_risk(0.99);
  std::printf("\nexpected annual loss    : %12.0f\n", portfolio_curve.expected_loss());
  std::printf("portfolio TVaR(99%%)     : %12.0f\n", portfolio_tvar);
  std::printf("sum of standalone TVaRs : %12.0f\n", standalone_tvar_sum);
  std::printf("diversification benefit : %11.1f%%\n",
              100.0 * (1.0 - portfolio_tvar / standalone_tvar_sum));
  return 0;
}
