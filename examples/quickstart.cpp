// Quickstart: build a small synthetic book, run aggregate analysis, and
// report the layer's risk metrics — the whole pipeline in ~60 lines.
//
//   $ ./quickstart
//
#include <cstdio>
#include <memory>

#include "core/analysis.hpp"
#include "elt/synthetic.hpp"
#include "metrics/ep_curve.hpp"
#include "pricing/pricing.hpp"
#include "yet/generator.hpp"

int main() {
  using namespace are;

  // 1. A Year Event Table: 20,000 alternative views of one contractual
  //    year, ~1000 event occurrences each, over a 100K-event catalog.
  constexpr std::size_t kCatalogSize = 100'000;
  yet::YetConfig yet_config;
  yet_config.num_trials = 20'000;
  yet_config.events_per_trial = 1000.0;
  yet_config.count_model = yet::CountModel::kPoisson;
  const yet::YearEventTable year_event_table = yet::generate_uniform_yet(yet_config, kCatalogSize);

  // 2. A layer covering 5 ELTs under Cat XL + aggregate terms.
  core::Layer layer;
  layer.id = 1;
  layer.terms.occurrence_retention = 10e6;
  layer.terms.occurrence_limit = 40e6;
  layer.terms.aggregate_retention = 20e6;
  layer.terms.aggregate_limit = 120e6;
  for (std::uint64_t e = 0; e < 5; ++e) {
    elt::SyntheticEltConfig elt_config;
    elt_config.catalog_size = kCatalogSize;
    elt_config.entries = 8'000;
    elt_config.elt_id = e;
    const elt::EventLossTable table = elt::make_synthetic_elt(elt_config);
    core::LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess, table, kCatalogSize);
    layer_elt.terms.occurrence_retention = 100e3;
    layer_elt.terms.share = 0.8;
    layer.elts.push_back(std::move(layer_elt));
  }

  core::Portfolio portfolio;
  portfolio.layers.push_back(std::move(layer));

  // 3. Aggregate analysis: YET x layer -> Year Loss Table, through the
  //    unified front door (the default config is the thread-pool engine;
  //    set AnalysisConfig::engine to pick any registered strategy).
  const core::YearLossTable ylt = core::run({portfolio, year_event_table});

  // 4. Risk measures from the YLT.
  const metrics::EpCurve curve(ylt.layer_losses(0));
  std::printf("Aggregate analysis of %zu trials x %.0f events\n",
              year_event_table.num_trials(), year_event_table.mean_events_per_trial());
  std::printf("  expected annual ceded loss : %12.0f\n", curve.expected_loss());
  std::printf("  100-year PML               : %12.0f\n", curve.probable_maximum_loss(100.0));
  std::printf("  250-year PML               : %12.0f\n", curve.probable_maximum_loss(250.0));
  std::printf("  TVaR(99%%)                  : %12.0f\n", curve.tail_value_at_risk(0.99));

  // 5. A technical price for the layer.
  const pricing::Quote quote =
      pricing::price_layer(ylt.layer_losses(0), portfolio.layers[0].terms);
  std::printf("  quote: %s\n", pricing::describe(quote).c_str());
  return 0;
}
