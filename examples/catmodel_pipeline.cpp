// The full analytical pipeline of a quantitative reinsurer (paper §I):
//
//   stage 1  risk assessment      : stochastic catalog x exposure -> ELTs
//   stage 2  portfolio management : YET x layers -> YLT -> PML / TVaR
//   stage 3  enterprise view      : portfolio AEP + OEP reporting
//
// Unlike the other examples this one generates its ELTs with the actual
// catastrophe model (hazard footprints x vulnerability curves) rather than
// synthetically, and writes the EP curve to CSV.
//
//   $ ./catmodel_pipeline [output.csv]
//
#include <cstdio>
#include <fstream>

#include "catmodel/cat_model.hpp"
#include "core/analysis.hpp"
#include "io/csv.hpp"
#include "metrics/ep_curve.hpp"
#include "metrics/occurrence.hpp"
#include "yet/generator.hpp"

int main(int argc, char** argv) {
  using namespace are;

  // --- Stage 1: catastrophe modelling --------------------------------------
  catalog::CatalogConfig catalog_config;
  catalog_config.num_events = 20'000;
  catalog_config.expected_events_per_year = 600.0;
  const catalog::EventCatalog catalog = catalog::build_catalog(catalog_config);
  std::printf("catalog: %zu events, %.0f expected occurrences/year\n", catalog.size(),
              catalog.total_annual_rate());

  catmodel::CatModelConfig model_config;
  model_config.secondary_uncertainty = true;  // damage sampled, not just mean

  core::Layer layer;
  layer.id = 1;
  for (std::uint64_t book = 0; book < 4; ++book) {
    exposure::ExposureConfig exposure_config;
    exposure_config.num_sites = 1'500;
    exposure_config.seed = 900 + book;
    const auto exposure_set = exposure::build_exposure(exposure_config);
    const auto elt = catmodel::run_cat_model(catalog, exposure_set, model_config);
    std::printf("  book %llu: %zu sites (TIV %.1fB) -> ELT with %zu events\n",
                static_cast<unsigned long long>(book), exposure_set.size(),
                exposure_set.total_insured_value() / 1e9, elt.size());
    core::LayerElt layer_elt;
    layer_elt.lookup =
        elt::make_lookup(elt::LookupKind::kDirectAccess, elt, catalog.size());
    layer_elt.terms.share = 0.9;
    layer.elts.push_back(std::move(layer_elt));
  }

  // --- Stage 2: aggregate analysis ------------------------------------------
  yet::YetConfig yet_config;
  yet_config.num_trials = 10'000;
  yet_config.events_per_trial = 600.0;
  yet_config.count_model = yet::CountModel::kPoisson;
  const yet::YearEventTable yet_table = yet::generate_yet(yet_config, catalog);
  std::printf("YET: %zu trials, mean %.0f events/trial, %.1f MB\n", yet_table.num_trials(),
              yet_table.mean_events_per_trial(),
              static_cast<double>(yet_table.memory_bytes()) / 1e6);

  // Size the layer off the book's occurrence profile: attach near the
  // 90th-percentile trial-max occurrence.
  core::Layer unlimited = layer;  // terms default to ground-up
  const auto occurrence_maxima = metrics::max_occurrence_losses(unlimited, yet_table);
  const metrics::EpCurve occurrence_curve(occurrence_maxima);
  const double attachment = occurrence_curve.loss_at_probability(0.10);
  layer.terms.occurrence_retention = attachment;
  layer.terms.occurrence_limit = attachment;  // one attachment of limit
  std::printf("layer sized from book: %.1fM xs %.1fM per occurrence\n",
              layer.terms.occurrence_limit / 1e6, layer.terms.occurrence_retention / 1e6);

  core::Portfolio portfolio;
  portfolio.layers.push_back(layer);
  const auto ylt = core::run({portfolio, yet_table});

  // --- Stage 3: risk reporting ------------------------------------------------
  const metrics::EpCurve aep(ylt.layer_losses(0));
  std::printf("\nlayer results over %zu simulated years:\n", ylt.num_trials());
  std::printf("  expected ceded loss : %12.0f\n", aep.expected_loss());
  std::printf("  100y PML            : %12.0f\n", aep.probable_maximum_loss(100.0));
  std::printf("  250y PML            : %12.0f\n", aep.probable_maximum_loss(250.0));
  std::printf("  TVaR(99%%)           : %12.0f\n", aep.tail_value_at_risk(0.99));

  const char* path = argc > 1 ? argv[1] : "ep_curve.csv";
  std::ofstream out(path);
  io::write_ep_csv(out, aep.table(metrics::standard_return_periods()));
  std::printf("\nEP curve written to %s\n", path);
  return 0;
}
