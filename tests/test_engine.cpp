// Tests for the core aggregate risk engine: correctness against
// hand-computed cases, bit-identical equivalence of all engine variants
// (sequential / parallel / chunked / instrumented), parameterized sweeps
// over chunk sizes and lookup representations, and access-count prediction.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/analysis.hpp"
#include "elt/synthetic.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;
using core::Layer;
using core::LayerElt;
using core::Portfolio;
using core::YearLossTable;

constexpr std::size_t kUniverse = 20'000;

/// A hand-checkable YET: trial 0 = events {0, 1}, trial 1 = {2},
/// trial 2 = empty, trial 3 = {0, 0, 3}.
yet::YearEventTable tiny_yet() {
  return yet::YearEventTable({0, 1, 2, 0, 0, 3},
                             {0.1f, 0.2f, 0.5f, 0.1f, 0.2f, 0.3f},
                             {0, 2, 3, 3, 6});
}

/// ELT over events 0..3 with losses 100, 200, 300, 400.
elt::EventLossTable tiny_elt() {
  return elt::EventLossTable({{0, 100.0}, {1, 200.0}, {2, 300.0}, {3, 400.0}});
}

Portfolio tiny_portfolio(const financial::LayerTerms& terms,
                         elt::LookupKind kind = elt::LookupKind::kDirectAccess) {
  Layer layer;
  layer.id = 7;
  LayerElt layer_elt;
  layer_elt.lookup = elt::make_lookup(kind, tiny_elt(), 10);
  layer.elts.push_back(std::move(layer_elt));
  layer.terms = terms;
  Portfolio portfolio;
  portfolio.layers.push_back(std::move(layer));
  return portfolio;
}

Portfolio synthetic_portfolio(std::size_t num_layers, std::size_t elts_per_layer,
                              elt::LookupKind kind = elt::LookupKind::kDirectAccess) {
  Portfolio portfolio;
  for (std::size_t l = 0; l < num_layers; ++l) {
    Layer layer;
    layer.id = static_cast<std::uint32_t>(l + 1);
    layer.terms.occurrence_retention = 200e3;
    layer.terms.occurrence_limit = 2e6;
    layer.terms.aggregate_retention = 500e3;
    layer.terms.aggregate_limit = 20e6;
    for (std::size_t e = 0; e < elts_per_layer; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = kUniverse;
      config.entries = 2'000;
      config.elt_id = l * 100 + e;
      LayerElt layer_elt;
      layer_elt.lookup = elt::make_lookup(kind, elt::make_synthetic_elt(config), kUniverse);
      layer_elt.terms.occurrence_retention = 10e3;
      layer_elt.terms.share = 0.9;
      layer.elts.push_back(std::move(layer_elt));
    }
    portfolio.layers.push_back(std::move(layer));
  }
  return portfolio;
}

yet::YearEventTable synthetic_yet(std::uint64_t trials, double events) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = events;
  config.count_model = yet::CountModel::kPoisson;
  config.seed = 31;
  return yet::generate_uniform_yet(config, kUniverse);
}

void expect_identical(const YearLossTable& a, const YearLossTable& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  ASSERT_EQ(a.num_trials(), b.num_trials());
  for (std::size_t layer = 0; layer < a.num_layers(); ++layer) {
    for (std::size_t trial = 0; trial < a.num_trials(); ++trial) {
      ASSERT_EQ(a.at(layer, trial), b.at(layer, trial))
          << "layer " << layer << " trial " << trial;
    }
  }
}

// --- Hand-computed correctness ------------------------------------------------

TEST(SequentialEngine, NoTermsSumsLosses) {
  const auto ylt = core::run_sequential(tiny_portfolio(financial::LayerTerms{}), tiny_yet());
  ASSERT_EQ(ylt.num_trials(), 4u);
  EXPECT_DOUBLE_EQ(ylt.at(0, 0), 300.0);  // 100 + 200
  EXPECT_DOUBLE_EQ(ylt.at(0, 1), 300.0);  // 300
  EXPECT_DOUBLE_EQ(ylt.at(0, 2), 0.0);    // empty trial
  EXPECT_DOUBLE_EQ(ylt.at(0, 3), 600.0);  // 100 + 100 + 400 (repeat events count twice)
}

TEST(SequentialEngine, OccurrenceTermsPerEvent) {
  // Retention 150, limit 200: event losses 100,200,300,400 -> 0,50,150,200.
  const auto ylt =
      core::run_sequential(tiny_portfolio(financial::LayerTerms::cat_xl(150.0, 200.0)), tiny_yet());
  EXPECT_DOUBLE_EQ(ylt.at(0, 0), 50.0);   // 0 + 50
  EXPECT_DOUBLE_EQ(ylt.at(0, 1), 150.0);  // 150
  EXPECT_DOUBLE_EQ(ylt.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(ylt.at(0, 3), 200.0);  // 0 + 0 + 200
}

TEST(SequentialEngine, AggregateTermsPerTrial) {
  // Aggregate retention 250, unlimited: trial sums 300,300,0,600 -> 50,50,0,350.
  const auto ylt = core::run_sequential(
      tiny_portfolio(financial::LayerTerms::aggregate_xl(250.0, financial::kUnlimited)),
      tiny_yet());
  EXPECT_DOUBLE_EQ(ylt.at(0, 0), 50.0);
  EXPECT_DOUBLE_EQ(ylt.at(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(ylt.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(ylt.at(0, 3), 350.0);
}

TEST(SequentialEngine, CombinedOccurrenceAndAggregateTerms) {
  financial::LayerTerms terms;
  terms.occurrence_retention = 150.0;
  terms.occurrence_limit = 200.0;
  terms.aggregate_retention = 60.0;
  terms.aggregate_limit = 120.0;
  // Occurrence-net trial losses: 50, 150, 0, 200 -> aggregate band [60, 180]:
  // 0, 90, 0, 120.
  const auto ylt = core::run_sequential(tiny_portfolio(terms), tiny_yet());
  EXPECT_DOUBLE_EQ(ylt.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ylt.at(0, 1), 90.0);
  EXPECT_DOUBLE_EQ(ylt.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(ylt.at(0, 3), 120.0);
}

TEST(SequentialEngine, EltFinancialTermsAppliedBeforeCombination) {
  // Two copies of the tiny ELT with different shares: event 0 loss 100 ->
  // 0.5*100 + 0.25*100 = 75.
  Layer layer;
  layer.id = 1;
  for (double share : {0.5, 0.25}) {
    LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess, tiny_elt(), 10);
    layer_elt.terms.share = share;
    layer.elts.push_back(std::move(layer_elt));
  }
  Portfolio portfolio;
  portfolio.layers.push_back(std::move(layer));
  const auto ylt = core::run_sequential(portfolio, tiny_yet());
  EXPECT_DOUBLE_EQ(ylt.at(0, 1), 0.75 * 300.0);
}

TEST(SequentialEngine, MultipleLayersIndependent) {
  Portfolio portfolio = tiny_portfolio(financial::LayerTerms{});
  Portfolio second = tiny_portfolio(financial::LayerTerms::cat_xl(150.0, 200.0));
  second.layers[0].id = 8;
  portfolio.layers.push_back(second.layers[0]);

  const auto ylt = core::run_sequential(portfolio, tiny_yet());
  ASSERT_EQ(ylt.num_layers(), 2u);
  EXPECT_DOUBLE_EQ(ylt.at(0, 0), 300.0);
  EXPECT_DOUBLE_EQ(ylt.at(1, 0), 50.0);
  EXPECT_EQ(ylt.index_of(7), 0u);
  EXPECT_EQ(ylt.index_of(8), 1u);
  EXPECT_THROW(ylt.index_of(99), std::out_of_range);
}

TEST(SequentialEngine, ValidatesPortfolio) {
  const Portfolio empty;
  EXPECT_THROW(core::run_sequential(empty, tiny_yet()), std::invalid_argument);

  Portfolio no_elts;
  no_elts.layers.emplace_back();
  EXPECT_THROW(core::run_sequential(no_elts, tiny_yet()), std::invalid_argument);
}

// --- Engine equivalence (the paper's cross-platform identity) -----------------

class EngineEquivalence : public ::testing::TestWithParam<elt::LookupKind> {};

TEST_P(EngineEquivalence, AllVariantsBitIdentical) {
  const Portfolio portfolio = synthetic_portfolio(2, 4, GetParam());
  const auto yet_table = synthetic_yet(500, 80.0);

  // Pin the unified API against the legacy reference entry point, then
  // sweep the other engines through core::run.
  const auto sequential = core::run_sequential(portfolio, yet_table);
  expect_identical(sequential,
                   core::run({portfolio, yet_table, {.engine = core::EngineKind::kSequential}}));

  expect_identical(sequential, core::run({portfolio, yet_table,
                                          {.engine = core::EngineKind::kParallel,
                                           .num_threads = 4}}));
  expect_identical(sequential, core::run({portfolio, yet_table,
                                          {.engine = core::EngineKind::kChunked,
                                           .num_threads = 1,
                                           .chunk_size = 4}}));
  expect_identical(sequential,
                   core::run({portfolio, yet_table, {.engine = core::EngineKind::kInstrumented}}));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EngineEquivalence,
                         ::testing::Values(elt::LookupKind::kDirectAccess,
                                           elt::LookupKind::kSortedVector,
                                           elt::LookupKind::kRobinHood,
                                           elt::LookupKind::kCuckoo,
                                           elt::LookupKind::kPagedDirect),
                         [](const auto& info) { return std::string(to_string(info.param)); });

class ChunkSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkSweep, ChunkedMatchesSequentialAtEveryChunkSize) {
  const Portfolio portfolio = synthetic_portfolio(1, 3);
  const auto yet_table = synthetic_yet(300, 50.0);
  const auto sequential = core::run_sequential(portfolio, yet_table);

  core::ChunkedOptions options;
  options.chunk_size = GetParam();
  expect_identical(sequential, core::run_chunked(portfolio, yet_table, options));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 12, 16, 64, 1024));

class ThreadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadSweep, ParallelMatchesSequentialAtEveryThreadCount) {
  const Portfolio portfolio = synthetic_portfolio(1, 3);
  const auto yet_table = synthetic_yet(257, 40.0);  // prime: uneven partitions
  const auto sequential = core::run_sequential(portfolio, yet_table);

  for (const auto partition : {parallel::Partition::kStatic, parallel::Partition::kDynamic,
                               parallel::Partition::kGuided}) {
    core::ParallelOptions options;
    options.num_threads = GetParam();
    options.partition = partition;
    options.chunk = 16;
    expect_identical(sequential, core::run_parallel(portfolio, yet_table, options));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1, 2, 3, 8, 32));

TEST(EngineEquivalenceExtra, MixedLookupKindsAcrossElts) {
  // One layer whose ELTs use different representations: the generic path.
  Layer layer;
  layer.id = 1;
  const elt::LookupKind kinds[] = {elt::LookupKind::kDirectAccess, elt::LookupKind::kSortedVector,
                                   elt::LookupKind::kRobinHood, elt::LookupKind::kCuckoo};
  for (std::size_t e = 0; e < 4; ++e) {
    elt::SyntheticEltConfig config;
    config.catalog_size = kUniverse;
    config.entries = 1'000;
    config.elt_id = e;
    LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(kinds[e], elt::make_synthetic_elt(config), kUniverse);
    layer.elts.push_back(std::move(layer_elt));
  }
  EXPECT_FALSE(layer.all_direct_access());
  Portfolio portfolio;
  portfolio.layers.push_back(std::move(layer));

  const auto yet_table = synthetic_yet(200, 60.0);
  const auto sequential = core::run_sequential(portfolio, yet_table);
  expect_identical(sequential, core::run_chunked(portfolio, yet_table, {8, 1}));
  expect_identical(sequential, core::run_parallel(portfolio, yet_table, {3, {}, 64}));
}

TEST(EngineEquivalenceExtra, LookupKindDoesNotChangeResults) {
  // The paper's claim that the representation is a pure performance choice.
  const auto yet_table = synthetic_yet(200, 60.0);
  const auto direct =
      core::run_sequential(synthetic_portfolio(1, 3, elt::LookupKind::kDirectAccess), yet_table);
  for (const auto kind : {elt::LookupKind::kSortedVector, elt::LookupKind::kRobinHood,
                          elt::LookupKind::kCuckoo}) {
    expect_identical(direct, core::run_sequential(synthetic_portfolio(1, 3, kind), yet_table));
  }
}

// --- Instrumented engine -------------------------------------------------------

TEST(InstrumentedEngine, AccessCountsMatchPrediction) {
  const Portfolio portfolio = synthetic_portfolio(2, 5);
  const auto yet_table = synthetic_yet(100, 30.0);

  const auto result = core::run_instrumented(portfolio, yet_table);
  const auto predicted = core::predict_access_counts(portfolio, yet_table);

  EXPECT_EQ(result.accesses.events_fetched, predicted.events_fetched);
  EXPECT_EQ(result.accesses.elt_lookups, predicted.elt_lookups);
  EXPECT_EQ(result.accesses.financial_applications, predicted.financial_applications);
  EXPECT_EQ(result.accesses.layer_term_applications, predicted.layer_term_applications);
}

TEST(InstrumentedEngine, PhaseTimesArePositiveAndSumToTotal) {
  const Portfolio portfolio = synthetic_portfolio(1, 8);
  const auto yet_table = synthetic_yet(400, 100.0);
  const auto result = core::run_instrumented(portfolio, yet_table);

  EXPECT_GT(result.phases.lookup_seconds, 0.0);
  EXPECT_GT(result.phases.total_seconds(), 0.0);
  const double fraction_sum = result.phases.fetch_fraction() + result.phases.lookup_fraction() +
                              result.phases.financial_fraction() +
                              result.phases.layer_fraction();
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);
}

TEST(InstrumentedEngine, EmptyBreakdownFractionsAreZeroNotNan) {
  // An untimed (or zero-duration) breakdown must report 0 fractions, not
  // NaN from 0/0.
  const core::PhaseBreakdown empty{};
  EXPECT_EQ(empty.total_seconds(), 0.0);
  EXPECT_EQ(empty.fetch_fraction(), 0.0);
  EXPECT_EQ(empty.lookup_fraction(), 0.0);
  EXPECT_EQ(empty.financial_fraction(), 0.0);
  EXPECT_EQ(empty.layer_fraction(), 0.0);
}

TEST(PredictAccessCounts, ScalesLinearlyInAllFourParameters) {
  // The asymptotic claim behind Fig 2: doubling any size parameter doubles
  // the relevant access counts.
  const auto yet1 = synthetic_yet(100, 50.0);
  const auto yet2 = synthetic_yet(200, 50.0);

  const Portfolio p1 = synthetic_portfolio(1, 3);
  const Portfolio p2_layers = synthetic_portfolio(2, 3);
  const Portfolio p2_elts = synthetic_portfolio(1, 6);

  const auto base = core::predict_access_counts(p1, yet1);
  const auto double_trials = core::predict_access_counts(p1, yet2);
  const auto double_layers = core::predict_access_counts(p2_layers, yet1);
  const auto double_elts = core::predict_access_counts(p2_elts, yet1);

  EXPECT_NEAR(static_cast<double>(double_trials.elt_lookups),
              2.0 * static_cast<double>(base.elt_lookups),
              0.1 * static_cast<double>(base.elt_lookups));
  EXPECT_EQ(double_layers.elt_lookups, 2 * base.elt_lookups);
  EXPECT_EQ(double_elts.elt_lookups, 2 * base.elt_lookups);
  EXPECT_EQ(double_layers.events_fetched, 2 * base.events_fetched);
  EXPECT_EQ(double_elts.events_fetched, base.events_fetched);  // ELTs don't refetch
}

// --- YLT container --------------------------------------------------------------

TEST(YearLossTable, PortfolioLossesSumAcrossLayers) {
  core::YearLossTable ylt({1, 2}, 3);
  ylt.at(0, 0) = 1.0;
  ylt.at(0, 1) = 2.0;
  ylt.at(1, 0) = 10.0;
  ylt.at(1, 2) = 30.0;
  const auto total = ylt.portfolio_losses();
  ASSERT_EQ(total.size(), 3u);
  EXPECT_DOUBLE_EQ(total[0], 11.0);
  EXPECT_DOUBLE_EQ(total[1], 2.0);
  EXPECT_DOUBLE_EQ(total[2], 30.0);
}

TEST(YearLossTable, LayerViewsAreContiguousAndWritable) {
  core::YearLossTable ylt({5}, 4);
  auto view = ylt.layer_losses(0);
  view[2] = 9.0;
  EXPECT_DOUBLE_EQ(ylt.at(0, 2), 9.0);
  EXPECT_EQ(view.size(), 4u);
}

TEST(ChunkedEngine, RejectsZeroChunk) {
  const Portfolio portfolio = synthetic_portfolio(1, 1);
  EXPECT_THROW(core::run_chunked(portfolio, synthetic_yet(10, 5.0), {0, 1}),
               std::invalid_argument);
}

}  // namespace
