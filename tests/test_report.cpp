// Tests for the text report renderer and formatting helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "io/report.hpp"

namespace {

using are::io::format_money;
using are::io::format_percent;
using are::io::TextTable;

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable table({"layer", "EL", "premium"});
  table.add_row({"cat_xl", "1000", "1500"});
  table.add_row({"stop_loss", "200", "380"});
  const std::string out = table.render();

  EXPECT_NE(out.find("layer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("cat_xl"), std::string::npos);
  // Three content lines + rule.
  int lines = 0;
  for (const char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable table({"name", "value"});
  table.add_row({"a", "5"});
  table.add_row({"b", "12345"});
  const std::string out = table.render();
  // The short number must be padded on the left: "    5" appears.
  EXPECT_NE(out.find("    5"), std::string::npos);
}

TEST(TextTable, TextCellsLeftAligned) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer_name", "2"});
  const std::string out = table.render();
  EXPECT_NE(out.find("x  "), std::string::npos);
}

TEST(TextTable, AddRowValuesFormatsDoubles) {
  TextTable table({"label", "a", "b"});
  table.add_row_values("row", {1.5, 2.25}, 1);
  const std::string out = table.render();
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("2.2"), std::string::npos);  // precision 1 rounds 2.25
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TextTable, StreamsViaOperator) {
  TextTable table({"h"});
  table.add_row({"v"});
  std::ostringstream stream;
  stream << table;
  EXPECT_FALSE(stream.str().empty());
}

TEST(TextTable, Validation) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only_one"}), std::invalid_argument);
}

TEST(FormatMoney, GroupsThousands) {
  EXPECT_EQ(format_money(0.0), "0");
  EXPECT_EQ(format_money(999.0), "999");
  EXPECT_EQ(format_money(1000.0), "1,000");
  EXPECT_EQ(format_money(12345678.0), "12,345,678");
  EXPECT_EQ(format_money(-2500.0), "-2,500");
  EXPECT_EQ(format_money(1234567.4), "1,234,567");  // rounds
}

TEST(FormatPercent, RendersWithPrecision) {
  EXPECT_EQ(format_percent(0.125), "12.5%");
  EXPECT_EQ(format_percent(0.12345, 2), "12.35%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
