// Tests for YLT filters (paper §II-C: "filters (financial functions) are
// applied on the aggregate loss values").
#include <gtest/gtest.h>

#include "metrics/filters.hpp"

namespace {

using namespace are::metrics;

const std::vector<double> kLosses{0.0, 10.0, 50.0, 100.0, 250.0};

TEST(Filters, Scale) {
  const auto out = filter_scale(kLosses, 0.5);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
  EXPECT_DOUBLE_EQ(out[4], 125.0);
  EXPECT_THROW(filter_scale(kLosses, -1.0), std::invalid_argument);
}

TEST(Filters, Cap) {
  const auto out = filter_cap(kLosses, 60.0);
  EXPECT_DOUBLE_EQ(out[2], 50.0);
  EXPECT_DOUBLE_EQ(out[3], 60.0);
  EXPECT_DOUBLE_EQ(out[4], 60.0);
  EXPECT_THROW(filter_cap(kLosses, -1.0), std::invalid_argument);
}

TEST(Filters, Excess) {
  const auto out = filter_excess(kLosses, 40.0);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 10.0);
  EXPECT_DOUBLE_EQ(out[4], 210.0);
}

TEST(Filters, Franchise) {
  const auto out = filter_franchise(kLosses, 50.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 50.0);  // at threshold: full loss
  EXPECT_DOUBLE_EQ(out[4], 250.0);
}

TEST(Filters, ProfitCommission) {
  // target 100, rate 0.3: profitable years (loss < 100) give back
  // 0.3 * shortfall.
  const auto out = filter_profit_commission(kLosses, 100.0, 0.3);
  EXPECT_DOUBLE_EQ(out[0], -30.0);  // 0 - 0.3*100
  EXPECT_DOUBLE_EQ(out[2], 50.0 - 15.0);
  EXPECT_DOUBLE_EQ(out[3], 100.0);  // at target: no commission
  EXPECT_DOUBLE_EQ(out[4], 250.0);
  EXPECT_THROW(filter_profit_commission(kLosses, 100.0, 1.5), std::invalid_argument);
}

TEST(FilterChain, ComposesInOrder) {
  // scale 0.5 then cap 60: 250 -> 125 -> 60.
  FilterChain chain;
  chain.scale(0.5).cap(60.0);
  const auto out = chain.apply(kLosses);
  EXPECT_DOUBLE_EQ(out[4], 60.0);
  EXPECT_DOUBLE_EQ(out[2], 25.0);
  EXPECT_EQ(chain.size(), 2u);

  // Order matters: cap 60 then scale 0.5: 250 -> 60 -> 30.
  FilterChain reversed;
  reversed.cap(60.0).scale(0.5);
  EXPECT_DOUBLE_EQ(reversed.apply(kLosses)[4], 30.0);
}

TEST(FilterChain, EmptyChainIsIdentity) {
  const FilterChain chain;
  const auto out = chain.apply(kLosses);
  for (std::size_t i = 0; i < kLosses.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], kLosses[i]);
  }
}

TEST(FilterChain, ApplyInPlaceOnYlt) {
  are::core::YearLossTable ylt({1, 2}, 3);
  ylt.at(0, 0) = 100.0;
  ylt.at(0, 2) = 300.0;
  ylt.at(1, 1) = 500.0;

  FilterChain chain;
  chain.excess(50.0).scale(2.0);
  chain.apply_in_place(ylt, 0);

  EXPECT_DOUBLE_EQ(ylt.at(0, 0), 100.0);  // (100-50)*2
  EXPECT_DOUBLE_EQ(ylt.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ylt.at(0, 2), 500.0);
  EXPECT_DOUBLE_EQ(ylt.at(1, 1), 500.0);  // other layer untouched
}

TEST(FilterChain, ValidatesOnConstruction) {
  FilterChain chain;
  EXPECT_THROW(chain.scale(-1.0), std::invalid_argument);
  EXPECT_THROW(chain.cap(-1.0), std::invalid_argument);
  EXPECT_THROW(chain.excess(-1.0), std::invalid_argument);
  EXPECT_THROW(chain.franchise(-1.0), std::invalid_argument);
  EXPECT_THROW(chain.profit_commission(100.0, 2.0), std::invalid_argument);
  EXPECT_EQ(chain.size(), 0u);  // failed pushes must not register
}

TEST(FilterChain, ChainEqualsSequentialFreeFunctions) {
  FilterChain chain;
  chain.scale(0.8).excess(20.0).cap(150.0).franchise(10.0);
  const auto chained = chain.apply(kLosses);
  const auto manual = filter_franchise(
      filter_cap(filter_excess(filter_scale(kLosses, 0.8), 20.0), 150.0), 10.0);
  for (std::size_t i = 0; i < kLosses.size(); ++i) {
    EXPECT_DOUBLE_EQ(chained[i], manual[i]) << i;
  }
}

}  // namespace
