// Edge-case and property tests for the engines beyond the main
// equivalence suite: degenerate YETs, extreme terms, invariants under
// randomized portfolios (seed-parameterized TEST_P sweeps).
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/openmp_engine.hpp"
#include "elt/synthetic.hpp"
#include "financial/trial_accumulator.hpp"
#include "rng/stream.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;

core::Portfolio one_layer_portfolio(const financial::LayerTerms& terms,
                                    std::size_t universe = 1'000) {
  elt::SyntheticEltConfig config;
  config.catalog_size = universe;
  config.entries = universe / 4;
  core::Portfolio portfolio;
  core::Layer layer;
  layer.id = 1;
  layer.terms = terms;
  layer.elts.push_back(
      {elt::make_lookup(elt::LookupKind::kDirectAccess, elt::make_synthetic_elt(config),
                        universe),
       {}});
  portfolio.layers.push_back(std::move(layer));
  return portfolio;
}

// --- Degenerate YETs -------------------------------------------------------------

TEST(EngineEdge, AllTrialsEmpty) {
  const yet::YearEventTable yet_table({}, {}, {0, 0, 0, 0});
  const auto portfolio = one_layer_portfolio({});
  for (const auto& ylt :
       {core::run_sequential(portfolio, yet_table), core::run_parallel(portfolio, yet_table, {2}),
        core::run_chunked(portfolio, yet_table, {4, 1}),
        core::run_openmp(portfolio, yet_table, 2)}) {
    ASSERT_EQ(ylt.num_trials(), 3u);
    for (std::size_t trial = 0; trial < 3; ++trial) {
      EXPECT_DOUBLE_EQ(ylt.at(0, trial), 0.0);
    }
  }
}

TEST(EngineEdge, SingleTrialSingleEvent) {
  const yet::YearEventTable yet_table({5}, {0.5f}, {0, 1});
  const elt::EventLossTable table({{5, 123.0}});
  core::Portfolio portfolio;
  core::Layer layer;
  layer.id = 1;
  layer.elts.push_back({elt::make_lookup(elt::LookupKind::kDirectAccess, table, 10), {}});
  portfolio.layers.push_back(std::move(layer));
  EXPECT_DOUBLE_EQ(core::run_sequential(portfolio, yet_table).at(0, 0), 123.0);
  EXPECT_DOUBLE_EQ(core::run_chunked(portfolio, yet_table, {16, 1}).at(0, 0), 123.0);
}

TEST(EngineEdge, OneGiantTrialAmongTiny) {
  // Load imbalance: one trial holds almost all events.
  std::vector<yet::EventId> events;
  std::vector<float> times;
  std::vector<std::uint64_t> offsets{0};
  rng::Stream stream(3, 0, 0);
  for (std::size_t trial = 0; trial < 16; ++trial) {
    const std::size_t count = trial == 7 ? 5'000 : 2;
    for (std::size_t k = 0; k < count; ++k) {
      events.push_back(static_cast<yet::EventId>(stream.uniform_below(1'000)));
      times.push_back(static_cast<float>(k) / static_cast<float>(count));
    }
    offsets.push_back(events.size());
  }
  const yet::YearEventTable yet_table(std::move(events), std::move(times), std::move(offsets));
  const auto portfolio = one_layer_portfolio({});

  const auto sequential = core::run_sequential(portfolio, yet_table);
  for (const auto partition : {parallel::Partition::kStatic, parallel::Partition::kDynamic,
                               parallel::Partition::kGuided}) {
    core::ParallelOptions options;
    options.num_threads = 4;
    options.partition = partition;
    options.chunk = 2;
    const auto parallel_ylt = core::run_parallel(portfolio, yet_table, options);
    for (std::size_t trial = 0; trial < 16; ++trial) {
      ASSERT_EQ(parallel_ylt.at(0, trial), sequential.at(0, trial));
    }
  }
}

// --- Extreme terms ------------------------------------------------------------------

TEST(EngineEdge, ZeroOccurrenceLimitZeroesEverything) {
  financial::LayerTerms terms;
  terms.occurrence_limit = 0.0;
  const auto portfolio = one_layer_portfolio(terms);
  yet::YetConfig config;
  config.num_trials = 20;
  config.events_per_trial = 50.0;
  const auto ylt = core::run_sequential(portfolio, yet::generate_uniform_yet(config, 1'000));
  for (std::size_t trial = 0; trial < 20; ++trial) {
    EXPECT_DOUBLE_EQ(ylt.at(0, trial), 0.0);
  }
}

TEST(EngineEdge, ZeroAggregateLimitZeroesEverything) {
  const auto portfolio =
      one_layer_portfolio(financial::LayerTerms::aggregate_xl(0.0, 0.0));
  yet::YetConfig config;
  config.num_trials = 20;
  config.events_per_trial = 50.0;
  const auto ylt = core::run_sequential(portfolio, yet::generate_uniform_yet(config, 1'000));
  for (std::size_t trial = 0; trial < 20; ++trial) {
    EXPECT_DOUBLE_EQ(ylt.at(0, trial), 0.0);
  }
}

TEST(EngineEdge, AstronomicalRetentionZeroesEverything) {
  const auto portfolio = one_layer_portfolio(financial::LayerTerms::cat_xl(1e300, 1.0));
  yet::YetConfig config;
  config.num_trials = 10;
  config.events_per_trial = 30.0;
  const auto ylt = core::run_sequential(portfolio, yet::generate_uniform_yet(config, 1'000));
  for (std::size_t trial = 0; trial < 10; ++trial) {
    EXPECT_DOUBLE_EQ(ylt.at(0, trial), 0.0);
  }
}

// --- Randomized portfolio invariants (property sweep over seeds) ---------------------

class EngineInvariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  struct Setup {
    core::Portfolio portfolio;
    yet::YearEventTable yet_table;
    financial::LayerTerms terms;
  };

  static Setup random_setup(std::uint64_t seed) {
    rng::Stream stream(seed, 77, 0);
    financial::LayerTerms terms;
    terms.occurrence_retention = stream.uniform01() * 500e3;
    terms.occurrence_limit = 100e3 + stream.uniform01() * 5e6;
    terms.aggregate_retention = stream.uniform01() * 1e6;
    terms.aggregate_limit = 1e6 + stream.uniform01() * 50e6;

    constexpr std::size_t kUniverse = 2'000;
    core::Layer layer;
    layer.id = 1;
    const auto num_elts = 1 + stream.uniform_below(6);
    for (std::uint64_t e = 0; e < num_elts; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = kUniverse;
      config.entries = 200 + stream.uniform_below(600);
      config.seed = seed;
      config.elt_id = e;
      core::LayerElt layer_elt;
      layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess,
                                          elt::make_synthetic_elt(config), kUniverse);
      layer_elt.terms.share = 0.5 + 0.5 * stream.uniform01();
      layer_elt.terms.occurrence_retention = stream.uniform01() * 50e3;
      layer.elts.push_back(std::move(layer_elt));
    }
    layer.terms = terms;
    core::Portfolio portfolio;
    portfolio.layers.push_back(std::move(layer));

    yet::YetConfig config;
    config.num_trials = 100;
    config.events_per_trial = 40.0;
    config.count_model = yet::CountModel::kPoisson;
    config.seed = seed + 1;
    return {std::move(portfolio), yet::generate_uniform_yet(config, kUniverse), terms};
  }
};

TEST_P(EngineInvariants, TrialLossesWithinAggregateBand) {
  const Setup setup = random_setup(GetParam());
  const auto ylt = core::run_sequential(setup.portfolio, setup.yet_table);
  for (std::size_t trial = 0; trial < ylt.num_trials(); ++trial) {
    const double loss = ylt.at(0, trial);
    ASSERT_TRUE(std::isfinite(loss));
    ASSERT_GE(loss, 0.0);
    ASSERT_LE(loss, setup.terms.aggregate_limit + 1e-6);
  }
}

TEST_P(EngineInvariants, TrialLossEqualsAggregateBandOfOccurrenceSum) {
  // Cross-implementation identity: the engine's per-trial recurrence must
  // equal EoL_aggregate(sum of occurrence-net losses) computed directly.
  const Setup setup = random_setup(GetParam());
  const auto ylt = core::run_sequential(setup.portfolio, setup.yet_table);
  const core::Layer& layer = setup.portfolio.layers[0];

  for (std::size_t trial = 0; trial < setup.yet_table.num_trials(); ++trial) {
    double occurrence_sum = 0.0;
    for (const yet::EventId event : setup.yet_table.trial_events(trial)) {
      double combined = 0.0;
      for (const core::LayerElt& layer_elt : layer.elts) {
        combined += layer_elt.terms.apply(layer_elt.lookup->lookup(event));
      }
      occurrence_sum += layer.terms.apply_occurrence(combined);
    }
    const double direct = layer.terms.apply_aggregate(occurrence_sum);
    ASSERT_NEAR(ylt.at(0, trial), direct, 1e-6 * (1.0 + direct)) << "trial " << trial;
  }
}

TEST_P(EngineInvariants, AllEnginesAgreeOnRandomSetups) {
  const Setup setup = random_setup(GetParam());
  const auto sequential = core::run_sequential(setup.portfolio, setup.yet_table);
  const auto parallel_ylt = core::run_parallel(setup.portfolio, setup.yet_table, {3});
  const auto chunked = core::run_chunked(setup.portfolio, setup.yet_table, {5, 1});
  const auto omp = core::run_openmp(setup.portfolio, setup.yet_table, 2);
  for (std::size_t trial = 0; trial < sequential.num_trials(); ++trial) {
    ASSERT_EQ(sequential.at(0, trial), parallel_ylt.at(0, trial));
    ASSERT_EQ(sequential.at(0, trial), chunked.at(0, trial));
    ASSERT_EQ(sequential.at(0, trial), omp.at(0, trial));
  }
}

TEST_P(EngineInvariants, ScalingAllEltSharesScalesPreTermLosses) {
  // With no layer terms, the YLT is linear in the ELT share.
  Setup setup = random_setup(GetParam());
  setup.portfolio.layers[0].terms = financial::LayerTerms{};
  const auto base = core::run_sequential(setup.portfolio, setup.yet_table);

  auto scaled = setup.portfolio;
  for (auto& layer_elt : scaled.layers[0].elts) layer_elt.terms.share *= 0.5;
  const auto halved = core::run_sequential(scaled, setup.yet_table);
  for (std::size_t trial = 0; trial < base.num_trials(); ++trial) {
    ASSERT_NEAR(halved.at(0, trial), 0.5 * base.at(0, trial),
                1e-9 * (1.0 + base.at(0, trial)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariants,
                         ::testing::Values(11, 23, 37, 59, 71, 97, 113));

// --- Accumulator vs engine identity under infinity edge -----------------------------

TEST(EngineEdge, UnlimitedEverythingEqualsPlainSum) {
  const auto portfolio = one_layer_portfolio({});
  yet::YetConfig config;
  config.num_trials = 30;
  config.events_per_trial = 25.0;
  const auto yet_table = yet::generate_uniform_yet(config, 1'000);
  const auto ylt = core::run_sequential(portfolio, yet_table);
  const auto& layer = portfolio.layers[0];
  for (std::size_t trial = 0; trial < 30; ++trial) {
    double sum = 0.0;
    for (const yet::EventId event : yet_table.trial_events(trial)) {
      sum += layer.elts[0].lookup->lookup(event);
    }
    ASSERT_NEAR(ylt.at(0, trial), sum, 1e-9 * (1.0 + sum));
  }
}

}  // namespace
