// Tests for Monte Carlo convergence diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/convergence.hpp"
#include "metrics/statistics.hpp"
#include "rng/distributions.hpp"
#include "rng/stream.hpp"

namespace {

using namespace are;
using namespace are::metrics;

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed = 3) {
  rng::Stream stream(seed, 12, 0);
  std::vector<double> sample(n);
  for (auto& x : sample) x = rng::sample_lognormal(stream, 10.0, 1.0);
  return sample;
}

TEST(MeanStandardError, MatchesFormula) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0, 5.0};
  const RunningStats stats = summarize(sample);
  EXPECT_NEAR(mean_standard_error(sample), stats.stddev() / std::sqrt(5.0), 1e-12);
  EXPECT_THROW(mean_standard_error(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(MeanStandardError, ShrinksWithSampleSize) {
  const auto small = lognormal_sample(1'000);
  const auto large = lognormal_sample(16'000);
  EXPECT_GT(mean_standard_error(small), mean_standard_error(large));
}

TEST(BootstrapQuantile, IntervalContainsEstimate) {
  const auto sample = lognormal_sample(5'000);
  const auto interval = bootstrap_quantile(sample, 0.99, 100);
  EXPECT_LE(interval.lower, interval.estimate);
  EXPECT_GE(interval.upper, interval.estimate);
  EXPECT_GT(interval.half_width_relative, 0.0);
  EXPECT_LT(interval.half_width_relative, 0.5);
}

TEST(BootstrapQuantile, DeterministicInSeed) {
  const auto sample = lognormal_sample(2'000);
  const auto a = bootstrap_quantile(sample, 0.95, 50, 7);
  const auto b = bootstrap_quantile(sample, 0.95, 50, 7);
  EXPECT_EQ(a.lower, b.lower);
  EXPECT_EQ(a.upper, b.upper);
  const auto c = bootstrap_quantile(sample, 0.95, 50, 8);
  EXPECT_NE(a.lower, c.lower);
}

TEST(BootstrapQuantile, TailQuantilesAreWiderThanMedian) {
  // The statistical argument for needing many trials for tail measures.
  const auto sample = lognormal_sample(5'000);
  const auto median = bootstrap_quantile(sample, 0.50, 100);
  const auto tail = bootstrap_quantile(sample, 0.999, 100);
  EXPECT_GT(tail.half_width_relative, median.half_width_relative);
}

TEST(BootstrapTvar, BehavesLikeQuantileButHigher) {
  const auto sample = lognormal_sample(5'000);
  const auto var99 = bootstrap_quantile(sample, 0.99, 100);
  const auto tvar99 = bootstrap_tvar(sample, 0.99, 100);
  EXPECT_GT(tvar99.estimate, var99.estimate);
  EXPECT_LE(tvar99.lower, tvar99.estimate);
  EXPECT_GE(tvar99.upper, tvar99.estimate);
}

TEST(Bootstrap, RejectsBadArguments) {
  const auto sample = lognormal_sample(100);
  EXPECT_THROW(bootstrap_quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(bootstrap_quantile(sample, 0.5, 5), std::invalid_argument);
}

TEST(QuantileConvergence, PrefixesGrowGeometricallyToFullSample) {
  const auto sample = lognormal_sample(10'000);
  const auto points = quantile_convergence(sample, 0.9, 1'000);
  ASSERT_GE(points.size(), 4u);
  EXPECT_EQ(points.front().trials, 1'000u);
  EXPECT_EQ(points.back().trials, 10'000u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].trials, points[i - 1].trials);
  }
}

TEST(QuantileConvergence, EstimatesConvergeToFullSampleValue) {
  const auto sample = lognormal_sample(50'000);
  const auto points = quantile_convergence(sample, 0.95, 1'000);
  const double full = points.back().estimate;
  // The last-but-one prefix (half the data) should already be close.
  const double half = points[points.size() - 2].estimate;
  EXPECT_NEAR(half, full, 0.1 * full);
}

TEST(TrialsNeeded, MedianStabilisesBeforeTail) {
  const auto sample = lognormal_sample(50'000);
  const std::size_t for_median = trials_needed(sample, 0.5, 0.02);
  const std::size_t for_tail = trials_needed(sample, 0.999, 0.02);
  EXPECT_LE(for_median, for_tail);
  EXPECT_LE(for_median, sample.size());
}

TEST(TrialsNeeded, RejectsBadTolerance) {
  const auto sample = lognormal_sample(100);
  EXPECT_THROW(trials_needed(sample, 0.5, 0.0), std::invalid_argument);
}

}  // namespace
