// Tests for the CLI argument parser.
#include <gtest/gtest.h>

#include "args.hpp"

namespace {

using are::tools::Args;

Args make_args(std::vector<std::string> tokens) {
  static std::vector<std::string> storage;
  storage = std::move(tokens);
  static std::vector<char*> pointers;
  pointers.clear();
  pointers.push_back(const_cast<char*>("are_cli"));
  for (auto& token : storage) pointers.push_back(token.data());
  return Args(static_cast<int>(pointers.size()), pointers.data(), 1);
}

TEST(Args, EqualsForm) {
  const Args args = make_args({"--trials=500", "--out=file.yet"});
  EXPECT_EQ(args.get_u64("trials", 0), 500u);
  EXPECT_EQ(args.get("out", ""), "file.yet");
}

TEST(Args, SpaceForm) {
  const Args args = make_args({"--trials", "500", "--out", "file.yet"});
  EXPECT_EQ(args.get_u64("trials", 0), 500u);
  EXPECT_EQ(args.require("out"), "file.yet");
}

TEST(Args, BareFlag) {
  const Args args = make_args({"--secondary-uncertainty", "--trials", "10"});
  EXPECT_TRUE(args.has("secondary-uncertainty"));
  EXPECT_EQ(args.get_u64("trials", 0), 10u);
}

TEST(Args, FlagFollowedByFlag) {
  const Args args = make_args({"--verbose", "--quiet"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.has("quiet"));
}

TEST(Args, PositionalArguments) {
  const Args args = make_args({"a.elt", "--out", "x", "b.elt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "a.elt");
  EXPECT_EQ(args.positional()[1], "b.elt");
}

TEST(Args, Defaults) {
  const Args args = make_args({});
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_u64("missing", 42), 42u);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(Args, RequireThrowsWhenMissingOrEmpty) {
  const Args args = make_args({"--empty="});
  EXPECT_THROW(args.require("missing"), std::runtime_error);
  EXPECT_THROW(args.require("empty"), std::runtime_error);
}

TEST(Args, NumericValidation) {
  const Args args = make_args({"--bad", "xyz", "--negative", "-5"});
  EXPECT_THROW(args.get_u64("bad", 0), std::runtime_error);
  EXPECT_THROW(args.get_u64("negative", 0), std::runtime_error);
  EXPECT_THROW(args.get_double("bad", 0.0), std::runtime_error);
  EXPECT_DOUBLE_EQ(args.get_double("negative", 0.0), -5.0);
}

TEST(Args, ScientificNotationDoubles) {
  const Args args = make_args({"--retention", "2.5e6"});
  EXPECT_DOUBLE_EQ(args.get_double("retention", 0.0), 2.5e6);
}

TEST(Args, LastValueWinsOnRepeat) {
  const Args args = make_args({"--seed", "1", "--seed", "2"});
  EXPECT_EQ(args.get_u64("seed", 0), 2u);
}

}  // namespace
