// Tests for the ELT module: the canonical EventLossTable and the four
// lookup representations from the paper's design discussion. The central
// property is *equivalence*: every representation must answer every lookup
// exactly like the reference binary search.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "elt/cuckoo_table.hpp"
#include "elt/direct_access_table.hpp"
#include "elt/event_loss_table.hpp"
#include "elt/lookup.hpp"
#include "elt/paged_direct_table.hpp"
#include "elt/robin_hood_table.hpp"
#include "elt/sorted_table.hpp"
#include "elt/synthetic.hpp"
#include "rng/stream.hpp"

namespace {

using namespace are;
using elt::EventLoss;
using elt::EventLossTable;
using elt::LookupKind;

TEST(EventLossTable, EmptyTable) {
  const EventLossTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.loss_for(0), 0.0);
  EXPECT_EQ(table.total_loss(), 0.0);
}

TEST(EventLossTable, SortsRecords) {
  const EventLossTable table({{5, 50.0}, {1, 10.0}, {3, 30.0}});
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table.records()[0].event, 1u);
  EXPECT_EQ(table.records()[1].event, 3u);
  EXPECT_EQ(table.records()[2].event, 5u);
  EXPECT_EQ(table.max_event(), 5u);
}

TEST(EventLossTable, CoalescesDuplicatesBySummation) {
  const EventLossTable table({{2, 10.0}, {2, 5.0}, {7, 1.0}, {2, 2.5}});
  ASSERT_EQ(table.size(), 2u);
  EXPECT_DOUBLE_EQ(table.loss_for(2), 17.5);
  EXPECT_DOUBLE_EQ(table.loss_for(7), 1.0);
}

TEST(EventLossTable, LossForMissingEventIsZero) {
  const EventLossTable table({{2, 10.0}, {9, 90.0}});
  EXPECT_EQ(table.loss_for(0), 0.0);
  EXPECT_EQ(table.loss_for(3), 0.0);
  EXPECT_EQ(table.loss_for(10), 0.0);
}

TEST(EventLossTable, RejectsNegativeAndNonFiniteLosses) {
  EXPECT_THROW(EventLossTable({{1, -1.0}}), std::invalid_argument);
  EXPECT_THROW(EventLossTable({{1, std::numeric_limits<double>::quiet_NaN()}}),
               std::invalid_argument);
  EXPECT_THROW(EventLossTable({{1, std::numeric_limits<double>::infinity()}}),
               std::invalid_argument);
}

TEST(EventLossTable, RejectsInvalidEventId) {
  EXPECT_THROW(EventLossTable({{catalog::kInvalidEvent, 1.0}}), std::invalid_argument);
}

TEST(EventLossTable, TotalLoss) {
  const EventLossTable table({{1, 10.0}, {2, 20.0}, {3, 30.0}});
  EXPECT_DOUBLE_EQ(table.total_loss(), 60.0);
}

// --- Parameterized equivalence over every lookup representation ------------

class LookupEquivalence : public ::testing::TestWithParam<LookupKind> {};

TEST_P(LookupEquivalence, MatchesReferenceOnEveryUniverseId) {
  constexpr std::size_t kUniverse = 5'000;
  elt::SyntheticEltConfig config;
  config.catalog_size = kUniverse;
  config.entries = 700;
  config.seed = 99;
  const EventLossTable reference = elt::make_synthetic_elt(config);

  const auto lookup = elt::make_lookup(GetParam(), reference, kUniverse);
  ASSERT_EQ(lookup->kind(), GetParam());
  EXPECT_EQ(lookup->entry_count(), reference.size());

  for (std::size_t id = 0; id < kUniverse; ++id) {
    const auto event = static_cast<elt::EventId>(id);
    ASSERT_DOUBLE_EQ(lookup->lookup(event), reference.loss_for(event)) << "event " << id;
  }
}

TEST_P(LookupEquivalence, EmptyTableAlwaysReturnsZero) {
  const EventLossTable empty;
  const auto lookup = elt::make_lookup(GetParam(), empty, 100);
  EXPECT_EQ(lookup->entry_count(), 0u);
  for (elt::EventId event = 0; event < 100; ++event) {
    EXPECT_EQ(lookup->lookup(event), 0.0);
  }
}

TEST_P(LookupEquivalence, SingleEntry) {
  const EventLossTable table({{42, 7.5}});
  const auto lookup = elt::make_lookup(GetParam(), table, 100);
  EXPECT_DOUBLE_EQ(lookup->lookup(42), 7.5);
  EXPECT_EQ(lookup->lookup(41), 0.0);
  EXPECT_EQ(lookup->lookup(43), 0.0);
  EXPECT_EQ(lookup->lookup(0), 0.0);
  EXPECT_EQ(lookup->lookup(99), 0.0);
}

TEST_P(LookupEquivalence, BoundaryEventIds) {
  // First and last id of the universe both present.
  const EventLossTable table({{0, 1.0}, {999, 2.0}});
  const auto lookup = elt::make_lookup(GetParam(), table, 1000);
  EXPECT_DOUBLE_EQ(lookup->lookup(0), 1.0);
  EXPECT_DOUBLE_EQ(lookup->lookup(999), 2.0);
  EXPECT_EQ(lookup->lookup(500), 0.0);
}

TEST_P(LookupEquivalence, OutOfUniverseIdReturnsZero) {
  const EventLossTable table({{10, 5.0}});
  const auto lookup = elt::make_lookup(GetParam(), table, 64);
  EXPECT_EQ(lookup->lookup(64), 0.0);
  EXPECT_EQ(lookup->lookup(catalog::kInvalidEvent - 1), 0.0);
}

TEST_P(LookupEquivalence, RejectsEventBeyondUniverse) {
  const EventLossTable table({{100, 5.0}});
  EXPECT_THROW(elt::make_lookup(GetParam(), table, 100), std::invalid_argument);
}

TEST_P(LookupEquivalence, MemoryIsReported) {
  elt::SyntheticEltConfig config;
  config.catalog_size = 10'000;
  config.entries = 500;
  const auto lookup = elt::make_lookup(GetParam(), elt::make_synthetic_elt(config), 10'000);
  EXPECT_GT(lookup->memory_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LookupEquivalence,
                         ::testing::Values(LookupKind::kDirectAccess, LookupKind::kSortedVector,
                                           LookupKind::kRobinHood, LookupKind::kCuckoo,
                                           LookupKind::kPagedDirect),
                         [](const auto& info) { return std::string(to_string(info.param)); });

// --- Representation-specific behaviour --------------------------------------

TEST(DirectAccessTable, MemoryIsUniverseSized) {
  // The paper's trade-off made concrete: memory scales with the catalog,
  // not the ELT.
  const EventLossTable table({{1, 1.0}});
  const elt::DirectAccessTable small(table, 1'000);
  const elt::DirectAccessTable large(table, 100'000);
  EXPECT_EQ(small.memory_bytes(), 1'000 * sizeof(double));
  EXPECT_EQ(large.memory_bytes(), 100'000 * sizeof(double));
  EXPECT_EQ(large.universe(), 100'000u);
  ASSERT_NE(large.data(), nullptr);
  EXPECT_DOUBLE_EQ(large.data()[1], 1.0);
}

TEST(SortedTable, MemoryIsEntrySized) {
  elt::SyntheticEltConfig config;
  config.catalog_size = 1'000'000;
  config.entries = 1'000;
  const elt::SortedTable table(elt::make_synthetic_elt(config), 1'000'000);
  EXPECT_EQ(table.memory_bytes(), 1'000 * (sizeof(elt::EventId) + sizeof(double)));
}

TEST(RobinHoodTable, ProbeDistancesStayBounded) {
  elt::SyntheticEltConfig config;
  config.catalog_size = 200'000;
  config.entries = 30'000;
  const elt::RobinHoodTable table(elt::make_synthetic_elt(config), 200'000);
  // Robin Hood at load factor <= 0.7 keeps worst-case probes modest.
  EXPECT_LE(table.max_probe_distance(), 32u);
}

TEST(CuckooTable, BuildsLargeTableWithFewRebuilds) {
  elt::SyntheticEltConfig config;
  config.catalog_size = 500'000;
  config.entries = 30'000;
  const elt::CuckooTable table(elt::make_synthetic_elt(config), 500'000);
  EXPECT_EQ(table.entry_count(), 30'000u);
  EXPECT_LE(table.rebuild_count(), 8);
}

TEST(CuckooTable, SpaceOverheadIsModest) {
  // Pagh-Rodler promises ~2x slots for n keys. Our slots are 24 bytes
  // (key + loss + occupancy flag, padded) vs 12 compact, and each of the
  // two tables rounds to a power of two, so the worst case is
  // 2 * 2 * (24/12) = 8x the compact bytes.
  elt::SyntheticEltConfig config;
  config.catalog_size = 100'000;
  config.entries = 10'000;
  const EventLossTable reference = elt::make_synthetic_elt(config);
  const elt::CuckooTable table(reference, 100'000);
  const std::size_t compact = reference.size() * (sizeof(elt::EventId) + sizeof(double));
  EXPECT_LE(table.memory_bytes(), compact * 8);
}

// --- Synthetic ELT generator -------------------------------------------------

TEST(SyntheticElt, DeterministicInSeedAndId) {
  elt::SyntheticEltConfig config;
  config.catalog_size = 10'000;
  config.entries = 100;
  const EventLossTable a = elt::make_synthetic_elt(config);
  const EventLossTable b = elt::make_synthetic_elt(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i], b.records()[i]);
  }

  config.elt_id = 1;
  const EventLossTable c = elt::make_synthetic_elt(config);
  bool any_difference = a.size() != c.size();
  for (std::size_t i = 0; !any_difference && i < a.size(); ++i) {
    any_difference = !(a.records()[i] == c.records()[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(SyntheticElt, ExactEntryCountAndDistinctIds) {
  elt::SyntheticEltConfig config;
  config.catalog_size = 50'000;
  config.entries = 5'000;
  const EventLossTable table = elt::make_synthetic_elt(config);
  EXPECT_EQ(table.size(), 5'000u);  // EventLossTable dedups: distinct ids proven by count
  EXPECT_LT(table.max_event(), 50'000u);
}

TEST(SyntheticElt, DenseRegimeSelectionSweep) {
  elt::SyntheticEltConfig config;
  config.catalog_size = 1'000;
  config.entries = 900;  // > 1/3 of universe: exercises the sweep path
  const EventLossTable table = elt::make_synthetic_elt(config);
  EXPECT_EQ(table.size(), 900u);
}

TEST(SyntheticElt, FullUniverse) {
  elt::SyntheticEltConfig config;
  config.catalog_size = 256;
  config.entries = 256;
  const EventLossTable table = elt::make_synthetic_elt(config);
  EXPECT_EQ(table.size(), 256u);
  for (elt::EventId event = 0; event < 256; ++event) {
    EXPECT_GT(table.loss_for(event), 0.0);
  }
}

TEST(SyntheticElt, RejectsMoreEntriesThanUniverse) {
  elt::SyntheticEltConfig config;
  config.catalog_size = 10;
  config.entries = 11;
  EXPECT_THROW(elt::make_synthetic_elt(config), std::invalid_argument);
}

TEST(SyntheticElt, ZeroEntriesGivesEmptyTable) {
  elt::SyntheticEltConfig config;
  config.entries = 0;
  EXPECT_TRUE(elt::make_synthetic_elt(config).empty());
}

TEST(MakeLookup, AllKindsConstructible) {
  const EventLossTable table({{3, 1.0}, {7, 2.0}});
  for (const auto kind : {LookupKind::kDirectAccess, LookupKind::kSortedVector,
                          LookupKind::kRobinHood, LookupKind::kCuckoo,
                          LookupKind::kPagedDirect}) {
    const auto lookup = elt::make_lookup(kind, table, 10);
    EXPECT_EQ(lookup->kind(), kind);
    EXPECT_DOUBLE_EQ(lookup->lookup(7), 2.0);
  }
}

TEST(PagedDirectTable, ClusteredEltTouchesFewPages) {
  // A regional book: 2000 entries clustered in one 16K-id band of a 1M-id
  // catalog. The paged table materialises only the touched band while the
  // flat direct table pays for the whole universe.
  std::vector<EventLoss> records;
  for (std::uint32_t i = 0; i < 2'000; ++i) {
    records.push_back({500'000 + i * 8, 1.0 + i});
  }
  const EventLossTable table(std::move(records));
  const elt::PagedDirectTable paged(table, 1'000'000);
  const elt::DirectAccessTable flat(table, 1'000'000);

  EXPECT_LT(paged.memory_bytes(), flat.memory_bytes() / 10);
  EXPECT_LE(paged.touched_pages(), 2'000u * 8 / elt::PagedDirectTable::kPageSize + 2);
  // And still answers identically.
  for (std::uint32_t i = 0; i < 2'000; ++i) {
    const auto event = static_cast<elt::EventId>(500'000 + i * 8);
    EXPECT_DOUBLE_EQ(paged.lookup(event), flat.lookup(event));
    EXPECT_DOUBLE_EQ(paged.lookup(event + 1), 0.0);
  }
}

TEST(PagedDirectTable, UniformEltDegeneratesToDirectPlusPageTable) {
  // Uniform 20K entries over 2M ids touch nearly every 512-slot page, so
  // memory approaches the flat table's — the paper's workload regime.
  elt::SyntheticEltConfig config;
  config.catalog_size = 2'000'000;
  config.entries = 20'000;
  const EventLossTable table = elt::make_synthetic_elt(config);
  const elt::PagedDirectTable paged(table, 2'000'000);
  const double touched_fraction = static_cast<double>(paged.touched_pages()) /
                                  static_cast<double>(paged.total_pages());
  EXPECT_GT(touched_fraction, 0.95);
}

}  // namespace
