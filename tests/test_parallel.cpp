// Tests for the thread pool and parallel_for: completeness, disjointness
// and full coverage of ranges under every partitioning strategy.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace are::parallel;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPool, ZeroThreadsSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
  }  // destructor must join without deadlock
  EXPECT_EQ(counter.load(), 10);
}

class ParallelForPartition : public ::testing::TestWithParam<Partition> {};

TEST_P(ParallelForPartition, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::uint64_t kBegin = 13, kEnd = 10'007;
  std::vector<std::atomic<int>> visits(kEnd);
  for (auto& v : visits) v.store(0);

  ForOptions options;
  options.partition = GetParam();
  options.chunk = 64;
  parallel_for(
      pool, kBegin, kEnd,
      [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
      },
      options);

  for (std::uint64_t i = 0; i < kBegin; ++i) EXPECT_EQ(visits[i].load(), 0) << i;
  for (std::uint64_t i = kBegin; i < kEnd; ++i) ASSERT_EQ(visits[i].load(), 1) << i;
}

TEST_P(ParallelForPartition, SumReductionMatchesSerial) {
  ThreadPool pool(8);
  constexpr std::uint64_t kN = 100'000;
  std::atomic<std::uint64_t> total{0};
  ForOptions options;
  options.partition = GetParam();
  parallel_for(
      pool, 0, kN,
      [&](std::uint64_t lo, std::uint64_t hi) {
        std::uint64_t local = 0;
        for (std::uint64_t i = lo; i < hi; ++i) local += i;
        total.fetch_add(local);
      },
      options);
  EXPECT_EQ(total.load(), kN * (kN - 1) / 2);
}

TEST_P(ParallelForPartition, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  ForOptions options;
  options.partition = GetParam();
  parallel_for(pool, 5, 5, [&](std::uint64_t, std::uint64_t) { called = true; }, options);
  parallel_for(pool, 7, 3, [&](std::uint64_t, std::uint64_t) { called = true; }, options);
  EXPECT_FALSE(called);
}

TEST_P(ParallelForPartition, SingleElementRange) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  ForOptions options;
  options.partition = GetParam();
  parallel_for(
      pool, 9, 10,
      [&](std::uint64_t lo, std::uint64_t hi) {
        EXPECT_EQ(lo, 9u);
        EXPECT_EQ(hi, 10u);
        count.fetch_add(1);
      },
      options);
  EXPECT_EQ(count.load(), 1);
}

TEST_P(ParallelForPartition, MoreWorkersThanItems) {
  ThreadPool pool(16);
  constexpr std::uint64_t kN = 5;
  std::vector<std::atomic<int>> visits(kN);
  for (auto& v : visits) v.store(0);
  ForOptions options;
  options.partition = GetParam();
  options.chunk = 1;
  parallel_for(
      pool, 0, kN,
      [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
      },
      options);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(AllPartitions, ParallelForPartition,
                         ::testing::Values(Partition::kStatic, Partition::kDynamic,
                                           Partition::kGuided),
                         [](const auto& info) {
                           switch (info.param) {
                             case Partition::kStatic: return "static";
                             case Partition::kDynamic: return "dynamic";
                             case Partition::kGuided: return "guided";
                           }
                           return "unknown";
                         });

TEST(ParallelFor, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> visits(100, 0);  // no atomics needed: inline execution
  parallel_for(pool, 0, 100, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) ++visits[i];
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelFor, StaticPartitionsAreContiguousBlocks) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  parallel_for(pool, 0, 1000, [&](std::uint64_t lo, std::uint64_t hi) {
    std::lock_guard lock(mutex);
    ranges.emplace_back(lo, hi);
  });
  // At most one range per worker, disjoint, covering [0, 1000).
  EXPECT_LE(ranges.size(), 4u);
  std::sort(ranges.begin(), ranges.end());
  std::uint64_t cursor = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, cursor);
    cursor = hi;
  }
  EXPECT_EQ(cursor, 1000u);
}

}  // namespace
