// Tests for the thread pool and parallel_for: completeness, disjointness
// and full coverage of ranges under every partitioning strategy, the
// cost-aware parallel_for_costed variant, worker identity, and the
// per-worker TaskScratch arena.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/task_scratch.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace are::parallel;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPool, ZeroThreadsSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
  }  // destructor must join without deadlock
  EXPECT_EQ(counter.load(), 10);
}

class ParallelForPartition : public ::testing::TestWithParam<Partition> {};

TEST_P(ParallelForPartition, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::uint64_t kBegin = 13, kEnd = 10'007;
  std::vector<std::atomic<int>> visits(kEnd);
  for (auto& v : visits) v.store(0);

  ForOptions options;
  options.partition = GetParam();
  options.chunk = 64;
  parallel_for(
      pool, kBegin, kEnd,
      [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
      },
      options);

  for (std::uint64_t i = 0; i < kBegin; ++i) EXPECT_EQ(visits[i].load(), 0) << i;
  for (std::uint64_t i = kBegin; i < kEnd; ++i) ASSERT_EQ(visits[i].load(), 1) << i;
}

TEST_P(ParallelForPartition, SumReductionMatchesSerial) {
  ThreadPool pool(8);
  constexpr std::uint64_t kN = 100'000;
  std::atomic<std::uint64_t> total{0};
  ForOptions options;
  options.partition = GetParam();
  parallel_for(
      pool, 0, kN,
      [&](std::uint64_t lo, std::uint64_t hi) {
        std::uint64_t local = 0;
        for (std::uint64_t i = lo; i < hi; ++i) local += i;
        total.fetch_add(local);
      },
      options);
  EXPECT_EQ(total.load(), kN * (kN - 1) / 2);
}

TEST_P(ParallelForPartition, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  ForOptions options;
  options.partition = GetParam();
  parallel_for(pool, 5, 5, [&](std::uint64_t, std::uint64_t) { called = true; }, options);
  parallel_for(pool, 7, 3, [&](std::uint64_t, std::uint64_t) { called = true; }, options);
  EXPECT_FALSE(called);
}

TEST_P(ParallelForPartition, SingleElementRange) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  ForOptions options;
  options.partition = GetParam();
  parallel_for(
      pool, 9, 10,
      [&](std::uint64_t lo, std::uint64_t hi) {
        EXPECT_EQ(lo, 9u);
        EXPECT_EQ(hi, 10u);
        count.fetch_add(1);
      },
      options);
  EXPECT_EQ(count.load(), 1);
}

TEST_P(ParallelForPartition, MoreWorkersThanItems) {
  ThreadPool pool(16);
  constexpr std::uint64_t kN = 5;
  std::vector<std::atomic<int>> visits(kN);
  for (auto& v : visits) v.store(0);
  ForOptions options;
  options.partition = GetParam();
  options.chunk = 1;
  parallel_for(
      pool, 0, kN,
      [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
      },
      options);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(AllPartitions, ParallelForPartition,
                         ::testing::Values(Partition::kStatic, Partition::kDynamic,
                                           Partition::kGuided),
                         [](const auto& info) {
                           switch (info.param) {
                             case Partition::kStatic: return "static";
                             case Partition::kDynamic: return "dynamic";
                             case Partition::kGuided: return "guided";
                           }
                           return "unknown";
                         });

TEST(ParallelFor, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> visits(100, 0);  // no atomics needed: inline execution
  parallel_for(pool, 0, 100, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) ++visits[i];
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

class ParallelForCosted : public ::testing::TestWithParam<Partition> {};

TEST_P(ParallelForCosted, CoversSkewedRangeExactlyOnce) {
  ThreadPool pool(4);
  // Heavily skewed costs including zero-cost indices (empty trials): the
  // prefix is what the fused engine passes (YET offsets).
  constexpr std::uint64_t kN = 4'001;
  std::vector<std::uint64_t> prefix(kN + 1, 0);
  for (std::uint64_t i = 0; i < kN; ++i) {
    const std::uint64_t cost = (i % 7 == 0) ? 0 : (i % 97) * (i % 97);
    prefix[i + 1] = prefix[i] + cost;
  }
  std::vector<std::atomic<int>> visits(kN);
  for (auto& v : visits) v.store(0);

  parallel_for_costed(
      pool, 0, kN, prefix, /*chunk_cost=*/1'000,
      [&](std::uint64_t lo, std::uint64_t hi) {
        ASSERT_LT(lo, hi);
        ASSERT_LE(hi, kN);
        for (std::uint64_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
      },
      GetParam());

  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(visits[i].load(), 1) << i;
}

TEST_P(ParallelForCosted, StaticBlocksAreCostBalanced) {
  if (GetParam() != Partition::kStatic) GTEST_SKIP();
  ThreadPool pool(4);
  // All the cost concentrated in the first quarter of the range: an
  // equal-count static split would give worker 0 everything.
  constexpr std::uint64_t kN = 1'000;
  std::vector<std::uint64_t> prefix(kN + 1, 0);
  for (std::uint64_t i = 0; i < kN; ++i) prefix[i + 1] = prefix[i] + (i < 250 ? 100 : 1);
  std::mutex mutex;
  std::vector<std::uint64_t> chunk_costs;
  parallel_for_costed(
      pool, 0, kN, prefix, /*chunk_cost=*/1,
      [&](std::uint64_t lo, std::uint64_t hi) {
        std::lock_guard lock(mutex);
        chunk_costs.push_back(prefix[hi] - prefix[lo]);
      },
      Partition::kStatic);
  ASSERT_GE(chunk_costs.size(), 2u);
  ASSERT_LE(chunk_costs.size(), 4u);
  const std::uint64_t total = prefix[kN];
  for (const std::uint64_t cost : chunk_costs) {
    // No block may carry the whole cost; every block stays near total/4.
    EXPECT_LE(cost, total / 2) << "static cost partition degenerated";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPartitions, ParallelForCosted,
                         ::testing::Values(Partition::kStatic, Partition::kDynamic,
                                           Partition::kGuided),
                         [](const auto& info) {
                           switch (info.param) {
                             case Partition::kStatic: return "static";
                             case Partition::kDynamic: return "dynamic";
                             case Partition::kGuided: return "guided";
                           }
                           return "unknown";
                         });

TEST(WorkerSlot, ZeroOffPoolAndStableWithinWorkers) {
  EXPECT_EQ(ThreadPool::worker_slot(), 0u);  // test thread is not a worker
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::size_t> slots;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      const std::size_t slot = ThreadPool::worker_slot();
      std::lock_guard lock(mutex);
      slots.insert(slot);
    });
  }
  pool.wait_idle();
  // Every observed slot is in 1..size(), and no worker reported 0.
  EXPECT_FALSE(slots.contains(0));
  for (const std::size_t slot : slots) EXPECT_LE(slot, pool.size());
}

TEST(TaskScratch, OneInstancePerWorkerReusedAcrossTasks) {
  struct Scratch {
    int uses = 0;
  };
  ThreadPool pool(3);
  TaskScratch<Scratch> scratch(pool);
  std::atomic<int> total_uses{0};
  for (int round = 0; round < 50; ++round) {
    pool.submit([&] {
      Scratch& local = scratch.local();
      ++local.uses;  // no lock: the slot belongs to this worker alone
      total_uses.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(total_uses.load(), 50);
  // The inline (non-worker) slot was never touched, and the factory form
  // constructs on first use only.
  int constructed = 0;
  TaskScratch<Scratch> lazy(pool);
  Scratch& a = lazy.local([&] {
    ++constructed;
    return Scratch{};
  });
  Scratch& b = lazy.local([&] {
    ++constructed;
    return Scratch{};
  });
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(constructed, 1);
}

TEST(TaskScratch, ForeignPoolWorkerFoldsToInlineSlot) {
  // A thread that is worker N of a big pool running an engine with its own
  // small pool reaches TaskScratch through parallel_for's inline path with
  // a process-wide slot beyond the small arena; it must fold to slot 0
  // instead of indexing out of bounds (the borrowed-pool pricing pattern).
  ThreadPool outer(8);
  std::atomic<int> runs{0};
  for (int i = 0; i < 16; ++i) {
    outer.submit([&] {
      ThreadPool inner(1);
      TaskScratch<int> scratch(inner);  // 2 slots; this thread's slot is 1..8
      parallel_for(inner, 0, 4, [&](std::uint64_t lo, std::uint64_t hi) {
        scratch.local() += static_cast<int>(hi - lo);
      });
      runs.fetch_add(1);
    });
  }
  outer.wait_idle();
  EXPECT_EQ(runs.load(), 16);
}

TEST(ParallelFor, StaticPartitionsAreContiguousBlocks) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  parallel_for(pool, 0, 1000, [&](std::uint64_t lo, std::uint64_t hi) {
    std::lock_guard lock(mutex);
    ranges.emplace_back(lo, hi);
  });
  // At most one range per worker, disjoint, covering [0, 1000).
  EXPECT_LE(ranges.size(), 4u);
  std::sort(ranges.begin(), ranges.end());
  std::uint64_t cursor = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, cursor);
    cursor = hi;
  }
  EXPECT_EQ(cursor, 1000u);
}

}  // namespace
