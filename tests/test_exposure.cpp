// Tests for the synthetic exposure database generator.
#include <gtest/gtest.h>

#include <algorithm>

#include "exposure/exposure.hpp"

namespace {

using namespace are::exposure;
using are::catalog::Region;

ExposureConfig small_config() {
  ExposureConfig config;
  config.num_sites = 2'000;
  return config;
}

TEST(Exposure, BuildsRequestedSize) {
  const ExposureSet set = build_exposure(small_config());
  EXPECT_EQ(set.size(), 2'000u);
  EXPECT_FALSE(set.empty());
}

TEST(Exposure, Deterministic) {
  const ExposureSet a = build_exposure(small_config());
  const ExposureSet b = build_exposure(small_config());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].region, b[i].region);
    EXPECT_EQ(a[i].construction, b[i].construction);
  }
}

TEST(Exposure, SiteInvariants) {
  const ExposureSet set = build_exposure(small_config());
  for (const Site& site : set.sites()) {
    EXPECT_GT(site.value, 0.0);
    EXPECT_GE(site.deductible, 0.0);
    EXPECT_LE(site.deductible, site.value);
    EXPECT_GT(site.limit, 0.0);
    EXPECT_GE(site.x, 0.0f);
    EXPECT_LT(site.x, 1.0f);
    EXPECT_GE(site.y, 0.0f);
    EXPECT_LT(site.y, 1.0f);
  }
}

TEST(Exposure, IdsAreDense) {
  const ExposureSet set = build_exposure(small_config());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set[i].id, static_cast<std::uint32_t>(i));
  }
}

TEST(Exposure, RegionRestrictionHonoured) {
  ExposureConfig config = small_config();
  config.regions = {Region::kGulfCoast, Region::kNorthAtlantic};
  const ExposureSet set = build_exposure(config);
  for (const Site& site : set.sites()) {
    EXPECT_TRUE(site.region == Region::kGulfCoast || site.region == Region::kNorthAtlantic);
  }
}

TEST(Exposure, TotalInsuredValueSumsSites) {
  const ExposureSet set = build_exposure(small_config());
  double expected = 0.0;
  for (const Site& site : set.sites()) expected += site.value;
  EXPECT_DOUBLE_EQ(set.total_insured_value(), expected);
}

TEST(Exposure, OccupancyScalesValues) {
  // Industrial sites should on average be worth more than residential.
  ExposureConfig config = small_config();
  config.num_sites = 20'000;
  const ExposureSet set = build_exposure(config);
  double residential_sum = 0.0, industrial_sum = 0.0;
  std::size_t residential_count = 0, industrial_count = 0;
  for (const Site& site : set.sites()) {
    if (site.occupancy == Occupancy::kResidential) {
      residential_sum += site.value;
      ++residential_count;
    } else if (site.occupancy == Occupancy::kIndustrial) {
      industrial_sum += site.value;
      ++industrial_count;
    }
  }
  ASSERT_GT(residential_count, 0u);
  ASSERT_GT(industrial_count, 0u);
  EXPECT_GT(industrial_sum / industrial_count, residential_sum / residential_count);
}

TEST(Exposure, DeductibleFractionApplied) {
  ExposureConfig config = small_config();
  config.deductible_fraction = 0.05;
  const ExposureSet set = build_exposure(config);
  for (const Site& site : set.sites()) {
    EXPECT_NEAR(site.deductible, 0.05 * site.value, 1e-9 * site.value);
  }
}

TEST(Exposure, RejectsInvalidConfig) {
  ExposureConfig config = small_config();
  config.num_sites = 0;
  EXPECT_THROW(build_exposure(config), std::invalid_argument);

  config = small_config();
  config.deductible_fraction = -0.1;
  EXPECT_THROW(build_exposure(config), std::invalid_argument);

  config = small_config();
  config.limit_fraction = 0.0;
  EXPECT_THROW(build_exposure(config), std::invalid_argument);
}

TEST(Exposure, ConstructionMixCoversAllClasses) {
  ExposureConfig config = small_config();
  config.num_sites = 10'000;
  const ExposureSet set = build_exposure(config);
  std::array<std::size_t, kConstructionCount> counts{};
  for (const Site& site : set.sites()) ++counts[static_cast<int>(site.construction)];
  for (int c = 0; c < kConstructionCount; ++c) {
    EXPECT_GT(counts[c], 0u) << to_string(static_cast<ConstructionClass>(c));
  }
}

TEST(Exposure, StringConversions) {
  for (int c = 0; c < kConstructionCount; ++c) {
    EXPECT_NE(to_string(static_cast<ConstructionClass>(c)), "unknown");
  }
  for (int o = 0; o < kOccupancyCount; ++o) {
    EXPECT_NE(to_string(static_cast<Occupancy>(o)), "unknown");
  }
}

}  // namespace
