// Tests for the financial module: the excess-of-loss primitive, ELT terms,
// layer terms (Table I), the path-dependent aggregate accumulator, and the
// extension features (reinstatements, multi-year limits, loss
// distributions). Property sweeps use TEST_P.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "financial/loss_distribution.hpp"
#include "financial/reinstatement.hpp"
#include "financial/terms.hpp"
#include "financial/trial_accumulator.hpp"

namespace {

using namespace are::financial;

// --- excess_of_loss primitive -----------------------------------------------

TEST(ExcessOfLoss, BasicBands) {
  EXPECT_EQ(excess_of_loss(0.0, 10.0, 20.0), 0.0);
  EXPECT_EQ(excess_of_loss(10.0, 10.0, 20.0), 0.0);   // exactly at retention
  EXPECT_EQ(excess_of_loss(15.0, 10.0, 20.0), 5.0);   // inside the band
  EXPECT_EQ(excess_of_loss(30.0, 10.0, 20.0), 20.0);  // exactly exhausts
  EXPECT_EQ(excess_of_loss(100.0, 10.0, 20.0), 20.0); // beyond the band
}

TEST(ExcessOfLoss, ZeroRetention) {
  EXPECT_EQ(excess_of_loss(5.0, 0.0, 10.0), 5.0);
  EXPECT_EQ(excess_of_loss(15.0, 0.0, 10.0), 10.0);
}

TEST(ExcessOfLoss, UnlimitedLimit) {
  EXPECT_EQ(excess_of_loss(1e12, 10.0, kUnlimited), 1e12 - 10.0);
}

TEST(ExcessOfLoss, ZeroLimitCedesNothing) {
  EXPECT_EQ(excess_of_loss(100.0, 10.0, 0.0), 0.0);
}

// Property sweep: monotonicity and bounds over a parameter grid.
class ExcessOfLossProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ExcessOfLossProperty, MonotoneBoundedLipschitz) {
  const auto [retention, limit] = GetParam();
  double previous = 0.0;
  for (double loss = 0.0; loss <= 250.0; loss += 2.5) {
    const double ceded = excess_of_loss(loss, retention, limit);
    EXPECT_GE(ceded, 0.0);
    EXPECT_LE(ceded, limit);
    EXPECT_LE(ceded, loss);           // never cede more than the loss
    EXPECT_GE(ceded, previous);       // monotone in loss
    EXPECT_LE(ceded - previous, 2.5 + 1e-12);  // 1-Lipschitz
    previous = ceded;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ExcessOfLossProperty,
                         ::testing::Combine(::testing::Values(0.0, 10.0, 50.0, 100.0),
                                            ::testing::Values(0.0, 5.0, 50.0, 1000.0)));

// --- FinancialTerms ----------------------------------------------------------

TEST(FinancialTerms, DefaultPassesThrough) {
  const FinancialTerms terms;
  EXPECT_DOUBLE_EQ(terms.apply(123.45), 123.45);
}

TEST(FinancialTerms, AppliesCurrencyBeforeBand) {
  FinancialTerms terms;
  terms.currency_rate = 2.0;
  terms.occurrence_retention = 10.0;
  terms.occurrence_limit = 100.0;
  // 30 native -> 60 converted -> 50 in excess of 10.
  EXPECT_DOUBLE_EQ(terms.apply(30.0), 50.0);
}

TEST(FinancialTerms, ShareAppliedAfterBand) {
  FinancialTerms terms;
  terms.occurrence_retention = 10.0;
  terms.occurrence_limit = 20.0;
  terms.share = 0.5;
  EXPECT_DOUBLE_EQ(terms.apply(100.0), 10.0);  // min(90,20) * 0.5
}

TEST(FinancialTerms, ValidationRejectsBadValues) {
  FinancialTerms terms;
  terms.occurrence_retention = -1.0;
  EXPECT_THROW(terms.validate(), std::invalid_argument);

  terms = {};
  terms.share = 0.0;
  EXPECT_THROW(terms.validate(), std::invalid_argument);
  terms.share = 1.5;
  EXPECT_THROW(terms.validate(), std::invalid_argument);

  terms = {};
  terms.currency_rate = 0.0;
  EXPECT_THROW(terms.validate(), std::invalid_argument);

  terms = {};
  EXPECT_NO_THROW(terms.validate());
}

// --- LayerTerms --------------------------------------------------------------

TEST(LayerTerms, CatXlFactoryHasNoAggregateFeatures) {
  const LayerTerms terms = LayerTerms::cat_xl(10.0, 50.0);
  EXPECT_DOUBLE_EQ(terms.apply_occurrence(40.0), 30.0);
  EXPECT_DOUBLE_EQ(terms.apply_aggregate(1e9), 1e9);  // pass-through
}

TEST(LayerTerms, AggregateXlFactoryHasNoOccurrenceFeatures) {
  const LayerTerms terms = LayerTerms::aggregate_xl(100.0, 500.0);
  EXPECT_DOUBLE_EQ(terms.apply_occurrence(40.0), 40.0);  // pass-through
  EXPECT_DOUBLE_EQ(terms.apply_aggregate(700.0), 500.0);
}

TEST(LayerTerms, ValidationRejectsNegatives) {
  LayerTerms terms;
  terms.aggregate_retention = -5.0;
  EXPECT_THROW(terms.validate(), std::invalid_argument);
}

// --- TrialAccumulator: the path-dependent aggregate recurrence ---------------

TEST(TrialAccumulator, NoTermsSumsOccurrences) {
  TrialAccumulator acc{LayerTerms{}};
  acc.add_occurrence(10.0);
  acc.add_occurrence(20.0);
  acc.add_occurrence(30.0);
  EXPECT_DOUBLE_EQ(acc.trial_loss(), 60.0);
  EXPECT_DOUBLE_EQ(acc.cumulative_occurrence_loss(), 60.0);
}

TEST(TrialAccumulator, AggregateRetentionAbsorbsEarlyLosses) {
  TrialAccumulator acc{LayerTerms::aggregate_xl(25.0, kUnlimited)};
  EXPECT_DOUBLE_EQ(acc.add_occurrence(10.0), 0.0);  // cum 10 < 25
  EXPECT_DOUBLE_EQ(acc.add_occurrence(10.0), 0.0);  // cum 20 < 25
  EXPECT_DOUBLE_EQ(acc.add_occurrence(10.0), 5.0);  // cum 30: 5 past retention
  EXPECT_DOUBLE_EQ(acc.add_occurrence(10.0), 10.0);
  EXPECT_DOUBLE_EQ(acc.trial_loss(), 15.0);
}

TEST(TrialAccumulator, AggregateLimitExhausts) {
  TrialAccumulator acc{LayerTerms::aggregate_xl(0.0, 25.0)};
  EXPECT_DOUBLE_EQ(acc.add_occurrence(10.0), 10.0);
  EXPECT_DOUBLE_EQ(acc.add_occurrence(10.0), 10.0);
  EXPECT_DOUBLE_EQ(acc.add_occurrence(10.0), 5.0);  // hits the limit
  EXPECT_DOUBLE_EQ(acc.add_occurrence(10.0), 0.0);  // exhausted
  EXPECT_DOUBLE_EQ(acc.trial_loss(), 25.0);
}

TEST(TrialAccumulator, TrialLossEqualsDirectFormula) {
  // Increment telescoping: total == EoL(sum of occurrences).
  const LayerTerms terms = LayerTerms::aggregate_xl(37.0, 120.0);
  TrialAccumulator acc{terms};
  const double occurrences[] = {5.0, 50.0, 0.0, 33.0, 80.0, 12.0};
  double cumulative = 0.0;
  for (double occurrence : occurrences) {
    acc.add_occurrence(occurrence);
    cumulative += occurrence;
  }
  EXPECT_DOUBLE_EQ(acc.trial_loss(), terms.apply_aggregate(cumulative));
}

TEST(TrialAccumulator, ResetClearsState) {
  TrialAccumulator acc{LayerTerms::aggregate_xl(5.0, 10.0)};
  acc.add_occurrence(100.0);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.trial_loss(), 0.0);
  EXPECT_DOUBLE_EQ(acc.cumulative_occurrence_loss(), 0.0);
  EXPECT_DOUBLE_EQ(acc.add_occurrence(7.0), 2.0);
}

// Property: increments are non-negative and never exceed the occurrence.
class AccumulatorProperty : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AccumulatorProperty, IncrementsWellBehaved) {
  const auto [retention, limit] = GetParam();
  TrialAccumulator acc{LayerTerms::aggregate_xl(retention, limit)};
  double total = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double occurrence = static_cast<double>((i * 7919) % 97);
    const double increment = acc.add_occurrence(occurrence);
    EXPECT_GE(increment, 0.0);
    EXPECT_LE(increment, occurrence + 1e-9);
    total += increment;
  }
  EXPECT_NEAR(total, acc.trial_loss(), 1e-9);
  EXPECT_LE(acc.trial_loss(), limit + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, AccumulatorProperty,
                         ::testing::Combine(::testing::Values(0.0, 10.0, 500.0, 5000.0),
                                            ::testing::Values(1.0, 100.0, 2000.0, kUnlimited)));

// --- Reinstatements ----------------------------------------------------------

TEST(Reinstatement, AggregateLimitScalesWithCount) {
  ReinstatementProvision provision;
  provision.count = 2;
  EXPECT_DOUBLE_EQ(provision.aggregate_limit(100.0), 300.0);
  EXPECT_EQ(provision.aggregate_limit(kUnlimited), kUnlimited);
}

TEST(Reinstatement, NoReinstatementsNoPremium) {
  const ReinstatementProvision provision;  // count = 0
  EXPECT_DOUBLE_EQ(provision.premium_fraction(1e9, 100.0), 0.0);
}

TEST(Reinstatement, ProRataPremiumOnPartialConsumption) {
  ReinstatementProvision provision;
  provision.count = 1;
  provision.premium_rates = {1.0};  // 100% paid reinstatement
  // Half the first tranche consumed -> half the reinstatement premium.
  EXPECT_DOUBLE_EQ(provision.premium_fraction(50.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(provision.premium_fraction(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(provision.premium_fraction(150.0, 100.0), 1.0);  // 2nd tranche uncharged
}

TEST(Reinstatement, MultipleRatesApplyPerTranche) {
  ReinstatementProvision provision;
  provision.count = 2;
  provision.premium_rates = {1.0, 0.5};
  // Consumes tranche 1 fully and half of tranche 2.
  EXPECT_DOUBLE_EQ(provision.premium_fraction(150.0, 100.0), 1.0 + 0.25);
  // Missing rates repeat the last one.
  provision.premium_rates = {1.0};
  EXPECT_DOUBLE_EQ(provision.premium_fraction(200.0, 100.0), 2.0);
}

TEST(Reinstatement, UnlimitedOccurrenceLimitNoPremium) {
  ReinstatementProvision provision;
  provision.count = 3;
  EXPECT_DOUBLE_EQ(provision.premium_fraction(1e6, kUnlimited), 0.0);
}

// --- Multi-year aggregate limit ----------------------------------------------

TEST(MultiYearAggregate, SharesLimitAcrossTermYears) {
  MultiYearAggregate contract(100.0, 3);
  EXPECT_DOUBLE_EQ(contract.add_year(60.0), 60.0);
  EXPECT_DOUBLE_EQ(contract.add_year(60.0), 40.0);  // only 40 left
  EXPECT_DOUBLE_EQ(contract.add_year(60.0), 0.0);   // exhausted
  // Term rolled over: full limit again.
  EXPECT_DOUBLE_EQ(contract.add_year(60.0), 60.0);
}

TEST(MultiYearAggregate, UnlimitedNeverBinds) {
  MultiYearAggregate contract(kUnlimited, 2);
  EXPECT_DOUBLE_EQ(contract.add_year(1e12), 1e12);
  EXPECT_DOUBLE_EQ(contract.add_year(1e12), 1e12);
}

TEST(MultiYearAggregate, RejectsBadConstruction) {
  EXPECT_THROW(MultiYearAggregate(100.0, 0), std::invalid_argument);
  EXPECT_THROW(MultiYearAggregate(-1.0, 2), std::invalid_argument);
}

TEST(Franchise, FullLossOncePastThreshold) {
  EXPECT_EQ(apply_franchise(5.0, 10.0), 0.0);
  EXPECT_EQ(apply_franchise(10.0, 10.0), 10.0);  // inclusive
  EXPECT_EQ(apply_franchise(50.0, 10.0), 50.0);
}

// --- LossDistribution (the convolution extension) ----------------------------

TEST(LossDistribution, NormalisesOnConstruction) {
  const LossDistribution dist({2.0, 2.0}, 1.0);
  EXPECT_DOUBLE_EQ(dist.mass()[0], 0.5);
  EXPECT_DOUBLE_EQ(dist.mass()[1], 0.5);
}

TEST(LossDistribution, RejectsInvalidInput) {
  EXPECT_THROW(LossDistribution({}, 1.0), std::invalid_argument);
  EXPECT_THROW(LossDistribution({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(LossDistribution({-1.0, 2.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(LossDistribution({0.0, 0.0}, 1.0), std::invalid_argument);
}

TEST(LossDistribution, PointMassMoments) {
  const auto dist = LossDistribution::point_mass(30.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(dist.mean(), 30.0);
  EXPECT_DOUBLE_EQ(dist.variance(), 0.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.5), 30.0);
}

TEST(LossDistribution, ConvolutionOfPointMassesAdds) {
  const auto a = LossDistribution::point_mass(20.0, 10.0, 16);
  const auto b = LossDistribution::point_mass(30.0, 10.0, 16);
  const auto sum = a.convolve(b, 64);
  EXPECT_DOUBLE_EQ(sum.mean(), 50.0);
  EXPECT_DOUBLE_EQ(sum.variance(), 0.0);
}

TEST(LossDistribution, ConvolutionMeansAdd) {
  const LossDistribution a({0.5, 0.25, 0.25}, 1.0);  // mean 0.75
  const LossDistribution b({0.25, 0.5, 0.25}, 1.0);  // mean 1.0
  const auto sum = a.convolve(b, 16);
  EXPECT_NEAR(sum.mean(), a.mean() + b.mean(), 1e-12);
}

TEST(LossDistribution, ConvolutionPreservesTotalMass) {
  const LossDistribution a({0.1, 0.2, 0.3, 0.4}, 5.0);
  const LossDistribution b({0.7, 0.3}, 5.0);
  const auto sum = a.convolve(b, 3);  // force tail folding
  double total = 0.0;
  for (double p : sum.mass()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(LossDistribution, ConvolutionRequiresMatchingGrids) {
  const LossDistribution a({1.0}, 1.0);
  const LossDistribution b({1.0}, 2.0);
  EXPECT_THROW(a.convolve(b, 8), std::invalid_argument);
}

TEST(LossDistribution, ExcessOfLossTransformMatchesScalar) {
  const auto dist = LossDistribution::point_mass(70.0, 10.0, 16);
  const auto ceded = dist.apply_excess_of_loss(30.0, 20.0);
  EXPECT_DOUBLE_EQ(ceded.mean(), excess_of_loss(70.0, 30.0, 20.0));
}

TEST(LossDistribution, ExcessOfLossReducesMean) {
  const LossDistribution dist({0.1, 0.2, 0.3, 0.2, 0.1, 0.1}, 10.0);
  const auto ceded = dist.apply_excess_of_loss(15.0, 20.0);
  EXPECT_LE(ceded.mean(), dist.mean());
}

TEST(LossDistribution, ExceedanceAndQuantileConsistent) {
  const LossDistribution dist({0.25, 0.25, 0.25, 0.25}, 1.0);
  EXPECT_DOUBLE_EQ(dist.exceedance(1.5), 0.5);
  EXPECT_DOUBLE_EQ(dist.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(dist.quantile(1.0), 3.0);
}

TEST(LossDistribution, MixtureInterpolatesMeans) {
  const auto a = LossDistribution::point_mass(0.0, 1.0, 8);
  const auto b = LossDistribution::point_mass(4.0, 1.0, 8);
  const auto mixed = a.mix(b, 0.25);
  EXPECT_DOUBLE_EQ(mixed.mean(), 1.0);
  EXPECT_THROW(a.mix(b, 1.5), std::invalid_argument);
}

}  // namespace
