// Tests for post-event response analytics and pricing sensitivities.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "elt/lookup.hpp"
#include "metrics/event_response.hpp"
#include "pricing/sensitivity.hpp"
#include "yet/year_event_table.hpp"

namespace {

using namespace are;

core::Portfolio tiny_portfolio() {
  // Events 0..3 with losses 100, 200, 300, 400; share 0.5 on the second ELT
  // copy so combined per-event losses are 1.5x.
  const elt::EventLossTable table({{0, 100.0}, {1, 200.0}, {2, 300.0}, {3, 400.0}});
  core::Portfolio portfolio;
  core::Layer layer;
  layer.id = 1;
  layer.elts.push_back({elt::make_lookup(elt::LookupKind::kDirectAccess, table, 10), {}});
  core::LayerElt half;
  half.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess, table, 10);
  half.terms.share = 0.5;
  layer.elts.push_back(std::move(half));
  portfolio.layers.push_back(std::move(layer));
  return portfolio;
}

yet::YearEventTable tiny_yet() {
  // Trial 0: {0, 1}; trial 1: {2}; trial 2: {1, 1}; trial 3: {}.
  return yet::YearEventTable({0, 1, 2, 1, 1}, {0.1f, 0.2f, 0.3f, 0.1f, 0.5f}, {0, 2, 3, 5, 5});
}

TEST(EventResponse, EventLossForLayerCombinesEltsAndTerms) {
  auto portfolio = tiny_portfolio();
  EXPECT_DOUBLE_EQ(metrics::event_loss_for_layer(portfolio.layers[0], 1), 300.0);  // 1.5 * 200
  EXPECT_DOUBLE_EQ(metrics::event_loss_for_layer(portfolio.layers[0], 9), 0.0);

  portfolio.layers[0].terms = financial::LayerTerms::cat_xl(250.0, 100.0);
  EXPECT_DOUBLE_EQ(metrics::event_loss_for_layer(portfolio.layers[0], 1), 50.0);
  EXPECT_DOUBLE_EQ(metrics::event_loss_for_layer(portfolio.layers[0], 3), 100.0);  // capped
}

TEST(EventResponse, EventLossesAcrossPortfolio) {
  auto portfolio = tiny_portfolio();
  portfolio.layers.push_back(portfolio.layers[0]);
  portfolio.layers[1].id = 2;
  portfolio.layers[1].terms = financial::LayerTerms::cat_xl(400.0, financial::kUnlimited);
  const auto losses = metrics::event_losses(portfolio, 2);  // combined 450
  ASSERT_EQ(losses.size(), 2u);
  EXPECT_DOUBLE_EQ(losses[0], 450.0);
  EXPECT_DOUBLE_EQ(losses[1], 50.0);
}

TEST(EventResponse, TopContributingEventsRankedByAnnualLoss) {
  const auto portfolio = tiny_portfolio();
  const auto yet_table = tiny_yet();
  // Occurrences: event 0 x1, event 1 x3, event 2 x1 over 4 trials.
  // Annual losses: e0: 150/4; e1: 3*300/4 = 225; e2: 450/4 = 112.5.
  const auto top = metrics::top_contributing_events(portfolio.layers[0], yet_table, 10, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].event, 1u);
  EXPECT_DOUBLE_EQ(top[0].expected_annual_loss, 225.0);
  EXPECT_EQ(top[0].occurrences, 3u);
  EXPECT_EQ(top[1].event, 2u);
  EXPECT_DOUBLE_EQ(top[1].occurrence_loss, 450.0);
}

TEST(EventResponse, TopNLargerThanUniverseReturnsAll) {
  const auto portfolio = tiny_portfolio();
  const auto top = metrics::top_contributing_events(portfolio.layers[0], tiny_yet(), 10, 100);
  EXPECT_EQ(top.size(), 3u);  // events 0, 1, 2 occur; 3 never does
  EXPECT_TRUE(metrics::top_contributing_events(portfolio.layers[0], tiny_yet(), 10, 0).empty());
}

TEST(EventResponse, TrialsContaining) {
  const auto trials = metrics::trials_containing(tiny_yet(), 1);
  ASSERT_EQ(trials.size(), 2u);
  EXPECT_EQ(trials[0], 0u);
  EXPECT_EQ(trials[1], 2u);
  EXPECT_TRUE(metrics::trials_containing(tiny_yet(), 3).empty());
}

TEST(EventResponse, ConditionalExpectedLoss) {
  const auto portfolio = tiny_portfolio();
  const auto yet_table = tiny_yet();
  const auto ylt = core::run_sequential(portfolio, yet_table);
  // Trials with event 1: trial 0 (loss 150+300=450) and trial 2 (600).
  const double conditional = metrics::conditional_expected_loss(ylt, 0, yet_table, 1);
  EXPECT_DOUBLE_EQ(conditional, 525.0);
  // Unconditional mean is lower: the event's presence marks bad years.
  double unconditional = 0.0;
  for (const double loss : ylt.layer_losses(0)) unconditional += loss;
  unconditional /= 4.0;
  EXPECT_GT(conditional, unconditional);

  EXPECT_THROW(metrics::conditional_expected_loss(ylt, 0, yet_table, 3), std::invalid_argument);
}

// --- Pricing sensitivities -----------------------------------------------------

class SensitivityTest : public ::testing::Test {
 protected:
  static core::Portfolio portfolio() {
    auto p = tiny_portfolio();
    p.layers[0].terms.occurrence_retention = 100.0;
    p.layers[0].terms.occurrence_limit = 300.0;
    p.layers[0].terms.aggregate_retention = 50.0;
    p.layers[0].terms.aggregate_limit = 500.0;
    return p;
  }
};

TEST_F(SensitivityTest, SignsAreEconomicallyCorrect) {
  pricing::SensitivityOptions options;
  options.relative_bump = 0.05;
  const auto sensitivities =
      pricing::term_sensitivities(portfolio(), tiny_yet(), 0, options);

  EXPECT_LT(sensitivities.d_occurrence_retention, 0.0);   // higher deductible, cheaper
  EXPECT_GE(sensitivities.d_occurrence_limit, 0.0);       // more cover, dearer
  EXPECT_LT(sensitivities.d_aggregate_retention, 0.0);
  EXPECT_GE(sensitivities.d_aggregate_limit, 0.0);
  EXPECT_GT(sensitivities.base.technical_premium, 0.0);
}

TEST_F(SensitivityTest, UnlimitedTermsHaveZeroSensitivity) {
  auto p = portfolio();
  p.layers[0].terms.aggregate_limit = financial::kUnlimited;
  p.layers[0].terms.occurrence_limit = financial::kUnlimited;
  const auto sensitivities = pricing::term_sensitivities(p, tiny_yet(), 0);
  EXPECT_DOUBLE_EQ(sensitivities.d_aggregate_limit, 0.0);
  EXPECT_DOUBLE_EQ(sensitivities.d_occurrence_limit, 0.0);
}

TEST_F(SensitivityTest, NonBindingLimitHasZeroSensitivity) {
  auto p = portfolio();
  p.layers[0].terms.occurrence_limit = 1e9;  // far beyond any event loss
  const auto sensitivities = pricing::term_sensitivities(p, tiny_yet(), 0);
  EXPECT_NEAR(sensitivities.d_occurrence_limit, 0.0, 1e-12);
}

TEST_F(SensitivityTest, MatchesManualFiniteDifference) {
  // Cross-check one sensitivity by hand with the same bump.
  const auto p = portfolio();
  pricing::SensitivityOptions options;
  options.relative_bump = 0.10;
  options.absolute_bump_floor = 1.0;
  const auto sensitivities = pricing::term_sensitivities(p, tiny_yet(), 0, options);

  const double bump = 10.0;  // 0.10 * retention 100
  auto up = p;
  up.layers[0].terms.occurrence_retention = 110.0;
  auto down = p;
  down.layers[0].terms.occurrence_retention = 90.0;
  const auto premium = [&](const core::Portfolio& candidate) {
    const auto ylt = core::run_sequential(candidate, tiny_yet());
    return pricing::price_layer(ylt.layer_losses(0), candidate.layers[0].terms,
                                options.assumptions)
        .technical_premium;
  };
  const double manual = (premium(up) - premium(down)) / (2.0 * bump);
  EXPECT_NEAR(sensitivities.d_occurrence_retention, manual, 1e-9);
}

TEST_F(SensitivityTest, RejectsBadArguments) {
  EXPECT_THROW(pricing::term_sensitivities(portfolio(), tiny_yet(), 5), std::invalid_argument);
  pricing::SensitivityOptions options;
  options.relative_bump = 0.0;
  EXPECT_THROW(pricing::term_sensitivities(portfolio(), tiny_yet(), 0, options),
               std::invalid_argument);
}

}  // namespace
