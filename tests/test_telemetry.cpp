// Tests for the runtime telemetry subsystem (src/obs/): exact counter
// arithmetic checked against hand-built table layouts and a hand-built YET,
// bit-identity of telemetry-on vs. telemetry-off output for every
// engine x sink combination, Chrome-trace JSON well-formedness (balanced
// B/E, per-thread monotonic timestamps), exporter formats, and registry /
// shard-store thread-safety under concurrent hammering.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis.hpp"
#include "core/engine.hpp"
#include "core/engine_registry.hpp"
#include "elt/cuckoo_table.hpp"
#include "elt/direct_access_table.hpp"
#include "elt/paged_direct_table.hpp"
#include "elt/robin_hood_table.hpp"
#include "elt/sorted_table.hpp"
#include "elt/synthetic.hpp"
#include "io/csv.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "shard/shard_store.hpp"
#include "shard/sharded_run.hpp"
#include "shard/sharded_ylt.hpp"
#include "yet/generator.hpp"
#include "yet/year_event_table.hpp"

namespace {

using namespace are;
using core::Portfolio;
using obs::TelemetryRegistry;

constexpr std::size_t kUniverse = 20'000;

/// Every telemetry test runs against the (process-global) registry, so each
/// one starts from zeroed instruments and leaves collection off for the
/// rest of the binary.
class Telemetry : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::set_trace_enabled(false);
    TelemetryRegistry::global().reset();
    obs::TraceBuffer::global().clear();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::set_trace_enabled(false);
  }
};

Portfolio synthetic_portfolio(std::size_t num_layers, std::size_t elts_per_layer,
                              elt::LookupKind kind = elt::LookupKind::kDirectAccess) {
  Portfolio portfolio;
  for (std::size_t l = 0; l < num_layers; ++l) {
    core::Layer layer;
    layer.id = static_cast<std::uint32_t>(l + 1);
    layer.terms.occurrence_retention = 200e3;
    layer.terms.occurrence_limit = 2e6;
    layer.terms.aggregate_retention = 500e3;
    layer.terms.aggregate_limit = 20e6;
    for (std::size_t e = 0; e < elts_per_layer; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = kUniverse;
      config.entries = 2'000;
      config.elt_id = l * 100 + e;
      core::LayerElt layer_elt;
      layer_elt.lookup = elt::make_lookup(kind, elt::make_synthetic_elt(config), kUniverse);
      layer_elt.terms.occurrence_retention = 10e3;
      layer_elt.terms.share = 0.9;
      layer.elts.push_back(std::move(layer_elt));
    }
    portfolio.layers.push_back(std::move(layer));
  }
  return portfolio;
}

yet::YearEventTable small_yet(std::uint64_t trials, double events) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = events;
  config.count_model = yet::CountModel::kNegativeBinomial;
  config.dispersion = 2.0;
  config.seed = 47;
  return yet::generate_uniform_yet(config, kUniverse);
}

std::uint64_t counter_now(std::string_view name) {
  return TelemetryRegistry::global().snapshot().counter_value(name);
}

// --- Registry basics ----------------------------------------------------------

TEST_F(Telemetry, RegistryHandlesAreStableAcrossReset) {
  TelemetryRegistry registry;  // isolated instance
  obs::Counter& c1 = registry.counter("a.b");
  obs::Counter& c2 = registry.counter("a.b");
  EXPECT_EQ(&c1, &c2);  // find-or-create returns the same instrument

  c1.add(41);
  c1.increment();
  EXPECT_EQ(c2.value(), 42u);

  registry.reset();
  EXPECT_EQ(c1.value(), 0u);  // zeroed, but the handle keeps working
  c1.increment();
  EXPECT_EQ(registry.snapshot().counter_value("a.b"), 1u);
  EXPECT_EQ(registry.snapshot().counter_value("absent"), 0u);
}

TEST_F(Telemetry, SnapshotIsSortedByName) {
  TelemetryRegistry registry;
  registry.counter("z.last").increment();
  registry.counter("a.first").add(2);
  registry.counter("m.mid").add(3);
  const obs::Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "a.first");
  EXPECT_EQ(snapshot.counters[1].name, "m.mid");
  EXPECT_EQ(snapshot.counters[2].name, "z.last");
}

TEST_F(Telemetry, GaugeTracksLevelAndHighWaterMark) {
  obs::Gauge gauge;
  gauge.add(100);
  gauge.record_max(gauge.value());
  gauge.add(-40);
  EXPECT_EQ(gauge.value(), 60);
  gauge.record_max(gauge.value());
  obs::Gauge peak;
  peak.record_max(100);
  peak.record_max(60);  // lower value must not regress the max
  EXPECT_EQ(peak.value(), 100);
}

TEST_F(Telemetry, HistogramBucketsByPowerOfTwo) {
  obs::Histogram histogram;
  histogram.record_ns(1);     // bit_width(1) == 1
  histogram.record_ns(50);    // bit_width(50) == 6
  histogram.record_ns(1024);  // bit_width(1024) == 11
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum_ns(), 1075u);
  EXPECT_EQ(histogram.min_ns(), 1u);
  EXPECT_EQ(histogram.max_ns(), 1024u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(6), 1u);
  EXPECT_EQ(histogram.bucket(11), 1u);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min_ns(), 0u);  // empty histogram reports 0
}

TEST_F(Telemetry, RunScopeRestoresPriorFlags) {
  EXPECT_FALSE(obs::enabled());
  {
    const obs::RunScope scope(/*counters=*/true, /*trace=*/true);
    EXPECT_TRUE(obs::enabled());
    EXPECT_TRUE(obs::trace_enabled());
  }
  EXPECT_FALSE(obs::enabled());
  EXPECT_FALSE(obs::trace_enabled());

  // A host that enabled collection process-wide keeps it across runs.
  obs::set_enabled(true);
  {
    const obs::RunScope scope(/*counters=*/false, /*trace=*/false);
    EXPECT_TRUE(obs::enabled());  // scope only ever widens
  }
  EXPECT_TRUE(obs::enabled());
}

// --- Exact probe arithmetic against hand-built tables -------------------------

TEST_F(Telemetry, SortedTableCountsOneComparePerQueryOnSingleEntry) {
  // n == 1: the grouped binary search does exactly one compare per query,
  // hit or miss, so probes == lookups.
  const elt::EventLossTable table({{5, 2.5}});
  const elt::SortedTable sorted(table, /*catalog_size=*/100);

  const std::vector<yet::EventId> queries = {5, 7, 0, 5, 99, 5, 1, 2, 3, 5};
  std::vector<double> out(queries.size(), -1.0);
  obs::set_enabled(true);
  sorted.lookup_many(queries.data(), queries.size(), out.data());
  obs::set_enabled(false);

  EXPECT_EQ(counter_now("elt.sorted_vector.lookups"), queries.size());
  EXPECT_EQ(counter_now("elt.sorted_vector.probes"), queries.size());
  EXPECT_EQ(out[0], 2.5);
  EXPECT_EQ(out[1], 0.0);
}

TEST_F(Telemetry, RobinHoodCountsOneSlotReadPerPresentKey) {
  // A single-entry table inserts at its home slot (distance 0); looking the
  // key up reads exactly that one slot.
  const elt::EventLossTable table({{17, 4.0}});
  const elt::RobinHoodTable robin(table, /*catalog_size=*/100);

  const std::vector<yet::EventId> queries(12, 17);
  std::vector<double> out(queries.size(), 0.0);
  obs::set_enabled(true);
  robin.lookup_many(queries.data(), queries.size(), out.data());
  obs::set_enabled(false);

  EXPECT_EQ(counter_now("elt.robin_hood.lookups"), queries.size());
  EXPECT_EQ(counter_now("elt.robin_hood.probes"), queries.size());
  for (const double loss : out) EXPECT_EQ(loss, 4.0);
}

TEST_F(Telemetry, CuckooCountsTwoBucketReadsPerMiss) {
  // A missing key always reads both candidate buckets.
  const elt::EventLossTable table({{3, 1.0}, {9, 2.0}});
  const elt::CuckooTable cuckoo(table, /*catalog_size=*/100);

  const std::vector<yet::EventId> misses = {50, 51, 52, 53, 54, 55, 56};
  std::vector<double> out(misses.size(), -1.0);
  obs::set_enabled(true);
  cuckoo.lookup_many(misses.data(), misses.size(), out.data());
  obs::set_enabled(false);

  EXPECT_EQ(counter_now("elt.cuckoo.lookups"), misses.size());
  EXPECT_EQ(counter_now("elt.cuckoo.probes"), 2 * misses.size());
  for (const double loss : out) EXPECT_EQ(loss, 0.0);
}

TEST_F(Telemetry, PagedDirectCountsZeroPageHitsFromTheLayout) {
  // One entry at event 3 materialises page 0; page 1 stays on the shared
  // zero page; ids past the catalog resolve to the zero constant. With
  // kPageBits == 9 a two-page universe is 1024 ids.
  const elt::EventLossTable table({{3, 7.0}});
  const elt::PagedDirectTable paged(table, /*catalog_size=*/2 * elt::PagedDirectTable::kPageSize);

  const std::vector<yet::EventId> queries = {
      3,                                        // page 0: materialised, no zero hit
      100,                                      // page 0 again (zero-valued slot, real page)
      elt::PagedDirectTable::kPageSize + 1,     // page 1: shared zero page
      4 * elt::PagedDirectTable::kPageSize,     // out of range: zero hit
  };
  std::vector<double> out(queries.size(), -1.0);
  obs::set_enabled(true);
  paged.lookup_many(queries.data(), queries.size(), out.data());
  obs::set_enabled(false);

  EXPECT_EQ(counter_now("elt.paged_direct.lookups"), queries.size());
  EXPECT_EQ(counter_now("elt.paged_direct.zero_page_hits"), 2u);
  EXPECT_EQ(out[0], 7.0);
  EXPECT_EQ(out[1], 0.0);
  EXPECT_EQ(out[2], 0.0);
  EXPECT_EQ(out[3], 0.0);
}

TEST_F(Telemetry, DirectAccessCountsLookups) {
  const elt::EventLossTable table({{1, 1.0}});
  const elt::DirectAccessTable direct(table, /*catalog_size=*/64);
  const std::vector<yet::EventId> queries = {1, 2, 3};
  std::vector<double> out(queries.size(), 0.0);
  obs::set_enabled(true);
  direct.lookup_many(queries.data(), queries.size(), out.data());
  obs::set_enabled(false);
  EXPECT_EQ(counter_now("elt.direct_access.lookups"), queries.size());
}

TEST_F(Telemetry, DisabledLookupsRecordNothing) {
  const elt::EventLossTable table({{5, 2.5}});
  const elt::SortedTable sorted(table, /*catalog_size=*/100);
  const std::vector<yet::EventId> queries = {5, 6, 7};
  std::vector<double> out(queries.size(), 0.0);
  sorted.lookup_many(queries.data(), queries.size(), out.data());  // telemetry off
  EXPECT_EQ(counter_now("elt.sorted_vector.lookups"), 0u);
  EXPECT_EQ(counter_now("elt.sorted_vector.probes"), 0u);
}

// --- Kernel counters on a hand-built YET --------------------------------------

TEST_F(Telemetry, KernelCountersMatchHandBuiltYet) {
  // Six trials owning {3, 1, 0, 2, 0, 0} events — 6 events total. One
  // layer, one single-entry sorted ELT: every event is looked up exactly
  // once (lookups == events == 6) with one compare each (probes == 6),
  // whatever the tile/task partitioning does.
  const yet::YearEventTable yet_table(
      /*events=*/{4, 9, 2, 7, 9, 4},
      /*times=*/{0.1f, 0.2f, 0.3f, 0.1f, 0.1f, 0.2f},
      /*offsets=*/{0, 3, 4, 4, 6, 6, 6});

  Portfolio portfolio;
  core::Layer layer;
  layer.id = 1;
  layer.terms.occurrence_limit = 1e9;
  core::LayerElt layer_elt;
  layer_elt.lookup = elt::make_lookup(elt::LookupKind::kSortedVector,
                                      elt::EventLossTable({{9, 1.0e6}}), kUniverse);
  layer.elts.push_back(std::move(layer_elt));
  portfolio.layers.push_back(std::move(layer));

  core::AnalysisConfig config;
  config.engine = core::EngineKind::kFused;
  config.tile_trials = 4;
  config.num_threads = 1;
  config.telemetry.counters = true;
  const auto ylt = core::run({portfolio, yet_table, config});
  EXPECT_FALSE(obs::enabled());  // RunScope restored the flag

  EXPECT_EQ(counter_now("kernel.launches"), 1u);
  EXPECT_EQ(counter_now("kernel.trials"), 6u);
  EXPECT_EQ(counter_now("kernel.events"), 6u);
  // block_trials == 4 bounds every block, so at least ceil(6/4) blocks ran.
  EXPECT_GE(counter_now("kernel.blocks"), 2u);
  EXPECT_EQ(counter_now("elt.sorted_vector.lookups"), 6u);
  EXPECT_EQ(counter_now("elt.sorted_vector.probes"), 6u);

  // The arithmetic itself is untouched: event 9 (the only ELT entry)
  // appears once in trial 0 and once in trial 3, nowhere else.
  EXPECT_EQ(ylt.layer_losses(0)[0], 1.0e6);
  EXPECT_EQ(ylt.layer_losses(0)[1], 0.0);
  EXPECT_EQ(ylt.layer_losses(0)[3], 1.0e6);
  EXPECT_EQ(ylt.layer_losses(0)[5], 0.0);
}

TEST_F(Telemetry, PoolAndPhaseCountersPopulateOnInstrumentedRuns) {
  const Portfolio portfolio = synthetic_portfolio(2, 2);
  const auto yet_table = small_yet(300, 30.0);

  core::InstrumentationSink sink;
  core::AnalysisConfig config;
  config.engine = core::EngineKind::kFused;
  config.num_threads = 2;
  config.collect_phases = true;
  config.instrumentation = &sink;
  config.telemetry.counters = true;
  (void)core::run({portfolio, yet_table, config});

  const obs::Snapshot snapshot = TelemetryRegistry::global().snapshot();
  EXPECT_GT(snapshot.counter_value("kernel.phase.lookup_ns"), 0u);
  EXPECT_GT(snapshot.counter_value("parallel.costed_chunks"), 0u);

  // The registry's phase counters mirror the InstrumentationSink breakdown.
  ASSERT_TRUE(sink.phases.has_value());
  EXPECT_EQ(snapshot.counter_value("kernel.phase.lookup_ns"),
            static_cast<std::uint64_t>(sink.phases->lookup_seconds * 1e9));
  // Materialized runs have no sink-emit phase.
  EXPECT_EQ(sink.phases->output_seconds, 0.0);
  EXPECT_DOUBLE_EQ(sink.phases->total_seconds(),
                   sink.phases->fetch_seconds + sink.phases->lookup_seconds +
                       sink.phases->financial_seconds + sink.phases->layer_seconds +
                       sink.phases->output_seconds);
}

TEST_F(Telemetry, OutputPhaseAppearsOnShardedInstrumentedRuns) {
  const Portfolio portfolio = synthetic_portfolio(2, 2);
  const auto yet_table = small_yet(200, 25.0);

  core::InstrumentationSink sink;
  core::AnalysisConfig config;
  config.engine = core::EngineKind::kFused;
  config.engine_name = "fused";
  config.collect_phases = true;
  config.instrumentation = &sink;
  config.output = core::OutputMode::kSharded;
  config.sharding.shard_trials = 64;
  (void)shard::run_sharded({portfolio, yet_table, config});

  ASSERT_TRUE(sink.phases.has_value());
  EXPECT_GE(sink.phases->output_seconds, 0.0);
  EXPECT_GT(sink.phases->output_seconds, 0.0);  // the emit loop is timed work
  EXPECT_DOUBLE_EQ(sink.phases->output_fraction(),
                   sink.phases->output_seconds / sink.phases->total_seconds());
}

// --- Bit-identity: telemetry on vs. off, every engine x sink ------------------

std::string materialized_csv(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                             const core::EngineDescriptor& engine, bool telemetry) {
  core::AnalysisConfig config;
  config.engine = engine.kind;
  config.engine_name = engine.name;
  config.telemetry.counters = telemetry;
  config.telemetry.trace = telemetry;
  const auto ylt = core::run({portfolio, yet_table, config});
  std::ostringstream out;
  io::write_ylt_csv(out, ylt);
  return out.str();
}

std::string sharded_csv(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                        const core::EngineDescriptor& engine, bool telemetry) {
  core::AnalysisConfig config;
  config.engine = engine.kind;
  config.engine_name = engine.name;
  config.output = core::OutputMode::kSharded;
  config.sharding.shard_trials = 25;
  // 2 layers x 25 trials x 8 B = 400 B per shard: a one-shard budget forces
  // spill/fault traffic through the instrumented store paths.
  config.sharding.memory_budget_bytes = 400;
  config.telemetry.counters = telemetry;
  config.telemetry.trace = telemetry;
  auto sharded = shard::run_sharded({portfolio, yet_table, config});
  std::ostringstream out;
  io::write_ylt_csv(out, sharded);
  return out.str();
}

TEST_F(Telemetry, OnOffBitIdentityForEveryEngineAndSink) {
  const Portfolio portfolio = synthetic_portfolio(2, 2);
  const auto yet_table = small_yet(150, 20.0);

  std::size_t engines_checked = 0;
  for (const core::EngineDescriptor& engine :
       core::EngineRegistry::global().descriptors()) {
    if (!engine.available_in_this_build || !engine.bit_identical_to_sequential) continue;
    SCOPED_TRACE(engine.name);
    ++engines_checked;

    TelemetryRegistry::global().reset();
    const std::string off = materialized_csv(portfolio, yet_table, engine, false);
    EXPECT_EQ(counter_now("kernel.launches"), 0u) << "telemetry-off run recorded counters";
    const std::string on = materialized_csv(portfolio, yet_table, engine, true);
    EXPECT_GT(counter_now("kernel.launches"), 0u) << "telemetry-on run recorded nothing";
    EXPECT_EQ(off, on) << "materialized output changed under telemetry";

    if (engine.supports_sharded_output()) {
      const std::string sharded_off = sharded_csv(portfolio, yet_table, engine, false);
      const std::string sharded_on = sharded_csv(portfolio, yet_table, engine, true);
      EXPECT_EQ(sharded_off, sharded_on) << "sharded output changed under telemetry";
      EXPECT_EQ(off, sharded_off) << "sharded output diverged from materialized";
    }
  }
  EXPECT_GE(engines_checked, 7u);  // the kernel-backed builtins
}

// --- Shard store counters -----------------------------------------------------

TEST_F(Telemetry, ShardStoreCountersMatchStoreStats) {
  obs::set_enabled(true);
  {
    shard::ShardStoreConfig config;
    config.memory_budget_bytes = 32 * sizeof(double);  // one shard resident
    shard::ShardStore store(std::vector<std::size_t>(4, 32), config);
    for (std::size_t round = 0; round < 3; ++round) {
      for (std::size_t s = 0; s < 4; ++s) {
        auto pin = store.pin(s);
        pin.data()[0] = static_cast<double>(round * 10 + s);
      }
    }
    const shard::ShardStoreStats stats = store.stats();
    EXPECT_GT(stats.spills, 0u);
    EXPECT_GT(stats.faults, 0u);

    const obs::Snapshot snapshot = TelemetryRegistry::global().snapshot();
    EXPECT_EQ(snapshot.counter_value("shard.spills"), stats.spills);
    EXPECT_EQ(snapshot.counter_value("shard.faults"), stats.faults);
    EXPECT_EQ(snapshot.counter_value("shard.bytes_spilled"), stats.spills * 32 * sizeof(double));
    EXPECT_EQ(snapshot.counter_value("shard.bytes_faulted"), stats.faults * 32 * sizeof(double));
    EXPECT_EQ(snapshot.gauge_value("shard.resident_bytes"),
              static_cast<std::int64_t>(stats.resident_bytes));
    EXPECT_EQ(snapshot.gauge_value("shard.peak_resident_bytes"),
              static_cast<std::int64_t>(stats.peak_resident_bytes));
  }
  obs::set_enabled(false);
}

// --- Chrome-trace JSON --------------------------------------------------------

/// Pulls `"key":<number>` out of a trace-event line.
std::uint64_t extract_uint(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << line;
  return std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
}

/// Timestamp as integer nanoseconds (the writer emits µs with 3 decimals).
std::uint64_t extract_ts_ns(const std::string& line) {
  const std::size_t at = line.find("\"ts\":");
  EXPECT_NE(at, std::string::npos) << line;
  char* end = nullptr;
  const std::uint64_t whole_us = std::strtoull(line.c_str() + at + 5, &end, 10);
  EXPECT_EQ(*end, '.') << line;
  const std::uint64_t frac = std::strtoull(end + 1, nullptr, 10);
  return whole_us * 1000 + frac;
}

TEST_F(Telemetry, TraceJsonIsBalancedAndMonotonicPerThread) {
  // Sorted tables: the direct-access gather fast path would bypass
  // lookup_many (and its span) entirely.
  const Portfolio portfolio = synthetic_portfolio(2, 2, elt::LookupKind::kSortedVector);
  const auto yet_table = small_yet(200, 25.0);

  core::AnalysisConfig config;
  config.engine = core::EngineKind::kFused;
  config.num_threads = 2;
  config.telemetry.counters = true;
  config.telemetry.trace = true;
  (void)core::run({portfolio, yet_table, config});
  EXPECT_FALSE(obs::trace_enabled());  // RunScope restored the flag

  obs::TraceBuffer& buffer = obs::TraceBuffer::global();
  ASSERT_GT(buffer.event_count(), 0u);

  std::ostringstream out;
  buffer.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");

  // One event per line: walk them, tracking per-tid span depth and
  // timestamp monotonicity.
  std::istringstream lines(json);
  std::string line;
  std::size_t events = 0;
  std::map<std::uint64_t, std::int64_t> depth;
  std::map<std::uint64_t, std::uint64_t> last_ts;
  while (std::getline(lines, line)) {
    const std::size_t ph = line.find("\"ph\":\"");
    if (ph == std::string::npos) continue;
    ++events;
    const char phase = line[ph + 6];
    const std::uint64_t tid = extract_uint(line, "tid");
    const std::uint64_t ts = extract_ts_ns(line);
    ASSERT_TRUE(phase == 'B' || phase == 'E') << line;
    depth[tid] += phase == 'B' ? 1 : -1;
    ASSERT_GE(depth[tid], 0) << "unbalanced 'E' on tid " << tid;
    if (last_ts.count(tid) != 0) {
      ASSERT_GE(ts, last_ts[tid]) << "timestamps regressed on tid " << tid;
    }
    last_ts[tid] = ts;
  }
  EXPECT_EQ(events, buffer.event_count());
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
  }

  // The expected span names all appear at least once.
  for (const char* name : {"kernel.launch", "elt.lookup_many", "parallel.costed_chunk"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + name + "\""), std::string::npos) << name;
  }
}

// --- Exporters ----------------------------------------------------------------

TEST_F(Telemetry, ExportersRenderKnownSnapshotExactly) {
  TelemetryRegistry registry;
  registry.counter("kernel.trials").add(6);
  registry.gauge("shard.resident_bytes").set(-8);
  obs::Histogram& histogram = registry.histogram("pool.task_ns");
  histogram.record_ns(50);
  histogram.record_ns(100);
  const obs::Snapshot snapshot = registry.snapshot();

  // Quantiles for samples {50, 100}: p50 lands on the first sample's
  // bucket [32,63] interpolated to its top (63); p95/p99 interpolate into
  // [64,127], clamped-upper to the observed max 100 -> 96 / 99.
  std::ostringstream json;
  obs::write_snapshot_json(json, snapshot);
  EXPECT_EQ(json.str(),
            "{\"counters\":{\"kernel.trials\":6},"
            "\"gauges\":{\"shard.resident_bytes\":-8},"
            "\"histograms\":{\"pool.task_ns\":{\"count\":2,\"sum_ns\":150,"
            "\"min_ns\":50,\"max_ns\":100,"
            "\"p50_ns\":63,\"p95_ns\":96,\"p99_ns\":99}}}\n");

  std::ostringstream csv;
  obs::write_snapshot_csv(csv, snapshot);
  EXPECT_EQ(csv.str(),
            "kind,name,value\n"
            "counter,kernel.trials,6\n"
            "gauge,shard.resident_bytes,-8\n"
            "histogram,pool.task_ns.count,2\n"
            "histogram,pool.task_ns.sum_ns,150\n"
            "histogram,pool.task_ns.min_ns,50\n"
            "histogram,pool.task_ns.max_ns,100\n"
            "histogram,pool.task_ns.p50_ns,63\n"
            "histogram,pool.task_ns.p95_ns,96\n"
            "histogram,pool.task_ns.p99_ns,99\n");

  std::ostringstream prom;
  obs::write_snapshot_prometheus(prom, snapshot);
  const std::string text = prom.str();
  // Dots sanitised, counters suffixed _total, gauges bare.
  EXPECT_NE(text.find("# TYPE are_kernel_trials_total counter\n"
                      "are_kernel_trials_total 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE are_shard_resident_bytes gauge\n"
                      "are_shard_resident_bytes -8\n"),
            std::string::npos);
  // A real Prometheus histogram family: cumulative le buckets over the
  // power-of-two bounds up to the highest non-empty bucket, then +Inf ==
  // _count, then _sum/_count, with min/max and derived quantiles as
  // gauge families.
  EXPECT_NE(text.find("# TYPE are_pool_task_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("are_pool_task_ns_bucket{le=\"31\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("are_pool_task_ns_bucket{le=\"63\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("are_pool_task_ns_bucket{le=\"127\"} 2\n"
                      "are_pool_task_ns_bucket{le=\"+Inf\"} 2\n"
                      "are_pool_task_ns_sum 150\n"
                      "are_pool_task_ns_count 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE are_pool_task_ns_p50_ns gauge\n"
                      "are_pool_task_ns_p50_ns 63\n"),
            std::string::npos);
  EXPECT_NE(text.find("are_pool_task_ns_p99_ns 99\n"), std::string::npos);
  EXPECT_NE(text.find("are_pool_task_ns_min_ns 50\n"), std::string::npos);
  EXPECT_NE(text.find("are_pool_task_ns_max_ns 100\n"), std::string::npos);
  // Buckets past the highest non-empty one collapse into +Inf.
  EXPECT_EQ(text.find("are_pool_task_ns_bucket{le=\"255\"}"), std::string::npos);
}

TEST_F(Telemetry, PrometheusRendersLabelledInstrumentFamilies) {
  // The `base{key=value}` instrument-name convention: JSON/CSV keep the
  // flat name verbatim; the Prometheus exporter splits it into a family
  // plus labels, groups the family under ONE TYPE line, and appends the
  // le label after the instrument's own labels.
  TelemetryRegistry registry;
  registry.histogram("service.quote_ns{source=cached}").record_ns(100);
  registry.histogram("service.quote_ns{source=cold}").record_ns(1000);
  registry.counter("service.outcome{kind=ok}").add(3);
  const obs::Snapshot snapshot = registry.snapshot();

  std::ostringstream prom;
  obs::write_snapshot_prometheus(prom, snapshot);
  const std::string text = prom.str();
  EXPECT_NE(text.find("# TYPE are_service_outcome_total counter\n"
                      "are_service_outcome_total{kind=\"ok\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("are_service_quote_ns_bucket{source=\"cached\",le=\"127\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("are_service_quote_ns_bucket{source=\"cold\",le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("are_service_quote_ns_sum{source=\"cold\"} 1000\n"), std::string::npos);
  EXPECT_NE(text.find("are_service_quote_ns_p50_ns{source=\"cached\"}"), std::string::npos);
  // One TYPE line covers both labelled members of the family.
  std::size_t type_lines = 0;
  for (std::size_t at = text.find("# TYPE are_service_quote_ns histogram");
       at != std::string::npos;
       at = text.find("# TYPE are_service_quote_ns histogram", at + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);

  // JSON keeps the dotted+labelled name as an opaque key.
  const std::string json = obs::snapshot_json_object(snapshot);
  EXPECT_NE(json.find("\"service.quote_ns{source=cold}\":{\"count\":1"), std::string::npos);
}

// --- Thread safety ------------------------------------------------------------

TEST_F(Telemetry, RegistrySurvivesConcurrentCreateIncrementSnapshot) {
  TelemetryRegistry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncrements = 20'000;
  const char* names[] = {"hammer.a", "hammer.b", "hammer.c", "hammer.d"};

  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      // Resolve through the registry every iteration: registration racing
      // registration and registration racing snapshot are the point.
      for (std::size_t i = 0; i < kIncrements; ++i) {
        registry.counter(names[(w + i) % 4]).increment();
        registry.gauge("hammer.level").add(i % 2 == 0 ? 1 : -1);
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    while (!done.load()) (void)registry.snapshot();
  });
  for (std::thread& worker : workers) worker.join();
  done.store(true);
  snapshotter.join();

  const obs::Snapshot snapshot = registry.snapshot();
  std::uint64_t total = 0;
  for (const char* name : names) total += snapshot.counter_value(name);
  EXPECT_EQ(total, kThreads * kIncrements);
  EXPECT_EQ(snapshot.gauge_value("hammer.level"), 0);
}

TEST_F(Telemetry, ShardCountersSurviveConcurrentPinHammer) {
  // The concurrent-pin hammer from test_sharded_ylt, with telemetry
  // collecting: spill/fault counters and the delta-tracked resident gauge
  // must stay consistent with the store's own stats whatever interleaving
  // the one-shard budget forces.
  obs::set_enabled(true);
  {
    shard::ShardStoreConfig config;
    config.memory_budget_bytes = 32 * sizeof(double);
    shard::ShardStore store(std::vector<std::size_t>(8, 32), config);

    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < 4; ++w) {
      workers.emplace_back([&, w] {
        for (std::uint32_t round = 0; round < 15; ++round) {
          for (const std::size_t shard : {2 * w, 2 * w + 1}) {
            auto pin = store.pin(shard);
            pin.data()[round % 32] = static_cast<double>(shard * 100 + round);
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();

    const shard::ShardStoreStats stats = store.stats();
    const obs::Snapshot snapshot = TelemetryRegistry::global().snapshot();
    EXPECT_GT(stats.spills, 0u);
    EXPECT_EQ(snapshot.counter_value("shard.spills"), stats.spills);
    EXPECT_EQ(snapshot.counter_value("shard.faults"), stats.faults);
    EXPECT_EQ(snapshot.gauge_value("shard.resident_bytes"),
              static_cast<std::int64_t>(stats.resident_bytes));
    EXPECT_GE(snapshot.gauge_value("shard.peak_resident_bytes"),
              snapshot.gauge_value("shard.resident_bytes"));
  }
  obs::set_enabled(false);
}

}  // namespace
