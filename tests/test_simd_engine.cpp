// Tests for the SIMD batch-execution subsystem: the vec.hpp lane
// abstraction, the TrialBatch structure-of-arrays transpose, and
// bit-identical equivalence of run_simd against run_sequential across
// lookup representations, lane widths, thread counts, and the financial
// edge cases (empty ELTs, unlimited limits, share == 1.0, trial counts not
// divisible by the lane width).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/simd_engine.hpp"
#include "elt/synthetic.hpp"
#include "simd/dispatch.hpp"
#include "simd/trial_batch.hpp"
#include "simd/vec.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;
using core::Layer;
using core::LayerElt;
using core::Portfolio;
using core::SimdExtension;
using core::SimdOptions;
using core::YearLossTable;

constexpr std::size_t kUniverse = 20'000;

std::vector<SimdExtension> available_extensions() {
  std::vector<SimdExtension> extensions;
  for (SimdExtension extension :
       {SimdExtension::kScalar, SimdExtension::kSse2, SimdExtension::kAvx2,
        SimdExtension::kAvx512, SimdExtension::kNeon}) {
    if (core::simd_extension_available(extension)) extensions.push_back(extension);
  }
  return extensions;
}

/// A hand-checkable YET: trial 0 = events {0, 1}, trial 1 = {2},
/// trial 2 = empty, trial 3 = {0, 0, 3} (same as test_engine.cpp).
yet::YearEventTable tiny_yet() {
  return yet::YearEventTable({0, 1, 2, 0, 0, 3}, {0.1f, 0.2f, 0.5f, 0.1f, 0.2f, 0.3f},
                             {0, 2, 3, 3, 6});
}

elt::EventLossTable tiny_elt() {
  return elt::EventLossTable({{0, 100.0}, {1, 200.0}, {2, 300.0}, {3, 400.0}});
}

Portfolio tiny_portfolio(const financial::LayerTerms& terms,
                         elt::LookupKind kind = elt::LookupKind::kDirectAccess) {
  Layer layer;
  layer.id = 7;
  LayerElt layer_elt;
  layer_elt.lookup = elt::make_lookup(kind, tiny_elt(), 10);
  layer.elts.push_back(std::move(layer_elt));
  layer.terms = terms;
  Portfolio portfolio;
  portfolio.layers.push_back(std::move(layer));
  return portfolio;
}

Portfolio synthetic_portfolio(std::size_t num_layers, std::size_t elts_per_layer,
                              elt::LookupKind kind = elt::LookupKind::kDirectAccess,
                              double share = 0.9) {
  Portfolio portfolio;
  for (std::size_t l = 0; l < num_layers; ++l) {
    Layer layer;
    layer.id = static_cast<std::uint32_t>(l + 1);
    layer.terms.occurrence_retention = 200e3;
    layer.terms.occurrence_limit = 2e6;
    layer.terms.aggregate_retention = 500e3;
    layer.terms.aggregate_limit = 20e6;
    for (std::size_t e = 0; e < elts_per_layer; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = kUniverse;
      config.entries = 2'000;
      config.elt_id = l * 100 + e;
      LayerElt layer_elt;
      layer_elt.lookup = elt::make_lookup(kind, elt::make_synthetic_elt(config), kUniverse);
      layer_elt.terms.occurrence_retention = 10e3;
      layer_elt.terms.share = share;
      layer.elts.push_back(std::move(layer_elt));
    }
    portfolio.layers.push_back(std::move(layer));
  }
  return portfolio;
}

yet::YearEventTable synthetic_yet(std::uint64_t trials, double events) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = events;
  config.count_model = yet::CountModel::kPoisson;
  config.seed = 31;
  return yet::generate_uniform_yet(config, kUniverse);
}

void expect_identical(const YearLossTable& a, const YearLossTable& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  ASSERT_EQ(a.num_trials(), b.num_trials());
  for (std::size_t layer = 0; layer < a.num_layers(); ++layer) {
    for (std::size_t trial = 0; trial < a.num_trials(); ++trial) {
      ASSERT_EQ(a.at(layer, trial), b.at(layer, trial)) << "layer " << layer << " trial " << trial;
    }
  }
}

// --- vec.hpp lane abstraction -------------------------------------------------

template <typename V>
void check_vec_ops() {
  constexpr std::size_t kW = V::kLanes;
  double a_data[kW], b_data[kW], out[kW];
  for (std::size_t i = 0; i < kW; ++i) {
    a_data[i] = static_cast<double>(i) + 0.5;
    b_data[i] = static_cast<double>(kW - i);
  }
  const auto a = V::load(a_data);
  const auto b = V::load(b_data);

  V::store(out, V::add(a, b));
  for (std::size_t i = 0; i < kW; ++i) EXPECT_EQ(out[i], a_data[i] + b_data[i]);
  V::store(out, V::sub(a, b));
  for (std::size_t i = 0; i < kW; ++i) EXPECT_EQ(out[i], a_data[i] - b_data[i]);
  V::store(out, V::mul(a, b));
  for (std::size_t i = 0; i < kW; ++i) EXPECT_EQ(out[i], a_data[i] * b_data[i]);
  V::store(out, V::min(a, b));
  for (std::size_t i = 0; i < kW; ++i) EXPECT_EQ(out[i], a_data[i] < b_data[i] ? a_data[i] : b_data[i]);
  V::store(out, V::max(a, b));
  for (std::size_t i = 0; i < kW; ++i) EXPECT_EQ(out[i], a_data[i] > b_data[i] ? a_data[i] : b_data[i]);
  V::store(out, V::blend(V::less(a, b), a, b));
  for (std::size_t i = 0; i < kW; ++i) EXPECT_EQ(out[i], a_data[i] < b_data[i] ? a_data[i] : b_data[i]);
  V::store(out, V::broadcast(3.25));
  for (std::size_t i = 0; i < kW; ++i) EXPECT_EQ(out[i], 3.25);

  // Guarded gather: in-universe ids load, out-of-universe (including the
  // TrialBatch pad sentinel) produce 0.0.
  double table[8] = {10, 11, 12, 13, 14, 15, 16, 17};
  std::uint32_t idx[kW];
  for (std::size_t i = 0; i < kW; ++i) {
    idx[i] = i % 2 == 0 ? static_cast<std::uint32_t>(i) : simd::TrialBatch::kPadEvent;
  }
  V::store(out, V::gather_guarded(table, idx, 8));
  for (std::size_t i = 0; i < kW; ++i) {
    EXPECT_EQ(out[i], i % 2 == 0 ? table[i] : 0.0) << "lane " << i;
  }
}

TEST(SimdVec, ScalarOps) { check_vec_ops<simd::VecD<simd::scalar_ext>>(); }
#if ARE_SIMD_HAVE_SSE2
TEST(SimdVec, Sse2Ops) { check_vec_ops<simd::VecD<simd::sse2_ext>>(); }
#endif
#if ARE_SIMD_HAVE_AVX2
TEST(SimdVec, Avx2Ops) { check_vec_ops<simd::VecD<simd::avx2_ext>>(); }
#endif
#if ARE_SIMD_HAVE_AVX512
TEST(SimdVec, Avx512Ops) { check_vec_ops<simd::VecD<simd::avx512_ext>>(); }
#endif
#if ARE_SIMD_HAVE_NEON
TEST(SimdVec, NeonOps) { check_vec_ops<simd::VecD<simd::neon_ext>>(); }
#endif

TEST(SimdVec, BestExtensionIsAvailable) {
  EXPECT_TRUE(core::simd_extension_available(core::best_simd_extension()));
  // kAuto's lane width is the runtime dispatch decision's width, not the
  // compile-time simd::kBestLanes of this TU — on a baseline build the
  // runtime choice is wider than anything this TU was compiled with.
  EXPECT_EQ(core::simd_lane_width(SimdExtension::kAuto),
            simd::lanes_of(simd::best_extension()));
  EXPECT_EQ(core::simd_lane_width(SimdExtension::kScalar), 1u);
}

TEST(SimdVec, UnavailableExtensionThrows) {
  for (SimdExtension extension :
       {SimdExtension::kSse2, SimdExtension::kAvx2, SimdExtension::kAvx512,
        SimdExtension::kNeon}) {
    if (core::simd_extension_available(extension)) continue;
    SimdOptions options;
    options.extension = extension;
    EXPECT_THROW(core::run_simd(tiny_portfolio(financial::LayerTerms{}), tiny_yet(), options),
                 std::invalid_argument);
    EXPECT_THROW(core::simd_lane_width(extension), std::invalid_argument);
  }
}

TEST(SimdVec, AutoNarrowsForMemoryBoundPortfolios) {
  const SimdExtension best = core::best_simd_extension();
  const SimdOptions auto_options;
  // A tiny cache-resident portfolio resolves to the widest extension.
  EXPECT_EQ(core::resolve_simd_extension(tiny_portfolio(financial::LayerTerms{}), auto_options),
            best);
  if (best == SimdExtension::kAvx2 || best == SimdExtension::kAvx512) {
    // One direct ELT over a 2M-event universe (16 MB dense table) exceeds
    // the wide-lane footprint threshold, so kAuto narrows to SSE2.
    Layer layer;
    layer.id = 1;
    LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess, tiny_elt(), 2'000'000);
    layer.elts.push_back(std::move(layer_elt));
    Portfolio portfolio;
    portfolio.layers.push_back(std::move(layer));
    EXPECT_EQ(core::resolve_simd_extension(portfolio, auto_options), SimdExtension::kSse2);
    // An explicit extension request is never overridden.
    SimdOptions forced;
    forced.extension = best;
    EXPECT_EQ(core::resolve_simd_extension(portfolio, forced), best);
  }
}

// --- TrialBatch transpose -----------------------------------------------------

TEST(TrialBatch, TransposesRaggedTrialsLaneMajor) {
  const auto yet_table = tiny_yet();
  simd::TrialBatch batch(4);
  batch.load(yet_table, 0, 4);
  EXPECT_EQ(batch.width(), 4u);
  EXPECT_EQ(batch.active(), 4u);
  EXPECT_EQ(batch.depth(), 3u);  // longest trial has 3 events

  // row j, lane t = event j of trial t; ragged slots padded.
  const auto pad = simd::TrialBatch::kPadEvent;
  const yet::EventId expected[3][4] = {
      {0, 2, pad, 0},
      {1, pad, pad, 0},
      {pad, pad, pad, 3},
  };
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t lane = 0; lane < 4; ++lane) {
      EXPECT_EQ(batch.row(j)[lane], expected[j][lane]) << "row " << j << " lane " << lane;
    }
  }
}

TEST(TrialBatch, PartialGroupPadsInactiveLanes) {
  const auto yet_table = tiny_yet();
  simd::TrialBatch batch(4);
  batch.load(yet_table, 3, 1);  // only trial 3 active
  EXPECT_EQ(batch.active(), 1u);
  EXPECT_EQ(batch.depth(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t lane = 1; lane < 4; ++lane) {
      EXPECT_EQ(batch.row(j)[lane], simd::TrialBatch::kPadEvent);
    }
  }
  EXPECT_EQ(batch.row(0)[0], 0u);
  EXPECT_EQ(batch.row(2)[0], 3u);
}

TEST(TrialBatch, EmptyTrialsGiveZeroDepth) {
  const auto yet_table = tiny_yet();
  simd::TrialBatch batch(8);
  batch.load(yet_table, 2, 1);  // trial 2 is empty
  EXPECT_EQ(batch.depth(), 0u);
}

// --- Hand-computed correctness ------------------------------------------------

TEST(SimdEngine, HandComputedCombinedTerms) {
  financial::LayerTerms terms;
  terms.occurrence_retention = 150.0;
  terms.occurrence_limit = 200.0;
  terms.aggregate_retention = 60.0;
  terms.aggregate_limit = 120.0;
  // Same expectations as the sequential engine's hand-computed case.
  for (SimdExtension extension : available_extensions()) {
    SimdOptions options;
    options.extension = extension;
    const auto ylt = core::run_simd(tiny_portfolio(terms), tiny_yet(), options);
    EXPECT_DOUBLE_EQ(ylt.at(0, 0), 0.0) << to_string(extension);
    EXPECT_DOUBLE_EQ(ylt.at(0, 1), 90.0) << to_string(extension);
    EXPECT_DOUBLE_EQ(ylt.at(0, 2), 0.0) << to_string(extension);
    EXPECT_DOUBLE_EQ(ylt.at(0, 3), 120.0) << to_string(extension);
  }
}

// --- Bit-identical equivalence vs run_sequential ------------------------------

TEST(SimdEngine, MatchesSequentialOnEveryLookupKind) {
  const auto yet_table = synthetic_yet(257, 40.0);  // not divisible by any lane width
  for (const elt::LookupKind kind :
       {elt::LookupKind::kDirectAccess, elt::LookupKind::kSortedVector,
        elt::LookupKind::kRobinHood, elt::LookupKind::kCuckoo, elt::LookupKind::kPagedDirect}) {
    const auto portfolio = synthetic_portfolio(2, 3, kind);
    const auto reference = core::run_sequential(portfolio, yet_table);
    for (SimdExtension extension : available_extensions()) {
      SimdOptions options;
      options.extension = extension;
      SCOPED_TRACE(std::string(to_string(kind)) + "/" + std::string(to_string(extension)));
      expect_identical(core::run_simd(portfolio, yet_table, options), reference);
    }
  }
}

TEST(SimdEngine, LaneWidthIndependentOnRaggedTrialCounts) {
  // Trial counts chosen to exercise every tail residue of widths 2, 4, 8.
  for (const std::uint64_t trials : {1u, 2u, 3u, 5u, 8u, 13u, 64u, 67u}) {
    const auto yet_table = synthetic_yet(trials, 25.0);
    const auto portfolio = synthetic_portfolio(1, 2);
    const auto reference = core::run_sequential(portfolio, yet_table);
    for (SimdExtension extension : available_extensions()) {
      SimdOptions options;
      options.extension = extension;
      SCOPED_TRACE(std::to_string(trials) + " trials / " + std::string(to_string(extension)));
      expect_identical(core::run_simd(portfolio, yet_table, options), reference);
    }
  }
}

TEST(SimdEngine, MatchesSequentialWithEmptyElt) {
  // A layer mixing an empty ELT (all lookups zero) with a populated one.
  Layer layer;
  layer.id = 1;
  layer.terms.occurrence_retention = 10e3;
  LayerElt empty_elt;
  empty_elt.lookup =
      elt::make_lookup(elt::LookupKind::kDirectAccess, elt::EventLossTable{}, kUniverse);
  layer.elts.push_back(std::move(empty_elt));
  elt::SyntheticEltConfig config;
  config.catalog_size = kUniverse;
  config.entries = 1'000;
  LayerElt real_elt;
  real_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess,
                                     elt::make_synthetic_elt(config), kUniverse);
  layer.elts.push_back(std::move(real_elt));
  Portfolio portfolio;
  portfolio.layers.push_back(std::move(layer));

  const auto yet_table = synthetic_yet(101, 30.0);
  const auto reference = core::run_sequential(portfolio, yet_table);
  for (SimdExtension extension : available_extensions()) {
    SimdOptions options;
    options.extension = extension;
    expect_identical(core::run_simd(portfolio, yet_table, options), reference);
  }
}

TEST(SimdEngine, MatchesSequentialWithUnlimitedLimitsAndFullShare) {
  // All limits unlimited and share == 1.0 — the boundary where the
  // financial pipeline degenerates to pure sums.
  Portfolio portfolio = synthetic_portfolio(1, 3, elt::LookupKind::kDirectAccess, /*share=*/1.0);
  for (auto& layer : portfolio.layers) {
    layer.terms.occurrence_limit = financial::kUnlimited;
    layer.terms.aggregate_limit = financial::kUnlimited;
    layer.terms.occurrence_retention = 0.0;
    layer.terms.aggregate_retention = 0.0;
    for (auto& layer_elt : layer.elts) {
      layer_elt.terms.occurrence_limit = financial::kUnlimited;
      layer_elt.terms.occurrence_retention = 0.0;
    }
  }
  const auto yet_table = synthetic_yet(97, 35.0);
  const auto reference = core::run_sequential(portfolio, yet_table);
  for (SimdExtension extension : available_extensions()) {
    SimdOptions options;
    options.extension = extension;
    expect_identical(core::run_simd(portfolio, yet_table, options), reference);
  }
}

TEST(SimdEngine, ThreadCompositionIsBitIdentical) {
  // simd x threads: thread-block boundaries regroup trials into different
  // batches, which must not change any trial's result.
  const auto yet_table = synthetic_yet(211, 30.0);
  const auto portfolio = synthetic_portfolio(2, 2);
  const auto reference = core::run_sequential(portfolio, yet_table);
  for (const std::size_t threads : {1u, 2u, 3u, 7u}) {
    SimdOptions options;
    options.num_threads = threads;
    SCOPED_TRACE(threads);
    expect_identical(core::run_simd(portfolio, yet_table, options), reference);
  }
}

TEST(SimdEngine, MatchesOtherEngines) {
  const auto yet_table = synthetic_yet(128, 40.0);
  const auto portfolio = synthetic_portfolio(2, 3);
  const auto simd_ylt = core::run_simd(portfolio, yet_table);
  expect_identical(simd_ylt, core::run_parallel(portfolio, yet_table));
  expect_identical(simd_ylt, core::run_chunked(portfolio, yet_table));
}

}  // namespace
