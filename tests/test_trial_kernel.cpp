// Tests for the shared trial-block kernel (core/trial_kernel.hpp) — the
// one loop nest every engine drives. The reference here is a deliberately
// naive inline transcription of the paper's basic algorithm (the seed
// repo's sequential loop), NOT any engine: the kernel must reproduce those
// bytes for every block size, lane width, window, event chunk, and sink.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "core/trial_kernel.hpp"
#include "elt/synthetic.hpp"
#include "financial/trial_accumulator.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;
using core::CoverageWindow;
using core::KernelLaunch;
using core::Portfolio;
using core::TrialBlockKernel;
using core::TrialKernelConfig;
using core::TrialKernelScratch;
using core::YearLossTable;

constexpr std::size_t kUniverse = 20'000;

Portfolio synthetic_portfolio(std::size_t num_layers, std::size_t elts_per_layer,
                              elt::LookupKind kind = elt::LookupKind::kDirectAccess) {
  Portfolio portfolio;
  for (std::size_t l = 0; l < num_layers; ++l) {
    core::Layer layer;
    layer.id = static_cast<std::uint32_t>(l + 1);
    layer.terms.occurrence_retention = 150e3;
    layer.terms.occurrence_limit = 3e6;
    layer.terms.aggregate_retention = 400e3;
    layer.terms.aggregate_limit = 30e6;
    for (std::size_t e = 0; e < elts_per_layer; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = kUniverse;
      config.entries = 1'500;
      config.elt_id = l * 100 + e;
      core::LayerElt layer_elt;
      layer_elt.lookup = elt::make_lookup(kind, elt::make_synthetic_elt(config), kUniverse);
      layer_elt.terms.occurrence_retention = 20e3;
      layer_elt.terms.share = 0.85;
      layer.elts.push_back(std::move(layer_elt));
    }
    portfolio.layers.push_back(std::move(layer));
  }
  return portfolio;
}

yet::YearEventTable skewed_yet(std::uint64_t trials, double events) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = events;
  config.count_model = yet::CountModel::kNegativeBinomial;
  config.dispersion = 2.0;
  config.seed = 47;
  return yet::generate_uniform_yet(config, kUniverse);
}

/// The seed repo's sequential loop, transcribed: per layer, per trial, per
/// event — virtual lookup, ELT terms combined in layer order, occurrence
/// terms, aggregate recurrence. The anchor every kernel configuration must
/// match byte for byte.
YearLossTable reference_ylt(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                            const CoverageWindow* window = nullptr) {
  std::vector<std::uint32_t> ids;
  for (const core::Layer& layer : portfolio.layers) ids.push_back(layer.id);
  YearLossTable ylt(std::move(ids), yet_table.num_trials());
  for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
    const core::Layer& layer = portfolio.layers[layer_index];
    auto losses = ylt.layer_losses(layer_index);
    for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
      const auto events = yet_table.trial_events(trial);
      const auto times = yet_table.trial_times(trial);
      financial::TrialAccumulator accumulator(layer.terms);
      for (std::size_t k = 0; k < events.size(); ++k) {
        if (window != nullptr && !window->covers(times[k])) continue;
        double combined = 0.0;
        for (const core::LayerElt& layer_elt : layer.elts) {
          combined += layer_elt.terms.apply(layer_elt.lookup->lookup(events[k]));
        }
        accumulator.add_occurrence(layer.terms.apply_occurrence(combined));
      }
      losses[trial] = accumulator.trial_loss();
    }
  }
  return ylt;
}

void expect_identical(const YearLossTable& a, const YearLossTable& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  ASSERT_EQ(a.num_trials(), b.num_trials());
  for (std::size_t layer = 0; layer < a.num_layers(); ++layer) {
    const auto row_a = a.layer_losses(layer);
    const auto row_b = b.layer_losses(layer);
    ASSERT_EQ(0, std::memcmp(row_a.data(), row_b.data(), row_a.size() * sizeof(double)))
        << "layer " << layer;
  }
}

YearLossTable run_kernel(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                         TrialKernelConfig config, KernelLaunch launch = {}) {
  std::vector<std::uint32_t> ids;
  for (const core::Layer& layer : portfolio.layers) ids.push_back(layer.id);
  YearLossTable ylt(std::move(ids), yet_table.num_trials());
  core::run_trial_kernel(portfolio, yet_table, config, launch, &ylt, nullptr);
  return ylt;
}

// --- Kernel vs seed reference across block sizes ------------------------------

class KernelBlockSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelBlockSizes, BitIdenticalToSeedReference) {
  const Portfolio portfolio = synthetic_portfolio(2, 3);
  const auto yet_table = skewed_yet(401, 30.0);  // prime trial count: ragged tail block
  const auto reference = reference_ylt(portfolio, yet_table);

  TrialKernelConfig config;
  config.block_trials = GetParam() == 0 ? 401 : GetParam();  // 0 stands for "all trials"
  expect_identical(reference, run_kernel(portfolio, yet_table, config));

  // The generic (virtual lookup_many) path too.
  const Portfolio generic = synthetic_portfolio(2, 2, elt::LookupKind::kRobinHood);
  expect_identical(reference_ylt(generic, yet_table), run_kernel(generic, yet_table, config));
}

INSTANTIATE_TEST_SUITE_P(Blocks, KernelBlockSizes, ::testing::Values(1, 7, 64, 0),
                         [](const auto& info) {
                           return info.param == 0 ? std::string("all")
                                                  : "b" + std::to_string(info.param);
                         });

TEST(TrialKernel, LaneWidthsAndSchedulesShareTheBytes) {
  const Portfolio portfolio = synthetic_portfolio(2, 3);
  const auto yet_table = skewed_yet(300, 25.0);
  const auto reference = reference_ylt(portfolio, yet_table);

  for (const core::SimdExtension extension :
       {core::SimdExtension::kScalar, core::SimdExtension::kAuto}) {
    for (const KernelLaunch::Schedule schedule :
         {KernelLaunch::Schedule::kSerial, KernelLaunch::Schedule::kPool,
          KernelLaunch::Schedule::kCosted, KernelLaunch::Schedule::kOpenMp}) {
      TrialKernelConfig config;
      config.extension = extension;
      config.block_trials = 37;
      KernelLaunch launch;
      launch.schedule = schedule;
      launch.num_threads = 3;
      SCOPED_TRACE(std::string(to_string(extension)) + "_schedule" +
                   std::to_string(static_cast<int>(schedule)));
      expect_identical(reference, run_kernel(portfolio, yet_table, config, launch));
    }
  }
}

TEST(TrialKernel, EventChunkingNeverChangesTheBytes) {
  const Portfolio portfolio = synthetic_portfolio(1, 3);
  const auto yet_table = skewed_yet(200, 40.0);
  const auto reference = reference_ylt(portfolio, yet_table);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{4}, std::size_t{13}}) {
    TrialKernelConfig config;
    config.event_chunk = chunk;
    SCOPED_TRACE(chunk);
    expect_identical(reference, run_kernel(portfolio, yet_table, config));
  }
}

// --- Window edges -------------------------------------------------------------

TEST(TrialKernel, WindowEdges) {
  // Hand-built YET with exact timestamps so the window edges are
  // deterministic: trial 0 = {0.1, 0.5, 0.9}, trial 1 = {0.5}, trial 2 = {}.
  const std::vector<yet::EventId> events = {10, 20, 30, 20};
  const std::vector<float> times = {0.1f, 0.5f, 0.9f, 0.5f};
  const std::vector<std::uint64_t> offsets = {0, 3, 4, 4};
  const yet::YearEventTable yet_table(events, times, offsets);
  const Portfolio portfolio = synthetic_portfolio(1, 2);

  const auto unwindowed = reference_ylt(portfolio, yet_table);

  // Full-year window ≡ unwindowed, bit for bit.
  TrialKernelConfig config;
  config.window = CoverageWindow{0.0f, 1.0f};
  expect_identical(unwindowed, run_kernel(portfolio, yet_table, config));

  // A window covering no occurrence: every trial loss collapses to the
  // empty-trial value.
  config.window = CoverageWindow{0.95f, 1.0f};
  const auto empty = run_kernel(portfolio, yet_table, config);
  const CoverageWindow none{0.95f, 1.0f};
  expect_identical(reference_ylt(portfolio, yet_table, &none), empty);
  for (std::size_t trial = 0; trial < 3; ++trial) {
    EXPECT_EQ(empty.at(0, trial), empty.at(0, 2)) << "trial " << trial;  // trial 2 is empty
  }

  // A single-event window: [0.5, 0.9) admits exactly the 0.5 occurrences
  // (`to` is exclusive, `from` inclusive).
  config.window = CoverageWindow{0.5f, 0.9f};
  const CoverageWindow single{0.5f, 0.9f};
  expect_identical(reference_ylt(portfolio, yet_table, &single),
                   run_kernel(portfolio, yet_table, config));
}

// --- Sink block alignment -----------------------------------------------------

/// Records every emit and forwards into a YearLossTable; block_trials()
/// advertises an alignment the kernel must never violate.
class RecordingSink final : public core::YltSink {
 public:
  RecordingSink(YearLossTable& ylt, std::uint64_t block_trials)
      : ylt_(ylt), block_trials_(block_trials) {}

  void emit(std::size_t layer_index, std::uint64_t trial_begin,
            std::span<const double> losses) override {
    if (block_trials_ != 0) {
      // The whole block must live inside one alignment window.
      EXPECT_EQ(trial_begin / block_trials_,
                (trial_begin + losses.size() - 1) / block_trials_)
          << "block [" << trial_begin << ", " << trial_begin + losses.size()
          << ") crosses a " << block_trials_ << "-trial boundary";
    }
    double* row = ylt_.layer_losses(layer_index).data();
    for (std::size_t i = 0; i < losses.size(); ++i) {
      EXPECT_EQ(seen_.insert(layer_index * ylt_.num_trials() + trial_begin + i).second, true)
          << "cell emitted twice";
      row[trial_begin + i] = losses[i];
    }
  }

  std::uint64_t block_trials() const noexcept override { return block_trials_; }

  std::size_t cells_seen() const noexcept { return seen_.size(); }

 private:
  YearLossTable& ylt_;
  std::uint64_t block_trials_;
  std::set<std::uint64_t> seen_;
};

TEST(TrialKernel, SinkBlocksAlignAndCoverEveryCellOnce) {
  const Portfolio portfolio = synthetic_portfolio(2, 2);
  const auto yet_table = skewed_yet(201, 20.0);
  const auto reference = reference_ylt(portfolio, yet_table);

  // Alignment 10 deliberately indivisible by block_trials 16 (and vice
  // versa), so clamping must actually cut blocks.
  for (const std::uint64_t alignment : {std::uint64_t{1}, std::uint64_t{10}, std::uint64_t{0}}) {
    std::vector<std::uint32_t> ids = {1, 2};
    YearLossTable ylt(ids, yet_table.num_trials());
    RecordingSink sink(ylt, alignment);
    TrialKernelConfig config;
    config.block_trials = 16;
    SCOPED_TRACE(alignment);
    core::run_trial_kernel(portfolio, yet_table, config, {}, nullptr, &sink);
    EXPECT_EQ(sink.cells_seen(), 2 * yet_table.num_trials());
    expect_identical(reference, ylt);
  }
}

TEST(TrialKernel, RejectsAmbiguousDestination) {
  const Portfolio portfolio = synthetic_portfolio(1, 1);
  const auto yet_table = skewed_yet(10, 5.0);
  std::vector<std::uint32_t> ids = {1};
  YearLossTable ylt(ids, yet_table.num_trials());
  RecordingSink sink(ylt, 0);
  EXPECT_THROW(core::run_trial_kernel(portfolio, yet_table, {}, {}, nullptr, nullptr),
               std::invalid_argument);
  EXPECT_THROW(core::run_trial_kernel(portfolio, yet_table, {}, {}, &ylt, &sink),
               std::invalid_argument);
}

}  // namespace
