// Tests for the pricing module: quote composition, loadings and
// rate-on-line arithmetic.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "pricing/pricing.hpp"

namespace {

using namespace are;
using financial::LayerTerms;
using pricing::price_layer;
using pricing::PricingAssumptions;
using pricing::Quote;

std::vector<double> synthetic_losses() {
  std::vector<double> losses(1000);
  for (std::size_t i = 0; i < losses.size(); ++i) {
    losses[i] = static_cast<double>(i % 100) * 1000.0;  // mean 49500
  }
  return losses;
}

TEST(Pricing, PurePremiumIsMeanLoss) {
  const auto losses = synthetic_losses();
  PricingAssumptions assumptions;
  assumptions.stddev_loading = 0.0;
  assumptions.tvar_loading = 0.0;
  assumptions.expense_ratio = 0.0;
  const Quote quote = price_layer(losses, LayerTerms{}, assumptions);
  EXPECT_DOUBLE_EQ(quote.technical_premium, quote.expected_loss);
  EXPECT_NEAR(quote.expected_loss, 49500.0, 1.0);
}

TEST(Pricing, LoadingsIncreasePremium) {
  const auto losses = synthetic_losses();
  PricingAssumptions flat;
  flat.stddev_loading = 0.0;
  flat.tvar_loading = 0.0;
  flat.expense_ratio = 0.0;
  PricingAssumptions loaded;  // defaults carry loadings
  const Quote base = price_layer(losses, LayerTerms{}, flat);
  const Quote risk = price_layer(losses, LayerTerms{}, loaded);
  EXPECT_GT(risk.technical_premium, base.technical_premium);
}

TEST(Pricing, ExpenseRatioGrossesUp) {
  const auto losses = synthetic_losses();
  PricingAssumptions assumptions;
  assumptions.stddev_loading = 0.0;
  assumptions.tvar_loading = 0.0;
  assumptions.expense_ratio = 0.2;
  const Quote quote = price_layer(losses, LayerTerms{}, assumptions);
  EXPECT_NEAR(quote.technical_premium, quote.expected_loss / 0.8, 1e-6);
}

TEST(Pricing, RateOnLineUsesOccurrenceLimit) {
  const auto losses = synthetic_losses();
  const LayerTerms terms = LayerTerms::cat_xl(10'000.0, 200'000.0);
  const Quote quote = price_layer(losses, terms);
  EXPECT_NEAR(quote.rate_on_line, quote.technical_premium / 200'000.0, 1e-12);
}

TEST(Pricing, UnlimitedLayerHasNoRateOnLine) {
  const Quote quote = price_layer(synthetic_losses(), LayerTerms{});
  EXPECT_DOUBLE_EQ(quote.rate_on_line, 0.0);
}

TEST(Pricing, TvarFeedsPremium) {
  const auto losses = synthetic_losses();
  PricingAssumptions assumptions;
  assumptions.stddev_loading = 0.0;
  assumptions.tvar_loading = 1.0;  // premium = EL + TVaR
  assumptions.expense_ratio = 0.0;
  const Quote quote = price_layer(losses, LayerTerms{}, assumptions);
  EXPECT_NEAR(quote.technical_premium, quote.expected_loss + quote.tvar, 1e-9);
  EXPECT_GT(quote.tvar, quote.expected_loss);  // tail above the mean
}

TEST(Pricing, ZeroLossBookPricesAtZero) {
  const std::vector<double> losses(100, 0.0);
  const Quote quote = price_layer(losses, LayerTerms{});
  EXPECT_DOUBLE_EQ(quote.expected_loss, 0.0);
  EXPECT_DOUBLE_EQ(quote.stddev, 0.0);
  EXPECT_DOUBLE_EQ(quote.technical_premium, 0.0);
}

TEST(Pricing, Errors) {
  EXPECT_THROW(price_layer(std::vector<double>{}, LayerTerms{}), std::invalid_argument);
  PricingAssumptions assumptions;
  assumptions.expense_ratio = 1.0;
  EXPECT_THROW(price_layer(synthetic_losses(), LayerTerms{}, assumptions), std::invalid_argument);
  assumptions.expense_ratio = -0.1;
  EXPECT_THROW(price_layer(synthetic_losses(), LayerTerms{}, assumptions), std::invalid_argument);
}

TEST(Pricing, DescribeMentionsKeyFigures) {
  const Quote quote = price_layer(synthetic_losses(), LayerTerms::cat_xl(0.0, 1e6));
  const std::string text = pricing::describe(quote);
  EXPECT_NE(text.find("EL="), std::string::npos);
  EXPECT_NE(text.find("premium="), std::string::npos);
  EXPECT_NE(text.find("ROL="), std::string::npos);
}

TEST(Pricing, MonotoneInLossScale) {
  // Scaling all losses up scales the premium up.
  auto losses = synthetic_losses();
  const Quote base = price_layer(losses, LayerTerms{});
  for (auto& loss : losses) loss *= 2.0;
  const Quote doubled = price_layer(losses, LayerTerms{});
  EXPECT_NEAR(doubled.technical_premium, 2.0 * base.technical_premium, 1e-6);
}

}  // namespace
