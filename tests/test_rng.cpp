// Unit and property tests for the rng module: generator correctness,
// stream independence, and distribution moments.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "rng/stream.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using namespace are::rng;

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 (from the public-domain reference code).
  SplitMix64 gen(0);
  EXPECT_EQ(gen(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(gen(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(gen(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, MixIsDeterministicAndSpreads) {
  EXPECT_EQ(SplitMix64::mix(1), SplitMix64::mix(1));
  EXPECT_NE(SplitMix64::mix(1), SplitMix64::mix(2));
  // Low-bit inputs must not produce low-bit-only outputs.
  EXPECT_GT(SplitMix64::mix(1) >> 32, 0u);
}

TEST(Philox, BijectionIsDeterministic) {
  const Philox4x32::counter_type ctr{1, 2, 3, 4};
  const Philox4x32::key_type key{5, 6};
  EXPECT_EQ(Philox4x32::bijection(ctr, key), Philox4x32::bijection(ctr, key));
}

TEST(Philox, DifferentCountersDiffer) {
  const Philox4x32::key_type key{5, 6};
  const auto a = Philox4x32::bijection({0, 0, 0, 0}, key);
  const auto b = Philox4x32::bijection({1, 0, 0, 0}, key);
  EXPECT_NE(a, b);
}

TEST(Philox, DifferentKeysDiffer) {
  const Philox4x32::counter_type ctr{7, 8, 9, 10};
  EXPECT_NE(Philox4x32::bijection(ctr, {1, 0}), Philox4x32::bijection(ctr, {2, 0}));
}

TEST(Philox, SeekReproducesBlock) {
  Philox4x32 a(42, 0);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());

  Philox4x32 b(42, 0);
  b.seek(2);  // skip two 128-bit blocks == 8 outputs
  for (int i = 8; i < 16; ++i) {
    EXPECT_EQ(b(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Philox, StreamOutputLooksUniform) {
  Philox4x32 gen(123, 0);
  // Mean of 100K uint32 draws should be near 2^31.
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) sum += gen();
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 2147483648.0, 2147483648.0 * 0.01);
}

TEST(Xoshiro256, DeterministicAndDistinctSeeds) {
  Xoshiro256 a(1), b(1), c(2);
  EXPECT_EQ(a(), b());
  Xoshiro256 a2(1);
  EXPECT_NE(a2(), c());
}

TEST(Xoshiro256, LongJumpChangesState) {
  Xoshiro256 a(9);
  Xoshiro256 b(9);
  b.long_jump();
  EXPECT_NE(a(), b());
}

TEST(Stream, SubstreamsAreIndependentOfGenerationOrder) {
  // The defining property for trial-parallel reproducibility.
  Stream s5(100, 1, 5);
  const auto direct = s5();

  Stream s3(100, 1, 3);
  (void)s3();
  (void)s3();
  Stream s5_again(100, 1, 5);
  EXPECT_EQ(s5_again(), direct);
}

TEST(Stream, DistinctStreamsDiffer) {
  Stream a(1, 1, 0), b(1, 2, 0), c(2, 1, 0);
  EXPECT_NE(a(), b());
  Stream a2(1, 1, 0);
  EXPECT_NE(a2(), c());
}

TEST(Stream, Uniform01InRange) {
  Stream stream(7, 0, 0);
  for (int i = 0; i < 10'000; ++i) {
    const double u = stream.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Stream, Uniform01OpenLeftNeverZero) {
  Stream stream(7, 0, 1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GT(stream.uniform01_open_left(), 0.0);
  }
}

TEST(Stream, UniformBelowRespectsBound) {
  Stream stream(7, 0, 2);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(stream.uniform_below(bound), bound);
    }
  }
}

TEST(Stream, UniformBelowCoversAllResidues) {
  Stream stream(11, 0, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(stream.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

// --- Distribution moment checks -------------------------------------------

class MomentTest : public ::testing::Test {
 protected:
  Stream stream_{20120901, 9, 0};
  static constexpr int kSamples = 200'000;
};

TEST_F(MomentTest, ExponentialMean) {
  const double rate = 2.5;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += sample_exponential(stream_, rate);
  EXPECT_NEAR(sum / kSamples, 1.0 / rate, 0.01);
}

TEST_F(MomentTest, PoissonSmallMeanMatches) {
  const double mean = 3.0;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = static_cast<double>(sample_poisson(stream_, mean));
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / kSamples;
  EXPECT_NEAR(m, mean, 0.05);
  EXPECT_NEAR(sum_sq / kSamples - m * m, mean, 0.1);  // Var == mean
}

TEST_F(MomentTest, PoissonLargeMeanMatches) {
  const double mean = 1000.0;
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kBig = 50'000;
  for (int i = 0; i < kBig; ++i) {
    const double x = static_cast<double>(sample_poisson(stream_, mean));
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / kBig;
  EXPECT_NEAR(m, mean, 1.0);
  EXPECT_NEAR(sum_sq / kBig - m * m, mean, 30.0);
}

TEST_F(MomentTest, PoissonZeroMeanIsZero) {
  EXPECT_EQ(sample_poisson(stream_, 0.0), 0u);
}

TEST_F(MomentTest, NormalMoments) {
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = sample_normal(stream_, 10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / kSamples;
  EXPECT_NEAR(m, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / kSamples - m * m), 3.0, 0.05);
}

TEST_F(MomentTest, GammaMoments) {
  const double shape = 2.0, scale = 3.0;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = sample_gamma(stream_, shape, scale);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / kSamples;
  EXPECT_NEAR(m, shape * scale, 0.1);
  EXPECT_NEAR(sum_sq / kSamples - m * m, shape * scale * scale, 0.5);
}

TEST_F(MomentTest, GammaShapeBelowOne) {
  const double shape = 0.5, scale = 1.0;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = sample_gamma(stream_, shape, scale);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, shape * scale, 0.02);
}

TEST_F(MomentTest, BetaMeanAndRange) {
  const double a = 2.0, b = 5.0;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = sample_beta(stream_, a, b);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, a / (a + b), 0.01);
}

TEST_F(MomentTest, LognormalMedian) {
  const double mu = 1.5, sigma = 0.8;
  std::vector<double> sample(kSamples);
  for (auto& x : sample) x = sample_lognormal(stream_, mu, sigma);
  std::nth_element(sample.begin(), sample.begin() + kSamples / 2, sample.end());
  EXPECT_NEAR(sample[kSamples / 2], std::exp(mu), std::exp(mu) * 0.05);
}

TEST_F(MomentTest, ParetoLomaxMean) {
  // Lomax mean = scale / (alpha - 1) for alpha > 1.
  const double alpha = 3.0, scale = 2.0;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += sample_pareto_lomax(stream_, alpha, scale);
  EXPECT_NEAR(sum / kSamples, scale / (alpha - 1.0), 0.05);
}

TEST_F(MomentTest, NegativeBinomialMeanVariance) {
  // NB(r, p): mean = r(1-p)/p, var = mean / p.
  const double r = 5.0, p = 0.4;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = static_cast<double>(sample_negative_binomial(stream_, r, p));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = r * (1.0 - p) / p;
  const double m = sum / kSamples;
  EXPECT_NEAR(m, mean, 0.1);
  EXPECT_NEAR(sum_sq / kSamples - m * m, mean / p, 0.7);
}

TEST_F(MomentTest, TruncatedLognormalStaysInWindow) {
  for (int i = 0; i < 1000; ++i) {
    const double x = sample_lognormal_truncated(stream_, 0.0, 1.0, 0.5, 2.0);
    EXPECT_GE(x, 0.5);
    EXPECT_LE(x, 2.0);
  }
}

// --- Invalid-argument contracts --------------------------------------------

TEST(DistributionErrors, RejectBadParameters) {
  Stream stream(1, 0, 0);
  EXPECT_THROW(sample_exponential(stream, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_exponential(stream, -1.0), std::invalid_argument);
  EXPECT_THROW(sample_poisson(stream, -1.0), std::invalid_argument);
  EXPECT_THROW(sample_gamma(stream, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(sample_gamma(stream, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_pareto_lomax(stream, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(sample_negative_binomial(stream, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(sample_negative_binomial(stream, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_negative_binomial(stream, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(sample_lognormal_truncated(stream, 0.0, 1.0, 2.0, 1.0), std::invalid_argument);
}

// --- Alias table ------------------------------------------------------------

TEST(AliasTable, RejectsBadWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}), std::invalid_argument);
}

TEST(AliasTable, SingleEntryAlwaysSampled) {
  const AliasTable table(std::vector<double>{3.0});
  Stream stream(5, 0, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(stream), 0u);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const AliasTable table(std::vector<double>{1.0, 0.0, 1.0});
  Stream stream(5, 0, 1);
  for (int i = 0; i < 10'000; ++i) EXPECT_NE(table.sample(stream), 1u);
}

TEST(AliasTable, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  const AliasTable table(weights);
  Stream stream(5, 0, 2);
  std::array<int, 4> counts{};
  constexpr int kDraws = 400'000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.sample(stream)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws, expected, 0.005) << "index " << i;
    EXPECT_NEAR(table.probability_of(i), expected, 1e-12);
  }
}

TEST(AliasTable, LargeSkewedTable) {
  std::vector<double> weights(10'000, 1e-6);
  weights[1234] = 10.0;  // one dominant event
  const AliasTable table(weights);
  Stream stream(5, 0, 3);
  int hits = 0;
  constexpr int kDraws = 10'000;
  for (int i = 0; i < kDraws; ++i) {
    if (table.sample(stream) == 1234u) ++hits;
  }
  EXPECT_GT(hits, kDraws / 2);
}

}  // namespace
