// Tests for the runtime SIMD dispatch layer (simd/dispatch.hpp): cpuid
// decoding against synthetic register values, the detected ∩ compiled
// selection rule with and without overrides, the ARE_SIMD_EXT environment
// hook, and — the load-bearing contract — bit-identical engine output and
// equal probe-read counts under every runtime extension this host can pin.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/engine.hpp"
#include "core/engine_registry.hpp"
#include "elt/cuckoo_table.hpp"
#include "elt/probe_dispatch.hpp"
#include "elt/robin_hood_table.hpp"
#include "elt/synthetic.hpp"
#include "io/csv.hpp"
#include "simd/dispatch.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;
using simd::Extension;
using simd::ExtensionMask;
using simd::mask_of;

// Intel SDM bit positions used by extensions_from_cpuid.
constexpr std::uint32_t kLeaf1EdxSse2 = 1u << 26;
constexpr std::uint32_t kLeaf1EcxOsxsave = 1u << 27;
constexpr std::uint32_t kLeaf1EcxAvx = 1u << 28;
constexpr std::uint32_t kLeaf7EbxAvx2 = 1u << 5;
constexpr std::uint32_t kLeaf7EbxAvx512f = 1u << 16;
constexpr std::uint64_t kXcr0Ymm = 0x6;        // XMM+YMM state saved
constexpr std::uint64_t kXcr0Zmm = 0x6 | 0xe0; // + opmask/ZMM state

/// RAII guard: set (or clear) ARE_SIMD_EXT and refresh the dispatch cache,
/// restoring both on destruction so test order never matters.
class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    const char* prior = std::getenv("ARE_SIMD_EXT");
    if (prior != nullptr) saved_ = prior;
    had_prior_ = prior != nullptr;
    if (value != nullptr) {
      ::setenv("ARE_SIMD_EXT", value, 1);
    } else {
      ::unsetenv("ARE_SIMD_EXT");
    }
    simd::dispatch_refresh_for_testing();
    elt::probe::force_extension(std::nullopt);  // re-resolve from the new best
  }
  ~ScopedSimdEnv() {
    if (had_prior_) {
      ::setenv("ARE_SIMD_EXT", saved_.c_str(), 1);
    } else {
      ::unsetenv("ARE_SIMD_EXT");
    }
    simd::dispatch_refresh_for_testing();
    elt::probe::force_extension(std::nullopt);
  }

 private:
  std::string saved_;
  bool had_prior_ = false;
};

// --- cpuid decoding (pure, synthetic registers) -------------------------------

TEST(SimdDispatchCpuid, Sse2OnlyMachine) {
  const ExtensionMask mask = simd::extensions_from_cpuid(0, kLeaf1EdxSse2, 0, 0);
  EXPECT_TRUE(simd::mask_has(mask, Extension::kScalar));
  EXPECT_TRUE(simd::mask_has(mask, Extension::kSse2));
  EXPECT_FALSE(simd::mask_has(mask, Extension::kAvx2));
  EXPECT_FALSE(simd::mask_has(mask, Extension::kAvx512));
}

TEST(SimdDispatchCpuid, Avx2NeedsOsxsaveAndYmmState) {
  // AVX2 CPU bit present but the OS does not save YMM state: no xgetbv
  // consent, so AVX2 must NOT be offered (executing it would fault or
  // corrupt registers across context switches).
  EXPECT_FALSE(simd::mask_has(
      simd::extensions_from_cpuid(kLeaf1EcxAvx, kLeaf1EdxSse2, kLeaf7EbxAvx2, 0),
      Extension::kAvx2));
  // OSXSAVE set but XCR0 lacks the YMM bits — same answer.
  EXPECT_FALSE(simd::mask_has(
      simd::extensions_from_cpuid(kLeaf1EcxOsxsave | kLeaf1EcxAvx, kLeaf1EdxSse2,
                                  kLeaf7EbxAvx2, 0x1),
      Extension::kAvx2));
  // The full chain: OSXSAVE + AVX + leaf7 AVX2 + YMM state saved.
  EXPECT_TRUE(simd::mask_has(
      simd::extensions_from_cpuid(kLeaf1EcxOsxsave | kLeaf1EcxAvx, kLeaf1EdxSse2,
                                  kLeaf7EbxAvx2, kXcr0Ymm),
      Extension::kAvx2));
}

TEST(SimdDispatchCpuid, Avx512NeedsZmmState) {
  const std::uint32_t ecx = kLeaf1EcxOsxsave | kLeaf1EcxAvx;
  const std::uint32_t ebx = kLeaf7EbxAvx2 | kLeaf7EbxAvx512f;
  // YMM-only XCR0 (a VM masking ZMM state): AVX2 yes, AVX-512 no.
  const ExtensionMask ymm_only = simd::extensions_from_cpuid(ecx, kLeaf1EdxSse2, ebx, kXcr0Ymm);
  EXPECT_TRUE(simd::mask_has(ymm_only, Extension::kAvx2));
  EXPECT_FALSE(simd::mask_has(ymm_only, Extension::kAvx512));
  const ExtensionMask zmm = simd::extensions_from_cpuid(ecx, kLeaf1EdxSse2, ebx, kXcr0Zmm);
  EXPECT_TRUE(simd::mask_has(zmm, Extension::kAvx512));
}

TEST(SimdDispatchCpuid, ScalarAlwaysPresent) {
  EXPECT_TRUE(simd::mask_has(simd::extensions_from_cpuid(0, 0, 0, 0), Extension::kScalar));
}

// --- choose_best: detected ∩ compiled, override, reasons ----------------------

TEST(SimdDispatchChoose, WidestOfIntersection) {
  const ExtensionMask detected =
      mask_of(Extension::kScalar) | mask_of(Extension::kSse2) | mask_of(Extension::kAvx2);
  const ExtensionMask compiled = mask_of(Extension::kScalar) | mask_of(Extension::kSse2) |
                                 mask_of(Extension::kAvx2) | mask_of(Extension::kAvx512);
  std::string why;
  // avx512 is compiled in but the host lacks it: the cap is cpuid's.
  EXPECT_EQ(simd::choose_best(detected, compiled, std::nullopt, &why), Extension::kAvx2);
  EXPECT_NE(why.find("cpuid"), std::string::npos) << why;
}

TEST(SimdDispatchChoose, CompiledInCap) {
  // Host detects avx512 but the binary only carries sse2 kernels — the
  // baseline-fleet-binary-on-a-big-host case. The cap is the build's.
  const ExtensionMask detected = mask_of(Extension::kScalar) | mask_of(Extension::kSse2) |
                                 mask_of(Extension::kAvx2) | mask_of(Extension::kAvx512);
  const ExtensionMask compiled = mask_of(Extension::kScalar) | mask_of(Extension::kSse2);
  std::string why;
  EXPECT_EQ(simd::choose_best(detected, compiled, std::nullopt, &why), Extension::kSse2);
  EXPECT_NE(why.find("not compiled"), std::string::npos) << why;
}

TEST(SimdDispatchChoose, RunnableOverrideWins) {
  const ExtensionMask both = mask_of(Extension::kScalar) | mask_of(Extension::kSse2) |
                             mask_of(Extension::kAvx2);
  std::string why;
  EXPECT_EQ(simd::choose_best(both, both, Extension::kSse2, &why), Extension::kSse2);
  EXPECT_NE(why.find("override"), std::string::npos) << why;
}

TEST(SimdDispatchChoose, ScalarOnlyIntersection) {
  std::string why;
  EXPECT_EQ(simd::choose_best(mask_of(Extension::kScalar), mask_of(Extension::kScalar),
                              std::nullopt, &why),
            Extension::kScalar);
}

// --- Host/process state -------------------------------------------------------

TEST(SimdDispatchHost, RunnableIsIntersection) {
  EXPECT_EQ(simd::runnable_extensions(),
            simd::detected_extensions() & simd::compiled_extensions());
  EXPECT_TRUE(simd::mask_has(simd::runnable_extensions(), Extension::kScalar));
  EXPECT_TRUE(simd::mask_has(simd::runnable_extensions(), simd::best_extension()));
}

TEST(SimdDispatchHost, NamesRoundTrip) {
  for (int i = 0; i < static_cast<int>(simd::kNumExtensions); ++i) {
    const auto extension = static_cast<Extension>(i);
    const auto parsed = simd::extension_from_name(simd::name_of(extension));
    ASSERT_TRUE(parsed.has_value()) << simd::name_of(extension);
    EXPECT_EQ(*parsed, extension);
  }
  EXPECT_FALSE(simd::extension_from_name("avx9000").has_value());
}

TEST(SimdDispatchHost, EnvOverridePinsBest) {
  // Pin every runnable non-scalar extension in turn; best must follow.
  for (int i = 0; i < static_cast<int>(simd::kNumExtensions); ++i) {
    const auto extension = static_cast<Extension>(i);
    if (!simd::mask_has(simd::runnable_extensions(), extension)) continue;
    ScopedSimdEnv env(std::string(simd::name_of(extension)).c_str());
    EXPECT_EQ(simd::best_extension(), extension) << simd::name_of(extension);
    EXPECT_NE(simd::best_extension_reason().find("override"), std::string::npos);
  }
}

TEST(SimdDispatchHost, UnknownOverrideDegradesToAuto) {
  const Extension unpinned = [] {
    ScopedSimdEnv clear(nullptr);
    return simd::best_extension();
  }();
  // A typo'd override must not kill runs — it degrades to auto selection.
  ScopedSimdEnv env("avx9000");
  EXPECT_FALSE(simd::env_override().has_value());
  EXPECT_EQ(simd::best_extension(), unpinned);
}

// --- Bit-identity across runtime extensions -----------------------------------

constexpr std::size_t kUniverse = 20'000;

core::Portfolio probe_portfolio(elt::LookupKind kind) {
  core::Portfolio portfolio;
  core::Layer layer;
  layer.id = 1;
  layer.terms.occurrence_retention = 200e3;
  layer.terms.occurrence_limit = 2e6;
  elt::SyntheticEltConfig config;
  config.catalog_size = kUniverse;
  config.entries = 2'000;
  core::LayerElt layer_elt;
  layer_elt.lookup = elt::make_lookup(kind, elt::make_synthetic_elt(config), kUniverse);
  layer.elts.push_back(std::move(layer_elt));
  portfolio.layers.push_back(std::move(layer));
  return portfolio;
}

yet::YearEventTable probe_yet(std::uint64_t trials) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = 30.0;
  config.count_model = yet::CountModel::kPoisson;
  config.seed = 2012;
  return yet::generate_uniform_yet(config, kUniverse);
}

std::string ylt_csv(const core::YearLossTable& ylt) {
  std::ostringstream out;
  io::write_ylt_csv(out, ylt);
  return out.str();
}

TEST(SimdDispatchIdentity, EveryRuntimeOverrideIsByteIdentical) {
  const auto yet_table = probe_yet(257);
  for (const elt::LookupKind kind :
       {elt::LookupKind::kDirectAccess, elt::LookupKind::kRobinHood, elt::LookupKind::kCuckoo}) {
    const auto portfolio = probe_portfolio(kind);
    const std::string reference = [&] {
      ScopedSimdEnv clear(nullptr);
      return ylt_csv(core::run({portfolio, yet_table,
                                {.engine = core::EngineKind::kSequential, .num_threads = 1}}));
    }();
    for (int i = 0; i < static_cast<int>(simd::kNumExtensions); ++i) {
      const auto extension = static_cast<Extension>(i);
      // Scoped env check needs a refresh-free read first: runnable set is
      // override-independent, so query before pinning.
      const bool runnable = [&] {
        ScopedSimdEnv clear(nullptr);
        return simd::mask_has(simd::runnable_extensions(), extension);
      }();
      if (!runnable) continue;
      ScopedSimdEnv env(std::string(simd::name_of(extension)).c_str());
      for (const char* engine : {"simd", "fused"}) {
        SCOPED_TRACE(std::string(engine) + " under ARE_SIMD_EXT=" + std::string(simd::name_of(extension)));
        core::AnalysisConfig config;
        config.engine_name = engine;
        config.engine = core::EngineRegistry::global().require(engine).kind;
        config.num_threads = 2;
        const std::string csv =
            ylt_csv(core::run({portfolio, yet_table, std::move(config)}));
        EXPECT_EQ(csv, reference);  // byte-compare, not tolerance
      }
    }
  }
}

// --- Gathered probe kernels: result + read-count parity with scalar -----------

elt::EventLossTable probe_elt(std::size_t entries) {
  elt::SyntheticEltConfig config;
  config.catalog_size = kUniverse;
  config.entries = entries;
  return elt::make_synthetic_elt(config);
}

/// Mixed hit/miss probe batch: every other key is absent from the table.
std::vector<elt::EventId> probe_keys(std::size_t count) {
  std::vector<elt::EventId> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back(static_cast<elt::EventId>((i * 37) % kUniverse));
  }
  return keys;
}

TEST(SimdDispatchProbe, RobinHoodGatheredMatchesScalar) {
  const elt::RobinHoodTable table(probe_elt(3'000), kUniverse);
  // Ragged counts exercise the vector groups and the scalar tail.
  for (const std::size_t count : {1u, 3u, 7u, 8u, 64u, 257u}) {
    const auto keys = probe_keys(count);
    std::vector<double> scalar_out(count), simd_out(count);
    elt::probe::force_extension(Extension::kScalar);
    table.lookup_many(keys.data(), count, scalar_out.data());
    for (int i = 0; i < static_cast<int>(simd::kNumExtensions); ++i) {
      const auto extension = static_cast<Extension>(i);
      if (!simd::mask_has(simd::runnable_extensions(), extension)) continue;
      elt::probe::force_extension(extension);
      table.lookup_many(keys.data(), count, simd_out.data());
      SCOPED_TRACE(std::string(simd::name_of(extension)) + " count " + std::to_string(count));
      for (std::size_t k = 0; k < count; ++k) {
        ASSERT_EQ(simd_out[k], scalar_out[k]) << "key index " << k;
      }
    }
    elt::probe::force_extension(std::nullopt);
  }
}

TEST(SimdDispatchProbe, CuckooGatheredMatchesScalar) {
  const elt::CuckooTable table(probe_elt(3'000), kUniverse);
  for (const std::size_t count : {1u, 3u, 7u, 8u, 64u, 257u}) {
    const auto keys = probe_keys(count);
    std::vector<double> scalar_out(count), simd_out(count);
    elt::probe::force_extension(Extension::kScalar);
    table.lookup_many(keys.data(), count, scalar_out.data());
    for (int i = 0; i < static_cast<int>(simd::kNumExtensions); ++i) {
      const auto extension = static_cast<Extension>(i);
      if (!simd::mask_has(simd::runnable_extensions(), extension)) continue;
      elt::probe::force_extension(extension);
      table.lookup_many(keys.data(), count, simd_out.data());
      SCOPED_TRACE(std::string(simd::name_of(extension)) + " count " + std::to_string(count));
      for (std::size_t k = 0; k < count; ++k) {
        ASSERT_EQ(simd_out[k], scalar_out[k]) << "key index " << k;
      }
    }
    elt::probe::force_extension(std::nullopt);
  }
}

TEST(SimdDispatchProbe, GatheredKernelsCountReadsLikeScalar) {
  // The probe counters are part of the paper-facing access accounting, so
  // the gathered kernels must report the same read counts the scalar probe
  // chains perform — popcount of active lanes per round, not lanes x rounds.
  const elt::RobinHoodTable robin(probe_elt(3'000), kUniverse);
  const elt::CuckooTable cuckoo(probe_elt(3'000), kUniverse);
  const auto keys = probe_keys(511);
  std::vector<double> out(keys.size());

  for (int i = 0; i < static_cast<int>(simd::kNumExtensions); ++i) {
    const auto extension = static_cast<Extension>(i);
    if (extension == Extension::kScalar) continue;
    if (!simd::mask_has(simd::runnable_extensions(), extension)) continue;
    const elt::probe::ProbeKernels* kernels = nullptr;
    elt::probe::force_extension(extension);
    kernels = &elt::probe::active();
    if (kernels->robin_hood == nullptr) {
      elt::probe::force_extension(std::nullopt);
      continue;  // sse2/neon keep the scalar path; nothing to compare
    }

    // Scalar reference counts, recomputed via the public probe chain.
    std::uint64_t scalar_robin_reads = 0;
    for (const elt::EventId key : keys) {
      std::size_t index = elt::RobinHoodTable::hash(key) & robin.slot_mask();
      std::uint32_t distance = 0;
      for (;;) {
        ++scalar_robin_reads;
        const auto& slot = robin.slot_data()[index];
        if (!slot.occupied) break;
        if (slot.event == key) break;
        if (distance > slot.distance) break;
        index = (index + 1) & robin.slot_mask();
        ++distance;
      }
    }
    const std::uint64_t robin_reads =
        kernels->robin_hood(robin, keys.data(), keys.size(), out.data());
    EXPECT_EQ(robin_reads, scalar_robin_reads) << simd::name_of(extension);

    std::uint64_t scalar_cuckoo_reads = 0;
    for (const elt::EventId key : keys) {
      const auto& first = cuckoo.bucket_data(0)[cuckoo.hash0(key) & cuckoo.slot_mask()];
      ++scalar_cuckoo_reads;
      if (first.occupied && first.event == key) continue;
      ++scalar_cuckoo_reads;
    }
    const std::uint64_t cuckoo_reads =
        kernels->cuckoo(cuckoo, keys.data(), keys.size(), out.data());
    EXPECT_EQ(cuckoo_reads, scalar_cuckoo_reads) << simd::name_of(extension);
    elt::probe::force_extension(std::nullopt);
  }
}

}  // namespace
