// Tests for the unified engine API: EngineRegistry lookup by kind and by
// name, AnalysisConfig validation, capability enforcement in core::run,
// instrumentation facts, custom-engine registration, and the cross-engine
// equivalence sweep asserting every registered bit-identical engine matches
// run_sequential through the one front door.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/analysis.hpp"
#include "core/engine_registry.hpp"
#include "core/openmp_engine.hpp"
#include "elt/synthetic.hpp"
#include "parallel/thread_pool.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;
using core::AnalysisConfig;
using core::AnalysisRequest;
using core::EngineDescriptor;
using core::EngineKind;
using core::EngineRegistry;

constexpr std::size_t kUniverse = 10'000;

core::Portfolio test_portfolio(std::size_t elts = 3,
                               elt::LookupKind kind = elt::LookupKind::kDirectAccess) {
  core::Portfolio portfolio;
  core::Layer layer;
  layer.id = 1;
  layer.terms.occurrence_retention = 100e3;
  layer.terms.occurrence_limit = 5e6;
  layer.terms.aggregate_retention = 200e3;
  layer.terms.aggregate_limit = 50e6;
  for (std::uint64_t e = 0; e < elts; ++e) {
    elt::SyntheticEltConfig config;
    config.catalog_size = kUniverse;
    config.entries = 1'500;
    config.elt_id = e;
    core::LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(kind, elt::make_synthetic_elt(config), kUniverse);
    layer_elt.terms.share = 0.8;
    layer.elts.push_back(std::move(layer_elt));
  }
  portfolio.layers.push_back(std::move(layer));
  return portfolio;
}

yet::YearEventTable test_yet(std::uint64_t trials = 300, double events = 40.0) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = events;
  config.count_model = yet::CountModel::kPoisson;
  config.seed = 17;
  return yet::generate_uniform_yet(config, kUniverse);
}

void expect_identical(const core::YearLossTable& a, const core::YearLossTable& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  ASSERT_EQ(a.num_trials(), b.num_trials());
  for (std::size_t layer = 0; layer < a.num_layers(); ++layer) {
    for (std::size_t trial = 0; trial < a.num_trials(); ++trial) {
      ASSERT_EQ(a.at(layer, trial), b.at(layer, trial)) << "layer " << layer << " trial "
                                                        << trial;
    }
  }
}

// --- Registry lookup ----------------------------------------------------------

TEST(EngineRegistry, LooksUpEveryBuiltinByKindAndByName) {
  const auto& registry = EngineRegistry::global();
  for (const EngineKind kind :
       {EngineKind::kSequential, EngineKind::kParallel, EngineKind::kChunked,
        EngineKind::kOpenMp, EngineKind::kSimd, EngineKind::kWindowed,
        EngineKind::kInstrumented, EngineKind::kFused}) {
    const EngineDescriptor* by_kind = registry.find(kind);
    ASSERT_NE(by_kind, nullptr) << core::to_string(kind);
    EXPECT_EQ(by_kind->kind, kind);
    // The canonical name round-trips through name lookup and to_string.
    EXPECT_EQ(by_kind->name, core::to_string(kind));
    const EngineDescriptor* by_name = registry.find(by_kind->name);
    ASSERT_NE(by_name, nullptr);
    EXPECT_EQ(by_name, by_kind);
  }
  // >= : a later test registers a custom engine into global().
  EXPECT_GE(registry.descriptors().size(), 8u);
}

TEST(EngineRegistry, UnknownNameListsKnownEngines) {
  const auto& registry = EngineRegistry::global();
  EXPECT_EQ(registry.find("warp-drive"), nullptr);
  try {
    registry.require("warp-drive");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("warp-drive"), std::string::npos);
    EXPECT_NE(message.find("seq"), std::string::npos) << message;
    EXPECT_NE(message.find("simd"), std::string::npos) << message;
  }
}

TEST(EngineRegistry, DescriptorCapabilitiesMatchTheEngines) {
  const auto& registry = EngineRegistry::global();
  EXPECT_FALSE(registry.require("windowed").bit_identical_to_sequential);
  EXPECT_TRUE(registry.require("parallel").supports_pool_reuse);
  EXPECT_TRUE(registry.require("simd").supports_pool_reuse);
  // Every builtin drives the shared trial kernel, so the cross-cutting
  // capabilities are uniform: windowing, the Fig-6b breakdown, and sharded
  // output hold for every registered engine kind.
  for (const EngineKind kind :
       {EngineKind::kSequential, EngineKind::kParallel, EngineKind::kChunked,
        EngineKind::kOpenMp, EngineKind::kSimd, EngineKind::kWindowed,
        EngineKind::kInstrumented, EngineKind::kFused}) {
    const EngineDescriptor& descriptor = EngineRegistry::global().require(kind);
    EXPECT_TRUE(descriptor.supports_windowing) << descriptor.name;
    EXPECT_TRUE(descriptor.supports_instrumentation) << descriptor.name;
    EXPECT_TRUE(descriptor.supports_sharded_output()) << descriptor.name;
  }
  // Every builtin is runnable in every build (openmp/simd degrade, with the
  // story in the availability note).
  for (const auto& descriptor : registry.descriptors()) {
    EXPECT_TRUE(descriptor.available_in_this_build) << descriptor.name;
  }
  EXPECT_FALSE(registry.require("simd").availability_note.empty());
}

TEST(EngineRegistry, RegistersAndReplacesCustomEngines) {
  EngineRegistry registry;  // isolated from global()
  EngineDescriptor custom;
  custom.kind = EngineKind::kSequential;
  custom.name = "custom";
  custom.summary = "test double";
  custom.run = [](const AnalysisRequest& request) {
    return core::run_sequential(request.portfolio, request.yet_table);
  };
  registry.register_engine(custom);
  ASSERT_NE(registry.find("custom"), nullptr);
  EXPECT_EQ(registry.known_names(), "custom");

  custom.summary = "replaced";
  registry.register_engine(custom);  // same name: replace, not append
  EXPECT_EQ(registry.descriptors().size(), 1u);
  EXPECT_EQ(registry.find("custom")->summary, "replaced");

  EngineDescriptor bad;
  bad.run = custom.run;
  EXPECT_THROW(registry.register_engine(bad), std::invalid_argument);  // empty name
  bad.name = "no-run";
  bad.run = nullptr;
  EXPECT_THROW(registry.register_engine(bad), std::invalid_argument);
}

// --- AnalysisConfig validation and capability enforcement ---------------------

TEST(AnalysisConfig, ValidateRejectsBadWindowAndZeroChunks) {
  AnalysisConfig config;
  EXPECT_NO_THROW(config.validate());

  config.window = core::CoverageWindow{0.7f, 0.3f};  // from >= to
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.window = core::CoverageWindow{-0.1f, 0.5f};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.window.reset();

  config.partition_chunk = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.partition_chunk = 256;

  config.chunk_size = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(UnifiedRun, RejectsWindowOnEngineWithoutWindowSupport) {
  // Every kernel-backed builtin applies windows; the capability gate still
  // protects custom engines that do not.
  EngineDescriptor custom;
  custom.kind = EngineKind::kSequential;
  custom.name = "no-window";
  custom.summary = "test double without window support";
  custom.supports_windowing = false;
  custom.run = [](const AnalysisRequest& request) {
    return core::run_sequential(request.portfolio, request.yet_table);
  };
  EngineRegistry::global().register_engine(custom);

  const auto portfolio = test_portfolio(1);
  const auto yet_table = test_yet(20, 10.0);
  AnalysisConfig config;
  config.engine_name = "no-window";
  config.window = core::CoverageWindow{0.0f, 0.5f};
  EXPECT_THROW(core::run({portfolio, yet_table, config}), std::invalid_argument);
}

TEST(UnifiedRun, EveryEngineAppliesTheSameWindowSemantics) {
  // The window is a kernel feature now: any engine with a real mid-year
  // window must produce exactly run_windowed's YLT for that window.
  const auto portfolio = test_portfolio(2);
  const auto yet_table = test_yet(300, 40.0);
  const core::CoverageWindow window{0.25f, 0.75f};
  const auto reference = core::run_windowed(portfolio, yet_table, window);
  const auto full_year = core::run_sequential(portfolio, yet_table);

  for (const EngineKind kind :
       {EngineKind::kSequential, EngineKind::kParallel, EngineKind::kChunked,
        EngineKind::kOpenMp, EngineKind::kSimd, EngineKind::kWindowed,
        EngineKind::kInstrumented, EngineKind::kFused}) {
    AnalysisConfig config;
    config.engine = kind;
    config.num_threads = 3;
    config.window = window;
    SCOPED_TRACE(core::to_string(kind));
    const auto windowed = core::run({portfolio, yet_table, config});
    expect_identical(reference, windowed);
    // The window genuinely bites on this workload.
    EXPECT_NE(0, std::memcmp(windowed.layer_losses(0).data(), full_year.layer_losses(0).data(),
                             windowed.num_trials() * sizeof(double)));
  }
}

TEST(UnifiedRun, RejectsBorrowedPoolOnEngineWithoutPoolSupport) {
  const auto portfolio = test_portfolio(1);
  const auto yet_table = test_yet(20, 10.0);
  parallel::ThreadPool pool(2);
  AnalysisConfig config;
  config.engine = EngineKind::kChunked;
  config.pool = &pool;
  EXPECT_THROW(core::run({portfolio, yet_table, config}), std::invalid_argument);
}

TEST(UnifiedRun, RejectsSimdExtensionNotCompiledIntoThisBuild) {
  const auto portfolio = test_portfolio(1);
  const auto yet_table = test_yet(20, 10.0);
  bool found_unavailable = false;
  for (const auto extension :
       {core::SimdExtension::kSse2, core::SimdExtension::kAvx2, core::SimdExtension::kAvx512,
        core::SimdExtension::kNeon}) {
    if (core::simd_extension_available(extension)) continue;
    found_unavailable = true;
    AnalysisConfig config;
    config.engine = EngineKind::kSimd;
    config.simd_extension = extension;
    EXPECT_THROW(core::run({portfolio, yet_table, config}), std::invalid_argument)
        << core::to_string(extension);
  }
  // x86 builds never compile NEON (and vice versa), so at least one
  // extension is always unavailable.
  EXPECT_TRUE(found_unavailable);
}

// --- Cross-engine equivalence through the front door --------------------------

TEST(UnifiedRun, EveryBitIdenticalEngineMatchesSequential) {
  const auto portfolio = test_portfolio(3);
  const auto yet_table = test_yet(400, 60.0);
  const auto reference = core::run_sequential(portfolio, yet_table);

  std::size_t swept = 0;
  for (const auto& engine : EngineRegistry::global().descriptors()) {
    if (!engine.bit_identical_to_sequential || !engine.available_in_this_build) continue;
    AnalysisConfig config;
    config.engine_name = engine.name;
    config.num_threads = 3;
    SCOPED_TRACE(engine.name);
    expect_identical(reference, core::run({portfolio, yet_table, config}));
    ++swept;
  }
  EXPECT_GE(swept, 7u);  // seq, parallel, chunked, openmp, simd, instrumented, fused
}

TEST(UnifiedRun, GenericLookupPathAlsoBitIdentical) {
  const auto portfolio = test_portfolio(3, elt::LookupKind::kRobinHood);
  const auto yet_table = test_yet(200, 40.0);
  const auto reference = core::run_sequential(portfolio, yet_table);
  for (const auto& engine : EngineRegistry::global().descriptors()) {
    if (!engine.bit_identical_to_sequential || !engine.available_in_this_build) continue;
    AnalysisConfig config;
    config.engine_name = engine.name;
    config.num_threads = 2;
    SCOPED_TRACE(engine.name);
    expect_identical(reference, core::run({portfolio, yet_table, config}));
  }
}

TEST(UnifiedRun, FullYearWindowMatchesSequential) {
  const auto portfolio = test_portfolio();
  const auto yet_table = test_yet();
  const auto reference = core::run_sequential(portfolio, yet_table);
  AnalysisConfig config;
  config.engine = EngineKind::kWindowed;
  config.window = core::CoverageWindow{0.0f, 1.0f};
  expect_identical(reference, core::run({portfolio, yet_table, config}));
  config.window.reset();  // absent window = full year too
  expect_identical(reference, core::run({portfolio, yet_table, config}));
}

TEST(UnifiedRun, BorrowedPoolReusedAcrossRunsStaysBitIdentical) {
  const auto portfolio = test_portfolio();
  const auto yet_table = test_yet();
  const auto reference = core::run_sequential(portfolio, yet_table);
  parallel::ThreadPool pool(3);
  for (const EngineKind kind : {EngineKind::kParallel, EngineKind::kSimd}) {
    AnalysisConfig config;
    config.engine = kind;
    config.pool = &pool;
    SCOPED_TRACE(core::to_string(kind));
    expect_identical(reference, core::run({portfolio, yet_table, config}));
    expect_identical(reference, core::run({portfolio, yet_table, config}));  // pool still warm
  }
}

// --- Instrumentation facts ----------------------------------------------------

TEST(UnifiedRun, SinkRecordsEngineAndSimdResolution) {
  const auto portfolio = test_portfolio();
  const auto yet_table = test_yet(50, 10.0);

  core::InstrumentationSink sink;
  AnalysisConfig config;
  config.engine = EngineKind::kSimd;
  config.instrumentation = &sink;
  core::run({portfolio, yet_table, config});
  ASSERT_TRUE(sink.engine_used.has_value());
  EXPECT_EQ(*sink.engine_used, EngineKind::kSimd);
  ASSERT_TRUE(sink.simd_extension_used.has_value());
  EXPECT_EQ(*sink.simd_extension_used,
            core::resolve_simd_extension(portfolio, {1, core::SimdExtension::kAuto}));
  EXPECT_FALSE(sink.phases.has_value());  // only kInstrumented fills phases
}

TEST(UnifiedRun, InstrumentedEngineFillsPhasesAndAccessCounts) {
  const auto portfolio = test_portfolio();
  const auto yet_table = test_yet(100, 30.0);

  core::InstrumentationSink sink;
  AnalysisConfig config;
  config.engine = EngineKind::kInstrumented;
  config.instrumentation = &sink;
  core::run({portfolio, yet_table, config});

  ASSERT_TRUE(sink.phases.has_value());
  EXPECT_GT(sink.phases->total_seconds(), 0.0);
  ASSERT_TRUE(sink.accesses.has_value());
  const auto predicted = core::predict_access_counts(portfolio, yet_table);
  EXPECT_EQ(sink.accesses->elt_lookups, predicted.elt_lookups);
  EXPECT_EQ(sink.accesses->events_fetched, predicted.events_fetched);
}

TEST(UnifiedRun, DispatchesByNameToCustomEngineSharingABuiltinKind) {
  // EngineKind is a closed enum, so a runtime-registered backend reuses an
  // existing kind; AnalysisConfig::engine_name must reach it anyway (kind
  // lookup would find the builtin first).
  static bool custom_ran = false;
  EngineDescriptor custom;
  custom.kind = EngineKind::kParallel;
  custom.name = "custom-parallel";
  custom.summary = "runtime-registered test engine";
  custom.bit_identical_to_sequential = false;  // keep registry sweeps honest
  custom.run = [](const AnalysisRequest& request) {
    custom_ran = true;
    return core::run_sequential(request.portfolio, request.yet_table);
  };
  EngineRegistry::global().register_engine(custom);

  const auto portfolio = test_portfolio(1);
  const auto yet_table = test_yet(30, 10.0);
  AnalysisConfig config;
  config.engine_name = "custom-parallel";
  custom_ran = false;
  const auto ylt = core::run({portfolio, yet_table, config});
  EXPECT_TRUE(custom_ran) << "builtin kParallel adapter ran instead of the custom engine";
  expect_identical(core::run_sequential(portfolio, yet_table), ylt);

  config.engine_name = "no-such-engine";
  EXPECT_THROW(core::run({portfolio, yet_table, config}), std::invalid_argument);
}

TEST(UnifiedRun, RunsWithoutSinkAndWithDefaults) {
  // Default config = parallel engine at hardware concurrency.
  const auto portfolio = test_portfolio();
  const auto yet_table = test_yet(50, 10.0);
  const auto ylt = core::run({portfolio, yet_table});
  expect_identical(core::run_sequential(portfolio, yet_table), ylt);
}

}  // namespace
