// Tests for the remaining extension modules: the OpenMP engine (the
// paper's actual CPU-parallel implementation), the multi-GPU estimate
// (paper §IV), and reinstatement-aware pricing.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/engine_registry.hpp"
#include "core/openmp_engine.hpp"
#include "elt/synthetic.hpp"
#include "pricing/reinstatement_pricing.hpp"
#include "simgpu/multi_gpu.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;

// --- OpenMP engine -------------------------------------------------------------

core::Portfolio small_portfolio() {
  core::Portfolio portfolio;
  core::Layer layer;
  layer.id = 1;
  layer.terms.occurrence_retention = 100e3;
  layer.terms.occurrence_limit = 5e6;
  layer.terms.aggregate_limit = 50e6;
  for (std::uint64_t e = 0; e < 4; ++e) {
    elt::SyntheticEltConfig config;
    config.catalog_size = 10'000;
    config.entries = 1'500;
    config.elt_id = e;
    core::LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess,
                                        elt::make_synthetic_elt(config), 10'000);
    layer_elt.terms.share = 0.75;
    layer.elts.push_back(std::move(layer_elt));
  }
  portfolio.layers.push_back(std::move(layer));
  return portfolio;
}

TEST(OpenMpEngine, BitIdenticalToSequential) {
  const auto portfolio = small_portfolio();
  yet::YetConfig config;
  config.num_trials = 400;
  config.events_per_trial = 60.0;
  config.count_model = yet::CountModel::kPoisson;
  const auto yet_table = yet::generate_uniform_yet(config, 10'000);

  const auto sequential = core::run_sequential(portfolio, yet_table);
  for (std::size_t threads : {1, 2, 4}) {
    core::AnalysisConfig config;
    config.engine = core::EngineKind::kOpenMp;
    config.num_threads = threads;
    const auto omp = core::run({portfolio, yet_table, config});
    ASSERT_EQ(omp.num_trials(), sequential.num_trials());
    for (std::size_t trial = 0; trial < sequential.num_trials(); ++trial) {
      ASSERT_EQ(omp.at(0, trial), sequential.at(0, trial)) << "threads " << threads;
    }
  }
}

TEST(OpenMpEngine, DefaultThreadCountWorks) {
  const auto portfolio = small_portfolio();
  yet::YetConfig config;
  config.num_trials = 50;
  config.events_per_trial = 20.0;
  const auto yet_table = yet::generate_uniform_yet(config, 10'000);
  const auto ylt = core::run({portfolio, yet_table, {.engine = core::EngineKind::kOpenMp}});
  EXPECT_EQ(ylt.num_trials(), 50u);
}

TEST(OpenMpEngine, InstrumentationSurfacesFallback) {
  // The silent-fallback footgun: whether OpenMP directives actually ran is
  // recorded in the sink instead of requiring callers to probe
  // openmp_available() themselves.
  const auto portfolio = small_portfolio();
  yet::YetConfig config;
  config.num_trials = 20;
  config.events_per_trial = 10.0;
  const auto yet_table = yet::generate_uniform_yet(config, 10'000);

  core::InstrumentationSink sink;
  core::AnalysisConfig analysis;
  analysis.engine = core::EngineKind::kOpenMp;
  analysis.instrumentation = &sink;
  core::run({portfolio, yet_table, analysis});

  ASSERT_TRUE(sink.engine_used.has_value());
  EXPECT_EQ(*sink.engine_used, core::EngineKind::kOpenMp);
  ASSERT_TRUE(sink.openmp_used.has_value());
  EXPECT_EQ(*sink.openmp_used, core::openmp_available());
}

TEST(OpenMpEngine, RegistryNoteExplainsAvailability) {
  const auto& descriptor = core::EngineRegistry::global().require("openmp");
  EXPECT_TRUE(descriptor.available_in_this_build);  // fallback keeps it runnable
  EXPECT_FALSE(descriptor.availability_note.empty());
}

TEST(OpenMpEngine, ReportsAvailability) {
#ifdef _OPENMP
  EXPECT_TRUE(core::openmp_available());
#else
  EXPECT_FALSE(core::openmp_available());
#endif
}

// --- Multi-GPU (paper §IV) -------------------------------------------------------

class MultiGpuTest : public ::testing::Test {
 protected:
  simgpu::DeviceSpec device_ = simgpu::DeviceSpec::tesla_c2075();
  simgpu::WorkloadShape shape_{1'000'000, 1000.0, 15.0, 1};
  static constexpr std::size_t kCatalog = 2'000'000;
};

TEST_F(MultiGpuTest, OneDeviceMatchesSingleKernelPlusTransfer) {
  const auto estimate = simgpu::estimate_multi_gpu(device_, shape_, 1, 192, 4, kCatalog);
  const auto kernel = simgpu::estimate_chunked_kernel(device_, shape_, 192, 4);
  EXPECT_NEAR(estimate.kernel_seconds, kernel.seconds, 1e-9);
  EXPECT_GT(estimate.transfer_seconds, 0.0);
  EXPECT_NEAR(estimate.speedup_vs_one, 1.0, 1e-9);
}

TEST_F(MultiGpuTest, SpeedupGrowsSublinearlyWithDevices) {
  const auto two = simgpu::estimate_multi_gpu(device_, shape_, 2, 192, 4, kCatalog);
  const auto four = simgpu::estimate_multi_gpu(device_, shape_, 4, 192, 4, kCatalog);
  const auto eight = simgpu::estimate_multi_gpu(device_, shape_, 8, 192, 4, kCatalog);
  EXPECT_GT(two.speedup_vs_one, 1.4);
  EXPECT_GT(four.speedup_vs_one, two.speedup_vs_one);
  EXPECT_GT(eight.speedup_vs_one, four.speedup_vs_one);
  // ELT replication caps scaling short of ideal.
  EXPECT_LT(eight.speedup_vs_one, 8.0);
}

TEST_F(MultiGpuTest, TransferIncludesEltReplication) {
  // Doubling the catalog doubles the replicated direct-access footprint.
  const auto small = simgpu::estimate_multi_gpu(device_, shape_, 4, 192, 4, 1'000'000);
  const auto large = simgpu::estimate_multi_gpu(device_, shape_, 4, 192, 4, 2'000'000);
  EXPECT_GT(large.transfer_seconds, small.transfer_seconds);
}

TEST_F(MultiGpuTest, DevicesForTargetFindsMinimalCount) {
  const auto one = simgpu::estimate_multi_gpu(device_, shape_, 1, 192, 4, kCatalog);
  // A target just below the 1-device time needs >= 2 devices.
  const int needed =
      simgpu::devices_for_target(device_, shape_, one.seconds * 0.9, 192, 4, kCatalog);
  EXPECT_GE(needed, 2);
  // A generous target needs exactly 1.
  EXPECT_EQ(simgpu::devices_for_target(device_, shape_, one.seconds * 2.0, 192, 4, kCatalog),
            1);
  // An impossible target returns 0 (ELT transfer floor never shrinks).
  EXPECT_EQ(simgpu::devices_for_target(device_, shape_, 1e-6, 192, 4, kCatalog, 8), 0);
}

TEST_F(MultiGpuTest, RejectsBadArguments) {
  EXPECT_THROW(simgpu::estimate_multi_gpu(device_, shape_, 0, 192, 4, kCatalog),
               std::invalid_argument);
  EXPECT_THROW(simgpu::devices_for_target(device_, shape_, -1.0, 192, 4, kCatalog),
               std::invalid_argument);
}

// --- Reinstatement pricing --------------------------------------------------------

TEST(ReinstatementPricing, TermsGainAggregateLimit) {
  financial::ReinstatementProvision provision;
  provision.count = 2;
  const auto base = financial::LayerTerms::cat_xl(10e6, 5e6);
  const auto terms = pricing::terms_with_reinstatements(base, provision);
  EXPECT_DOUBLE_EQ(terms.aggregate_limit, 15e6);
  EXPECT_DOUBLE_EQ(terms.occurrence_retention, 10e6);
}

TEST(ReinstatementPricing, PremiumNetOfExpectedIncome) {
  // Trial losses that consume 0%, 50% and 100% of the first tranche.
  const std::vector<double> losses{0.0, 50.0, 100.0, 150.0};
  financial::ReinstatementProvision provision;
  provision.count = 1;
  provision.premium_rates = {1.0};
  const auto terms = financial::LayerTerms::cat_xl(0.0, 100.0);

  pricing::PricingAssumptions flat;
  flat.stddev_loading = 0.0;
  flat.tvar_loading = 0.0;
  flat.expense_ratio = 0.0;
  const auto quote = pricing::price_with_reinstatements(losses, terms, provision, flat);

  // E[f] = (0 + 0.5 + 1 + 1) / 4 = 0.625; P = EL / 1.625.
  EXPECT_NEAR(quote.expected_premium_fraction, 0.625, 1e-12);
  EXPECT_NEAR(quote.original_premium, quote.base.technical_premium / 1.625, 1e-9);
  EXPECT_NEAR(quote.expected_reinstatement_income, quote.original_premium * 0.625, 1e-9);
  EXPECT_DOUBLE_EQ(quote.effective_aggregate_limit, 200.0);
}

TEST(ReinstatementPricing, MoreReinstatementsLowerOriginalPremium) {
  std::vector<double> losses;
  for (int i = 0; i < 1000; ++i) losses.push_back(static_cast<double>(i % 300));
  const auto terms = financial::LayerTerms::cat_xl(0.0, 100.0);

  financial::ReinstatementProvision one;
  one.count = 1;
  financial::ReinstatementProvision three;
  three.count = 3;

  const auto quote_one = pricing::price_with_reinstatements(losses, terms, one);
  const auto quote_three = pricing::price_with_reinstatements(losses, terms, three);
  // More paid reinstatements -> more expected premium income -> lower P.
  EXPECT_LT(quote_three.original_premium, quote_one.original_premium);
}

TEST(ReinstatementPricing, FreeReinstatementsEqualPlainQuote) {
  const std::vector<double> losses{10.0, 120.0, 80.0};
  const auto terms = financial::LayerTerms::cat_xl(0.0, 100.0);
  financial::ReinstatementProvision provision;
  provision.count = 2;
  provision.premium_rates = {0.0};  // free reinstatements
  const auto quote = pricing::price_with_reinstatements(losses, terms, provision);
  EXPECT_DOUBLE_EQ(quote.expected_premium_fraction, 0.0);
  EXPECT_DOUBLE_EQ(quote.original_premium, quote.base.technical_premium);
}

TEST(ReinstatementPricing, RequiresFiniteOccurrenceLimit) {
  const std::vector<double> losses{1.0};
  financial::ReinstatementProvision provision;
  EXPECT_THROW(
      pricing::price_with_reinstatements(losses, financial::LayerTerms{}, provision),
      std::invalid_argument);
}

}  // namespace
