// Tests for the CPU roofline model: the paper's Fig 3 scaling shape
// (1.5x / 2.2x / 2.6x at 2 / 4 / 8 threads on the i7-2600) and the mild
// oversubscription gain of Fig 3b.
#include <gtest/gtest.h>

#include "perfmodel/cpu_model.hpp"

namespace {

using namespace are::perfmodel;

const MachineSpec kMachine = MachineSpec::core_i7_2600();

CpuPrediction paper_prediction(int threads) {
  return predict_cpu_time(1'000'000, 1000.0, 15.0, 1, kMachine, threads);
}

TEST(CpuModel, SingleCoreAbsoluteTimeNearPaper) {
  // Implied by the paper: ~125 s at 8 threads with 2.6x speedup -> roughly
  // 320-340 s on one core for the 1M-trial workload.
  const double seconds = paper_prediction(1).seconds;
  EXPECT_GT(seconds, 250.0);
  EXPECT_LT(seconds, 420.0);
}

TEST(CpuModel, Fig3aSpeedupShape) {
  const double s2 = paper_prediction(2).speedup_vs_one_core;
  const double s4 = paper_prediction(4).speedup_vs_one_core;
  const double s8 = paper_prediction(8).speedup_vs_one_core;

  // Paper Fig 3a: 1.5x at 2 cores, 2.2x at 4, 2.6x at 8 — memory-bandwidth
  // saturation, not Amdahl.
  EXPECT_NEAR(s2, 1.5, 0.25);
  EXPECT_NEAR(s4, 2.2, 0.30);
  EXPECT_NEAR(s8, 2.6, 0.35);
  // And the ordering/saturation structure:
  EXPECT_GT(s4, s2);
  EXPECT_GT(s8, s4);
  EXPECT_LT(s8 - s4, s4 - s2);  // diminishing returns
}

TEST(CpuModel, Fig3bOversubscriptionGainIsSmall) {
  // Paper Fig 3b: 2048 total threads (256/core) drops runtime from 135 s
  // to 125 s — a ~7% gain, with diminishing returns.
  const double t8 = paper_prediction(8).seconds;
  const double t256 = paper_prediction(8 * 32).seconds;
  const double t2048 = paper_prediction(8 * 256).seconds;
  EXPECT_LT(t2048, t8);
  EXPECT_GT(t2048, t8 * 0.88);  // no more than ~12% gain
  EXPECT_LT(t8 - t2048, t8 * 0.12);
  EXPECT_LT(t2048, t256 + 1e-9);  // monotone improvement
}

TEST(CpuModel, MemoryDominatesCompute) {
  // The paper's Fig 6b: ~78% of sequential time is ELT lookups. In the
  // model, random-access memory time must dominate arithmetic.
  const CpuPrediction prediction = paper_prediction(1);
  EXPECT_GT(prediction.memory_seconds, 3.0 * prediction.compute_seconds);
}

TEST(CpuModel, BandwidthRoofCapsScaling) {
  // With enormous thread counts the speedup must approach a finite roof.
  const double s_big = paper_prediction(4096).speedup_vs_one_core;
  EXPECT_LT(s_big, 5.0);
}

TEST(CpuModel, LinearInWorkload) {
  const double base = paper_prediction(1).seconds;
  const double twice_trials =
      predict_cpu_time(2'000'000, 1000.0, 15.0, 1, kMachine, 1).seconds;
  const double twice_layers =
      predict_cpu_time(1'000'000, 1000.0, 15.0, 2, kMachine, 1).seconds;
  EXPECT_NEAR(twice_trials, 2.0 * base, 0.05 * base);
  EXPECT_NEAR(twice_layers, 2.0 * base, 0.05 * base);
}

TEST(CpuModel, CountsOverloadMatchesShapeOverload) {
  are::core::AccessCounts counts;
  counts.events_fetched = 1'000'000;
  counts.elt_lookups = 15'000'000;
  counts.financial_applications = 15'000'000;
  counts.layer_term_applications = 2'000'000;
  const double from_counts = predict_cpu_time(counts, kMachine, 4).seconds;
  const double from_shape = predict_cpu_time(1'000, 1000.0, 15.0, 1, kMachine, 4).seconds;
  EXPECT_NEAR(from_counts, from_shape, 1e-9);
}

TEST(CpuModel, RejectsZeroThreads) {
  are::core::AccessCounts counts;
  counts.elt_lookups = 1;
  EXPECT_THROW(predict_cpu_time(counts, kMachine, 0), std::invalid_argument);
}

}  // namespace
