// Tests for the metrics module: running statistics, quantiles, TVaR, EP
// curves (PML) and occurrence extraction.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/engine.hpp"
#include "elt/lookup.hpp"
#include "metrics/ep_curve.hpp"
#include "metrics/occurrence.hpp"
#include "metrics/statistics.hpp"

namespace {

using namespace are;
using metrics::EpCurve;
using metrics::RunningStats;

// --- RunningStats ------------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(42.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 42.0);
  EXPECT_DOUBLE_EQ(stats.max(), 42.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats left, right, reference;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0 + i * 0.1;
    (i < 37 ? left : right).add(x);
    reference.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), reference.count());
  EXPECT_NEAR(left.mean(), reference.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), reference.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), reference.min());
  EXPECT_DOUBLE_EQ(left.max(), reference.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats stats, empty;
  stats.add(1.0);
  stats.add(3.0);
  stats.merge(empty);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  empty.merge(stats);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(RunningStats, NumericalStabilityOnOffsetData) {
  // Welford must survive a large common offset.
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(1e9 + (i % 2));
  EXPECT_NEAR(stats.variance(), 0.25025, 1e-3);
}

// --- Quantiles and TVaR --------------------------------------------------------

TEST(Quantile, InterpolatesType7) {
  const std::vector<double> sample{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(metrics::quantile(sample, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(metrics::quantile(sample, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(metrics::quantile(sample, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(metrics::quantile(sample, 1.0 / 3.0), 20.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> sample{7.0};
  EXPECT_DOUBLE_EQ(metrics::quantile(sample, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(metrics::quantile(sample, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(metrics::quantile(sample, 1.0), 7.0);
}

TEST(Quantile, Errors) {
  const std::vector<double> empty;
  EXPECT_THROW(metrics::quantile(empty, 0.5), std::invalid_argument);
  const std::vector<double> sample{1.0};
  EXPECT_THROW(metrics::quantile(sample, -0.1), std::invalid_argument);
  EXPECT_THROW(metrics::quantile(sample, 1.1), std::invalid_argument);
}

TEST(Quantile, UnsortedConvenienceMatchesSorted) {
  const std::vector<double> shuffled{30.0, 10.0, 40.0, 20.0};
  EXPECT_DOUBLE_EQ(metrics::quantile_unsorted(shuffled, 0.5), 25.0);
}

TEST(TailValueAtRisk, AveragesWorstTail) {
  std::vector<double> sample(100);
  std::iota(sample.begin(), sample.end(), 1.0);  // 1..100
  // 0.95 quantile (type 7) = 95.05; tail {96..100} averages 98.
  EXPECT_DOUBLE_EQ(metrics::tail_value_at_risk(sample, 0.95), 98.0);
  // TVaR at 0 is the overall mean of values >= min.
  EXPECT_DOUBLE_EQ(metrics::tail_value_at_risk(sample, 0.0), 50.5);
}

TEST(TailValueAtRisk, DominatesQuantile) {
  std::vector<double> sample(1000);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sample[i] = std::pow(static_cast<double>(i), 1.5);
  }
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_GE(metrics::tail_value_at_risk(sample, q), metrics::quantile(sample, q));
  }
}

// --- EP curve --------------------------------------------------------------------

class EpCurveTest : public ::testing::Test {
 protected:
  static EpCurve uniform_curve() {
    std::vector<double> losses(1000);
    std::iota(losses.begin(), losses.end(), 1.0);  // 1..1000
    return EpCurve(losses);
  }
};

TEST_F(EpCurveTest, ExpectedLoss) {
  EXPECT_DOUBLE_EQ(uniform_curve().expected_loss(), 500.5);
}

TEST_F(EpCurveTest, PmlAtReturnPeriods) {
  const EpCurve curve = uniform_curve();
  // 1000 trials of losses 1..1000: the 100-year PML is the 0.99 quantile.
  EXPECT_NEAR(curve.probable_maximum_loss(100.0), 990.0, 1.0);
  EXPECT_NEAR(curve.probable_maximum_loss(10.0), 900.0, 1.0);
  EXPECT_NEAR(curve.probable_maximum_loss(2.0), 500.0, 1.0);
}

TEST_F(EpCurveTest, PmlMonotoneInReturnPeriod) {
  const EpCurve curve = uniform_curve();
  double previous = 0.0;
  for (double years : metrics::standard_return_periods()) {
    const double pml = curve.probable_maximum_loss(years);
    EXPECT_GE(pml, previous);
    previous = pml;
  }
}

TEST_F(EpCurveTest, TvarExceedsPml) {
  const EpCurve curve = uniform_curve();
  EXPECT_GT(curve.tail_value_at_risk(0.99), curve.probable_maximum_loss(100.0) - 1.0);
  EXPECT_GE(curve.tail_value_at_risk(0.99), curve.loss_at_probability(0.01) - 1e-9);
}

TEST_F(EpCurveTest, ExceedanceProbabilityConsistent) {
  const EpCurve curve = uniform_curve();
  EXPECT_DOUBLE_EQ(curve.exceedance_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.exceedance_probability(1000.0), 0.0);
  EXPECT_NEAR(curve.exceedance_probability(900.0), 0.1, 1e-9);
  // Round trip: P(loss > PML(T)) ~= 1/T.
  const double pml = curve.probable_maximum_loss(50.0);
  EXPECT_NEAR(curve.exceedance_probability(pml), 0.02, 0.002);
}

TEST_F(EpCurveTest, TableMatchesPointQueries) {
  const EpCurve curve = uniform_curve();
  const auto periods = metrics::standard_return_periods();
  const auto table = curve.table(periods);
  ASSERT_EQ(table.size(), periods.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_DOUBLE_EQ(table[i].return_period, periods[i]);
    EXPECT_DOUBLE_EQ(table[i].probability, 1.0 / periods[i]);
    EXPECT_DOUBLE_EQ(table[i].loss, curve.probable_maximum_loss(periods[i]));
  }
}

TEST_F(EpCurveTest, Errors) {
  EXPECT_THROW(EpCurve(std::vector<double>{}), std::invalid_argument);
  const EpCurve curve = uniform_curve();
  EXPECT_THROW(curve.probable_maximum_loss(0.5), std::invalid_argument);
  EXPECT_THROW(curve.loss_at_probability(0.0), std::invalid_argument);
  EXPECT_THROW(curve.loss_at_probability(1.5), std::invalid_argument);
  EXPECT_THROW(curve.tail_value_at_risk(0.0), std::invalid_argument);
  EXPECT_THROW(curve.tail_value_at_risk(1.0), std::invalid_argument);
}

TEST(EpCurveDegenerate, AllZeroLosses) {
  const EpCurve curve(std::vector<double>(100, 0.0));
  EXPECT_DOUBLE_EQ(curve.expected_loss(), 0.0);
  EXPECT_DOUBLE_EQ(curve.probable_maximum_loss(250.0), 0.0);
  EXPECT_DOUBLE_EQ(curve.tail_value_at_risk(0.99), 0.0);
  EXPECT_DOUBLE_EQ(curve.exceedance_probability(0.0), 0.0);
}

// --- Occurrence metrics (OEP inputs) ----------------------------------------------

TEST(Occurrence, MaxOccurrenceAndCounts) {
  // Events 0,1,2 with losses 100,200,300; trial 0 = {0,1}, trial 1 = {2,2}.
  const elt::EventLossTable table({{0, 100.0}, {1, 200.0}, {2, 300.0}});
  core::Layer layer;
  layer.id = 1;
  core::LayerElt layer_elt;
  layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess, table, 10);
  layer.elts.push_back(std::move(layer_elt));

  const yet::YearEventTable yet_table({0, 1, 2, 2}, {0.1f, 0.2f, 0.3f, 0.4f}, {0, 2, 4});

  const auto maxima = metrics::max_occurrence_losses(layer, yet_table);
  ASSERT_EQ(maxima.size(), 2u);
  EXPECT_DOUBLE_EQ(maxima[0], 200.0);
  EXPECT_DOUBLE_EQ(maxima[1], 300.0);

  const auto counts = metrics::occurrence_counts_above(layer, yet_table, 150.0);
  EXPECT_EQ(counts[0], 1u);  // only event 1
  EXPECT_EQ(counts[1], 2u);  // both occurrences of event 2
}

TEST(Occurrence, OccurrenceTermsShapeOep) {
  const elt::EventLossTable table({{0, 100.0}, {1, 500.0}});
  core::Layer layer;
  layer.id = 1;
  core::LayerElt layer_elt;
  layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess, table, 10);
  layer.elts.push_back(std::move(layer_elt));
  layer.terms = financial::LayerTerms::cat_xl(150.0, 200.0);

  const yet::YearEventTable yet_table({0, 1}, {0.1f, 0.2f}, {0, 2});
  const auto maxima = metrics::max_occurrence_losses(layer, yet_table);
  // Event 0 nets to 0 (below retention); event 1 nets to min(350, 200).
  EXPECT_DOUBLE_EQ(maxima[0], 200.0);
}

TEST(Occurrence, OepBoundedByAep) {
  // For a layer with no aggregate terms, max occurrence <= trial total.
  const elt::EventLossTable table({{0, 10.0}, {1, 20.0}, {2, 30.0}, {3, 40.0}});
  core::Layer layer;
  layer.id = 1;
  core::LayerElt layer_elt;
  layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess, table, 10);
  layer.elts.push_back(std::move(layer_elt));

  const yet::YearEventTable yet_table({0, 1, 2, 3, 1, 2}, {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f},
                                      {0, 4, 6});
  core::Portfolio portfolio;
  portfolio.layers.push_back(layer);
  const auto ylt = core::run_sequential(portfolio, yet_table);
  const auto maxima = metrics::max_occurrence_losses(layer, yet_table);
  for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
    EXPECT_LE(maxima[trial], ylt.at(0, trial));
  }
}

TEST(StandardReturnPeriods, SortedAndPositive) {
  const auto periods = metrics::standard_return_periods();
  ASSERT_FALSE(periods.empty());
  for (std::size_t i = 1; i < periods.size(); ++i) {
    EXPECT_GT(periods[i], periods[i - 1]);
  }
  EXPECT_GE(periods.front(), 1.0);
}

}  // namespace
