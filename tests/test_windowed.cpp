// Tests for the coverage-window engine (driven through the unified
// core::run front door) and the severity-stress decorator.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "elt/scaled_lookup.hpp"
#include "elt/synthetic.hpp"
#include "metrics/statistics.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;
using core::CoverageWindow;

/// The windowed engine through the front door: kWindowed + config window.
core::YearLossTable run_windowed_api(const core::Portfolio& portfolio,
                                     const yet::YearEventTable& yet_table,
                                     const CoverageWindow& window) {
  core::AnalysisConfig config;
  config.engine = core::EngineKind::kWindowed;
  config.window = window;
  return core::run({portfolio, yet_table, config});
}

core::Portfolio test_portfolio(std::size_t elts = 3) {
  core::Portfolio portfolio;
  core::Layer layer;
  layer.id = 1;
  layer.terms.occurrence_retention = 100e3;
  layer.terms.aggregate_limit = 100e6;
  for (std::uint64_t e = 0; e < elts; ++e) {
    elt::SyntheticEltConfig config;
    config.catalog_size = 5'000;
    config.entries = 1'000;
    config.elt_id = e;
    core::LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess,
                                        elt::make_synthetic_elt(config), 5'000);
    layer.elts.push_back(std::move(layer_elt));
  }
  portfolio.layers.push_back(std::move(layer));
  return portfolio;
}

yet::YearEventTable test_yet(std::uint64_t trials = 300) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = 50.0;
  config.count_model = yet::CountModel::kPoisson;
  return yet::generate_uniform_yet(config, 5'000);
}

// --- CoverageWindow -----------------------------------------------------------

TEST(CoverageWindow, CoversAndValidates) {
  const CoverageWindow window{0.25f, 0.75f};
  EXPECT_FALSE(window.covers(0.2f));
  EXPECT_TRUE(window.covers(0.25f));
  EXPECT_TRUE(window.covers(0.5f));
  EXPECT_FALSE(window.covers(0.75f));  // exclusive upper bound
  EXPECT_FALSE(window.full_year());
  EXPECT_TRUE((CoverageWindow{0.0f, 1.0f}).full_year());

  EXPECT_THROW((CoverageWindow{0.5f, 0.5f}).validate(), std::invalid_argument);
  EXPECT_THROW((CoverageWindow{-0.1f, 0.5f}).validate(), std::invalid_argument);
  EXPECT_THROW((CoverageWindow{0.0f, 1.5f}).validate(), std::invalid_argument);
}

TEST(WindowedEngine, FullYearMatchesSequentialBitExact) {
  const auto portfolio = test_portfolio();
  const auto yet_table = test_yet();
  const auto reference = core::run_sequential(portfolio, yet_table);
  const auto windowed = run_windowed_api(portfolio, yet_table, {0.0f, 1.0f});
  for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
    ASSERT_EQ(windowed.at(0, trial), reference.at(0, trial)) << trial;
  }
}

TEST(WindowedEngine, WindowNeverIncreasesLoss) {
  const auto portfolio = test_portfolio();
  const auto yet_table = test_yet();
  const auto full = core::run_sequential(portfolio, yet_table);
  const auto half = run_windowed_api(portfolio, yet_table, {0.0f, 0.5f});
  for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
    ASSERT_LE(half.at(0, trial), full.at(0, trial) + 1e-9);
  }
}

TEST(WindowedEngine, ComplementaryWindowsCoverAllOccurrences) {
  const auto yet_table = test_yet();
  const auto first = core::occurrences_in_window(yet_table, {0.0f, 0.5f});
  const auto second = core::occurrences_in_window(yet_table, {0.5f, 1.0f});
  for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
    EXPECT_EQ(first[trial] + second[trial], yet_table.trial_size(trial));
  }
}

TEST(WindowedEngine, ComplementaryWindowLossesSumWithoutAggregateTerms) {
  // Without aggregate terms (pure per-occurrence), losses are additive
  // across disjoint windows.
  auto portfolio = test_portfolio();
  portfolio.layers[0].terms = financial::LayerTerms::cat_xl(100e3, financial::kUnlimited);
  const auto yet_table = test_yet();

  const auto full = core::run_sequential(portfolio, yet_table);
  const auto first = run_windowed_api(portfolio, yet_table, {0.0f, 0.5f});
  const auto second = run_windowed_api(portfolio, yet_table, {0.5f, 1.0f});
  for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
    EXPECT_NEAR(first.at(0, trial) + second.at(0, trial), full.at(0, trial),
                1e-9 * (1.0 + full.at(0, trial)));
  }
}

TEST(WindowedEngine, NarrowWindowCapturesFewOccurrences) {
  const auto yet_table = test_yet();
  const auto narrow = core::occurrences_in_window(yet_table, {0.4f, 0.45f});
  std::uint64_t total = 0;
  for (const auto count : narrow) total += count;
  // Uniform timestamps: ~5% of all occurrences.
  const double fraction =
      static_cast<double>(total) / static_cast<double>(yet_table.total_events());
  EXPECT_NEAR(fraction, 0.05, 0.01);
}

TEST(WindowedEngine, RejectsInvalidWindow) {
  const auto portfolio = test_portfolio();
  EXPECT_THROW(run_windowed_api(portfolio, test_yet(10), {0.7f, 0.3f}),
               std::invalid_argument);
}

// --- ScaledLookup (severity stress) ----------------------------------------------

TEST(ScaledLookup, ScalesEveryLoss) {
  elt::SyntheticEltConfig config;
  config.catalog_size = 1'000;
  config.entries = 200;
  const auto table = elt::make_synthetic_elt(config);
  const auto base = std::shared_ptr<const elt::ILossLookup>(
      elt::make_lookup(elt::LookupKind::kDirectAccess, table, 1'000));
  const elt::ScaledLookup stressed(base, 1.2);

  for (elt::EventId event = 0; event < 1'000; ++event) {
    EXPECT_DOUBLE_EQ(stressed.lookup(event), 1.2 * base->lookup(event));
  }
  EXPECT_EQ(stressed.entry_count(), base->entry_count());
  EXPECT_EQ(stressed.kind(), base->kind());
}

TEST(ScaledLookup, IsNotEligibleForDirectFastPath) {
  // The decorator must force the virtual path even over a direct table.
  elt::SyntheticEltConfig config;
  config.catalog_size = 1'000;
  config.entries = 100;
  const auto base = std::shared_ptr<const elt::ILossLookup>(
      elt::make_lookup(elt::LookupKind::kDirectAccess, elt::make_synthetic_elt(config), 1'000));
  const elt::ScaledLookup stressed(base, 2.0);
  EXPECT_EQ(stressed.as_direct_access(), nullptr);
  EXPECT_NE(base->as_direct_access(), nullptr);

  core::Layer layer;
  layer.id = 1;
  layer.elts.push_back({std::make_shared<elt::ScaledLookup>(base, 2.0), {}});
  EXPECT_FALSE(layer.all_direct_access());
}

TEST(ScaledLookup, StressAttachesRemoteLayers) {
  // The reason the stress must be input-side: a layer the base book never
  // reaches produces losses once severity is scaled up.
  elt::SyntheticEltConfig config;
  config.catalog_size = 5'000;
  config.entries = 1'000;
  config.loss_scale = 100e3;
  const auto table = elt::make_synthetic_elt(config);
  const auto base = std::shared_ptr<const elt::ILossLookup>(
      elt::make_lookup(elt::LookupKind::kDirectAccess, table, 5'000));

  // Find the base book's maximum event loss and attach just above it.
  double max_loss = 0.0;
  for (elt::EventId event = 0; event < 5'000; ++event) {
    max_loss = std::max(max_loss, base->lookup(event));
  }

  core::Portfolio base_portfolio;
  {
    core::Layer layer;
    layer.id = 1;
    layer.terms = financial::LayerTerms::cat_xl(max_loss * 1.01, financial::kUnlimited);
    layer.elts.push_back({base, {}});
    base_portfolio.layers.push_back(std::move(layer));
  }
  core::Portfolio stressed_portfolio = base_portfolio;
  stressed_portfolio.layers[0].elts[0].lookup = std::make_shared<elt::ScaledLookup>(base, 1.5);

  const auto yet_table = test_yet(500);
  const auto base_ylt = core::run_sequential(base_portfolio, yet_table);
  const auto stressed_ylt = core::run_sequential(stressed_portfolio, yet_table);

  const double base_total = metrics::summarize(base_ylt.layer_losses(0)).mean();
  const double stressed_total = metrics::summarize(stressed_ylt.layer_losses(0)).mean();
  EXPECT_DOUBLE_EQ(base_total, 0.0);
  EXPECT_GT(stressed_total, 0.0);
}

TEST(ScaledLookup, LookupManyForwardsThroughDecorator) {
  // The batch path must go through the base table's override and then
  // scale, matching the scalar decorator lookup bit-for-bit — this is what
  // keeps the fused engine's generic path batched on stressed ELTs.
  elt::SyntheticEltConfig config;
  config.catalog_size = 2'000;
  config.entries = 400;
  const auto table = elt::make_synthetic_elt(config);
  for (const auto kind : {elt::LookupKind::kDirectAccess, elt::LookupKind::kSortedVector,
                          elt::LookupKind::kRobinHood, elt::LookupKind::kCuckoo,
                          elt::LookupKind::kPagedDirect}) {
    const auto base =
        std::shared_ptr<const elt::ILossLookup>(elt::make_lookup(kind, table, 2'000));
    const elt::ScaledLookup stressed(base, 1.3);

    std::vector<elt::EventId> events;
    for (std::uint32_t i = 0; i < 300; ++i) events.push_back((i * 17) % 2'500);
    events.push_back(catalog::kInvalidEvent);

    std::vector<double> batch(events.size() + 1, -1.0);
    stressed.lookup_many(events.data(), events.size(), batch.data());
    for (std::size_t i = 0; i < events.size(); ++i) {
      ASSERT_EQ(batch[i], stressed.lookup(events[i])) << to_string(kind) << " index " << i;
    }
    EXPECT_EQ(batch[events.size()], -1.0) << "lookup_many wrote past count";
  }
}

TEST(ScaledLookup, RejectsBadConstruction) {
  EXPECT_THROW(elt::ScaledLookup(nullptr, 1.0), std::invalid_argument);
  elt::SyntheticEltConfig config;
  config.catalog_size = 10;
  config.entries = 2;
  const auto base = std::shared_ptr<const elt::ILossLookup>(
      elt::make_lookup(elt::LookupKind::kSortedVector, elt::make_synthetic_elt(config), 10));
  EXPECT_THROW(elt::ScaledLookup(base, -0.5), std::invalid_argument);
}

}  // namespace
