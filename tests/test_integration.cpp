// End-to-end integration tests: the full analytical pipeline of the paper
// (catalog -> exposure -> cat model -> ELT -> YET -> aggregate analysis ->
// YLT -> risk metrics -> pricing), plus cross-module consistency checks.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "catmodel/cat_model.hpp"
#include "core/analysis.hpp"
#include "elt/synthetic.hpp"
#include "io/binary.hpp"
#include "io/csv.hpp"
#include "metrics/ep_curve.hpp"
#include "metrics/occurrence.hpp"
#include "pricing/pricing.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;

class FullPipeline : public ::testing::Test {
 protected:
  static constexpr std::size_t kCatalogEvents = 4'000;

  void SetUp() override {
    catalog::CatalogConfig catalog_config;
    catalog_config.num_events = kCatalogEvents;
    catalog_config.expected_events_per_year = 300.0;
    catalog_config.seed = 5;
    catalog_ = catalog::build_catalog(catalog_config);

    // Three exposure books -> three ELTs covering the same catalog.
    for (std::uint64_t book = 0; book < 3; ++book) {
      exposure::ExposureConfig exposure_config;
      exposure_config.num_sites = 600;
      exposure_config.seed = 100 + book;
      books_.push_back(exposure::build_exposure(exposure_config));
      elts_.push_back(catmodel::run_cat_model(catalog_, books_.back()));
    }

    yet::YetConfig yet_config;
    yet_config.num_trials = 2'000;
    yet_config.events_per_trial = 300.0;
    yet_config.count_model = yet::CountModel::kPoisson;
    yet_config.seed = 6;
    yet_ = yet::generate_yet(yet_config, catalog_);
  }

  core::Portfolio make_portfolio() const {
    core::Layer layer;
    layer.id = 1;
    for (const auto& table : elts_) {
      core::LayerElt layer_elt;
      layer_elt.lookup =
          elt::make_lookup(elt::LookupKind::kDirectAccess, table, kCatalogEvents);
      layer_elt.terms.share = 0.9;
      layer.elts.push_back(std::move(layer_elt));
    }
    // Calibrated against the synthetic book: mean per-trial maximum
    // occurrence is ~$96M, so 50M xs 100M is a realistically remote
    // Cat XL layer that attaches in roughly half the trials.
    layer.terms.occurrence_retention = 100e6;
    layer.terms.occurrence_limit = 50e6;
    layer.terms.aggregate_retention = 10e6;
    layer.terms.aggregate_limit = 200e6;

    core::Portfolio portfolio;
    portfolio.layers.push_back(std::move(layer));
    return portfolio;
  }

  catalog::EventCatalog catalog_;
  std::vector<exposure::ExposureSet> books_;
  std::vector<elt::EventLossTable> elts_;
  yet::YearEventTable yet_;
};

TEST_F(FullPipeline, CatModelProducesUsableElts) {
  for (const auto& table : elts_) {
    EXPECT_GT(table.size(), 50u);
    EXPECT_LT(table.size(), kCatalogEvents);
    EXPECT_GT(table.total_loss(), 0.0);
  }
}

TEST_F(FullPipeline, EndToEndProducesFiniteNonTrivialYlt) {
  const auto ylt = core::run({make_portfolio(), yet_,
                              {.engine = core::EngineKind::kParallel,
                               .num_threads = 2,
                               .partition_chunk = 128}});
  ASSERT_EQ(ylt.num_trials(), 2'000u);
  const auto losses = ylt.layer_losses(0);
  double total = 0.0;
  for (double loss : losses) {
    ASSERT_TRUE(std::isfinite(loss));
    ASSERT_GE(loss, 0.0);
    ASSERT_LE(loss, 200e6 + 1e-6);  // aggregate limit is a hard cap
    total += loss;
  }
  EXPECT_GT(total, 0.0) << "the layer never attaches: calibration is off";
}

TEST_F(FullPipeline, AllEnginesAgreeOnRealData) {
  const auto portfolio = make_portfolio();
  const auto sequential = core::run_sequential(portfolio, yet_);
  const auto parallel = core::run({portfolio, yet_,
                                   {.engine = core::EngineKind::kParallel,
                                    .num_threads = 4,
                                    .partition_chunk = 64}});
  const auto chunked = core::run({portfolio, yet_,
                                  {.engine = core::EngineKind::kChunked,
                                   .num_threads = 2,
                                   .chunk_size = 4}});
  for (std::size_t trial = 0; trial < yet_.num_trials(); ++trial) {
    ASSERT_EQ(sequential.at(0, trial), parallel.at(0, trial)) << trial;
    ASSERT_EQ(sequential.at(0, trial), chunked.at(0, trial)) << trial;
  }
}

TEST_F(FullPipeline, RiskMetricsAreOrderedSensibly) {
  const auto ylt = core::run_sequential(make_portfolio(), yet_);
  const metrics::EpCurve curve(ylt.layer_losses(0));

  EXPECT_LE(curve.probable_maximum_loss(10.0), curve.probable_maximum_loss(100.0));
  EXPECT_LE(curve.probable_maximum_loss(100.0), curve.probable_maximum_loss(250.0));
  EXPECT_LE(curve.expected_loss(), curve.tail_value_at_risk(0.9));
  EXPECT_GE(curve.tail_value_at_risk(0.99), curve.probable_maximum_loss(100.0) * 0.99);
}

TEST_F(FullPipeline, OepBelowAepEverywhere) {
  const auto portfolio = make_portfolio();
  const auto ylt = core::run_sequential(portfolio, yet_);
  const auto maxima = metrics::max_occurrence_losses(portfolio.layers[0], yet_);
  // Max single occurrence (pre-aggregate-terms) can exceed the
  // aggregate-capped trial loss only via the aggregate retention; with our
  // retention of 10e6 allow that wedge.
  const metrics::EpCurve aep(ylt.layer_losses(0));
  const metrics::EpCurve oep(maxima);
  EXPECT_LE(oep.expected_loss(), aep.expected_loss() + 10e6);
}

TEST_F(FullPipeline, PricingProducesCoherentQuote) {
  const auto portfolio = make_portfolio();
  const auto ylt = core::run_sequential(portfolio, yet_);
  const auto quote = pricing::price_layer(ylt.layer_losses(0), portfolio.layers[0].terms);
  EXPECT_GT(quote.expected_loss, 0.0);
  EXPECT_GE(quote.technical_premium, quote.expected_loss);
  EXPECT_GT(quote.rate_on_line, 0.0);
  EXPECT_LT(quote.rate_on_line, 1.0);
}

TEST_F(FullPipeline, SerializationRoundTripPreservesAnalysis) {
  // Persist the ELTs and YET, reload, re-run: identical YLT.
  const auto portfolio = make_portfolio();
  const auto reference = core::run_sequential(portfolio, yet_);

  std::stringstream yet_stream;
  io::write_yet_binary(yet_stream, yet_);
  const auto yet_restored = io::read_yet_binary(yet_stream);

  core::Portfolio restored_portfolio;
  core::Layer layer = portfolio.layers[0];
  layer.elts.clear();
  for (const auto& table : elts_) {
    std::stringstream elt_stream;
    io::write_elt_binary(elt_stream, table);
    const auto elt_restored = io::read_elt_binary(elt_stream);
    core::LayerElt layer_elt;
    layer_elt.lookup =
        elt::make_lookup(elt::LookupKind::kDirectAccess, elt_restored, kCatalogEvents);
    layer_elt.terms.share = 0.9;
    layer.elts.push_back(std::move(layer_elt));
  }
  restored_portfolio.layers.push_back(std::move(layer));

  const auto rerun = core::run_sequential(restored_portfolio, yet_restored);
  for (std::size_t trial = 0; trial < reference.num_trials(); ++trial) {
    ASSERT_EQ(reference.at(0, trial), rerun.at(0, trial));
  }
}

TEST_F(FullPipeline, TighterTermsNeverIncreaseLoss) {
  // Monotonicity across the whole pipeline: shrinking the occurrence limit
  // cannot increase any trial loss.
  auto portfolio = make_portfolio();
  const auto base = core::run_sequential(portfolio, yet_);
  portfolio.layers[0].terms.occurrence_limit = 10e6;  // was 50e6
  const auto tighter = core::run_sequential(portfolio, yet_);
  for (std::size_t trial = 0; trial < base.num_trials(); ++trial) {
    ASSERT_LE(tighter.at(0, trial), base.at(0, trial) + 1e-9);
  }
}

TEST_F(FullPipeline, HigherRetentionNeverIncreasesLoss) {
  auto portfolio = make_portfolio();
  const auto base = core::run_sequential(portfolio, yet_);
  portfolio.layers[0].terms.occurrence_retention = 120e6;  // was 100e6
  const auto higher = core::run_sequential(portfolio, yet_);
  for (std::size_t trial = 0; trial < base.num_trials(); ++trial) {
    ASSERT_LE(higher.at(0, trial), base.at(0, trial) + 1e-9);
  }
}

TEST_F(FullPipeline, MoreTrialsConvergeExpectedLoss) {
  // Monte Carlo sanity: EL from the first 1000 trials should be close to
  // EL from all 2000 (same substreams, so this is a pure convergence test).
  const auto portfolio = make_portfolio();
  const auto ylt = core::run_sequential(portfolio, yet_);
  const auto losses = ylt.layer_losses(0);
  double first_half = 0.0, all = 0.0;
  for (std::size_t trial = 0; trial < losses.size(); ++trial) {
    if (trial < losses.size() / 2) first_half += losses[trial];
    all += losses[trial];
  }
  const double el_half = first_half / (static_cast<double>(losses.size()) / 2.0);
  const double el_all = all / static_cast<double>(losses.size());
  EXPECT_NEAR(el_half, el_all, 0.35 * el_all + 1e-9);
}

}  // namespace
