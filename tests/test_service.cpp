// Tests for the resident analysis service (src/service/) and the delta
// execution path it drives through the trial kernel:
//
//   - ground-up capture/replay bit-identity across engines x sinks x
//     changed layer terms x coverage windows, with zero ELT lookups and
//     zero lookup-phase time on replay (the acceptance signal);
//   - GroundUpLossCache validation (mutual exclusion, shape checks);
//   - Snapshot::diff arithmetic;
//   - ResultCache hits, LRU eviction, and portfolio invalidation;
//   - RequestBroker structured admission off the telemetry registry
//     (request-too-large, queue-full, memory pressure, queue-then-admit);
//   - AnalysisService cold -> cached -> delta flow, durable updates,
//     rejection, and concurrent quoting;
//   - concurrent core::run() hammering one borrowed pool + shared tables;
//   - the line protocol (handle_line) and a full AF_UNIX round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis.hpp"
#include "core/trial_kernel.hpp"
#include "elt/synthetic.hpp"
#include "io/csv.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "service/analysis_service.hpp"
#include "service/portfolio_session.hpp"
#include "service/request_broker.hpp"
#include "service/result_cache.hpp"
#include "service/server.hpp"
#include "shard/sharded_run.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;

constexpr std::size_t kUniverse = 20'000;

class Service : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::TelemetryRegistry::global().reset();
  }
  void TearDown() override { obs::set_enabled(false); }
};

core::Portfolio make_portfolio(std::size_t num_layers = 2, std::size_t elts_per_layer = 3) {
  core::Portfolio portfolio;
  for (std::size_t l = 0; l < num_layers; ++l) {
    core::Layer layer;
    layer.id = static_cast<std::uint32_t>(l + 1);
    layer.terms.occurrence_retention = 200e3;
    layer.terms.occurrence_limit = 2e6;
    layer.terms.aggregate_retention = 100e3;
    layer.terms.aggregate_limit = 25e6;
    for (std::size_t e = 0; e < elts_per_layer; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = kUniverse;
      config.entries = 2'000;
      config.elt_id = l * 100 + e;
      core::LayerElt layer_elt;
      layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess,
                                          elt::make_synthetic_elt(config), kUniverse);
      layer_elt.terms.occurrence_retention = 5e3;
      layer_elt.terms.share = 0.8;
      layer.elts.push_back(std::move(layer_elt));
    }
    portfolio.layers.push_back(std::move(layer));
  }
  return portfolio;
}

yet::YearEventTable make_yet(std::uint64_t trials = 500, double events = 25.0) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = events;
  config.count_model = yet::CountModel::kPoisson;
  config.seed = 2012;
  return yet::generate_uniform_yet(config, kUniverse);
}

bool bit_identical(const core::YearLossTable& a, const core::YearLossTable& b) {
  if (a.num_layers() != b.num_layers() || a.num_trials() != b.num_trials()) return false;
  for (std::size_t layer = 0; layer < a.num_layers(); ++layer) {
    if (std::memcmp(a.layer_losses(layer).data(), b.layer_losses(layer).data(),
                    a.num_trials() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

financial::LayerTerms tweaked_terms() {
  financial::LayerTerms terms;
  terms.occurrence_retention = 500e3;
  terms.occurrence_limit = 1e6;
  terms.aggregate_retention = 0.0;
  terms.aggregate_limit = 8e6;
  return terms;
}

// --- Delta execution through the kernel ---------------------------------------

// Capture on a cold run, mutate every layer's terms (and optionally the
// window), replay from the cache, and demand byte equality with a fresh
// cold run of the mutated request — for each engine, both sinks.
TEST_F(Service, GroundUpReplayIsBitIdenticalAcrossEnginesAndSinks) {
  const auto portfolio = make_portfolio();
  const auto yet_table = make_yet();

  for (const char* engine : {"seq", "parallel", "simd", "fused"}) {
    core::GroundUpLossCache cache(portfolio.layers.size(), yet_table.total_events());
    {
      core::AnalysisConfig config;
      config.engine_name = engine;
      config.num_threads = 2;
      config.ground_up_capture = &cache;
      (void)core::run({portfolio, yet_table, config});
    }

    core::Portfolio mutated = portfolio;
    for (core::Layer& layer : mutated.layers) layer.terms = tweaked_terms();

    for (const bool windowed : {false, true}) {
      core::AnalysisConfig config;
      config.engine_name = engine;
      config.num_threads = 2;
      if (windowed) config.window = core::CoverageWindow{0.25f, 0.75f};

      const auto cold = core::run({mutated, yet_table, config});

      core::AnalysisConfig replay_config = config;
      replay_config.ground_up_replay = &cache;
      const auto delta = core::run({mutated, yet_table, replay_config});
      EXPECT_TRUE(bit_identical(cold, delta))
          << engine << (windowed ? " windowed" : "") << ": materialized replay differs";

      // Sharded sink: stream both to CSV and compare bytes (tiny shards so
      // several blocks cross shard boundaries).
      replay_config.output = core::OutputMode::kSharded;
      replay_config.sharding.shard_trials = 64;
      auto sharded = shard::run_sharded({mutated, yet_table, replay_config});
      std::ostringstream sharded_csv, cold_csv;
      io::write_ylt_csv(sharded_csv, sharded);
      io::write_ylt_csv(cold_csv, cold);
      EXPECT_EQ(sharded_csv.str(), cold_csv.str())
          << engine << (windowed ? " windowed" : "") << ": sharded replay differs";
    }
  }
}

TEST_F(Service, ReplaySkipsLookupAndFinancialPhasesEntirely) {
  const auto portfolio = make_portfolio();
  const auto yet_table = make_yet();
  core::GroundUpLossCache cache(portfolio.layers.size(), yet_table.total_events());

  obs::set_enabled(true);
  {
    // Instrumented capture: the instrumented block path routes direct
    // layers through lookup_many, so the lookup counters tick (the fast
    // path's raw gathers intentionally bypass them).
    core::AnalysisConfig config;
    config.engine_name = "instrumented";
    config.ground_up_capture = &cache;
    (void)core::run({portfolio, yet_table, config});
  }
  const auto after_capture = obs::TelemetryRegistry::global().snapshot();
  EXPECT_GT(after_capture.counter_value("elt.direct_access.lookups"), 0u);
  EXPECT_EQ(after_capture.counter_value("kernel.ground_up.captured_events"),
            yet_table.total_events());

  obs::TelemetryRegistry::global().reset();
  core::InstrumentationSink sink;
  core::AnalysisConfig config;
  config.engine_name = "instrumented";
  config.collect_phases = true;
  config.instrumentation = &sink;
  config.ground_up_replay = &cache;
  (void)core::run({portfolio, yet_table, config});

  const auto after_replay = obs::TelemetryRegistry::global().snapshot();
  EXPECT_EQ(after_replay.counter_value("elt.direct_access.lookups"), 0u);
  EXPECT_EQ(after_replay.counter_value("kernel.phase.lookup_ns"), 0u);
  EXPECT_EQ(after_replay.counter_value("kernel.phase.financial_ns"), 0u);
  EXPECT_EQ(after_replay.counter_value("kernel.ground_up.replayed_events"),
            yet_table.total_events());
  ASSERT_TRUE(sink.phases.has_value());
  EXPECT_EQ(sink.phases->lookup_seconds, 0.0);
  EXPECT_EQ(sink.phases->financial_seconds, 0.0);
  ASSERT_TRUE(sink.accesses.has_value());
  EXPECT_EQ(sink.accesses->elt_lookups, 0u);
}

TEST_F(Service, GroundUpCacheValidation) {
  const auto portfolio = make_portfolio();
  const auto yet_table = make_yet();
  core::GroundUpLossCache good(portfolio.layers.size(), yet_table.total_events());
  core::GroundUpLossCache bad_layers(portfolio.layers.size() + 1, yet_table.total_events());
  core::GroundUpLossCache bad_events(portfolio.layers.size(), yet_table.total_events() + 1);

  core::AnalysisConfig both;
  both.ground_up_capture = &good;
  both.ground_up_replay = &good;
  EXPECT_THROW((void)core::run({portfolio, yet_table, both}), std::invalid_argument);

  for (core::GroundUpLossCache* wrong : {&bad_layers, &bad_events}) {
    core::AnalysisConfig config;
    config.engine_name = "seq";
    config.ground_up_replay = wrong;
    EXPECT_THROW((void)core::run({portfolio, yet_table, config}), std::invalid_argument);
    config.ground_up_replay = nullptr;
    config.ground_up_capture = wrong;
    EXPECT_THROW((void)core::run({portfolio, yet_table, config}), std::invalid_argument);
  }
}

// --- Snapshot::diff ------------------------------------------------------------

TEST_F(Service, SnapshotDiffSubtractsCountersAndKeepsLaterGauges) {
  obs::Snapshot earlier;
  earlier.counters = {{"a", 10}, {"b", 5}};
  earlier.gauges = {{"g", 100}};
  earlier.histograms = {{"h", 4, 400, 50, 200}};

  obs::Snapshot later;
  later.counters = {{"a", 13}, {"b", 2}, {"c", 7}};  // b shrank (reset between)
  later.gauges = {{"g", 40}};
  later.histograms = {{"h", 6, 900, 30, 300}};

  const obs::Snapshot delta = later.diff(earlier);
  EXPECT_EQ(delta.counter_value("a"), 3u);
  EXPECT_EQ(delta.counter_value("b"), 2u);  // clamped: keeps the later value
  EXPECT_EQ(delta.counter_value("c"), 7u);  // only-in-later kept whole
  EXPECT_EQ(delta.gauge_value("g"), 40);    // point-in-time: later level stands
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].count, 2u);
  EXPECT_EQ(delta.histograms[0].sum_ns, 500u);
  EXPECT_EQ(delta.histograms[0].min_ns, 30u);   // later extrema carry over
  EXPECT_EQ(delta.histograms[0].max_ns, 300u);
}

// --- ResultCache ---------------------------------------------------------------

TEST_F(Service, ResultCacheHitsEvictsLruAndInvalidates) {
  service::ResultCache cache(2);
  auto outcome = [](double marker) {
    auto o = std::make_shared<service::QuoteOutcome>();
    o->quotes.push_back({marker, 0, 0, 0, 0});
    return o;
  };
  cache.put(1, "a", outcome(1.0));
  cache.put(2, "b", outcome(2.0));
  ASSERT_NE(cache.get(1), nullptr);  // refreshes key 1 -> key 2 is now LRU
  cache.put(3, "a", outcome(3.0));   // evicts key 2
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);

  EXPECT_EQ(cache.invalidate("a"), 2u);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.get(3), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(Service, FingerprintSeparatesFieldBoundaries) {
  service::Fingerprint a, b;
  a.mix("ab").mix("c");
  b.mix("a").mix("bc");
  EXPECT_NE(a.value(), b.value());
  service::Fingerprint c, d;
  c.mix_double(0.0);
  d.mix_double(-0.0);
  EXPECT_NE(c.value(), d.value());  // bit patterns, not numeric equality
}

// --- RequestBroker --------------------------------------------------------------

TEST_F(Service, BrokerRejectsOversizedRequestsWithStructuredReason) {
  service::BrokerConfig config;
  config.max_request_cost = 100;
  service::RequestBroker broker(config);

  const auto decision = broker.admit(101);
  EXPECT_FALSE(decision.admitted());
  EXPECT_EQ(decision.reason, service::RejectReason::kRequestCost);
  EXPECT_EQ(decision.estimated_cost, 101u);
  EXPECT_NE(decision.message.find("max_request_cost"), std::string::npos);
  EXPECT_EQ(obs::TelemetryRegistry::global().snapshot().counter_value("service.rejected"), 1u);

  EXPECT_TRUE(broker.admit(100).admitted());
  broker.release(100);
}

TEST_F(Service, BrokerRejectsUnderMemoryPressureWhenIdle) {
  service::BrokerConfig config;
  config.memory_budget_bytes = 1 << 20;
  service::RequestBroker broker(config);

  auto& resident = obs::TelemetryRegistry::global().gauge("shard.resident_bytes");
  resident.set(2 << 20);  // over budget, nothing in flight to drain it
  const auto decision = broker.admit(10);
  EXPECT_FALSE(decision.admitted());
  EXPECT_EQ(decision.reason, service::RejectReason::kMemoryPressure);
  EXPECT_EQ(decision.resident_bytes, 2 << 20);

  resident.set(0);
  EXPECT_TRUE(broker.admit(10).admitted());
  broker.release(10);
}

TEST_F(Service, BrokerQueueFullAndQueueThenAdmit) {
  service::BrokerConfig config;
  config.max_inflight_cost = 10;
  config.max_queued = 1;
  service::RequestBroker broker(config);

  ASSERT_TRUE(broker.admit(8).admitted());

  // One waiter fits the queue; it must block until release, then admit with
  // a recorded queue wait.
  std::atomic<bool> admitted{false};
  service::AdmissionDecision queued_decision;
  std::thread waiter([&] {
    queued_decision = broker.admit(8);
    admitted.store(true);
  });
  auto& registry = obs::TelemetryRegistry::global();
  while (registry.snapshot().gauge_value("service.queued_requests") == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(admitted.load());

  // Queue is now full: the next request bounces with kQueueFull.
  const auto overflow = broker.admit(8);
  EXPECT_FALSE(overflow.admitted());
  EXPECT_EQ(overflow.reason, service::RejectReason::kQueueFull);

  broker.release(8);
  waiter.join();
  EXPECT_TRUE(queued_decision.admitted());
  EXPECT_GT(queued_decision.queue_wait_seconds, 0.0);
  broker.release(8);

  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.gauge_value("service.inflight_requests"), 0);
  EXPECT_EQ(snapshot.gauge_value("service.inflight_cost"), 0);
  EXPECT_EQ(snapshot.gauge_value("service.queued_requests"), 0);
  EXPECT_EQ(snapshot.counter_value("service.queued"), 1u);
}

// --- AnalysisService -------------------------------------------------------------

// AnalysisService is intentionally non-movable (it owns mutexes and the
// resident pool), so the helper heap-allocates.
std::unique_ptr<service::AnalysisService> make_service(std::size_t cache_entries = 64) {
  service::ServiceConfig config;
  config.session.num_threads = 2;
  config.cache_entries = cache_entries;
  config.default_engine = "fused";
  auto analysis_service = std::make_unique<service::AnalysisService>(make_yet(), config);
  analysis_service->register_portfolio("book", make_portfolio());
  return analysis_service;
}

TEST_F(Service, QuoteColdThenCachedThenDelta) {
  auto service_ptr = make_service();
  auto& analysis_service = *service_ptr;

  service::QuoteRequest request;
  request.portfolio_id = "book";
  const auto cold = analysis_service.quote(request);
  ASSERT_EQ(cold.source, service::QuoteSource::kCold);
  ASSERT_NE(cold.outcome, nullptr);
  ASSERT_FALSE(cold.outcome->quotes.empty());

  const auto cached = analysis_service.quote(request);
  EXPECT_EQ(cached.source, service::QuoteSource::kCached);
  EXPECT_EQ(cached.outcome.get(), cold.outcome.get());  // shared, not recomputed
  EXPECT_EQ(cached.fingerprint, cold.fingerprint);

  request.overrides.push_back({1, tweaked_terms()});
  const auto delta = analysis_service.quote(request);
  EXPECT_EQ(delta.source, service::QuoteSource::kDelta);
  EXPECT_NE(delta.fingerprint, cold.fingerprint);

  // Delta-aware admission: a replay performs zero ELT lookups, so the broker
  // charges the nominal per-layer unit, not the cold lookup estimate.
  EXPECT_EQ(delta.admission.estimated_cost, 2u);  // == layers.size()
  EXPECT_GT(cold.admission.estimated_cost, delta.admission.estimated_cost);

  // The delta result must be bit-identical to a forced-cold run of the same
  // request (cache and delta disabled).
  service::QuoteRequest forced = request;
  forced.use_cache = false;
  forced.use_delta = false;
  const auto reference = analysis_service.quote(forced);
  EXPECT_EQ(reference.source, service::QuoteSource::kCold);
  EXPECT_TRUE(bit_identical(reference.outcome->ylt, delta.outcome->ylt));
}

TEST_F(Service, DurableUpdateInvalidatesCacheButKeepsGroundUp) {
  auto service_ptr = make_service();
  auto& analysis_service = *service_ptr;
  service::QuoteRequest request;
  request.portfolio_id = "book";
  ASSERT_EQ(analysis_service.quote(request).source, service::QuoteSource::kCold);
  ASSERT_EQ(analysis_service.quote(request).source, service::QuoteSource::kCached);

  analysis_service.update_layer_terms("book", 1, tweaked_terms());
  EXPECT_EQ(analysis_service.cache().size(), 0u);  // eager invalidation
  EXPECT_EQ(analysis_service.quote(request).source, service::QuoteSource::kDelta);

  // Re-registering the book changes structure: ground-up dropped, next is cold.
  analysis_service.register_portfolio("book", make_portfolio());
  EXPECT_EQ(analysis_service.quote(request).source, service::QuoteSource::kCold);
}

TEST_F(Service, QuoteRejectionIsAResponseNotAnException) {
  service::ServiceConfig config;
  config.session.num_threads = 1;
  config.broker.max_request_cost = 1;  // everything is too large
  service::AnalysisService analysis_service(make_yet(), config);
  analysis_service.register_portfolio("book", make_portfolio());

  service::QuoteRequest request;
  request.portfolio_id = "book";
  const auto response = analysis_service.quote(request);
  EXPECT_EQ(response.source, service::QuoteSource::kRejected);
  EXPECT_EQ(response.outcome, nullptr);
  EXPECT_EQ(response.admission.reason, service::RejectReason::kRequestCost);

  EXPECT_THROW((void)analysis_service.quote({.portfolio_id = "nope"}), std::invalid_argument);
}

TEST_F(Service, ConcurrentQuotesAreBitIdentical) {
  auto service_ptr = make_service();
  auto& analysis_service = *service_ptr;
  // Warm the ground-up cache so the hammer exercises replay + cache races.
  ASSERT_EQ(analysis_service.quote({.portfolio_id = "book"}).source,
            service::QuoteSource::kCold);

  constexpr std::size_t kThreads = 8;
  std::vector<service::QuoteResponse> responses(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      service::QuoteRequest request;
      request.portfolio_id = "book";
      // Two distinct override sets, interleaved across threads.
      request.overrides.push_back({1, t % 2 == 0 ? tweaked_terms()
                                                 : financial::LayerTerms::cat_xl(300e3, 3e6)});
      request.use_cache = t % 3 != 0;  // mix cached and forced paths
      responses[t] = analysis_service.quote(request);
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_NE(responses[t].outcome, nullptr) << "thread " << t;
    EXPECT_NE(responses[t].source, service::QuoteSource::kRejected);
    for (std::size_t u = t + 1; u < kThreads; ++u) {
      if (t % 2 != u % 2) continue;  // different override sets
      EXPECT_TRUE(bit_identical(responses[t].outcome->ylt, responses[u].outcome->ylt))
          << "threads " << t << " and " << u << " disagree";
    }
  }
}

// --- Concurrent core::run() on shared tables (no service involved) ---------------

TEST_F(Service, ConcurrentRunsShareOnePoolAndStayBitIdentical) {
  const auto portfolio = make_portfolio();
  const auto yet_table = make_yet();
  parallel::ThreadPool pool(4);

  core::AnalysisConfig config;
  config.engine_name = "parallel";
  const auto reference = core::run({portfolio, yet_table, config});

  constexpr std::size_t kThreads = 6;
  std::vector<core::YearLossTable> results(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      core::AnalysisConfig run_config;
      // Alternate pool-reusing engines; all submit into the one borrowed pool.
      run_config.engine_name = t % 2 == 0 ? "parallel" : "fused";
      run_config.pool = &pool;
      results[t] = core::run({portfolio, yet_table, run_config});
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(bit_identical(reference, results[t])) << "thread " << t;
  }
}

// --- Line protocol and socket ------------------------------------------------------

TEST_F(Service, HandleLineSpeaksTheProtocol) {
  auto service_ptr = make_service();
  auto& analysis_service = *service_ptr;
  service::Server server(analysis_service, {.socket_path = "unused.sock"});

  EXPECT_EQ(server.handle_line("PING"), "{\"status\":\"ok\",\"pong\":true}");
  EXPECT_NE(server.handle_line("BOGUS").find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(server.handle_line("QUOTE").find("requires portfolio"), std::string::npos);
  EXPECT_NE(server.handle_line("QUOTE portfolio=missing").find("\"status\":\"error\""),
            std::string::npos);

  const std::string cold = server.handle_line("QUOTE portfolio=book");
  EXPECT_NE(cold.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(cold.find("\"source\":\"cold\""), std::string::npos);
  EXPECT_NE(server.handle_line("QUOTE portfolio=book").find("\"source\":\"cached\""),
            std::string::npos);

  // A terms tweak rides the delta path; UPDATE mutates durably and later
  // quotes still replay (terms-only change).
  EXPECT_NE(server
                .handle_line("QUOTE portfolio=book layer=1 occ-retention=500000 "
                             "occ-limit=1000000")
                .find("\"source\":\"delta\""),
            std::string::npos);
  EXPECT_NE(server.handle_line("UPDATE portfolio=book layer=2 agg-limit=9000000")
                .find("\"status\":\"ok\""),
            std::string::npos);
  EXPECT_NE(server.handle_line("QUOTE portfolio=book").find("\"source\":\"delta\""),
            std::string::npos);

  EXPECT_FALSE(server.stop_requested());
  EXPECT_NE(server.handle_line("SHUTDOWN").find("\"shutdown\":true"), std::string::npos);
  EXPECT_TRUE(server.stop_requested());
}

TEST_F(Service, SocketRoundTrip) {
  auto service_ptr = make_service();
  auto& analysis_service = *service_ptr;
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "are_test_service.sock").string();
  service::Server server(analysis_service, {.socket_path = socket_path});
  std::thread serving([&] { server.serve(); });
  while (!std::filesystem::exists(socket_path)) std::this_thread::yield();

  EXPECT_EQ(service::Server::round_trip(socket_path, "PING"),
            "{\"status\":\"ok\",\"pong\":true}");
  const std::string quoted = service::Server::round_trip(socket_path, "QUOTE portfolio=book");
  EXPECT_NE(quoted.find("\"source\":\"cold\""), std::string::npos);
  EXPECT_NE(service::Server::round_trip(socket_path, "SHUTDOWN").find("\"shutdown\""),
            std::string::npos);
  serving.join();
  EXPECT_FALSE(std::filesystem::exists(socket_path));
}

}  // namespace
