// Tests for the fused trial-tiled engine: bit-identical equivalence with
// run_sequential across every lookup representation x tile size x thread
// count x scheduling policy, determinism under dynamic scheduling, the
// windowed semantics, pool reuse through the unified API, and the batch
// lookup_many overrides against scalar lookup for every table type.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <tuple>
#include <vector>

#include "core/analysis.hpp"
#include "core/engine_registry.hpp"
#include "core/fused_engine.hpp"
#include "elt/synthetic.hpp"
#include "parallel/thread_pool.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;
using core::FusedOptions;
using core::Portfolio;
using core::YearLossTable;

constexpr std::size_t kUniverse = 20'000;

Portfolio synthetic_portfolio(std::size_t num_layers, std::size_t elts_per_layer,
                              elt::LookupKind kind = elt::LookupKind::kDirectAccess) {
  Portfolio portfolio;
  for (std::size_t l = 0; l < num_layers; ++l) {
    core::Layer layer;
    layer.id = static_cast<std::uint32_t>(l + 1);
    layer.terms.occurrence_retention = 200e3;
    layer.terms.occurrence_limit = 2e6;
    layer.terms.aggregate_retention = 500e3;
    layer.terms.aggregate_limit = 20e6;
    for (std::size_t e = 0; e < elts_per_layer; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = kUniverse;
      config.entries = 2'000;
      config.elt_id = l * 100 + e;
      core::LayerElt layer_elt;
      layer_elt.lookup = elt::make_lookup(kind, elt::make_synthetic_elt(config), kUniverse);
      layer_elt.terms.occurrence_retention = 10e3;
      layer_elt.terms.share = 0.9;
      layer.elts.push_back(std::move(layer_elt));
    }
    portfolio.layers.push_back(std::move(layer));
  }
  return portfolio;
}

/// Negative-binomial counts: strongly skewed trial lengths, the regime the
/// cost-aware scheduling exists for (and empty trials as an edge case).
yet::YearEventTable skewed_yet(std::uint64_t trials, double events) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = events;
  config.count_model = yet::CountModel::kNegativeBinomial;
  config.dispersion = 2.0;
  config.seed = 31;
  return yet::generate_uniform_yet(config, kUniverse);
}

void expect_identical(const YearLossTable& a, const YearLossTable& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  ASSERT_EQ(a.num_trials(), b.num_trials());
  for (std::size_t layer = 0; layer < a.num_layers(); ++layer) {
    for (std::size_t trial = 0; trial < a.num_trials(); ++trial) {
      ASSERT_EQ(a.at(layer, trial), b.at(layer, trial))
          << "layer " << layer << " trial " << trial;
    }
  }
}

// --- Bit-identity sweep: lookup kind x tile size x threads x schedule ---------

class FusedEquivalence
    : public ::testing::TestWithParam<std::tuple<elt::LookupKind, std::size_t>> {};

TEST_P(FusedEquivalence, BitIdenticalToSequential) {
  const auto [kind, tile] = GetParam();
  const Portfolio portfolio = synthetic_portfolio(2, 3, kind);
  const auto yet_table = skewed_yet(401, 50.0);  // prime trial count: ragged tiles
  const auto sequential = core::run_sequential(portfolio, yet_table);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {
    for (const auto partition : {parallel::Partition::kStatic, parallel::Partition::kDynamic,
                                 parallel::Partition::kGuided}) {
      FusedOptions options;
      options.tile_trials = tile;
      options.num_threads = threads;
      options.partition = partition;
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " partition=" + std::to_string(static_cast<int>(partition)));
      expect_identical(sequential, core::run_fused(portfolio, yet_table, options));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndTiles, FusedEquivalence,
    ::testing::Combine(::testing::Values(elt::LookupKind::kDirectAccess,
                                         elt::LookupKind::kSortedVector,
                                         elt::LookupKind::kRobinHood, elt::LookupKind::kCuckoo,
                                         elt::LookupKind::kPagedDirect),
                       ::testing::Values(1, 7, 64, 4096)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_tile" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FusedEngine, MixedLookupKindsAcrossElts) {
  // One layer mixing representations: forces the generic lookup_many path.
  core::Layer layer;
  layer.id = 1;
  const elt::LookupKind kinds[] = {elt::LookupKind::kDirectAccess, elt::LookupKind::kSortedVector,
                                   elt::LookupKind::kRobinHood, elt::LookupKind::kCuckoo,
                                   elt::LookupKind::kPagedDirect};
  for (std::size_t e = 0; e < 5; ++e) {
    elt::SyntheticEltConfig config;
    config.catalog_size = kUniverse;
    config.entries = 1'000;
    config.elt_id = e;
    core::LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(kinds[e], elt::make_synthetic_elt(config), kUniverse);
    layer.elts.push_back(std::move(layer_elt));
  }
  Portfolio portfolio;
  portfolio.layers.push_back(std::move(layer));

  const auto yet_table = skewed_yet(300, 40.0);
  expect_identical(core::run_sequential(portfolio, yet_table),
                   core::run_fused(portfolio, yet_table, {32, 3}));
}

// --- Determinism under dynamic scheduling -------------------------------------

TEST(FusedEngine, DynamicSchedulingIsDeterministic) {
  const Portfolio portfolio = synthetic_portfolio(2, 4);
  const auto yet_table = skewed_yet(500, 60.0);

  FusedOptions options;
  options.tile_trials = 16;
  options.num_threads = 0;  // hardware concurrency
  options.partition = parallel::Partition::kDynamic;

  const auto first = core::run_fused(portfolio, yet_table, options);
  const auto second = core::run_fused(portfolio, yet_table, options);
  for (std::size_t layer = 0; layer < first.num_layers(); ++layer) {
    const auto a = first.layer_losses(layer);
    const auto b = second.layer_losses(layer);
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
        << "layer " << layer << ": dynamic scheduling changed the YLT bytes";
  }
}

// --- Windowed semantics -------------------------------------------------------

TEST(FusedEngine, WindowMatchesWindowedEngine) {
  const Portfolio portfolio = synthetic_portfolio(2, 3);
  const auto yet_table = skewed_yet(300, 50.0);
  const core::CoverageWindow window{0.25f, 0.75f};

  FusedOptions options;
  options.tile_trials = 32;
  options.num_threads = 4;
  options.window = window;
  expect_identical(core::run_windowed(portfolio, yet_table, window),
                   core::run_fused(portfolio, yet_table, options));
}

TEST(FusedEngine, FullYearWindowMatchesSequential) {
  const Portfolio portfolio = synthetic_portfolio(1, 3);
  const auto yet_table = skewed_yet(200, 40.0);
  FusedOptions options;
  options.window = core::CoverageWindow{0.0f, 1.0f};
  expect_identical(core::run_sequential(portfolio, yet_table),
                   core::run_fused(portfolio, yet_table, options));
}

// --- Unified API integration --------------------------------------------------

TEST(FusedEngine, ReachableThroughRegistryWithPoolReuse) {
  const auto& descriptor = core::EngineRegistry::global().require("fused");
  EXPECT_EQ(descriptor.kind, core::EngineKind::kFused);
  EXPECT_TRUE(descriptor.supports_windowing);
  EXPECT_TRUE(descriptor.supports_pool_reuse);
  EXPECT_TRUE(descriptor.bit_identical_to_sequential);

  const Portfolio portfolio = synthetic_portfolio(1, 3);
  const auto yet_table = skewed_yet(200, 40.0);
  const auto sequential = core::run_sequential(portfolio, yet_table);

  parallel::ThreadPool pool(3);
  core::AnalysisConfig config;
  config.engine = core::EngineKind::kFused;
  config.pool = &pool;
  config.tile_trials = 16;
  expect_identical(sequential, core::run({portfolio, yet_table, config}));
  expect_identical(sequential, core::run({portfolio, yet_table, config}));  // pool still warm
}

TEST(FusedEngine, ZeroTileSelectsHeuristicAndStaysBitIdentical) {
  const Portfolio portfolio = synthetic_portfolio(1, 1);
  const auto yet_table = skewed_yet(10, 5.0);

  // tile_trials == 0 means "derive from ELT footprint + events/trial".
  const std::size_t tile = core::default_tile_trials(portfolio, yet_table);
  EXPECT_GE(tile, 16u);
  EXPECT_LE(tile, 4096u);
  expect_identical(core::run_sequential(portfolio, yet_table),
                   core::run_fused(portfolio, yet_table, {0, 1}));

  core::AnalysisConfig config;
  config.tile_trials = 0;  // valid now: selects the heuristic
  config.validate();
}

TEST(FusedEngine, TileHeuristicShrinksWithDenserTrials) {
  // More events per trial = bigger staged buffers per tile, so the
  // heuristic must not pick a larger tile for the denser YET.
  const Portfolio portfolio = synthetic_portfolio(1, 2);
  const auto sparse = skewed_yet(64, 10.0);
  const auto dense = skewed_yet(64, 500.0);
  EXPECT_LE(core::default_tile_trials(portfolio, dense),
            core::default_tile_trials(portfolio, sparse));
}

// --- Per-phase instrumentation ------------------------------------------------

TEST(FusedEngine, CollectPhasesFillsBreakdownAndKeepsBytes) {
  const Portfolio portfolio = synthetic_portfolio(2, 3);
  const auto yet_table = skewed_yet(300, 50.0);
  const auto sequential = core::run_sequential(portfolio, yet_table);

  core::InstrumentationSink sink;
  core::AnalysisConfig config;
  config.engine = core::EngineKind::kFused;
  config.tile_trials = 32;
  config.num_threads = 3;
  config.instrumentation = &sink;
  config.collect_phases = true;
  expect_identical(sequential, core::run({portfolio, yet_table, config}));

  ASSERT_TRUE(sink.phases.has_value());
  EXPECT_GT(sink.phases->total_seconds(), 0.0);
  // Every batched phase ran: the staged fetch, the lookup_many batches,
  // the vector financial fold, and the occurrence + aggregate sweep.
  EXPECT_GT(sink.phases->lookup_seconds, 0.0);
  EXPECT_GT(sink.phases->financial_seconds, 0.0);
  EXPECT_GT(sink.phases->layer_seconds, 0.0);

  // Without collect_phases the sink records the engine but no breakdown
  // (the fused hot path stays untimed by default).
  core::InstrumentationSink quiet;
  config.collect_phases = false;
  config.instrumentation = &quiet;
  core::run({portfolio, yet_table, config});
  EXPECT_FALSE(quiet.phases.has_value());
  EXPECT_EQ(quiet.engine_used, core::EngineKind::kFused);
}

TEST(FusedEngine, CollectPhasesWorksOnEveryKernelEngine) {
  const Portfolio portfolio = synthetic_portfolio(1, 1);
  const auto yet_table = skewed_yet(50, 10.0);
  // Instrumentation is a kernel feature now: even the threaded engines
  // fill the Fig-6b breakdown when asked.
  core::InstrumentationSink sink;
  core::AnalysisConfig config;
  config.engine = core::EngineKind::kParallel;
  config.num_threads = 2;
  config.instrumentation = &sink;
  config.collect_phases = true;
  const auto instrumented = core::run({portfolio, yet_table, config});
  ASSERT_TRUE(sink.phases.has_value());
  EXPECT_GT(sink.phases->total_seconds(), 0.0);
  expect_identical(core::run_sequential(portfolio, yet_table), instrumented);

  // collect_phases with nowhere to deliver the breakdown is an error,
  // not a silent no-op.
  config.engine = core::EngineKind::kFused;
  config.instrumentation = nullptr;
  EXPECT_THROW(core::run({portfolio, yet_table, config}), std::invalid_argument);
}

TEST(FusedEngine, EmptyYetYieldsZeroTrials) {
  const Portfolio portfolio = synthetic_portfolio(1, 1);
  const yet::YearEventTable empty;
  const auto ylt = core::run_fused(portfolio, empty, {64, 2});
  EXPECT_EQ(ylt.num_trials(), 0u);
}

// --- lookup_many batch overrides vs scalar lookup -----------------------------

class LookupManyEquivalence : public ::testing::TestWithParam<elt::LookupKind> {};

TEST_P(LookupManyEquivalence, MatchesScalarLookupAtEveryBatchSize) {
  elt::SyntheticEltConfig config;
  config.catalog_size = kUniverse;
  config.entries = 3'000;
  config.elt_id = 9;
  const auto lookup = elt::make_lookup(GetParam(), elt::make_synthetic_elt(config), kUniverse);

  // Probe sequence mixing hits, misses, out-of-universe ids, and the batch
  // pad sentinel — every path the fused engine can feed to lookup_many.
  std::vector<elt::EventId> events;
  for (std::uint32_t i = 0; i < 512; ++i) {
    events.push_back((i * 37) % kUniverse);
    if (i % 13 == 0) events.push_back(catalog::kInvalidEvent);
    if (i % 29 == 0) events.push_back(static_cast<elt::EventId>(kUniverse + i));
  }

  // Sizes straddling the group/lookahead/block boundaries of the overrides.
  for (const std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                  std::size_t{8}, std::size_t{9}, std::size_t{63},
                                  std::size_t{64}, std::size_t{65}, std::size_t{200},
                                  events.size()}) {
    std::vector<double> batch(count + 1, -1.0);
    lookup->lookup_many(events.data(), count, batch.data());
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(batch[i], lookup->lookup(events[i])) << "count " << count << " index " << i;
    }
    EXPECT_EQ(batch[count], -1.0) << "lookup_many wrote past count";
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LookupManyEquivalence,
                         ::testing::Values(elt::LookupKind::kDirectAccess,
                                           elt::LookupKind::kSortedVector,
                                           elt::LookupKind::kRobinHood,
                                           elt::LookupKind::kCuckoo,
                                           elt::LookupKind::kPagedDirect),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST(LookupMany, EmptyTableReturnsZeros) {
  const elt::EventLossTable empty;
  for (const auto kind : {elt::LookupKind::kSortedVector, elt::LookupKind::kRobinHood,
                          elt::LookupKind::kCuckoo, elt::LookupKind::kPagedDirect}) {
    const auto lookup = elt::make_lookup(kind, empty, kUniverse);
    const elt::EventId events[] = {0, 5, catalog::kInvalidEvent};
    double out[3] = {-1.0, -1.0, -1.0};
    lookup->lookup_many(events, 3, out);
    for (const double value : out) EXPECT_EQ(value, 0.0) << to_string(kind);
  }
}

}  // namespace
