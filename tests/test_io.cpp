// Tests for CSV and binary serialization: round trips, format validation
// and corruption detection.
#include <gtest/gtest.h>

#include <sstream>

#include "core/year_loss_table.hpp"
#include "io/binary.hpp"
#include "io/csv.hpp"
#include "metrics/ep_curve.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;

elt::EventLossTable sample_elt() {
  return elt::EventLossTable({{3, 12.5}, {100, 7.25}, {7, 0.125}});
}

// --- CSV ------------------------------------------------------------------------

TEST(Csv, EltRoundTrip) {
  std::stringstream stream;
  io::write_elt_csv(stream, sample_elt());
  const auto restored = io::read_elt_csv(stream);
  ASSERT_EQ(restored.size(), 3u);
  EXPECT_DOUBLE_EQ(restored.loss_for(3), 12.5);
  EXPECT_DOUBLE_EQ(restored.loss_for(7), 0.125);
  EXPECT_DOUBLE_EQ(restored.loss_for(100), 7.25);
}

TEST(Csv, EmptyEltRoundTrip) {
  std::stringstream stream;
  io::write_elt_csv(stream, elt::EventLossTable{});
  EXPECT_TRUE(io::read_elt_csv(stream).empty());
}

TEST(Csv, ReadRejectsMalformedInput) {
  {
    std::stringstream stream("");
    EXPECT_THROW(io::read_elt_csv(stream), std::runtime_error);
  }
  {
    std::stringstream stream("wrong,header\n1,2\n");
    EXPECT_THROW(io::read_elt_csv(stream), std::runtime_error);
  }
  {
    std::stringstream stream("event_id,loss\nnot_a_number,2\n");
    EXPECT_THROW(io::read_elt_csv(stream), std::runtime_error);
  }
  {
    std::stringstream stream("event_id,loss\n1\n");
    EXPECT_THROW(io::read_elt_csv(stream), std::runtime_error);
  }
  {
    std::stringstream stream("event_id,loss\n1,abc\n");
    EXPECT_THROW(io::read_elt_csv(stream), std::runtime_error);
  }
}

TEST(Csv, ReadSkipsBlankLines) {
  std::stringstream stream("event_id,loss\n1,2.0\n\n3,4.0\n");
  const auto table = io::read_elt_csv(stream);
  EXPECT_EQ(table.size(), 2u);
}

TEST(Csv, YltHasHeaderAndAllTrials) {
  core::YearLossTable ylt({10, 20}, 3);
  ylt.at(0, 1) = 5.5;
  ylt.at(1, 2) = 7.0;
  std::stringstream stream;
  io::write_ylt_csv(stream, ylt);

  std::string line;
  std::getline(stream, line);
  EXPECT_EQ(line, "trial,layer_10,layer_20");
  int rows = 0;
  while (std::getline(stream, line)) ++rows;
  EXPECT_EQ(rows, 3);
}

TEST(Csv, EpTableFormat) {
  const std::vector<metrics::EpPoint> points{{0.01, 100.0, 5e6}, {0.004, 250.0, 9e6}};
  std::stringstream stream;
  io::write_ep_csv(stream, points);
  std::string line;
  std::getline(stream, line);
  EXPECT_EQ(line, "return_period,probability,loss");
  std::getline(stream, line);
  EXPECT_EQ(io::split_csv_line(line).size(), 3u);
}

TEST(Csv, SplitHandlesEdgeCases) {
  EXPECT_EQ(io::split_csv_line("a,b,c").size(), 3u);
  EXPECT_EQ(io::split_csv_line("").size(), 1u);
  EXPECT_EQ(io::split_csv_line(",").size(), 2u);
  EXPECT_EQ(io::split_csv_line("a,,c")[1], "");
}

// --- Binary ---------------------------------------------------------------------

TEST(Binary, EltRoundTrip) {
  std::stringstream stream;
  io::write_elt_binary(stream, sample_elt());
  const auto restored = io::read_elt_binary(stream);
  ASSERT_EQ(restored.size(), 3u);
  EXPECT_DOUBLE_EQ(restored.loss_for(3), 12.5);
  EXPECT_DOUBLE_EQ(restored.loss_for(100), 7.25);
}

TEST(Binary, YetRoundTrip) {
  yet::YetConfig config;
  config.num_trials = 50;
  config.events_per_trial = 20.0;
  config.count_model = yet::CountModel::kPoisson;
  const auto original = yet::generate_uniform_yet(config, 1'000);

  std::stringstream stream;
  io::write_yet_binary(stream, original);
  const auto restored = io::read_yet_binary(stream);

  ASSERT_EQ(restored.num_trials(), original.num_trials());
  ASSERT_EQ(restored.total_events(), original.total_events());
  for (std::size_t i = 0; i < original.total_events(); ++i) {
    EXPECT_EQ(restored.events()[i], original.events()[i]);
    EXPECT_EQ(restored.times()[i], original.times()[i]);
  }
}

TEST(Binary, DetectsCorruption) {
  std::stringstream stream;
  io::write_elt_binary(stream, sample_elt());
  std::string bytes = stream.str();
  bytes[bytes.size() / 2] ^= 0x01;  // flip one payload bit
  std::stringstream corrupted(bytes);
  EXPECT_THROW(io::read_elt_binary(corrupted), std::runtime_error);
}

TEST(Binary, DetectsTruncation) {
  std::stringstream stream;
  io::write_elt_binary(stream, sample_elt());
  const std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() - 9));
  EXPECT_THROW(io::read_elt_binary(truncated), std::runtime_error);
}

TEST(Binary, RejectsWrongMagic) {
  std::stringstream stream;
  io::write_elt_binary(stream, sample_elt());
  EXPECT_THROW(io::read_yet_binary(stream), std::runtime_error);  // YET reader on ELT bytes
}

TEST(Binary, Fnv1aKnownValues) {
  // FNV-1a 64 of "a" and "" (published constants).
  EXPECT_EQ(io::fnv1a("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(io::fnv1a("a", 1), 0xaf63dc4c8601ec8cULL);
}

TEST(Binary, EmptyEltRoundTrip) {
  std::stringstream stream;
  io::write_elt_binary(stream, elt::EventLossTable{});
  EXPECT_TRUE(io::read_elt_binary(stream).empty());
}

}  // namespace
