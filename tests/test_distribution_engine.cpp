// Tests for the distribution-mode engine (paper §IV extension: losses as
// distributions with convolution) and the lognormal discretizer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/distribution_engine.hpp"
#include "core/engine.hpp"
#include "elt/lookup.hpp"
#include "financial/discretize.hpp"
#include "metrics/statistics.hpp"
#include "yet/year_event_table.hpp"

namespace {

using namespace are;

// --- Discretizer ------------------------------------------------------------

TEST(Discretize, LognormalCdfSanity) {
  EXPECT_DOUBLE_EQ(financial::lognormal_cdf(0.0, 0.0, 1.0), 0.0);
  EXPECT_NEAR(financial::lognormal_cdf(1.0, 0.0, 1.0), 0.5, 1e-12);  // median e^0
  EXPECT_GT(financial::lognormal_cdf(10.0, 0.0, 1.0), 0.98);
}

TEST(Discretize, PreservesMeanApproximately) {
  const double mean = 100.0;
  const auto dist = financial::discretize_lognormal(mean, 0.5, 2.0, 512);
  EXPECT_NEAR(dist.mean(), mean, 0.05 * mean);
}

TEST(Discretize, ZeroCvGivesPointMass) {
  const auto dist = financial::discretize_lognormal(40.0, 0.0, 10.0, 16);
  EXPECT_DOUBLE_EQ(dist.variance(), 0.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 40.0);
}

TEST(Discretize, ZeroMeanGivesZeroPointMass) {
  const auto dist = financial::discretize_lognormal(0.0, 0.5, 1.0, 16);
  EXPECT_DOUBLE_EQ(dist.mean(), 0.0);
}

TEST(Discretize, HigherCvMoreVariance) {
  const auto narrow = financial::discretize_lognormal(100.0, 0.2, 1.0, 1024);
  const auto wide = financial::discretize_lognormal(100.0, 0.8, 1.0, 1024);
  EXPECT_GT(wide.variance(), narrow.variance());
}

TEST(Discretize, MassSumsToOne) {
  const auto dist = financial::discretize_lognormal(50.0, 0.6, 5.0, 64);
  double total = 0.0;
  for (double p : dist.mass()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Discretize, RejectsBadArguments) {
  EXPECT_THROW(financial::discretize_lognormal(-1.0, 0.5, 1.0, 16), std::invalid_argument);
  EXPECT_THROW(financial::discretize_lognormal(1.0, -0.5, 1.0, 16), std::invalid_argument);
  EXPECT_THROW(financial::discretize_lognormal(1.0, 0.5, 0.0, 16), std::invalid_argument);
  EXPECT_THROW(financial::discretize_lognormal(1.0, 0.5, 1.0, 0), std::invalid_argument);
}

// --- Distribution engine ------------------------------------------------------

class DistributionEngineTest : public ::testing::Test {
 protected:
  static core::Portfolio make_portfolio(financial::LayerTerms terms) {
    const elt::EventLossTable table({{0, 100.0}, {1, 200.0}, {2, 300.0}});
    core::Layer layer;
    layer.id = 1;
    core::LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess, table, 10);
    layer.elts.push_back(std::move(layer_elt));
    layer.terms = terms;
    core::Portfolio portfolio;
    portfolio.layers.push_back(std::move(layer));
    return portfolio;
  }

  static yet::YearEventTable make_yet() {
    // Trial 0: {0,1}; trial 1: {2}; trial 2: {}.
    return yet::YearEventTable({0, 1, 2}, {0.1f, 0.2f, 0.3f}, {0, 2, 3, 3});
  }
};

TEST_F(DistributionEngineTest, ZeroCvReproducesScalarEngine) {
  const auto portfolio = make_portfolio(financial::LayerTerms{});
  const auto yet_table = make_yet();

  core::DistributionOptions options;
  options.coefficient_of_variation = 0.0;
  options.grid_size = 2048;
  options.bin_width = 1.0;  // exact grid for integer losses
  const auto result = core::run_distribution_analysis(portfolio, yet_table, options);

  const auto ylt = core::run_sequential(portfolio, yet_table);
  const double scalar_mean = metrics::summarize(ylt.layer_losses(0)).mean();
  ASSERT_EQ(result.layer_distributions.size(), 1u);
  EXPECT_NEAR(result.layer_distributions[0].mean(), scalar_mean, 1e-9);
}

TEST_F(DistributionEngineTest, ZeroCvWithTermsReproducesScalarEngine) {
  financial::LayerTerms terms;
  terms.occurrence_retention = 150.0;
  terms.occurrence_limit = 100.0;
  terms.aggregate_retention = 30.0;
  terms.aggregate_limit = 120.0;
  const auto portfolio = make_portfolio(terms);
  const auto yet_table = make_yet();

  core::DistributionOptions options;
  options.coefficient_of_variation = 0.0;
  options.grid_size = 1024;
  options.bin_width = 1.0;
  const auto result = core::run_distribution_analysis(portfolio, yet_table, options);

  const auto ylt = core::run_sequential(portfolio, yet_table);
  EXPECT_NEAR(result.layer_distributions[0].mean(),
              metrics::summarize(ylt.layer_losses(0)).mean(), 1e-9);
}

TEST_F(DistributionEngineTest, SecondaryUncertaintyWidensButKeepsMean) {
  // Without terms, E[sum of lognormals] == sum of means: the distribution
  // engine's mean must match the scalar mean even at cv > 0 (up to grid
  // error), while the variance becomes positive.
  const auto portfolio = make_portfolio(financial::LayerTerms{});
  const auto yet_table = make_yet();

  core::DistributionOptions options;
  options.coefficient_of_variation = 0.4;
  options.grid_size = 4096;
  options.bin_width = 0.5;
  const auto result = core::run_distribution_analysis(portfolio, yet_table, options);

  const auto ylt = core::run_sequential(portfolio, yet_table);
  const double scalar_mean = metrics::summarize(ylt.layer_losses(0)).mean();
  EXPECT_NEAR(result.layer_distributions[0].mean(), scalar_mean, 0.03 * scalar_mean);
  EXPECT_GT(result.layer_distributions[0].variance(), 0.0);
}

TEST_F(DistributionEngineTest, UncertaintyChangesCededMeanUnderTerms) {
  // With a retention, Jensen's inequality bites: E[EoL(X)] != EoL(E[X]).
  // A retention just above the mean means only the upside tail cedes, so
  // the distribution-mode ceded mean must *exceed* the scalar one.
  financial::LayerTerms terms;
  terms.occurrence_retention = 350.0;  // above every mean event loss
  const auto portfolio = make_portfolio(terms);
  const auto yet_table = make_yet();

  const auto ylt = core::run_sequential(portfolio, yet_table);
  const double scalar_mean = metrics::summarize(ylt.layer_losses(0)).mean();
  EXPECT_DOUBLE_EQ(scalar_mean, 0.0);  // mean losses never reach the retention

  core::DistributionOptions options;
  options.coefficient_of_variation = 0.8;
  options.grid_size = 2048;
  options.bin_width = 1.0;
  const auto result = core::run_distribution_analysis(portfolio, yet_table, options);
  EXPECT_GT(result.layer_distributions[0].mean(), 0.0);
}

TEST_F(DistributionEngineTest, AggregateLimitCapsSupport) {
  financial::LayerTerms terms;
  terms.aggregate_limit = 250.0;
  const auto portfolio = make_portfolio(terms);

  core::DistributionOptions options;
  options.coefficient_of_variation = 0.5;
  options.grid_size = 1024;
  options.bin_width = 1.0;
  const auto result = core::run_distribution_analysis(portfolio, make_yet(), options);
  // No mass beyond the aggregate limit.
  EXPECT_DOUBLE_EQ(result.layer_distributions[0].exceedance(250.0), 0.0);
}

TEST_F(DistributionEngineTest, AutoBinWidthCoversAggregateLimit) {
  financial::LayerTerms terms;
  terms.aggregate_retention = 100.0;
  terms.aggregate_limit = 400.0;
  const auto portfolio = make_portfolio(terms);

  core::DistributionOptions options;  // bin_width = 0 -> auto
  options.grid_size = 256;
  const auto result = core::run_distribution_analysis(portfolio, make_yet(), options);
  ASSERT_EQ(result.bin_widths.size(), 1u);
  // Grid top >= retention + limit.
  EXPECT_GE(result.bin_widths[0] * static_cast<double>(options.grid_size - 1), 500.0 - 1e-9);
}

TEST_F(DistributionEngineTest, EmptyTrialContributesPointMassAtZero) {
  const auto portfolio = make_portfolio(financial::LayerTerms{});
  const auto result = core::run_distribution_analysis(portfolio, make_yet(),
                                                      {1024, 1.0, 0.3});
  // Trial 2 is empty: at least 1/3 of annual mass sits at zero.
  EXPECT_GE(result.layer_distributions[0].mass()[0], 1.0 / 3.0 - 1e-9);
}

TEST_F(DistributionEngineTest, RejectsBadOptions) {
  const auto portfolio = make_portfolio(financial::LayerTerms{});
  EXPECT_THROW(core::run_distribution_analysis(portfolio, make_yet(), {1, 1.0, 0.3}),
               std::invalid_argument);
  EXPECT_THROW(core::run_distribution_analysis(portfolio, make_yet(), {16, -1.0, 0.3}),
               std::invalid_argument);
}

}  // namespace
