// Tests for Euler / co-TVaR capital allocation.
#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/allocation.hpp"
#include "metrics/statistics.hpp"
#include "rng/distributions.hpp"
#include "rng/stream.hpp"

namespace {

using namespace are;
using metrics::allocate_tvar;
using metrics::diversification_benefit;

core::YearLossTable random_ylt(std::size_t layers, std::size_t trials, std::uint64_t seed) {
  std::vector<std::uint32_t> ids(layers);
  for (std::size_t l = 0; l < layers; ++l) ids[l] = static_cast<std::uint32_t>(l + 1);
  core::YearLossTable ylt(std::move(ids), trials);
  rng::Stream stream(seed, 13, 0);
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t t = 0; t < trials; ++t) {
      ylt.at(l, t) = rng::sample_lognormal(stream, 10.0 + static_cast<double>(l), 0.8);
    }
  }
  return ylt;
}

TEST(Allocation, ContributionsSumToPortfolioTvar) {
  const auto ylt = random_ylt(4, 5'000, 1);
  const auto allocation = allocate_tvar(ylt, 0.99);
  double sum = 0.0;
  for (double contribution : allocation.layer_contributions) sum += contribution;
  EXPECT_NEAR(sum, allocation.portfolio_tvar, 1e-6 * allocation.portfolio_tvar);
}

TEST(Allocation, SharesSumToOne) {
  const auto ylt = random_ylt(3, 2'000, 2);
  const auto allocation = allocate_tvar(ylt, 0.95);
  double total_share = 0.0;
  for (double share : allocation.layer_shares) total_share += share;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(Allocation, PortfolioTvarMatchesDirectComputation) {
  const auto ylt = random_ylt(2, 3'000, 3);
  const auto allocation = allocate_tvar(ylt, 0.99);
  std::vector<double> portfolio = ylt.portfolio_losses();
  std::sort(portfolio.begin(), portfolio.end());
  EXPECT_NEAR(allocation.portfolio_tvar, metrics::tail_value_at_risk(portfolio, 0.99),
              1e-6 * allocation.portfolio_tvar);
}

TEST(Allocation, SingleLayerGetsEverything) {
  const auto ylt = random_ylt(1, 1'000, 4);
  const auto allocation = allocate_tvar(ylt, 0.9);
  ASSERT_EQ(allocation.layer_contributions.size(), 1u);
  EXPECT_NEAR(allocation.layer_shares[0], 1.0, 1e-12);
}

TEST(Allocation, IdenticalLayersSplitEvenly) {
  core::YearLossTable ylt({1, 2}, 100);
  for (std::size_t t = 0; t < 100; ++t) {
    const double loss = static_cast<double>(t);
    ylt.at(0, t) = loss;
    ylt.at(1, t) = loss;
  }
  const auto allocation = allocate_tvar(ylt, 0.9);
  EXPECT_NEAR(allocation.layer_shares[0], 0.5, 1e-12);
  EXPECT_NEAR(allocation.layer_shares[1], 0.5, 1e-12);
}

TEST(Allocation, TailDriverGetsLargerShare) {
  // Layer 1 is flat; layer 2 only loses in the tail trials.
  core::YearLossTable ylt({1, 2}, 1'000);
  for (std::size_t t = 0; t < 1'000; ++t) {
    ylt.at(0, t) = 100.0;
    ylt.at(1, t) = t >= 990 ? 10'000.0 : 0.0;
  }
  const auto allocation = allocate_tvar(ylt, 0.99);
  EXPECT_GT(allocation.layer_shares[1], 0.9);
}

TEST(Allocation, HedgeGetsNegativeShare) {
  // Layer 2 pays back (negative loss) exactly in layer 1's bad years —
  // post-filter YLTs (profit commissions) can carry negative entries.
  core::YearLossTable ylt({1, 2}, 1'000);
  for (std::size_t t = 0; t < 1'000; ++t) {
    ylt.at(0, t) = static_cast<double>(t);
    ylt.at(1, t) = t >= 900 ? -100.0 : 0.0;
  }
  const auto allocation = allocate_tvar(ylt, 0.95);
  EXPECT_LT(allocation.layer_contributions[1], 0.0);
}

TEST(Allocation, RejectsBadLevel) {
  const auto ylt = random_ylt(2, 100, 5);
  EXPECT_THROW(allocate_tvar(ylt, 0.0), std::invalid_argument);
  EXPECT_THROW(allocate_tvar(ylt, 1.0), std::invalid_argument);
  EXPECT_THROW(allocate_tvar(core::YearLossTable{}, 0.5), std::invalid_argument);
}

TEST(Diversification, IndependentLayersBenefit) {
  const auto ylt = random_ylt(5, 10'000, 6);
  const double benefit = diversification_benefit(ylt, 0.99);
  EXPECT_GT(benefit, 0.05);
  EXPECT_LT(benefit, 0.9);
}

TEST(Diversification, ComonotonicLayersNoBenefit) {
  core::YearLossTable ylt({1, 2}, 500);
  for (std::size_t t = 0; t < 500; ++t) {
    ylt.at(0, t) = static_cast<double>(t);
    ylt.at(1, t) = 2.0 * static_cast<double>(t);  // same ordering
  }
  EXPECT_NEAR(diversification_benefit(ylt, 0.95), 0.0, 1e-9);
}

TEST(Diversification, AllZeroYltIsZero) {
  const core::YearLossTable ylt({1, 2}, 100);
  EXPECT_DOUBLE_EQ(diversification_benefit(ylt, 0.9), 0.0);
}

}  // namespace
