// Tests for the many-core device cost model: occupancy arithmetic and the
// qualitative shapes the paper reports (Figs 4, 5a, 5b and the 6a ratios).
#include <gtest/gtest.h>

#include "simgpu/device_spec.hpp"
#include "simgpu/kernel_model.hpp"

namespace {

using namespace are::simgpu;

const DeviceSpec kDevice = DeviceSpec::tesla_c2075();

WorkloadShape paper_workload() {
  WorkloadShape shape;
  shape.num_trials = 1'000'000;
  shape.events_per_trial = 1000.0;
  shape.elts_per_layer = 15.0;
  shape.num_layers = 1;
  return shape;
}

// --- Occupancy ----------------------------------------------------------------

TEST(Occupancy, BlockCapBindsForSmallBlocks) {
  // 128 threads: 8-block cap -> 1024 threads, 32 of 48 warps.
  const Occupancy occupancy = compute_occupancy(kDevice, 128, 0);
  EXPECT_EQ(occupancy.blocks_per_sm, 8);
  EXPECT_EQ(occupancy.active_threads_per_sm, 1024);
  EXPECT_EQ(occupancy.active_warps_per_sm, 32);
  EXPECT_FALSE(occupancy.shared_overflow);
}

TEST(Occupancy, ThreadCapBindsForLargeBlocks) {
  // 256 threads: min(8, 1536/256=6) = 6 blocks -> full 1536 threads.
  const Occupancy occupancy = compute_occupancy(kDevice, 256, 0);
  EXPECT_EQ(occupancy.blocks_per_sm, 6);
  EXPECT_EQ(occupancy.active_threads_per_sm, 1536);
  EXPECT_DOUBLE_EQ(occupancy.warp_occupancy, 1.0);
}

TEST(Occupancy, SharedMemoryCapBinds) {
  // 20KB per block: only 2 blocks fit in 48KB.
  const Occupancy occupancy = compute_occupancy(kDevice, 128, 20 * 1024);
  EXPECT_EQ(occupancy.blocks_per_sm, 2);
  EXPECT_FALSE(occupancy.shared_overflow);
}

TEST(Occupancy, OverflowWhenOneBlockExceedsCapacity) {
  const Occupancy occupancy = compute_occupancy(kDevice, 128, 64 * 1024);
  EXPECT_TRUE(occupancy.shared_overflow);
  EXPECT_EQ(occupancy.blocks_per_sm, 1);
}

TEST(Occupancy, OddBlockSizeStillAtLeastOneBlock) {
  const Occupancy occupancy = compute_occupancy(kDevice, 1536, 0);
  EXPECT_GE(occupancy.blocks_per_sm, 1);
}

// --- Shared-memory accounting (the "192 threads at chunk 4" constraint) --------

TEST(ChunkSharedBytes, MatchesPaperConstraint) {
  // Paper §III-C-3: "With a chunk size of 4 the maximum number of threads
  // that can be supported is 192."
  EXPECT_EQ(max_threads_for_chunk(kDevice, 4), 192);
}

TEST(ChunkSharedBytes, ScalesInverselyWithChunk) {
  EXPECT_GT(max_threads_for_chunk(kDevice, 1), max_threads_for_chunk(kDevice, 4));
  EXPECT_GT(max_threads_for_chunk(kDevice, 4), max_threads_for_chunk(kDevice, 12));
}

// --- Basic kernel (Fig 4) -------------------------------------------------------

TEST(BasicKernel, Fig4Shape) {
  const WorkloadShape shape = paper_workload();
  const double t128 = estimate_basic_kernel(kDevice, shape, 128).seconds;
  const double t256 = estimate_basic_kernel(kDevice, shape, 256).seconds;
  const double t384 = estimate_basic_kernel(kDevice, shape, 384).seconds;
  const double t512 = estimate_basic_kernel(kDevice, shape, 512).seconds;
  const double t640 = estimate_basic_kernel(kDevice, shape, 640).seconds;

  // 128 threads under-occupies; 256 is the knee; beyond that returns
  // diminish greatly (paper Fig 4).
  EXPECT_GT(t128, t256 * 1.02);
  EXPECT_NEAR(t384, t256, t256 * 0.05);
  EXPECT_NEAR(t512, t256, t256 * 0.05);
  EXPECT_LT(std::abs(t640 - t256) / t256, 0.15);
}

TEST(BasicKernel, PaperScaleAbsoluteTime) {
  // Paper: basic GPU implementation runs the 1M-trial workload in 38.47s.
  // The model should land in the right neighbourhood (shape, not testbed).
  const double seconds = estimate_basic_kernel(kDevice, paper_workload(), 256).seconds;
  EXPECT_GT(seconds, 25.0);
  EXPECT_LT(seconds, 55.0);
}

TEST(BasicKernel, LinearInTrialsAndElts) {
  WorkloadShape shape = paper_workload();
  const double base = estimate_basic_kernel(kDevice, shape, 256).seconds;
  shape.num_trials *= 2;
  EXPECT_NEAR(estimate_basic_kernel(kDevice, shape, 256).seconds, 2.0 * base, 0.15 * base);
  shape = paper_workload();
  shape.num_layers = 3;
  EXPECT_NEAR(estimate_basic_kernel(kDevice, shape, 256).seconds, 3.0 * base, 0.15 * base);
}

TEST(BasicKernel, RejectsBadArguments) {
  EXPECT_THROW(estimate_basic_kernel(kDevice, paper_workload(), 0), std::invalid_argument);
  EXPECT_THROW(estimate_basic_kernel(kDevice, paper_workload(), 4096), std::invalid_argument);
  WorkloadShape degenerate;
  degenerate.num_trials = 0;
  EXPECT_THROW(estimate_basic_kernel(kDevice, degenerate, 256), std::invalid_argument);
}

// --- Chunked kernel (Figs 5a, 5b) -----------------------------------------------

TEST(ChunkedKernel, FasterThanBasicAtTunedSettings) {
  // Paper Fig 6a: optimised is 1.7x faster than basic.
  const WorkloadShape shape = paper_workload();
  const double basic = estimate_basic_kernel(kDevice, shape, 256).seconds;
  const double chunked = estimate_chunked_kernel(kDevice, shape, 192, 4).seconds;
  const double improvement = basic / chunked;
  EXPECT_GT(improvement, 1.4);
  EXPECT_LT(improvement, 2.2);
}

TEST(ChunkedKernel, PaperScaleAbsoluteTime) {
  // Paper: optimised GPU runs the 1M-trial workload in 22.72 s.
  const double seconds = estimate_chunked_kernel(kDevice, paper_workload(), 192, 4).seconds;
  EXPECT_GT(seconds, 15.0);
  EXPECT_LT(seconds, 32.0);
}

TEST(ChunkedKernel, Fig5aShape) {
  // At 64 threads/block (so chunk 12 exactly fills shared memory): flat
  // plateau from 4 to 12, rapid deterioration beyond.
  const WorkloadShape shape = paper_workload();
  const double c4 = estimate_chunked_kernel(kDevice, shape, 64, 4).seconds;
  const double c8 = estimate_chunked_kernel(kDevice, shape, 64, 8).seconds;
  const double c12 = estimate_chunked_kernel(kDevice, shape, 64, 12).seconds;
  const double c16 = estimate_chunked_kernel(kDevice, shape, 64, 16).seconds;
  const double c24 = estimate_chunked_kernel(kDevice, shape, 64, 24).seconds;

  EXPECT_NEAR(c8, c4, 0.10 * c4);   // flat plateau
  EXPECT_NEAR(c12, c4, 0.10 * c4);  // still flat at 12
  EXPECT_GT(c16, c12 * 1.2);        // past capacity: cliff
  EXPECT_GT(c24, c16);              // and it keeps deteriorating
}

TEST(ChunkedKernel, SharedOverflowFlagSetPastCapacity) {
  const auto fits = estimate_chunked_kernel(kDevice, paper_workload(), 64, 12);
  const auto spills = estimate_chunked_kernel(kDevice, paper_workload(), 64, 16);
  EXPECT_FALSE(fits.occupancy.shared_overflow);
  EXPECT_TRUE(spills.occupancy.shared_overflow);
}

TEST(ChunkedKernel, Fig5bShape) {
  // Threads 32..192 at chunk 4 (multiples of the 32-wide warp): small
  // gradual improvement, nothing dramatic.
  const WorkloadShape shape = paper_workload();
  const double t32 = estimate_chunked_kernel(kDevice, shape, 32, 4).seconds;
  const double t96 = estimate_chunked_kernel(kDevice, shape, 96, 4).seconds;
  const double t192 = estimate_chunked_kernel(kDevice, shape, 192, 4).seconds;
  EXPECT_GE(t32, t96 * 0.999);
  EXPECT_GE(t96, t192 * 0.999);
  EXPECT_LT(t32 / t192, 1.35);  // "small gradual improvement"
}

TEST(ChunkedKernel, RejectsBadChunk) {
  EXPECT_THROW(estimate_chunked_kernel(kDevice, paper_workload(), 192, 0),
               std::invalid_argument);
}

TEST(KernelEstimate, DiagnosticsAreConsistent) {
  const auto estimate = estimate_chunked_kernel(kDevice, paper_workload(), 192, 4);
  EXPECT_GT(estimate.bandwidth_bound_seconds, 0.0);
  EXPECT_GT(estimate.latency_bound_seconds, 0.0);
  EXPECT_GE(estimate.seconds, std::max(estimate.bandwidth_bound_seconds,
                                       estimate.latency_bound_seconds));
}

}  // namespace
