// Tests for the stochastic event catalog: construction invariants,
// reproducibility, rate normalisation, peril mix and seasonality profiles.
#include <gtest/gtest.h>

#include <cmath>

#include "catalog/event_catalog.hpp"

namespace {

using namespace are::catalog;

CatalogConfig small_config() {
  CatalogConfig config;
  config.num_events = 5'000;
  config.expected_events_per_year = 1000.0;
  return config;
}

TEST(EventCatalog, BuildsRequestedSize) {
  const EventCatalog catalog = build_catalog(small_config());
  EXPECT_EQ(catalog.size(), 5'000u);
  EXPECT_FALSE(catalog.empty());
}

TEST(EventCatalog, IdsAreDenseAndOrdered) {
  const EventCatalog catalog = build_catalog(small_config());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[static_cast<EventId>(i)].id, i);
  }
}

TEST(EventCatalog, TotalRateMatchesTarget) {
  const EventCatalog catalog = build_catalog(small_config());
  EXPECT_NEAR(catalog.total_annual_rate(), 1000.0, 1e-6);
}

TEST(EventCatalog, RatesVectorConsistent) {
  const EventCatalog catalog = build_catalog(small_config());
  const auto rates = catalog.rates();
  ASSERT_EQ(rates.size(), catalog.size());
  double total = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_GE(rates[i], 0.0);
    EXPECT_EQ(rates[i], catalog[static_cast<EventId>(i)].annual_rate);
    total += rates[i];
  }
  EXPECT_NEAR(total, catalog.total_annual_rate(), 1e-9);
}

TEST(EventCatalog, DeterministicInSeed) {
  const EventCatalog a = build_catalog(small_config());
  const EventCatalog b = build_catalog(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ea = a[static_cast<EventId>(i)];
    const auto& eb = b[static_cast<EventId>(i)];
    EXPECT_EQ(ea.peril, eb.peril);
    EXPECT_EQ(ea.annual_rate, eb.annual_rate);
    EXPECT_EQ(ea.intensity_mu, eb.intensity_mu);
  }
}

TEST(EventCatalog, DifferentSeedsDiffer) {
  CatalogConfig config = small_config();
  const EventCatalog a = build_catalog(config);
  config.seed += 1;
  const EventCatalog b = build_catalog(config);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i) {
    any_difference = a[static_cast<EventId>(i)].annual_rate != b[static_cast<EventId>(i)].annual_rate;
  }
  EXPECT_TRUE(any_difference);
}

TEST(EventCatalog, PerilMixApproximatesWeights) {
  CatalogConfig config = small_config();
  config.num_events = 50'000;
  const EventCatalog catalog = build_catalog(config);
  for (int p = 0; p < kPerilCount; ++p) {
    const double fraction =
        static_cast<double>(catalog.count_of(static_cast<Peril>(p))) /
        static_cast<double>(catalog.size());
    EXPECT_NEAR(fraction, config.peril_weights[p], 0.02) << to_string(static_cast<Peril>(p));
  }
}

TEST(EventCatalog, SeverityParametersInPlausibleRanges) {
  const EventCatalog catalog = build_catalog(small_config());
  for (const CatalogEvent& event : catalog.events()) {
    EXPECT_GT(event.intensity_mu, 0.0);
    EXPECT_GT(event.intensity_sigma, 0.0);
    EXPECT_GT(event.footprint_decay, 0.0);
    EXPECT_GE(event.centre_x, 0.0f);
    EXPECT_LT(event.centre_x, 1.0f);
    EXPECT_GE(event.centre_y, 0.0f);
    EXPECT_LT(event.centre_y, 1.0f);
  }
}

TEST(EventCatalog, RateDistributionIsHeavyTailed) {
  // Gamma(0.5) rates: the top 10% of events should carry well over half the
  // total rate (a property real catalogs share).
  CatalogConfig config = small_config();
  config.num_events = 20'000;
  const EventCatalog catalog = build_catalog(config);
  auto rates = catalog.rates();
  std::sort(rates.begin(), rates.end(), std::greater<>());
  double top_decile = 0.0;
  for (std::size_t i = 0; i < rates.size() / 10; ++i) top_decile += rates[i];
  // For Gamma(0.5) rates the top decile carries ~44% of the total; demand
  // clearly more concentration than the uniform 10%.
  EXPECT_GT(top_decile / catalog.total_annual_rate(), 0.35);
}

TEST(EventCatalog, RejectsInvalidConfig) {
  CatalogConfig config = small_config();
  config.num_events = 0;
  EXPECT_THROW(build_catalog(config), std::invalid_argument);

  config = small_config();
  config.expected_events_per_year = 0.0;
  EXPECT_THROW(build_catalog(config), std::invalid_argument);

  config = small_config();
  config.peril_weights[0] = -1.0;
  EXPECT_THROW(build_catalog(config), std::invalid_argument);

  config = small_config();
  for (double& w : config.peril_weights) w = 0.0;
  EXPECT_THROW(build_catalog(config), std::invalid_argument);
}

TEST(EventCatalog, ConstructorRejectsNonDenseIds) {
  std::vector<CatalogEvent> events(2);
  events[0].id = 0;
  events[1].id = 2;  // gap
  EXPECT_THROW(EventCatalog(std::move(events)), std::invalid_argument);
}

TEST(EventCatalog, ConstructorRejectsNegativeRates) {
  std::vector<CatalogEvent> events(1);
  events[0].id = 0;
  events[0].annual_rate = -0.5;
  EXPECT_THROW(EventCatalog(std::move(events)), std::invalid_argument);
}

TEST(Seasonality, ProfilesDistinguishPerils) {
  const SeasonalityProfile hurricane = seasonality_for(Peril::kHurricane);
  const SeasonalityProfile quake = seasonality_for(Peril::kEarthquake);
  // Hurricane peaks late in the year (alpha > beta); earthquakes uniform.
  EXPECT_GT(hurricane.alpha, hurricane.beta);
  EXPECT_DOUBLE_EQ(quake.alpha, 1.0);
  EXPECT_DOUBLE_EQ(quake.beta, 1.0);
}

TEST(Types, StringConversionsCoverAllValues) {
  for (int p = 0; p < kPerilCount; ++p) {
    EXPECT_NE(to_string(static_cast<Peril>(p)), "unknown");
  }
  for (int r = 0; r < kRegionCount; ++r) {
    EXPECT_NE(to_string(static_cast<Region>(r)), "unknown");
  }
}

}  // namespace
