// Tests for the service observability plane (PR 9):
//
//   - obs::Histogram bucket bounds and Snapshot quantile arithmetic (the
//     numbers behind the /metrics histogram families and p* gauges);
//   - live GET /metrics over a real socket while concurrent quotes run:
//     per-source service.quote_ns families, cumulative bucket invariants,
//     one TYPE line per family, uptime and broker-budget gauges;
//   - /healthz liveness flip on broker shutdown, /statusz JSON content
//     (build info, quote counts, armed fault sites, embedder fragment),
//     404 for unknown paths;
//   - the JSONL access log: exactly one line per quote — served, cached,
//     fault-injected (kernel.alloc=once) and broker-rejected alike — with
//     the documented schema, and the --verbose human line rendered from
//     the same entry;
//   - request-id correlation: the id on the wire response appears in the
//     Chrome trace exactly twice per quote (span 'B' args + 'i' instant);
//   - the zero-cost contract: served CSV bytes identical with telemetry
//     on and a scraper hammering /metrics mid-quote.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis.hpp"
#include "elt/synthetic.hpp"
#include "fault/fault_injection.hpp"
#include "io/csv.hpp"
#include "obs/export.hpp"
#include "obs/metrics_server.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "service/access_log.hpp"
#include "service/analysis_service.hpp"
#include "service/request_broker.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;

constexpr std::size_t kUniverse = 20'000;

class ObsServer : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::set_trace_enabled(false);
    obs::TelemetryRegistry::global().reset();
    obs::TraceBuffer::global().clear();
    fault::FaultRegistry::global().disarm_all();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::set_trace_enabled(false);
    fault::FaultRegistry::global().disarm_all();
  }
};

core::Portfolio make_portfolio(std::size_t num_layers = 2, std::size_t elts_per_layer = 2) {
  core::Portfolio portfolio;
  for (std::size_t l = 0; l < num_layers; ++l) {
    core::Layer layer;
    layer.id = static_cast<std::uint32_t>(l + 1);
    layer.terms.occurrence_retention = 200e3;
    layer.terms.occurrence_limit = 2e6;
    layer.terms.aggregate_retention = 100e3;
    layer.terms.aggregate_limit = 25e6;
    for (std::size_t e = 0; e < elts_per_layer; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = kUniverse;
      config.entries = 2'000;
      config.elt_id = l * 100 + e;
      core::LayerElt layer_elt;
      layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess,
                                          elt::make_synthetic_elt(config), kUniverse);
      layer_elt.terms.occurrence_retention = 5e3;
      layer_elt.terms.share = 0.8;
      layer.elts.push_back(std::move(layer_elt));
    }
    portfolio.layers.push_back(std::move(layer));
  }
  return portfolio;
}

yet::YearEventTable make_yet(std::uint64_t trials = 300, double events = 20.0) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = events;
  config.count_model = yet::CountModel::kPoisson;
  config.seed = 2012;
  return yet::generate_uniform_yet(config, kUniverse);
}

/// A quote whose fingerprint is unique per (salt): layer-1 terms override
/// varies with the salt. Delta replay is disabled so every distinct salt
/// takes the cold path (terms-only tweaks would otherwise ride the
/// ground-up replay once a cold run captures — covered by test_service).
service::QuoteRequest salted_request(std::uint64_t salt) {
  service::QuoteRequest request;
  request.portfolio_id = "book";
  request.use_delta = false;
  service::TermsOverride override_terms;
  override_terms.layer_id = 1;
  override_terms.terms.occurrence_retention = 100e3 + 1e3 * static_cast<double>(salt);
  override_terms.terms.occurrence_limit = 1.5e6;
  override_terms.terms.aggregate_retention = 0.0;
  override_terms.terms.aggregate_limit = 20e6;
  request.overrides.push_back(override_terms);
  return request;
}

/// Value of one exposition series (full name incl. labels), or -1 when the
/// series line is absent.
double series_value(const std::string& exposition, const std::string& series) {
  const std::string text = "\n" + exposition;
  const std::string needle = "\n" + series + " ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::stod(text.substr(at + needle.size()));
}

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + 1)) {
    ++count;
  }
  return count;
}

std::string unique_temp_path(const std::string& stem) {
  const auto path = std::filesystem::temp_directory_path() /
                    (stem + "." + std::to_string(::getpid()) + ".jsonl");
  std::filesystem::remove(path);
  return path.string();
}

// --- Histogram arithmetic -----------------------------------------------------

TEST_F(ObsServer, HistogramBucketBoundsAndQuantileArithmetic) {
  // Power-of-two bounds: bucket b covers [2^(b-1), 2^b - 1], bucket 0 is
  // exactly {0} — the le= bounds of the Prometheus exposition.
  EXPECT_EQ(obs::Histogram::bucket_lower_ns(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_upper_ns(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_lower_ns(6), 32u);
  EXPECT_EQ(obs::Histogram::bucket_upper_ns(6), 63u);
  EXPECT_EQ(obs::Histogram::bucket_lower_ns(7), 64u);
  EXPECT_EQ(obs::Histogram::bucket_upper_ns(7), 127u);

  obs::TelemetryRegistry registry;
  obs::Histogram& histogram = registry.histogram("t.ns");
  histogram.record_ns(50);
  histogram.record_ns(100);
  const obs::Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const auto& sample = snapshot.histograms.front();
  EXPECT_EQ(sample.buckets[6], 1u);  // 50 in [32, 63]
  EXPECT_EQ(sample.buckets[7], 1u);  // 100 in [64, 127]

  // p50 interpolates to the top of the first sample's bucket; p95/p99
  // interpolate into [64, 127] with the upper bound clamped to the
  // observed max (100); the extremes clamp to min/max.
  EXPECT_EQ(sample.quantile_ns(0.50), 63u);
  EXPECT_EQ(sample.quantile_ns(0.95), 96u);
  EXPECT_EQ(sample.quantile_ns(0.99), 99u);
  EXPECT_EQ(sample.quantile_ns(0.0), 50u);
  EXPECT_EQ(sample.quantile_ns(1.0), 100u);

  // A single sample pins every quantile to itself (min == max clamping).
  obs::Histogram& single = registry.histogram("single.ns");
  single.record_ns(700);
  const obs::Snapshot snapshot2 = registry.snapshot();
  for (const auto& h : snapshot2.histograms) {
    if (h.name != "single.ns") continue;
    for (const double q : {0.0, 0.5, 0.95, 1.0}) {
      EXPECT_EQ(h.quantile_ns(q), 700u) << q;
    }
  }
}

// --- The scrape endpoint against a live service -------------------------------

TEST_F(ObsServer, MetricsEndpointServesLiveHistogramsOverHttp) {
  obs::set_enabled(true);
  service::ServiceConfig config;
  config.metrics_port = 0;  // ephemeral
  service::AnalysisService analysis_service(make_yet(), config);
  analysis_service.register_portfolio("book", make_portfolio());
  ASSERT_NE(analysis_service.metrics_server(), nullptr);
  const int port = analysis_service.metrics_server()->port();
  ASSERT_GT(port, 0);

  // Concurrent quoting: 4 threads x 2 distinct cold quotes each.
  std::vector<std::thread> threads;
  for (std::uint64_t t = 0; t < 4; ++t) {
    threads.emplace_back([&analysis_service, t] {
      for (std::uint64_t i = 0; i < 2; ++i) {
        const auto response = analysis_service.quote(salted_request(t * 10 + i));
        ASSERT_EQ(response.source, service::QuoteSource::kCold);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // One more cold + its cache hit from this thread.
  ASSERT_EQ(analysis_service.quote(salted_request(99)).source, service::QuoteSource::kCold);
  ASSERT_EQ(analysis_service.quote(salted_request(99)).source, service::QuoteSource::kCached);

  const std::string text = obs::http_get("127.0.0.1", port, "/metrics");
  EXPECT_EQ(series_value(text, "are_service_requests_total"), 10.0);
  EXPECT_EQ(series_value(text, "are_service_quote_ns_count{source=\"cold\"}"), 9.0);
  EXPECT_EQ(series_value(text, "are_service_quote_ns_count{source=\"cached\"}"), 1.0);
  EXPECT_GT(series_value(text, "are_service_quote_ns_p50_ns{source=\"cold\"}"), 0.0);
  EXPECT_GE(series_value(text, "are_uptime_seconds"), 0.0);
  EXPECT_GE(series_value(text, "are_service_inflight_cost_budget"), 0.0);

  // One TYPE line covers all labelled members of the quote_ns family.
  EXPECT_EQ(count_occurrences(text, "# TYPE are_service_quote_ns histogram"), 1u);

  // Histogram invariants on the live exposition: the cold family's bucket
  // values are cumulative non-decreasing and +Inf equals _count.
  std::vector<double> buckets;
  const std::string prefix = "are_service_quote_ns_bucket{source=\"cold\",le=\"";
  std::istringstream lines(text);
  std::string line;
  bool saw_inf = false;
  while (std::getline(lines, line)) {
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    buckets.push_back(std::stod(line.substr(line.rfind(' ') + 1)));
    saw_inf = line.find("le=\"+Inf\"") != std::string::npos;
  }
  ASSERT_GE(buckets.size(), 2u);
  EXPECT_TRUE(saw_inf) << "last cold bucket line must be le=\"+Inf\"";
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LE(buckets[i - 1], buckets[i]) << "bucket counts must be cumulative";
  }
  EXPECT_EQ(buckets.back(), 9.0);
}

TEST_F(ObsServer, HealthzStatuszAndUnknownPaths) {
  obs::set_enabled(true);
  service::ServiceConfig config;
  config.metrics_port = 0;
  service::AnalysisService analysis_service(make_yet(), config);
  analysis_service.register_portfolio("book", make_portfolio());
  (void)analysis_service.quote(salted_request(1));
  obs::MetricsServer* server = analysis_service.metrics_server();
  ASSERT_NE(server, nullptr);

  const std::string healthz = server->handle_path("/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("ok\n"), std::string::npos);

  {
    const fault::ScopedArm scoped("kernel.alloc=never,io.read=always");
    const std::string statusz = server->handle_path("/statusz");
    EXPECT_NE(statusz.find("\"build\""), std::string::npos);
    EXPECT_NE(statusz.find("\"uptime_seconds\""), std::string::npos);
    EXPECT_NE(statusz.find("\"requests\":1"), std::string::npos);
    EXPECT_NE(statusz.find("\"cold\":1"), std::string::npos);
    EXPECT_NE(statusz.find("\"io.read\""), std::string::npos) << "armed site must be listed";
    EXPECT_NE(statusz.find("\"default_engine\":\"fused\""), std::string::npos)
        << "embedder fragment must be merged";
  }

  EXPECT_NE(server->handle_path("/nope").find("404"), std::string::npos);

  // Liveness flips once the broker starts draining.
  analysis_service.broker().shutdown();
  const std::string draining = server->handle_path("/healthz");
  EXPECT_NE(draining.find("503"), std::string::npos);
  EXPECT_NE(draining.find("shutting-down"), std::string::npos);
}

// --- The access log -----------------------------------------------------------

TEST_F(ObsServer, AccessLogWritesOneJsonLinePerQuote) {
  obs::set_enabled(true);
  const std::string log_path = unique_temp_path("are_obs_access");
  {
    service::ServiceConfig config;
    config.access_log_path = log_path;
    service::AnalysisService analysis_service(make_yet(), config);
    analysis_service.register_portfolio("book", make_portfolio());
    ASSERT_NE(analysis_service.access_log(), nullptr);

    ASSERT_EQ(analysis_service.quote(salted_request(1)).source, service::QuoteSource::kCold);
    ASSERT_EQ(analysis_service.quote(salted_request(1)).source, service::QuoteSource::kCached);

    // A fault-injected failure still logs — chaos runs are self-describing.
    const fault::ScopedArm scoped("kernel.alloc=once");
    auto faulted = salted_request(2);
    faulted.use_cache = false;
    const auto failed = analysis_service.quote(faulted);
    ASSERT_EQ(failed.source, service::QuoteSource::kFailed);
  }

  std::ifstream log(log_path);
  ASSERT_TRUE(log.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(log, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u) << "exactly one line per quote";

  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    for (const char* key :
         {"\"request_id\":\"q-", "\"portfolio\":\"book\"", "\"source\":", "\"status\":",
          "\"code\":", "\"engine\":", "\"fingerprint\":", "\"admission\":", "\"reason\":",
          "\"queue_wait_seconds\":", "\"deadline_ms\":", "\"wall_ns\":", "\"elt_lookups\":",
          "\"bytes_spilled\":", "\"fault_fires\":{"}) {
      EXPECT_NE(line.find(key), std::string::npos) << key << " missing in: " << line;
    }
  }
  EXPECT_NE(lines[0].find("\"request_id\":\"q-000001\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"source\":\"cold\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"fault_fires\":{}"), std::string::npos);
  EXPECT_NE(lines[1].find("\"source\":\"cached\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"source\":\"failed\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"fault_fires\":{\"kernel.alloc\":1}"), std::string::npos);
  std::filesystem::remove(log_path);
}

TEST_F(ObsServer, AccessLogRecordsBrokerRejections) {
  obs::set_enabled(true);
  const std::string log_path = unique_temp_path("are_obs_reject");
  {
    service::ServiceConfig config;
    config.access_log_path = log_path;
    config.broker.max_request_cost = 1;  // every real quote is too large
    service::AnalysisService analysis_service(make_yet(), config);
    analysis_service.register_portfolio("book", make_portfolio());
    const auto response = analysis_service.quote(salted_request(1));
    ASSERT_EQ(response.source, service::QuoteSource::kRejected);

    // The --verbose stderr line renders from the SAME entry as the log.
    const auto entry = service::make_log_entry(salted_request(1), response);
    const std::string human = service::access_log_human(entry);
    EXPECT_EQ(human.compare(0, 8, "[serve] "), 0);
    EXPECT_NE(human.find(response.request_id), std::string::npos);
    EXPECT_NE(human.find("source=rejected"), std::string::npos);
  }

  std::ifstream log(log_path);
  std::string line;
  ASSERT_TRUE(std::getline(log, line));
  EXPECT_NE(line.find("\"source\":\"rejected\""), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"rejected\""), std::string::npos);
  EXPECT_NE(line.find("\"admission\":\"rejected\""), std::string::npos);
  EXPECT_NE(line.find("\"reason\":\"request-too-large\""), std::string::npos);
  EXPECT_FALSE(std::getline(log, line)) << "rejections log exactly one line";
  std::filesystem::remove(log_path);
}

// --- Request-id correlation ---------------------------------------------------

TEST_F(ObsServer, RequestIdsCorrelateResponseAndTrace) {
  obs::set_enabled(true);
  obs::set_trace_enabled(true);
  service::AnalysisService analysis_service(make_yet());
  analysis_service.register_portfolio("book", make_portfolio());

  const auto first = analysis_service.quote(salted_request(1));
  const auto second = analysis_service.quote(salted_request(2));
  EXPECT_EQ(first.request_id, "q-000001");
  EXPECT_EQ(second.request_id, "q-000002");

  std::ostringstream trace;
  obs::TraceBuffer::global().write_chrome_json(trace);
  const std::string json = trace.str();
  // Each id appears exactly twice: the service.quote span's 'B' args and
  // the service.quote.done instant event.
  EXPECT_EQ(count_occurrences(json, "q-000001"), 2u);
  EXPECT_EQ(count_occurrences(json, "q-000002"), 2u);
  EXPECT_NE(json.find("\"name\":\"service.quote.done\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

// --- The zero-cost contract under scraping ------------------------------------

TEST_F(ObsServer, ServedCsvBytesIdenticalWithMetricsServerScraping) {
  // Baseline: telemetry off, no metrics server.
  std::string baseline_csv;
  {
    service::AnalysisService analysis_service(make_yet());
    analysis_service.register_portfolio("book", make_portfolio());
    const auto response = analysis_service.quote(salted_request(7));
    ASSERT_EQ(response.source, service::QuoteSource::kCold);
    std::ostringstream csv;
    io::write_ylt_csv(csv, response.outcome->ylt);
    baseline_csv = csv.str();
  }

  // Instrumented: telemetry on, metrics server up, a scraper hammering
  // /metrics concurrently with the quote.
  obs::TelemetryRegistry::global().reset();
  obs::set_enabled(true);
  service::ServiceConfig config;
  config.metrics_port = 0;
  service::AnalysisService analysis_service(make_yet(), config);
  analysis_service.register_portfolio("book", make_portfolio());
  const int port = analysis_service.metrics_server()->port();
  std::atomic<bool> done{false};
  std::thread scraper([&done, port] {
    while (!done.load()) {
      const std::string text = obs::http_get("127.0.0.1", port, "/metrics");
      ASSERT_FALSE(text.empty());
    }
  });
  const auto response = analysis_service.quote(salted_request(7));
  done.store(true);
  scraper.join();
  ASSERT_EQ(response.source, service::QuoteSource::kCold);
  std::ostringstream csv;
  io::write_ylt_csv(csv, response.outcome->ylt);
  EXPECT_EQ(csv.str(), baseline_csv) << "scraping must not perturb served bytes";
}

}  // namespace
