// Tests for the catastrophe model: hazard attenuation, vulnerability
// curves, and ELT generation (pipeline stage 1).
#include <gtest/gtest.h>

#include "catmodel/cat_model.hpp"
#include "catmodel/hazard.hpp"
#include "catmodel/vulnerability.hpp"

namespace {

using namespace are;
using catalog::CatalogEvent;
using catalog::Peril;
using catalog::Region;
using exposure::ConstructionClass;
using exposure::Occupancy;
using exposure::Site;

CatalogEvent event_at(float x, float y, Region region = Region::kGulfCoast) {
  CatalogEvent event;
  event.id = 0;
  event.peril = Peril::kHurricane;
  event.region = region;
  event.centre_x = x;
  event.centre_y = y;
  event.footprint_decay = 2.0;
  return event;
}

Site site_at(float x, float y, Region region = Region::kGulfCoast) {
  Site site;
  site.region = region;
  site.x = x;
  site.y = y;
  site.value = 1e6;
  site.deductible = 0.0;
  site.limit = 1e6;
  return site;
}

// --- Hazard ------------------------------------------------------------------

TEST(Hazard, IntensityFullAtEpicentre) {
  EXPECT_DOUBLE_EQ(catmodel::intensity_at_site(event_at(0.5f, 0.5f), site_at(0.5f, 0.5f), 3.0),
                   3.0);
}

TEST(Hazard, IntensityDecaysWithDistance) {
  const auto event = event_at(0.0f, 0.0f);
  const double near = catmodel::intensity_at_site(event, site_at(0.1f, 0.0f), 3.0);
  const double far = catmodel::intensity_at_site(event, site_at(0.5f, 0.0f), 3.0);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);
  // Exponential decay: intensity at distance d = I * exp(-decay * d).
  // Site coordinates are floats, so allow single-precision slack.
  EXPECT_NEAR(near, 3.0 * std::exp(-2.0 * 0.1), 1e-6);
}

TEST(Hazard, OtherRegionUnaffected) {
  const auto event = event_at(0.5f, 0.5f, Region::kGulfCoast);
  EXPECT_EQ(catmodel::intensity_at_site(event, site_at(0.5f, 0.5f, Region::kPacificRim), 3.0),
            0.0);
}

TEST(Hazard, FootprintRadiusConsistentWithThreshold) {
  const auto event = event_at(0.0f, 0.0f);
  const double radius = catmodel::footprint_radius(event, 3.0, 0.05);
  // At exactly the radius the intensity equals the threshold.
  EXPECT_NEAR(3.0 * std::exp(-event.footprint_decay * radius), 0.05, 1e-9);
  // Below-threshold epicentral intensity -> empty footprint.
  EXPECT_EQ(catmodel::footprint_radius(event, 0.01, 0.05), 0.0);
}

// --- Vulnerability -------------------------------------------------------------

TEST(Vulnerability, CurveIsMonotoneAndBounded) {
  for (int c = 0; c < exposure::kConstructionCount; ++c) {
    for (int p = 0; p < catalog::kPerilCount; ++p) {
      const auto curve = catmodel::vulnerability_for(static_cast<ConstructionClass>(c),
                                                     static_cast<Peril>(p));
      double previous = 0.0;
      for (double intensity = 0.0; intensity <= 10.0; intensity += 0.25) {
        const double mdr = curve.mean_damage_ratio(intensity);
        EXPECT_GE(mdr, 0.0);
        EXPECT_LE(mdr, 1.0);
        EXPECT_GE(mdr, previous - 1e-12);
        previous = mdr;
      }
    }
  }
}

TEST(Vulnerability, ZeroIntensityZeroDamage) {
  const auto curve = catmodel::vulnerability_for(ConstructionClass::kWoodFrame, Peril::kHurricane);
  EXPECT_EQ(curve.mean_damage_ratio(0.0), 0.0);
  EXPECT_EQ(curve.mean_damage_ratio(-1.0), 0.0);
}

TEST(Vulnerability, WoodFrameMoreVulnerableToWindThanConcrete) {
  const auto wood = catmodel::vulnerability_for(ConstructionClass::kWoodFrame, Peril::kHurricane);
  const auto concrete =
      catmodel::vulnerability_for(ConstructionClass::kReinforcedConcrete, Peril::kHurricane);
  EXPECT_GT(wood.mean_damage_ratio(2.0), concrete.mean_damage_ratio(2.0));
}

TEST(Vulnerability, MasonryFragileToEarthquake) {
  const auto masonry = catmodel::vulnerability_for(ConstructionClass::kMasonry, Peril::kEarthquake);
  const auto wood = catmodel::vulnerability_for(ConstructionClass::kWoodFrame, Peril::kEarthquake);
  EXPECT_GT(masonry.mean_damage_ratio(2.5), wood.mean_damage_ratio(2.5));
}

TEST(Vulnerability, OccupancyFactorsOrdered) {
  EXPECT_LT(catmodel::occupancy_factor(Occupancy::kResidential),
            catmodel::occupancy_factor(Occupancy::kCommercial));
  EXPECT_LT(catmodel::occupancy_factor(Occupancy::kCommercial),
            catmodel::occupancy_factor(Occupancy::kIndustrial));
}

// --- Site loss & ELT generation -------------------------------------------------

TEST(CatModel, ExpectedSiteLossRespectsSiteTerms) {
  const auto event = event_at(0.5f, 0.5f);
  Site site = site_at(0.5f, 0.5f);
  site.deductible = 1e9;  // deductible above any possible loss
  EXPECT_EQ(catmodel::expected_site_loss(event, site, 5.0), 0.0);

  site.deductible = 0.0;
  site.limit = 1'000.0;
  EXPECT_LE(catmodel::expected_site_loss(event, site, 5.0), 1'000.0);
}

TEST(CatModel, ExpectedSiteLossZeroOutsideRegion) {
  const auto event = event_at(0.5f, 0.5f, Region::kGulfCoast);
  EXPECT_EQ(catmodel::expected_site_loss(event, site_at(0.5f, 0.5f, Region::kPacificRim), 5.0),
            0.0);
}

class CatModelPipeline : public ::testing::Test {
 protected:
  static catalog::EventCatalog make_catalog() {
    catalog::CatalogConfig config;
    config.num_events = 3'000;
    config.expected_events_per_year = 500.0;
    config.seed = 11;
    return catalog::build_catalog(config);
  }

  static exposure::ExposureSet make_exposure() {
    exposure::ExposureConfig config;
    config.num_sites = 800;
    config.seed = 12;
    return exposure::build_exposure(config);
  }
};

TEST_F(CatModelPipeline, ProducesSparseNonTrivialElt) {
  const auto table = catmodel::run_cat_model(make_catalog(), make_exposure());
  EXPECT_GT(table.size(), 0u);
  EXPECT_LT(table.size(), 3'000u);  // sparse: not every event hurts this book
  for (const auto& record : table.records()) {
    EXPECT_GT(record.loss, 0.0);
    EXPECT_LT(record.event, 3'000u);
  }
}

TEST_F(CatModelPipeline, Deterministic) {
  const auto a = catmodel::run_cat_model(make_catalog(), make_exposure());
  const auto b = catmodel::run_cat_model(make_catalog(), make_exposure());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i], b.records()[i]);
  }
}

TEST_F(CatModelPipeline, LossThresholdFiltersSmallLosses) {
  catmodel::CatModelConfig config;
  config.loss_threshold = 1.0;
  const auto permissive = catmodel::run_cat_model(make_catalog(), make_exposure(), config);
  config.loss_threshold = 1e6;
  const auto strict = catmodel::run_cat_model(make_catalog(), make_exposure(), config);
  EXPECT_LT(strict.size(), permissive.size());
  for (const auto& record : strict.records()) {
    EXPECT_GE(record.loss, 1e6);
  }
}

TEST_F(CatModelPipeline, SecondaryUncertaintyPerturbsButPreservesScale) {
  catmodel::CatModelConfig config;
  const auto mean_based = catmodel::run_cat_model(make_catalog(), make_exposure(), config);
  config.secondary_uncertainty = true;
  const auto sampled = catmodel::run_cat_model(make_catalog(), make_exposure(), config);

  // Totals should be the same order of magnitude (Beta has the curve's
  // mean), but individual losses differ.
  EXPECT_GT(sampled.total_loss(), 0.3 * mean_based.total_loss());
  EXPECT_LT(sampled.total_loss(), 3.0 * mean_based.total_loss());
  bool any_difference = sampled.size() != mean_based.size();
  for (std::size_t i = 0; !any_difference && i < sampled.size(); ++i) {
    any_difference = !(sampled.records()[i] == mean_based.records()[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(CatModelPipeline, DifferentExposuresGiveDifferentElts) {
  // The paper: "one ELT may contain losses derived from one exposure set
  // while another ELT may contain the same events but different losses".
  const auto catalog = make_catalog();
  exposure::ExposureConfig config;
  config.num_sites = 800;
  config.seed = 12;
  const auto elt_a = catmodel::run_cat_model(catalog, exposure::build_exposure(config));
  config.seed = 13;
  const auto elt_b = catmodel::run_cat_model(catalog, exposure::build_exposure(config));
  EXPECT_NE(elt_a.total_loss(), elt_b.total_loss());
}

}  // namespace
