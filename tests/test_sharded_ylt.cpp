// Tests for the sharded out-of-core YLT (src/shard/): sharded-vs-
// materialized bit-identity across sink-capable engines x shard sizes
// (including shard size 1 and one shard spanning every trial), forced
// spill-and-restore under a tiny memory budget, spill round-trip fidelity
// at the store and io levels, the YltSink contract, and shard-wise
// EP/AAL/TVaR reductions against the in-memory metrics.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/analysis.hpp"
#include "core/engine.hpp"
#include "core/engine_registry.hpp"
#include "core/fused_engine.hpp"
#include "elt/synthetic.hpp"
#include "io/binary.hpp"
#include "io/csv.hpp"
#include "metrics/ep_curve.hpp"
#include "metrics/sharded_reduce.hpp"
#include "metrics/statistics.hpp"
#include "shard/sharded_run.hpp"
#include "shard/sharded_ylt.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;
using core::Portfolio;
using core::YearLossTable;
using shard::ShardedYearLossTable;
using shard::ShardStoreConfig;

constexpr std::size_t kUniverse = 20'000;

Portfolio synthetic_portfolio(std::size_t num_layers, std::size_t elts_per_layer,
                              elt::LookupKind kind = elt::LookupKind::kDirectAccess) {
  Portfolio portfolio;
  for (std::size_t l = 0; l < num_layers; ++l) {
    core::Layer layer;
    layer.id = static_cast<std::uint32_t>(l + 1);
    layer.terms.occurrence_retention = 200e3;
    layer.terms.occurrence_limit = 2e6;
    layer.terms.aggregate_retention = 500e3;
    layer.terms.aggregate_limit = 20e6;
    for (std::size_t e = 0; e < elts_per_layer; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = kUniverse;
      config.entries = 2'000;
      config.elt_id = l * 100 + e;
      core::LayerElt layer_elt;
      layer_elt.lookup = elt::make_lookup(kind, elt::make_synthetic_elt(config), kUniverse);
      layer_elt.terms.occurrence_retention = 10e3;
      layer_elt.terms.share = 0.9;
      layer.elts.push_back(std::move(layer_elt));
    }
    portfolio.layers.push_back(std::move(layer));
  }
  return portfolio;
}

yet::YearEventTable skewed_yet(std::uint64_t trials, double events) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = events;
  config.count_model = yet::CountModel::kNegativeBinomial;
  config.dispersion = 2.0;
  config.seed = 31;
  return yet::generate_uniform_yet(config, kUniverse);
}

void expect_identical(const YearLossTable& a, const YearLossTable& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  ASSERT_EQ(a.num_trials(), b.num_trials());
  for (std::size_t layer = 0; layer < a.num_layers(); ++layer) {
    const auto row_a = a.layer_losses(layer);
    const auto row_b = b.layer_losses(layer);
    ASSERT_EQ(0, std::memcmp(row_a.data(), row_b.data(), row_a.size() * sizeof(double)))
        << "layer " << layer;
  }
}

core::AnalysisConfig sharded_config(std::string engine, std::uint64_t shard_trials,
                                    std::size_t budget_bytes = 0) {
  core::AnalysisConfig config;
  const auto& descriptor = core::EngineRegistry::global().require(engine);
  config.engine = descriptor.kind;
  config.engine_name = descriptor.name;
  config.output = core::OutputMode::kSharded;
  config.sharding.shard_trials = shard_trials;
  config.sharding.memory_budget_bytes = budget_bytes;
  return config;
}

// --- Bit-identity: engines x shard sizes --------------------------------------

class ShardedEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {};

TEST_P(ShardedEquivalence, MaterializeMatchesSequential) {
  const auto [engine, shard_trials] = GetParam();
  const Portfolio portfolio = synthetic_portfolio(2, 3);
  const auto yet_table = skewed_yet(401, 50.0);  // prime trial count: ragged last shard
  const auto sequential = core::run_sequential(portfolio, yet_table);

  auto sharded =
      shard::run_sharded({portfolio, yet_table, sharded_config(engine, shard_trials)});
  EXPECT_EQ(sharded.num_shards(), (401 + shard_trials - 1) / shard_trials);
  expect_identical(sequential, sharded.materialize());
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndShardSizes, ShardedEquivalence,
    ::testing::Combine(::testing::Values(std::string("seq"), std::string("parallel"),
                                         std::string("chunked"), std::string("openmp"),
                                         std::string("simd"), std::string("instrumented"),
                                         std::string("fused")),
                       // shard size 1, a prime, a tile-straddling size, and
                       // one shard spanning every trial
                       ::testing::Values(1, 7, 64, 1000)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_shard" + std::to_string(std::get<1>(info.param));
    });

TEST(ShardedYlt, CsvStreamMatchesMaterializedWriter) {
  const Portfolio portfolio = synthetic_portfolio(2, 2);
  const auto yet_table = skewed_yet(123, 30.0);

  auto sharded = shard::run_sharded({portfolio, yet_table, sharded_config("fused", 32)});
  std::ostringstream streamed;
  io::write_ylt_csv(streamed, sharded);

  const auto materialized = core::run_sequential(portfolio, yet_table);
  std::ostringstream direct;
  io::write_ylt_csv(direct, materialized);
  EXPECT_EQ(streamed.str(), direct.str());
}

// --- Forced spill under a tiny budget -----------------------------------------

TEST(ShardedYlt, TinyBudgetForcesSpillAndRestoresExactBytes) {
  const Portfolio portfolio = synthetic_portfolio(2, 3);
  const auto yet_table = skewed_yet(500, 40.0);
  const auto sequential = core::run_sequential(portfolio, yet_table);

  // 2 layers x 25 trials x 8 B = 400 B per shard; budget of one shard
  // forces every other shard out during both the write and the read pass.
  for (const std::string engine : {"seq", "fused"}) {
    auto sharded = shard::run_sharded(
        {portfolio, yet_table, sharded_config(engine, 25, /*budget_bytes=*/400)});
    expect_identical(sequential, sharded.materialize());
    const shard::ShardStoreStats stats = sharded.stats();
    EXPECT_GT(stats.spills, 0u) << engine;
    EXPECT_GT(stats.faults, 0u) << engine;
    EXPECT_LE(stats.resident_bytes, stats.peak_resident_bytes) << engine;
  }
}

TEST(ShardedYlt, ThreadedEnginesForcedSpillStaysBitIdentical) {
  // The threaded drivers emit concurrent disjoint blocks into the sharded
  // sink while a tiny budget forces spill-and-restore cycles underneath;
  // every (engine x threads) combination must still land exactly the
  // sequential bytes.
  const Portfolio portfolio = synthetic_portfolio(2, 3);
  const auto yet_table = skewed_yet(400, 40.0);
  const auto sequential = core::run_sequential(portfolio, yet_table);

  for (const std::string engine : {"parallel", "openmp", "simd"}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {
      SCOPED_TRACE(engine + "_threads" + std::to_string(threads));
      // 2 layers x 25 trials x 8 B = 400 B per shard; a one-shard budget
      // keeps the store under constant eviction pressure.
      auto config = sharded_config(engine, 25, /*budget_bytes=*/400);
      config.num_threads = threads;
      auto sharded = shard::run_sharded({portfolio, yet_table, config});
      expect_identical(sequential, sharded.materialize());
      const shard::ShardStoreStats stats = sharded.stats();
      EXPECT_GT(stats.spills, 0u);
      EXPECT_GT(stats.faults, 0u);
    }
  }
}

TEST(ShardedYlt, MultiThreadedFusedSpillingIsDeterministic) {
  const Portfolio portfolio = synthetic_portfolio(2, 3);
  const auto yet_table = skewed_yet(400, 50.0);
  const auto sequential = core::run_sequential(portfolio, yet_table);

  auto config = sharded_config("fused", 16, /*budget_bytes=*/1024);
  config.num_threads = 0;  // hardware concurrency
  config.tile_trials = 8;
  config.partition = parallel::Partition::kDynamic;
  auto sharded = shard::run_sharded({portfolio, yet_table, config});
  expect_identical(sequential, sharded.materialize());
}

// --- Spill round-trip fidelity ------------------------------------------------

TEST(ShardStore, SpillRestoreRoundTripPreservesBits) {
  ShardStoreConfig config;
  config.memory_budget_bytes = 64 * sizeof(double);  // one 64-double shard resident
  shard::ShardStore store({64, 64, 64}, config);

  // Fill each shard with a distinct pattern...
  for (std::size_t s = 0; s < 3; ++s) {
    auto pin = store.pin(s);
    auto data = pin.data();
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<double>(s * 1000 + i) * 1.25e6;
    }
  }
  // ...which evicted earlier shards; faulting them back must restore the
  // exact bytes.
  for (std::size_t s = 0; s < 3; ++s) {
    auto pin = store.pin(s);
    auto data = pin.data();
    for (std::size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(data[i], static_cast<double>(s * 1000 + i) * 1.25e6)
          << "shard " << s << " index " << i;
    }
  }
  const shard::ShardStoreStats stats = store.stats();
  EXPECT_GE(stats.spills, 2u);
  EXPECT_GE(stats.faults, 2u);
}

TEST(ShardStore, ConcurrentPinsUnderEvictionPressurePreserveBits) {
  // pin() releases the store mutex around spill writes and fault reads; a
  // one-shard budget keeps every pin evicting while worker threads hammer
  // disjoint shards. Whatever interleaving happens, each shard must always
  // fault back the exact bytes its last writer stored.
  ShardStoreConfig config;
  config.memory_budget_bytes = 32 * sizeof(double);  // one shard resident
  shard::ShardStore store(std::vector<std::size_t>(8, 32), config);

  const auto fill_value = [](std::size_t shard, std::uint32_t round, std::size_t i) {
    return static_cast<double>(shard * 1'000'000 + round * 1'000 + i) * 1.5;
  };

  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      // Each worker owns two shards (disjoint data, concurrent I/O).
      for (std::uint32_t round = 0; round < 25; ++round) {
        for (const std::size_t shard : {2 * w, 2 * w + 1}) {
          auto pin = store.pin(shard);
          auto data = pin.data();
          if (round > 0) {
            for (std::size_t i = 0; i < data.size(); ++i) {
              ASSERT_EQ(data[i], fill_value(shard, round - 1, i))
                  << "shard " << shard << " round " << round << " index " << i;
            }
          }
          for (std::size_t i = 0; i < data.size(); ++i) data[i] = fill_value(shard, round, i);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const shard::ShardStoreStats stats = store.stats();
  EXPECT_GT(stats.spills, 0u);
  EXPECT_GT(stats.faults, 0u);
  for (std::size_t shard = 0; shard < 8; ++shard) {
    auto pin = store.pin(shard);
    auto data = pin.data();
    for (std::size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(data[i], fill_value(shard, 24, i)) << "shard " << shard << " index " << i;
    }
  }
}

TEST(ShardStore, SpillFilesAreRemovedOnDestruction) {
  std::filesystem::path dir;
  {
    ShardStoreConfig config;
    config.memory_budget_bytes = 8;  // everything unpinned spills
    shard::ShardStore store({16, 16}, config);
    { auto pin = store.pin(0); pin.data()[0] = 1.0; }
    { auto pin = store.pin(1); pin.data()[0] = 2.0; }
    dir = store.spill_dir();
    EXPECT_TRUE(std::filesystem::exists(dir / "shard_0.bin"));
  }
  EXPECT_FALSE(std::filesystem::exists(dir / "shard_0.bin"));
  EXPECT_FALSE(std::filesystem::exists(dir));  // store-owned temp dir is removed too
}

TEST(ShardBinary, RoundTripAndCorruptionDetection) {
  std::vector<double> values = {0.0, 1.5e9, -3.25, 7.125e-3};
  std::ostringstream out(std::ios::binary);
  io::write_shard_binary(out, values);

  std::vector<double> restored(values.size(), 0.0);
  {
    std::istringstream in(out.str(), std::ios::binary);
    io::read_shard_binary(in, restored);
  }
  EXPECT_EQ(0, std::memcmp(values.data(), restored.data(), values.size() * sizeof(double)));

  // Flip one payload byte: the checksum must catch it.
  std::string corrupt = out.str();
  corrupt[corrupt.size() / 2] ^= 0x40;
  std::istringstream in(corrupt, std::ios::binary);
  EXPECT_THROW(io::read_shard_binary(in, restored), std::runtime_error);

  // Size mismatch is rejected before reading the payload.
  std::vector<double> wrong_size(values.size() + 1);
  std::istringstream in2(out.str(), std::ios::binary);
  EXPECT_THROW(io::read_shard_binary(in2, wrong_size), std::runtime_error);
}

// --- YltSink contract ---------------------------------------------------------

TEST(YltSink, SequentialToMaterializedSinkMatchesSequential) {
  const Portfolio portfolio = synthetic_portfolio(2, 2);
  const auto yet_table = skewed_yet(200, 40.0);
  const auto sequential = core::run_sequential(portfolio, yet_table);

  std::vector<std::uint32_t> ids;
  for (const auto& layer : portfolio.layers) ids.push_back(layer.id);
  YearLossTable ylt(ids, yet_table.num_trials());
  core::MaterializedYltSink sink(ylt);
  core::run_sequential_to_sink(portfolio, yet_table, sink);
  expect_identical(sequential, ylt);
}

TEST(YltSink, ShardedSinkRejectsBlocksCrossingShards) {
  ShardedYearLossTable table({1}, /*num_trials=*/100, /*shard_trials=*/10);
  shard::ShardedYltSink sink(table);
  EXPECT_EQ(sink.block_trials(), 10u);

  const std::vector<double> block(10, 1.0);
  sink.emit(0, 10, {block.data(), 10});  // exactly shard 1: fine
  EXPECT_THROW(sink.emit(0, 5, {block.data(), 10}), std::out_of_range);   // straddles 0|1
  EXPECT_THROW(sink.emit(0, 95, {block.data(), 10}), std::out_of_range);  // past the end
}

TEST(YltSink, RunRejectsShardedOutputAndSinklessEngines) {
  const Portfolio portfolio = synthetic_portfolio(1, 1);
  const auto yet_table = skewed_yet(10, 5.0);

  // run() serves materialized output only.
  EXPECT_THROW(core::run({portfolio, yet_table, sharded_config("seq", 4)}),
               std::invalid_argument);

  // Every kernel-backed builtin carries a run_to_sink adapter now.
  const auto& registry = core::EngineRegistry::global();
  for (const char* name :
       {"seq", "parallel", "chunked", "openmp", "simd", "windowed", "instrumented", "fused"}) {
    EXPECT_TRUE(registry.require(name).supports_sharded_output()) << name;
  }

  // A custom engine without a run_to_sink adapter still rejects sharded
  // execution.
  core::EngineDescriptor sinkless;
  sinkless.kind = core::EngineKind::kSequential;
  sinkless.name = "sinkless";
  sinkless.summary = "test double without a sink adapter";
  sinkless.run = [](const core::AnalysisRequest& request) {
    return core::run_sequential(request.portfolio, request.yet_table);
  };
  core::EngineRegistry::global().register_engine(sinkless);
  EXPECT_THROW(shard::run_sharded({portfolio, yet_table, sharded_config("sinkless", 4)}),
               std::invalid_argument);

  // shard_trials == 0 is rejected by config validation.
  EXPECT_THROW(shard::run_sharded({portfolio, yet_table, sharded_config("seq", 0)}),
               std::invalid_argument);
}

// --- Shard-wise metric reductions ---------------------------------------------

TEST(ShardedReduce, EpAalTvarMatchInMemoryMetrics) {
  const Portfolio portfolio = synthetic_portfolio(2, 3);
  const auto yet_table = skewed_yet(400, 50.0);
  const auto materialized = core::run_sequential(portfolio, yet_table);

  // A budget of ~2 shards keeps the reduction genuinely out-of-core.
  auto sharded = shard::run_sharded(
      {portfolio, yet_table, sharded_config("fused", 32, /*budget_bytes=*/2 * 32 * 2 * 8)});

  for (std::size_t layer = 0; layer < materialized.num_layers(); ++layer) {
    const metrics::EpCurve expected(materialized.layer_losses(layer));
    const metrics::EpCurve streamed = metrics::ep_curve_sharded(sharded, layer);

    ASSERT_EQ(expected.num_trials(), streamed.num_trials());
    EXPECT_EQ(0, std::memcmp(expected.sorted_losses().data(), streamed.sorted_losses().data(),
                             expected.num_trials() * sizeof(double)))
        << "layer " << layer << ": merged sorted runs differ from sorted materialized row";
    EXPECT_EQ(expected.expected_loss(), streamed.expected_loss());
    EXPECT_EQ(expected.tail_value_at_risk(0.99), streamed.tail_value_at_risk(0.99));
    EXPECT_EQ(expected.probable_maximum_loss(250.0), streamed.probable_maximum_loss(250.0));

    const metrics::RunningStats expected_stats = metrics::summarize(
        materialized.layer_losses(layer));
    const metrics::RunningStats streamed_stats = metrics::stats_sharded(sharded, layer);
    EXPECT_EQ(expected_stats.mean(), streamed_stats.mean());
    EXPECT_EQ(expected_stats.stddev(), streamed_stats.stddev());
    EXPECT_EQ(expected_stats.min(), streamed_stats.min());
    EXPECT_EQ(expected_stats.max(), streamed_stats.max());
  }

  const std::vector<double> expected_portfolio = materialized.portfolio_losses();
  const std::vector<double> streamed_portfolio = metrics::portfolio_losses_sharded(sharded);
  ASSERT_EQ(expected_portfolio.size(), streamed_portfolio.size());
  EXPECT_EQ(0, std::memcmp(expected_portfolio.data(), streamed_portfolio.data(),
                           expected_portfolio.size() * sizeof(double)));
}

TEST(ShardedReduce, FromSortedRejectsUnsortedInput) {
  EXPECT_THROW(metrics::EpCurve::from_sorted({}), std::invalid_argument);
  EXPECT_THROW(metrics::EpCurve::from_sorted({2.0, 1.0}), std::invalid_argument);
}

}  // namespace
