// Tests for the Year Event Table: CSR layout invariants, generator
// determinism, count models, rate-proportional sampling and seasonality.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>

#include "catalog/event_catalog.hpp"
#include "yet/generator.hpp"
#include "yet/year_event_table.hpp"

namespace {

using namespace are;
using yet::CountModel;
using yet::YearEventTable;
using yet::YetConfig;

TEST(YearEventTable, EmptyTableHasNoTrials) {
  const YearEventTable table;
  EXPECT_EQ(table.num_trials(), 0u);
  EXPECT_EQ(table.total_events(), 0u);
}

TEST(YearEventTable, TrialSlicing) {
  const YearEventTable table({10, 20, 30}, {0.1f, 0.2f, 0.9f}, {0, 2, 2, 3});
  ASSERT_EQ(table.num_trials(), 3u);
  EXPECT_EQ(table.trial_size(0), 2u);
  EXPECT_EQ(table.trial_size(1), 0u);
  EXPECT_EQ(table.trial_size(2), 1u);
  EXPECT_EQ(table.trial_events(0)[1], 20u);
  EXPECT_FLOAT_EQ(table.trial_times(2)[0], 0.9f);
  EXPECT_DOUBLE_EQ(table.mean_events_per_trial(), 1.0);
}

TEST(YearEventTable, ValidatesStructure) {
  // Offsets must start at 0.
  EXPECT_THROW(YearEventTable({1}, {0.5f}, {1, 1}), std::invalid_argument);
  // Offsets must end at event count.
  EXPECT_THROW(YearEventTable({1, 2}, {0.1f, 0.2f}, {0, 1}), std::invalid_argument);
  // Offsets must be non-decreasing.
  EXPECT_THROW(YearEventTable({1, 2}, {0.1f, 0.2f}, {0, 2, 1, 2}), std::invalid_argument);
  // Event/time vectors must align.
  EXPECT_THROW(YearEventTable({1, 2}, {0.1f}, {0, 2}), std::invalid_argument);
  // Trials must be time-ordered.
  EXPECT_THROW(YearEventTable({1, 2}, {0.9f, 0.1f}, {0, 2}), std::invalid_argument);
  // Empty offsets rejected.
  EXPECT_THROW(YearEventTable({}, {}, {}), std::invalid_argument);
}

TEST(YearEventTable, MemoryAccounting) {
  const YearEventTable table({1, 2, 3}, {0.1f, 0.2f, 0.3f}, {0, 3});
  EXPECT_EQ(table.memory_bytes(),
            3 * sizeof(yet::EventId) + 3 * sizeof(float) + 2 * sizeof(std::uint64_t));
}

// --- Uniform generator ----------------------------------------------------------

TEST(UniformYet, FixedCountModelGivesExactSizes) {
  YetConfig config;
  config.num_trials = 50;
  config.events_per_trial = 37.0;
  config.count_model = CountModel::kFixed;
  const auto table = yet::generate_uniform_yet(config, 1'000);
  ASSERT_EQ(table.num_trials(), 50u);
  for (std::size_t trial = 0; trial < table.num_trials(); ++trial) {
    EXPECT_EQ(table.trial_size(trial), 37u);
  }
}

TEST(UniformYet, EventsWithinUniverse) {
  YetConfig config;
  config.num_trials = 20;
  config.events_per_trial = 100.0;
  const auto table = yet::generate_uniform_yet(config, 500);
  for (const auto event : table.events()) {
    EXPECT_LT(event, 500u);
  }
}

TEST(UniformYet, TimesSortedWithinTrials) {
  YetConfig config;
  config.num_trials = 10;
  config.events_per_trial = 200.0;
  const auto table = yet::generate_uniform_yet(config, 500);
  for (std::size_t trial = 0; trial < table.num_trials(); ++trial) {
    const auto times = table.trial_times(trial);
    for (std::size_t k = 1; k < times.size(); ++k) {
      EXPECT_LE(times[k - 1], times[k]);
    }
  }
}

TEST(UniformYet, Deterministic) {
  YetConfig config;
  config.num_trials = 25;
  config.events_per_trial = 50.0;
  const auto a = yet::generate_uniform_yet(config, 1'000);
  const auto b = yet::generate_uniform_yet(config, 1'000);
  ASSERT_EQ(a.total_events(), b.total_events());
  for (std::size_t i = 0; i < a.total_events(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]);
    EXPECT_EQ(a.times()[i], b.times()[i]);
  }
}

TEST(UniformYet, TrialsIndependentOfTotalCount) {
  // Per-trial substreams: the first 10 trials of a 100-trial YET equal a
  // 10-trial YET. This is what lets a grid of workers generate slices.
  YetConfig small;
  small.num_trials = 10;
  small.events_per_trial = 30.0;
  YetConfig large = small;
  large.num_trials = 100;

  const auto a = yet::generate_uniform_yet(small, 1'000);
  const auto b = yet::generate_uniform_yet(large, 1'000);
  for (std::size_t trial = 0; trial < 10; ++trial) {
    const auto ea = a.trial_events(trial);
    const auto eb = b.trial_events(trial);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t k = 0; k < ea.size(); ++k) EXPECT_EQ(ea[k], eb[k]);
  }
}

TEST(UniformYet, PoissonCountsHaveRightMoments) {
  YetConfig config;
  config.num_trials = 5'000;
  config.events_per_trial = 40.0;
  config.count_model = CountModel::kPoisson;
  const auto table = yet::generate_uniform_yet(config, 1'000);

  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t trial = 0; trial < table.num_trials(); ++trial) {
    const double n = static_cast<double>(table.trial_size(trial));
    sum += n;
    sum_sq += n * n;
  }
  const double mean = sum / 5'000.0;
  const double variance = sum_sq / 5'000.0 - mean * mean;
  EXPECT_NEAR(mean, 40.0, 0.5);
  EXPECT_NEAR(variance, 40.0, 3.0);
}

TEST(UniformYet, NegativeBinomialIsOverdispersed) {
  YetConfig config;
  config.num_trials = 5'000;
  config.events_per_trial = 40.0;
  config.count_model = CountModel::kNegativeBinomial;
  config.dispersion = 10.0;
  const auto table = yet::generate_uniform_yet(config, 1'000);

  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t trial = 0; trial < table.num_trials(); ++trial) {
    const double n = static_cast<double>(table.trial_size(trial));
    sum += n;
    sum_sq += n * n;
  }
  const double mean = sum / 5'000.0;
  const double variance = sum_sq / 5'000.0 - mean * mean;
  EXPECT_NEAR(mean, 40.0, 1.5);
  // Var = mean * (1 + mean/dispersion) = 40 * 5 = 200 >> 40.
  EXPECT_GT(variance, 120.0);
}

TEST(UniformYet, RejectsBadConfig) {
  YetConfig config;
  config.num_trials = 0;
  EXPECT_THROW(yet::generate_uniform_yet(config, 100), std::invalid_argument);
  config.num_trials = 1;
  EXPECT_THROW(yet::generate_uniform_yet(config, 0), std::invalid_argument);
  config.events_per_trial = -1.0;
  EXPECT_THROW(yet::generate_uniform_yet(config, 100), std::invalid_argument);
}

// --- Catalog-driven generator -----------------------------------------------------

class CatalogYet : public ::testing::Test {
 protected:
  static catalog::EventCatalog make_catalog() {
    catalog::CatalogConfig config;
    config.num_events = 2'000;
    config.expected_events_per_year = 100.0;
    config.seed = 77;
    return catalog::build_catalog(config);
  }
};

TEST_F(CatalogYet, EmptyCatalogRejected) {
  YetConfig config;
  EXPECT_THROW(yet::generate_yet(config, catalog::EventCatalog{}), std::invalid_argument);
}

TEST_F(CatalogYet, SamplingIsRateProportional) {
  const auto cat = make_catalog();
  YetConfig config;
  config.num_trials = 2'000;
  config.events_per_trial = 100.0;
  config.count_model = CountModel::kFixed;
  const auto table = yet::generate_yet(config, cat);

  // Count hits of the highest-rate event and compare to expectation.
  const auto rates = cat.rates();
  const std::size_t hot =
      static_cast<std::size_t>(std::max_element(rates.begin(), rates.end()) - rates.begin());
  std::size_t hits = 0;
  for (const auto event : table.events()) {
    if (event == hot) ++hits;
  }
  const double expected = static_cast<double>(table.total_events()) * rates[hot] /
                          cat.total_annual_rate();
  EXPECT_GT(expected, 50.0);  // sanity: hot event is actually hot
  EXPECT_NEAR(static_cast<double>(hits), expected, 5.0 * std::sqrt(expected));
}

TEST_F(CatalogYet, HurricaneTimestampsAreSeasonal) {
  const auto cat = make_catalog();
  YetConfig config;
  config.num_trials = 1'000;
  config.events_per_trial = 100.0;
  const auto table = yet::generate_yet(config, cat);

  // Mean timestamp of hurricane occurrences should be noticeably past
  // mid-year (Beta(7, 3.5) has mean 2/3); earthquakes uniform (mean 1/2).
  double hurricane_sum = 0.0, quake_sum = 0.0;
  std::size_t hurricane_count = 0, quake_count = 0;
  for (std::size_t trial = 0; trial < table.num_trials(); ++trial) {
    const auto events = table.trial_events(trial);
    const auto times = table.trial_times(trial);
    for (std::size_t k = 0; k < events.size(); ++k) {
      const auto peril = cat[events[k]].peril;
      if (peril == catalog::Peril::kHurricane) {
        hurricane_sum += times[k];
        ++hurricane_count;
      } else if (peril == catalog::Peril::kEarthquake) {
        quake_sum += times[k];
        ++quake_count;
      }
    }
  }
  ASSERT_GT(hurricane_count, 100u);
  ASSERT_GT(quake_count, 100u);
  EXPECT_NEAR(hurricane_sum / static_cast<double>(hurricane_count), 2.0 / 3.0, 0.03);
  EXPECT_NEAR(quake_sum / static_cast<double>(quake_count), 0.5, 0.03);
}

TEST_F(CatalogYet, PaperScaleShapeSmoke) {
  // Miniature of the paper's YET shape: trials of ~800-1500 events.
  const auto cat = make_catalog();
  YetConfig config;
  config.num_trials = 20;
  config.events_per_trial = 1'000.0;
  config.count_model = CountModel::kPoisson;
  const auto table = yet::generate_yet(config, cat);
  for (std::size_t trial = 0; trial < table.num_trials(); ++trial) {
    EXPECT_GT(table.trial_size(trial), 800u);
    EXPECT_LT(table.trial_size(trial), 1'200u);
  }
}

}  // namespace
