// Chaos suite for the fault-injection framework (src/fault/) and the
// failure hardening it exercises end to end:
//
//   - trigger grammar + deterministic firing (same seed, same pattern);
//   - registry arming (env-style lists, ScopedArm, per-site tallies);
//   - every injection site fired and surfacing as a structured
//     core::StatusError: io.write/io.read (binary streams), shard spill
//     write rollback, corrupt-shard quarantine + discard() recompute,
//     kernel scratch allocation;
//   - cooperative cancellation and deadlines at trial-block granularity
//     (kernel.cancelled_blocks counter);
//   - the service boundary: execution failures become kFailed responses
//     carrying a Status (never exceptions), admitted broker cost is always
//     released, nothing is cached, and a subsequent clean quote on the
//     same live service is bit-identical to a fault-free run;
//   - broker shutdown waking queued waiters with kShuttingDown;
//   - a concurrent chaos run over one service: sites armed with every:N
//     triggers, every response ok or structured, no inflight-cost leak.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis.hpp"
#include "core/cancel.hpp"
#include "core/status.hpp"
#include "elt/synthetic.hpp"
#include "fault/fault_injection.hpp"
#include "io/binary.hpp"
#include "obs/telemetry.hpp"
#include "service/analysis_service.hpp"
#include "service/request_broker.hpp"
#include "service/server.hpp"
#include "shard/shard_store.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;

constexpr std::size_t kUniverse = 20'000;

/// Every test starts and ends with a disarmed process — a leaked armed site
/// would poison unrelated suites through the global registry.
class Fault : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::global().disarm_all();
    obs::set_enabled(false);
    obs::TelemetryRegistry::global().reset();
  }
  void TearDown() override {
    fault::FaultRegistry::global().disarm_all();
    obs::set_enabled(false);
  }
};

core::Portfolio make_portfolio(std::size_t num_layers = 2, std::size_t elts_per_layer = 2) {
  core::Portfolio portfolio;
  for (std::size_t l = 0; l < num_layers; ++l) {
    core::Layer layer;
    layer.id = static_cast<std::uint32_t>(l + 1);
    layer.terms.occurrence_retention = 200e3;
    layer.terms.occurrence_limit = 2e6;
    layer.terms.aggregate_limit = 25e6;
    for (std::size_t e = 0; e < elts_per_layer; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = kUniverse;
      config.entries = 1'000;
      config.elt_id = l * 100 + e;
      core::LayerElt layer_elt;
      layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess,
                                          elt::make_synthetic_elt(config), kUniverse);
      layer_elt.terms.share = 0.8;
      layer.elts.push_back(std::move(layer_elt));
    }
    portfolio.layers.push_back(std::move(layer));
  }
  return portfolio;
}

yet::YearEventTable make_yet(std::uint64_t trials = 512, double events = 20.0) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = events;
  config.count_model = yet::CountModel::kPoisson;
  config.seed = 2012;
  return yet::generate_uniform_yet(config, kUniverse);
}

bool bit_identical(const core::YearLossTable& a, const core::YearLossTable& b) {
  if (a.num_layers() != b.num_layers() || a.num_trials() != b.num_trials()) return false;
  for (std::size_t layer = 0; layer < a.num_layers(); ++layer) {
    if (std::memcmp(a.layer_losses(layer).data(), b.layer_losses(layer).data(),
                    a.num_trials() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// --- Trigger grammar and determinism -----------------------------------------

TEST_F(Fault, TriggerGrammarParses) {
  EXPECT_EQ(fault::parse_trigger("always").kind, fault::Trigger::Kind::kAlways);
  EXPECT_EQ(fault::parse_trigger("never").kind, fault::Trigger::Kind::kNever);
  EXPECT_EQ(fault::parse_trigger("once").kind, fault::Trigger::Kind::kOnce);

  const auto every = fault::parse_trigger("every:3");
  EXPECT_EQ(every.kind, fault::Trigger::Kind::kEveryNth);
  EXPECT_EQ(every.n, 3u);

  const auto after = fault::parse_trigger("after:10");
  EXPECT_EQ(after.kind, fault::Trigger::Kind::kAfterNth);
  EXPECT_EQ(after.n, 10u);

  const auto prob = fault::parse_trigger("prob:0.25:42");
  EXPECT_EQ(prob.kind, fault::Trigger::Kind::kProbability);
  EXPECT_DOUBLE_EQ(prob.probability, 0.25);
  EXPECT_EQ(prob.seed, 42u);

  for (const char* bad : {"", "sometimes", "every:0", "every:x", "after:", "prob:1.5",
                          "prob:-0.1", "prob:abc"}) {
    EXPECT_THROW((void)fault::parse_trigger(bad), std::invalid_argument) << bad;
  }
}

TEST_F(Fault, CountingTriggersFireExactlyWhereSpecified) {
  const auto every = fault::parse_trigger("every:3");
  const auto once = fault::parse_trigger("once");
  const auto after = fault::parse_trigger("after:2");
  for (std::uint64_t hit = 1; hit <= 12; ++hit) {
    EXPECT_EQ(fault::trigger_fires(every, 0, hit), hit % 3 == 0) << hit;
    EXPECT_EQ(fault::trigger_fires(once, 0, hit), hit == 1) << hit;
    EXPECT_EQ(fault::trigger_fires(after, 0, hit), hit > 2) << hit;
  }
}

TEST_F(Fault, ProbabilityTriggerIsDeterministicPerSeedAndSite) {
  const auto trigger = fault::parse_trigger("prob:0.3:7");
  std::vector<bool> first, second;
  for (std::uint64_t hit = 1; hit <= 200; ++hit) {
    first.push_back(fault::trigger_fires(trigger, 0x1234, hit));
    second.push_back(fault::trigger_fires(trigger, 0x1234, hit));
  }
  EXPECT_EQ(first, second);  // pure function of (seed, site, hit)

  // Roughly the right rate (0.3 +- generous slack over 200 draws), and a
  // different site hash decorrelates the stream.
  const auto fires = static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 30u);
  EXPECT_LT(fires, 90u);
  std::vector<bool> other_site;
  for (std::uint64_t hit = 1; hit <= 200; ++hit) {
    other_site.push_back(fault::trigger_fires(trigger, 0x9999, hit));
  }
  EXPECT_NE(first, other_site);
}

// --- Registry ----------------------------------------------------------------

TEST_F(Fault, RegistryArmsFromListAndTallies) {
  auto& registry = fault::FaultRegistry::global();
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::should_inject("some.site"));  // disarmed: no tally either

  registry.arm_from_list(" io.read=every:2 , io.write=once ");
  EXPECT_TRUE(fault::armed());
  const auto armed_sites = registry.armed_sites();
  EXPECT_EQ(armed_sites.size(), 2u);

  EXPECT_FALSE(fault::should_inject("io.read"));  // hit 1
  EXPECT_TRUE(fault::should_inject("io.read"));   // hit 2
  EXPECT_TRUE(fault::should_inject("io.write"));  // once: first hit
  EXPECT_FALSE(fault::should_inject("io.write"));
  EXPECT_EQ(registry.hits("io.read"), 2u);
  EXPECT_EQ(registry.injected("io.read"), 1u);
  EXPECT_EQ(registry.injected("io.write"), 1u);

  registry.arm("io.read", "never");  // "never" disarms
  registry.disarm("io.write");
  EXPECT_FALSE(fault::armed());
}

TEST_F(Fault, ScopedArmDisarmsOnExit) {
  {
    const fault::ScopedArm scoped("io.read=always");
    EXPECT_TRUE(fault::armed());
    EXPECT_TRUE(fault::should_inject("io.read"));
  }
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::should_inject("io.read"));
}

TEST_F(Fault, InjectedFiresBumpObsCounters) {
  obs::set_enabled(true);
  const fault::ScopedArm scoped("io.read=always");
  (void)fault::should_inject("io.read");
  (void)fault::should_inject("io.read");
  const auto snapshot = obs::TelemetryRegistry::global().snapshot();
  EXPECT_EQ(snapshot.counter_value("fault.injected.io.read"), 2u);
}

// --- Binary I/O sites --------------------------------------------------------

TEST_F(Fault, IoWriteAndReadSitesThrowIoError) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  {
    const fault::ScopedArm scoped("io.write=always");
    std::ostringstream out;
    try {
      io::write_shard_binary(out, values);
      FAIL() << "expected StatusError";
    } catch (const core::StatusError& error) {
      EXPECT_EQ(error.code(), core::StatusCode::kIoError);
    }
  }
  std::ostringstream out;
  io::write_shard_binary(out, values);
  {
    const fault::ScopedArm scoped("io.read=always");
    std::istringstream in(out.str());
    std::vector<double> restored(values.size());
    try {
      io::read_shard_binary(in, restored);
      FAIL() << "expected StatusError";
    } catch (const core::StatusError& error) {
      EXPECT_EQ(error.code(), core::StatusCode::kIoError);
    }
  }
  // Clean round trip once disarmed.
  std::istringstream in(out.str());
  std::vector<double> restored(values.size());
  io::read_shard_binary(in, restored);
  EXPECT_EQ(restored, values);
}

TEST_F(Fault, CorruptReadSiteTripsTheChecksum) {
  std::ostringstream out;
  io::write_shard_binary(out, std::vector<double>{1.0, 2.0});
  const fault::ScopedArm scoped("shard.corrupt_read=always");
  std::istringstream in(out.str());
  std::vector<double> restored(2);
  try {
    io::read_shard_binary(in, restored);
    FAIL() << "expected StatusError";
  } catch (const core::StatusError& error) {
    EXPECT_EQ(error.code(), core::StatusCode::kDataCorruption);
  }
}

// --- Shard store: spill rollback, quarantine, discard ------------------------

/// A two-shard store with a budget that fits exactly one shard, so pinning
/// one always evicts (and spills) the other.
struct TinyStore {
  std::filesystem::path dir;
  std::unique_ptr<shard::ShardStore> store;

  explicit TinyStore(const char* name) {
    dir = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    shard::ShardStoreConfig config;
    config.memory_budget_bytes = 256 * sizeof(double);
    config.spill_dir = dir.string();
    store = std::make_unique<shard::ShardStore>(std::vector<std::size_t>{256, 256}, config);
  }
  ~TinyStore() {
    store.reset();
    std::filesystem::remove_all(dir);
  }
};

TEST_F(Fault, SpillWriteFailureRollsTheVictimBack) {
  TinyStore tiny("are_fault_spill");
  { auto pin = tiny.store->pin(0); pin.data()[0] = 42.0; }

  {
    const fault::ScopedArm scoped("shard.spill_write=always");
    try {
      (void)tiny.store->pin(1);  // must evict+spill shard 0 -> injected failure
      FAIL() << "expected StatusError";
    } catch (const core::StatusError& error) {
      EXPECT_EQ(error.code(), core::StatusCode::kSpillFailure);
    }
  }
  // The victim was rolled back to residency: its bytes are intact and the
  // store keeps working once the fault clears.
  { auto pin = tiny.store->pin(0); EXPECT_EQ(pin.data()[0], 42.0); }
  { auto pin = tiny.store->pin(1); EXPECT_EQ(pin.data()[0], 0.0); }
  EXPECT_GE(tiny.store->stats().spills, 1u);  // post-fault evictions succeed

  // No *.tmp debris: the failed attempt cleaned up after itself.
  for (const auto& entry : std::filesystem::recursive_directory_iterator(tiny.dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

TEST_F(Fault, CorruptShardIsQuarantinedAndDiscardRecovers) {
  TinyStore tiny("are_fault_quarantine");
  { auto pin = tiny.store->pin(0); pin.data()[0] = 42.0; }
  { auto pin = tiny.store->pin(1); }  // spills shard 0

  {
    const fault::ScopedArm scoped("shard.corrupt_read=always");
    try {
      (void)tiny.store->pin(0);  // fault-in fails its checksum
      FAIL() << "expected StatusError";
    } catch (const core::StatusError& error) {
      EXPECT_EQ(error.code(), core::StatusCode::kDataCorruption);
    }
  }
  EXPECT_EQ(tiny.store->stats().quarantined, 1u);
  // Still quarantined with the fault disarmed: the *file* is bad, not the
  // read path.
  EXPECT_THROW((void)tiny.store->pin(0), core::StatusError);

  // discard() is the recompute fallback: the shard returns virtually zero.
  tiny.store->discard(0);
  { auto pin = tiny.store->pin(0); EXPECT_EQ(pin.data()[0], 0.0); }
}

TEST_F(Fault, OrphanedTmpFilesAreSweptOnConstruction) {
  const auto dir = std::filesystem::temp_directory_path() / "are_fault_sweep";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  { std::ofstream(dir / "shard_3.bin.tmp") << "half-written"; }
  { std::ofstream(dir / "keep.txt") << "unrelated"; }

  shard::ShardStoreConfig config;
  config.spill_dir = dir.string();
  shard::ShardStore store({16}, config);
  EXPECT_FALSE(std::filesystem::exists(dir / "shard_3.bin.tmp"));
  EXPECT_TRUE(std::filesystem::exists(dir / "keep.txt"));
  std::filesystem::remove_all(dir);
}

// --- Kernel: allocation faults, cancellation, deadlines ----------------------

TEST_F(Fault, KernelAllocSiteSurfacesAsBadAllocFromEveryEngine) {
  const auto portfolio = make_portfolio();
  const auto yet_table = make_yet();
  for (const char* engine : {"seq", "parallel", "fused"}) {
    core::AnalysisConfig config;
    config.engine_name = engine;
    config.num_threads = 2;
    config.faults = "kernel.alloc=always";  // RAII-armed for this run only
    EXPECT_THROW((void)core::run({portfolio, yet_table, config}), std::bad_alloc) << engine;
  }
  EXPECT_FALSE(fault::armed());  // the run disarmed its own sites
}

TEST_F(Fault, PreCancelledTokenStopsEveryEngineBetweenBlocks) {
  const auto portfolio = make_portfolio();
  const auto yet_table = make_yet();
  core::CancelToken token;
  token.cancel();
  for (const char* engine : {"seq", "parallel", "fused"}) {
    core::AnalysisConfig config;
    config.engine_name = engine;
    config.num_threads = 2;
    config.cancel = &token;
    try {
      (void)core::run({portfolio, yet_table, config});
      FAIL() << engine << ": expected StatusError";
    } catch (const core::StatusError& error) {
      EXPECT_EQ(error.code(), core::StatusCode::kCancelled) << engine;
    }
  }
  // Cancellation is attributable even without telemetry enabled: the
  // cancelled-blocks counter is bumped unconditionally.
  EXPECT_GT(obs::TelemetryRegistry::global().snapshot().counter_value("kernel.cancelled_blocks"),
            0u);
}

TEST_F(Fault, ExpiredDeadlineReportsDeadlineExceeded) {
  const auto portfolio = make_portfolio();
  const auto yet_table = make_yet();
  core::CancelToken token;
  token.set_deadline_after(std::chrono::nanoseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  core::AnalysisConfig config;
  config.cancel = &token;
  try {
    (void)core::run({portfolio, yet_table, config});
    FAIL() << "expected StatusError";
  } catch (const core::StatusError& error) {
    EXPECT_EQ(error.code(), core::StatusCode::kDeadlineExceeded);
  }
}

// --- Service boundary --------------------------------------------------------

std::unique_ptr<service::AnalysisService> make_service(std::uint64_t trials = 512) {
  service::ServiceConfig config;
  config.session.num_threads = 2;
  config.default_engine = "fused";
  // Out-of-core config for sharded quotes: tiny budget so shards spill.
  config.sharding.shard_trials = 64;
  config.sharding.memory_budget_bytes = 64 * sizeof(double);
  auto analysis_service = std::make_unique<service::AnalysisService>(make_yet(trials), config);
  analysis_service->register_portfolio("book", make_portfolio());
  return analysis_service;
}

std::int64_t inflight_cost() {
  return obs::TelemetryRegistry::global().snapshot().gauge_value("service.inflight_cost");
}

TEST_F(Fault, SpillFailureFailsTheQuoteNotTheProcess) {
  auto service_ptr = make_service();
  auto& analysis_service = *service_ptr;

  // Fault-free sharded run first: the bit-identity reference.
  service::QuoteRequest request;
  request.portfolio_id = "book";
  request.sharded = true;
  request.use_cache = false;
  const auto reference = analysis_service.quote(request);
  ASSERT_EQ(reference.status.code(), core::StatusCode::kOk);
  ASSERT_NE(reference.outcome, nullptr);

  {
    const fault::ScopedArm scoped("shard.spill_write=always");
    const auto failed = analysis_service.quote(request);
    EXPECT_EQ(failed.source, service::QuoteSource::kFailed);
    EXPECT_EQ(failed.status.code(), core::StatusCode::kSpillFailure);
    EXPECT_TRUE(failed.status.retryable());
    EXPECT_EQ(failed.admission.reason, service::RejectReason::kSpillFailure);
    EXPECT_EQ(failed.outcome, nullptr);
  }
  // No broker cost leak, and the same live service serves a clean quote
  // bit-identical to the fault-free run.
  EXPECT_EQ(inflight_cost(), 0);
  const auto after = analysis_service.quote(request);
  ASSERT_EQ(after.status.code(), core::StatusCode::kOk);
  EXPECT_TRUE(bit_identical(after.outcome->ylt, reference.outcome->ylt));
}

TEST_F(Fault, DeadlineExceededQuoteIsAFailedResponse) {
  // A workload big enough that a 1ms deadline reliably expires mid-run.
  // Sharded execution clamps trial blocks to shard_trials (64 here), so
  // 20k trials means hundreds of deadline checks — the cancellation lands
  // deterministically between blocks, not at the end of one giant tile.
  auto service_ptr = make_service(/*trials=*/20'000);
  auto& analysis_service = *service_ptr;
  obs::set_enabled(true);

  service::QuoteRequest request;
  request.portfolio_id = "book";
  request.deadline_ms = 1;
  request.sharded = true;
  request.use_cache = false;
  const auto response = analysis_service.quote(request);
  ASSERT_EQ(response.source, service::QuoteSource::kFailed);
  EXPECT_EQ(response.status.code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.status.retryable());
  EXPECT_EQ(response.outcome, nullptr);
  EXPECT_EQ(inflight_cost(), 0);
  EXPECT_GT(obs::TelemetryRegistry::global().snapshot().counter_value("kernel.cancelled_blocks"),
            0u);

  // Nothing partial was cached: the identical request without the deadline
  // is a cold run, not a cache hit.
  service::QuoteRequest relaxed = request;
  relaxed.deadline_ms = 0;
  relaxed.use_cache = true;
  EXPECT_EQ(analysis_service.quote(relaxed).source, service::QuoteSource::kCold);
}

TEST_F(Fault, AllocFailureBecomesResourceExhaustedStatus) {
  auto service_ptr = make_service();
  const fault::ScopedArm scoped("kernel.alloc=always");
  service::QuoteRequest request;
  request.portfolio_id = "book";
  request.use_cache = false;
  const auto response = service_ptr->quote(request);
  EXPECT_EQ(response.source, service::QuoteSource::kFailed);
  EXPECT_EQ(response.status.code(), core::StatusCode::kResourceExhausted);
  EXPECT_EQ(inflight_cost(), 0);
}

TEST_F(Fault, ServerReportsStructuredErrorJson) {
  auto service_ptr = make_service();
  service::Server server(*service_ptr);
  const fault::ScopedArm scoped("shard.spill_write=always");
  const std::string response = server.handle_line("QUOTE portfolio=book sharded=1 cache=0");
  EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"code\":\"spill-failure\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"retryable\":true"), std::string::npos) << response;
}

// --- Broker shutdown ---------------------------------------------------------

TEST_F(Fault, ShutdownWakesQueuedWaitersAndRejectsNewWork) {
  service::BrokerConfig config;
  config.max_inflight_cost = 100;
  service::RequestBroker broker(config);
  ASSERT_TRUE(broker.admit(100).admitted());  // saturate capacity

  service::AdmissionDecision queued_decision;
  std::thread waiter([&] { queued_decision = broker.admit(50); });
  // Wait until the waiter is parked in the queue.
  while (obs::TelemetryRegistry::global().snapshot().gauge_value("service.queued_requests") ==
         0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  broker.shutdown();
  waiter.join();
  EXPECT_EQ(queued_decision.outcome, service::AdmissionOutcome::kRejected);
  EXPECT_EQ(queued_decision.reason, service::RejectReason::kShuttingDown);

  // Later admits reject immediately; in-flight work still releases cleanly.
  EXPECT_EQ(broker.admit(1).reason, service::RejectReason::kShuttingDown);
  broker.release(100);
  EXPECT_EQ(inflight_cost(), 0);
}

// --- Concurrent chaos --------------------------------------------------------

// Intermittent faults under concurrent quoting: every response is either ok
// or a structured failure, the service stays coherent (no cost leak), and a
// final clean quote still matches a fault-free reference.
TEST_F(Fault, ConcurrentChaosLeavesTheServiceCoherent) {
  auto service_ptr = make_service();
  auto& analysis_service = *service_ptr;

  service::QuoteRequest clean;
  clean.portfolio_id = "book";
  clean.use_cache = false;
  const auto reference = analysis_service.quote(clean);
  ASSERT_EQ(reference.status.code(), core::StatusCode::kOk);

  const fault::ScopedArm scoped(
      "shard.spill_write=every:3,kernel.alloc=every:7,shard.fault_read=every:5");

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 4;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> served{0}, failed{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        service::QuoteRequest request;
        request.portfolio_id = "book";
        request.use_cache = false;
        request.sharded = (t + round) % 2 == 0;
        const auto response = analysis_service.quote(request);
        if (response.status.ok()) {
          ASSERT_NE(response.outcome, nullptr);
          ++served;
        } else {
          EXPECT_EQ(response.source, service::QuoteSource::kFailed);
          EXPECT_NE(response.status.code(), core::StatusCode::kOk);
          EXPECT_FALSE(response.status.message().empty());
          EXPECT_EQ(response.outcome, nullptr);
          ++failed;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(served + failed, kThreads * kRounds);
  EXPECT_GT(failed.load(), 0u);  // the chaos actually bit
  EXPECT_EQ(inflight_cost(), 0);  // every admit was paired with a release

  fault::FaultRegistry::global().disarm_all();
  const auto after = analysis_service.quote(clean);
  ASSERT_EQ(after.status.code(), core::StatusCode::kOk);
  EXPECT_TRUE(bit_identical(after.outcome->ylt, reference.outcome->ylt));
}

}  // namespace
