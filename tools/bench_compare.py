#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag wall-time regressions.

The bench binaries (bench/bench_*.cpp) write {"meta": {...}, "records":
[...]} with one record per (workload, engine) point.  CI uploads them as
artifacts; this tool turns two of them into a verdict:

    bench_compare.py BASELINE.json CURRENT.json [--threshold-pct 20]

A record regresses when its wall_seconds grew by more than the threshold
over the baseline record with the same (workload, engine) key.  Records
present on only one side are reported but never fail the comparison (the
bench set is allowed to grow).  Exit status: 0 = no regressions, 1 =
at least one regression, 2 = usage/file errors.

--self-check runs the comparator against synthetic in-memory reports
(one clear regression, one improvement, one disjoint record) and verifies
its own verdicts — CI runs it on every build, so the comparator cannot
silently rot between the occasions where a real baseline is available.
"""

import argparse
import json
import sys


def load_records(path):
    """Returns {(workload, engine): record_dict} from a BENCH json file."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    records = {}
    for record in report.get("records", []):
        key = (record.get("workload", "?"), record.get("engine", "?"))
        records[key] = record
    return records


def compare(baseline, current, threshold_pct):
    """Returns (regressions, improvements, only_baseline, only_current).

    regressions/improvements are lists of (key, baseline_wall, current_wall,
    delta_pct); a regression is a wall-time growth beyond threshold_pct.
    """
    regressions, improvements = [], []
    for key, record in sorted(current.items()):
        if key not in baseline:
            continue
        base_wall = baseline[key].get("wall_seconds", 0.0)
        cur_wall = record.get("wall_seconds", 0.0)
        if base_wall <= 0.0:
            continue
        delta_pct = 100.0 * (cur_wall - base_wall) / base_wall
        if delta_pct > threshold_pct:
            regressions.append((key, base_wall, cur_wall, delta_pct))
        elif delta_pct < -threshold_pct:
            improvements.append((key, base_wall, cur_wall, delta_pct))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))
    return regressions, improvements, only_baseline, only_current


def report(regressions, improvements, only_baseline, only_current, threshold_pct, out=sys.stdout):
    def fmt(key, base, cur, delta):
        return "%s/%s: %.6fs -> %.6fs (%+.1f%%)" % (key[0], key[1], base, cur, delta)

    for key, base, cur, delta in regressions:
        print("REGRESSION  " + fmt(key, base, cur, delta), file=out)
    for key, base, cur, delta in improvements:
        print("improvement " + fmt(key, base, cur, delta), file=out)
    for key in only_baseline:
        print("note: record %s/%s only in baseline" % key, file=out)
    for key in only_current:
        print("note: record %s/%s only in current" % key, file=out)
    if regressions:
        print("%d record(s) regressed beyond %.0f%%" % (len(regressions), threshold_pct), file=out)
    else:
        print("no regressions beyond %.0f%%" % threshold_pct, file=out)


def self_check():
    baseline = {
        ("w1", "fused"): {"wall_seconds": 1.0},
        ("w2", "fused"): {"wall_seconds": 1.0},
        ("w3", "seq"): {"wall_seconds": 2.0},
        ("gone", "seq"): {"wall_seconds": 1.0},
    }
    current = {
        ("w1", "fused"): {"wall_seconds": 1.5},   # +50% -> regression at 20%
        ("w2", "fused"): {"wall_seconds": 0.5},   # -50% -> improvement
        ("w3", "seq"): {"wall_seconds": 2.1},     # +5%  -> within threshold
        ("new", "simd"): {"wall_seconds": 1.0},   # disjoint -> note only
    }
    regressions, improvements, only_baseline, only_current = compare(baseline, current, 20.0)
    assert [key for key, *_ in regressions] == [("w1", "fused")], regressions
    assert [key for key, *_ in improvements] == [("w2", "fused")], improvements
    assert only_baseline == [("gone", "seq")], only_baseline
    assert only_current == [("new", "simd")], only_current
    # Zero-wall baseline records never divide by zero or regress.
    regressions, _, _, _ = compare({("z", "e"): {"wall_seconds": 0.0}},
                                   {("z", "e"): {"wall_seconds": 5.0}}, 20.0)
    assert regressions == [], regressions
    print("bench_compare.py self-check passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("current", nargs="?", help="current BENCH_*.json")
    parser.add_argument("--threshold-pct", type=float, default=20.0,
                        help="wall-time growth beyond this %% is a regression (default 20)")
    parser.add_argument("--self-check", action="store_true",
                        help="verify the comparator against synthetic reports and exit")
    args = parser.parse_args()

    if args.self_check:
        return self_check()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current files are required (or use --self-check)")
    try:
        baseline = load_records(args.baseline)
        current = load_records(args.current)
    except (OSError, json.JSONDecodeError) as error:
        print("bench_compare.py: %s" % error, file=sys.stderr)
        return 2
    regressions, improvements, only_baseline, only_current = compare(
        baseline, current, args.threshold_pct)
    report(regressions, improvements, only_baseline, only_current, args.threshold_pct)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
