#pragma once

// Minimal dependency-free argument parser for the are_cli tool:
// --key=value / --key value / --flag, with typed access and error
// reporting.

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace are::tools {

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        positional_.push_back(std::move(token));
        continue;
      }
      token = token.substr(2);
      const auto equals = token.find('=');
      if (equals != std::string::npos) {
        values_[token.substr(0, equals)] = token.substr(equals + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[token] = argv[++i];
      } else {
        values_[token] = "";  // bare flag
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) {
      throw std::runtime_error("missing required option --" + key);
    }
    return it->second;
  }

  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return parse_u64(key, it->second);
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw std::runtime_error("option --" + key + " expects a number, got '" + it->second +
                               "'");
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  static std::uint64_t parse_u64(const std::string& key, const std::string& value) {
    try {
      const long long parsed = std::stoll(value);
      if (parsed < 0) throw std::runtime_error("");
      return static_cast<std::uint64_t>(parsed);
    } catch (const std::exception&) {
      throw std::runtime_error("option --" + key + " expects a non-negative integer, got '" +
                               value + "'");
    }
  }

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace are::tools
