#!/usr/bin/env python3
"""Validate Prometheus text exposition (the /metrics scrape surface).

    check_prometheus.py [FILE] [--require REGEX ...]

Reads the exposition from FILE (or stdin) and checks, structurally:

  * every non-comment line is `name[{labels}] value` with a parseable value
  * metric and label names are legal ([a-zA-Z_:][a-zA-Z0-9_:]*), label
    values are quoted
  * every series is preceded by a # TYPE for its family, each family is
    TYPE'd exactly once, and counter families end in _total
  * histogram families are well-formed per label set: cumulative
    non-decreasing _bucket values, a le="+Inf" bucket, +Inf == _count,
    and _sum/_count present

--require REGEX fails the check unless some series line matches (used by
CI to pin down e.g. are_service_quote_ns series per source).  Exit 0 when
valid, 1 with one line per problem otherwise.
"""

import argparse
import re
import sys
from collections import defaultdict

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SERIES_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$')


def family_of(name, metric_type):
    """The family a series name belongs to (strips histogram suffixes)."""
    if metric_type == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
    return name


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    return float(text)


def check(lines, require=()):
    problems = []
    types = {}          # family -> type
    seen_series = []    # raw series lines, for --require
    # histogram family -> label-set(frozenset minus le) -> {"buckets": [(le, v)], "sum": v, "count": v}
    histograms = defaultdict(lambda: defaultdict(lambda: {"buckets": [], "sum": None, "count": None}))

    for number, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    problems.append("line %d: malformed TYPE line: %s" % (number, line))
                    continue
                family = parts[2]
                if family in types:
                    problems.append("line %d: duplicate TYPE for family %s" % (number, family))
                types[family] = parts[3]
                if parts[3] == "counter" and not family.endswith("_total"):
                    problems.append("line %d: counter family %s lacks _total suffix" % (number, family))
            continue

        match = SERIES_RE.match(line)
        if not match:
            problems.append("line %d: unparseable series line: %s" % (number, line))
            continue
        name, labels_text, value_text = match.groups()
        seen_series.append(line)
        try:
            value = parse_value(value_text)
        except ValueError:
            problems.append("line %d: unparseable value %r" % (number, value_text))
            continue

        labels = {}
        if labels_text:
            for pair in labels_text[1:-1].split(","):
                label_match = LABEL_RE.match(pair)
                if not label_match:
                    problems.append("line %d: malformed label %r" % (number, pair))
                    break
                labels[label_match.group(1)] = label_match.group(2)

        metric_type = None
        for candidate_type in ("histogram",):
            family = family_of(name, candidate_type)
            if types.get(family) == candidate_type:
                metric_type = candidate_type
                break
        if metric_type is None:
            family = name
            metric_type = types.get(name)
        if metric_type is None:
            problems.append("line %d: series %s has no preceding TYPE" % (number, name))
            continue

        if metric_type == "histogram":
            key = frozenset((k, v) for k, v in labels.items() if k != "le")
            entry = histograms[family][key]
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append("line %d: histogram bucket without le label" % number)
                else:
                    entry["buckets"].append((labels["le"], value))
            elif name.endswith("_sum"):
                entry["sum"] = value
            elif name.endswith("_count"):
                entry["count"] = value

    for family, by_labels in histograms.items():
        for key, entry in by_labels.items():
            where = "%s{%s}" % (family, ",".join("%s=%s" % kv for kv in sorted(key)))
            les = [le for le, _ in entry["buckets"]]
            values = [v for _, v in entry["buckets"]]
            if "+Inf" not in les:
                problems.append("histogram %s: no le=\"+Inf\" bucket" % where)
            if any(b > a for a, b in zip(values[1:], values[:-1])):
                problems.append("histogram %s: bucket counts not cumulative" % where)
            if entry["count"] is None or entry["sum"] is None:
                problems.append("histogram %s: missing _sum or _count" % where)
            elif "+Inf" in les and values[les.index("+Inf")] != entry["count"]:
                problems.append("histogram %s: +Inf bucket %g != _count %g"
                                % (where, values[les.index("+Inf")], entry["count"]))

    for pattern in require:
        if not any(re.search(pattern, line) for line in seen_series):
            problems.append("required series /%s/ not found" % pattern)

    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", nargs="?", help="exposition file (default stdin)")
    parser.add_argument("--require", action="append", default=[],
                        help="regex that must match at least one series line")
    args = parser.parse_args()

    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = sys.stdin.readlines()

    problems = check(lines, args.require)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print("prometheus exposition valid (%d lines)" % len(lines))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
