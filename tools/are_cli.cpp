// are_cli — command-line front end for the aggregate risk analysis engine.
//
// Subcommands cover the whole pipeline so analyses can be scripted and the
// bulky inputs cached on disk (binary formats with checksums):
//
//   are_cli gen-elt   --out book.elt   [--catalog-size N --entries N --seed S]
//   are_cli gen-elt-catmodel --out book.elt [--events N --sites N --seed S]
//   are_cli gen-yet   --out years.yet  [--trials N --events N --model fixed|poisson|negbin]
//   are_cli run       --yet years.yet --elt a.elt [--elt b.elt ...] [terms...] --out ylt.csv
//   are_cli report    --yet years.yet --elt a.elt ... [terms...]     (EP table to stdout)
//   are_cli price     --yet years.yet --elt a.elt ... [terms...]     (quote to stdout)
//   are_cli info      --yet years.yet | --elt book.elt               (describe a file)
//   are_cli simd-info [--runnable]   (runtime SIMD dispatch facts for this host)
//   are_cli list-engines [--names] [--bit-identical]   (dump the engine registry)
//   are_cli list-engines --sinks   (smoke-run every sink-capable engine under a
//                                   forced-spill budget, byte-diffing vs seq)
//   are_cli serve     --yet years.yet --elt a.elt ... [terms...] --socket are.sock
//                     (resident analysis service on an AF_UNIX socket; loads the
//                     inputs once, then answers QUOTE/UPDATE lines with admission
//                     control, result caching, and delta re-pricing)
//   are_cli quote     --socket are.sock [terms...] [--csv ylt.csv] [--shutdown]
//                     (client for a running serve; prints the JSON response line)
//   are_cli top       --connect 127.0.0.1:9464 [--interval-ms N] [--iterations N]
//                     (refreshing operator dashboard polled from a serve's
//                     --metrics-port HTTP endpoint: QPS, per-source latency
//                     quantiles, inflight vs budget, cache, shard, faults)
//
// Layer terms: --occ-retention --occ-limit --agg-retention --agg-limit
// Engine:      --engine NAME (any name in `are_cli list-engines`)
//              --threads N --chunk N (chunked engine's events per chunk)
//              --partition static|dynamic|guided --partition-chunk N
//              (parallel engine's trials per dynamic/guided work item;
//              for the fused engine, --partition picks the tile scheduler)
//              --tile N (fused engine's trials per tile; 0 = footprint heuristic)
//              --simd-ext auto|scalar|sse2|avx2|avx512|neon
//              --window FROM:TO (windowed/fused engines; fractions of the year)
//              --phases (Fig-6b phase breakdown; instrumented/fused engines)
//              --lookup direct|sorted|robinhood|cuckoo
// Output:      --output materialized|sharded — sharded stores the YLT in
//              trial-range shards that spill to disk under a memory budget
//              (out-of-core; engines with the 'sharded' capability), with
//              --shard-trials N --spill-dir PATH --memory-budget-mb M
// Telemetry:   --telemetry json|csv|prom|trace [--telemetry-out PATH]
//              (runtime counters / Chrome-trace spans from src/obs/, exported
//              after the command finishes; default destination stderr)
//              --verbose (human summaries rendered from the telemetry registry)
//
// Engine selection goes through core::run(AnalysisRequest) and the
// EngineRegistry, so a backend registered there is immediately reachable
// here by name — this file has no per-engine dispatch ladder.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "args.hpp"
#include "catmodel/cat_model.hpp"
#include "core/analysis.hpp"
#include "core/engine_registry.hpp"
#include "core/openmp_engine.hpp"
#include "fault/fault_injection.hpp"
#include "obs/export.hpp"
#include "obs/metrics_server.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "elt/synthetic.hpp"
#include "io/binary.hpp"
#include "io/csv.hpp"
#include "metrics/convergence.hpp"
#include "metrics/ep_curve.hpp"
#include "metrics/sharded_reduce.hpp"
#include "pricing/pricing.hpp"
#include "service/analysis_service.hpp"
#include "service/server.hpp"
#include "shard/sharded_run.hpp"
#include "simd/dispatch.hpp"
#include "yet/generator.hpp"

namespace {

using namespace are;
using tools::Args;

int usage() {
  std::cerr <<
      R"(usage: are_cli <command> [options]

commands:
  gen-elt            synthesize an Event Loss Table      (--out FILE)
  gen-elt-catmodel   run the catastrophe model to an ELT (--out FILE)
  gen-yet            pre-simulate a Year Event Table     (--out FILE)
  run                aggregate analysis -> YLT CSV       (--yet F --elt F... --out FILE)
  report             aggregate analysis -> EP table      (--yet F --elt F...)
  price              aggregate analysis -> layer quote   (--yet F --elt F...)
  info               describe a .yet/.elt binary file    (--yet F | --elt F)
  simd-info          runtime SIMD dispatch facts: cpuid-detected, compiled-in,
                     and chosen extensions (--runnable: one runnable extension
                     per line, machine-readable — what CI override loops use)
  list-engines       dump the engine registry            (--names --bit-identical)
                     --sinks: smoke-run every sink-capable engine (forced spill,
                     sharded CSV byte-diffed against the sequential reference)
  serve              resident analysis service           (--yet F --elt F... --socket PATH)
                     --portfolio NAME (book id, default 'book') --threads N
                     --max-request-cost N --max-inflight-cost N --queue-limit N
                     --admission-memory-budget-mb M --ground-up-budget-mb M
                     --cache-entries N --engine NAME (default engine, default fused)
                     --shard-trials N --spill-dir PATH --memory-budget-mb M
                     (out-of-core config used by sharded=1 quotes)
                     --verbose (per-request lines + shutdown summary to stderr)
                     --metrics-port N (HTTP /metrics /healthz /statusz; 0 = ephemeral)
                     --metrics-bind ADDR (default 127.0.0.1)
                     --access-log PATH (JSONL, one line per quote)
                     --trace-out PATH (Chrome-trace JSON written at shutdown;
                     request ids ride on service.quote spans + instant events)
  top                live operator view of a running serve's metrics endpoint
                     --connect HOST:PORT (default 127.0.0.1:9464)
                     --interval-ms N (default 1000) --iterations N (0 = forever)
                     --no-clear (append refreshes instead of redrawing)
  quote              client for a running serve          (--socket PATH [terms...])
                     --portfolio NAME --layer N --engine NAME --window FROM:TO
                     --phases --csv PATH (server-side YLT CSV) --no-cache --no-delta
                     --sharded (out-of-core quote) --deadline-ms N (bound wall clock)
                     --retries N --retry-base-ms M (exponential backoff + jitter on
                     retryable failures and connect errors)
                     --ping --shutdown; prints the JSON response, exit 0 iff ok

common options:
  layer terms   --occ-retention X --occ-limit X --agg-retention X --agg-limit X
  engine        --engine NAME (see list-engines) --threads N --chunk N
                --partition static|dynamic|guided --partition-chunk N
                --tile N (trials per tile, for --engine fused; 0 = auto heuristic)
  simd          --simd-ext auto|scalar|sse2|avx2|avx512|neon (lane type for --engine simd)
  window        --window FROM:TO  (fractions of the year, for --engine windowed|fused)
  phases        --phases  (Fig-6b phase breakdown to stderr; instrumented/fused)
  lookup        --lookup direct|sorted|robinhood|cuckoo
  output        --output materialized|sharded  (sharded = out-of-core YLT)
                --shard-trials N --spill-dir PATH --memory-budget-mb M (0 = unlimited)
  telemetry     --telemetry json|csv|prom|trace  (runtime counters / trace spans,
                exported after the run; Chrome-trace JSON loads in chrome://tracing)
                --telemetry-out PATH  (default: stderr)
                --verbose  (human-readable summaries from the telemetry registry)
  faults        --fault SITE=SPEC[,SITE=SPEC...]  (arm fault-injection sites for
                this process; SPEC = always|never|once|every:N|after:N|prob:P[:SEED];
                the ARE_FAULT env var takes the same list — see README "Failure model")
  run 'are_cli <command> --help' is not needed: every option has a default.
)";
  return 2;
}

financial::LayerTerms parse_terms(const Args& args) {
  financial::LayerTerms terms;
  terms.occurrence_retention = args.get_double("occ-retention", 0.0);
  terms.occurrence_limit = args.get_double("occ-limit", financial::kUnlimited);
  terms.aggregate_retention = args.get_double("agg-retention", 0.0);
  terms.aggregate_limit = args.get_double("agg-limit", financial::kUnlimited);
  terms.validate();
  return terms;
}

elt::LookupKind parse_lookup(const Args& args) {
  const std::string name = args.get("lookup", "direct");
  if (name == "direct") return elt::LookupKind::kDirectAccess;
  if (name == "sorted") return elt::LookupKind::kSortedVector;
  if (name == "robinhood") return elt::LookupKind::kRobinHood;
  if (name == "cuckoo") return elt::LookupKind::kCuckoo;
  throw std::runtime_error("unknown --lookup '" + name + "'");
}

yet::YearEventTable load_yet(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open YET file: " + path);
  return io::read_yet_binary(in);
}

elt::EventLossTable load_elt(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open ELT file: " + path);
  return io::read_elt_binary(in);
}

/// Gathers every --elt argument (repeatable) plus positional .elt paths.
std::vector<std::string> elt_paths(const Args& args) {
  std::vector<std::string> paths;
  if (args.has("elt")) paths.push_back(args.require("elt"));
  for (const std::string& positional : args.positional()) {
    if (positional.size() > 4 && positional.substr(positional.size() - 4) == ".elt") {
      paths.push_back(positional);
    }
  }
  if (paths.empty()) throw std::runtime_error("at least one --elt FILE is required");
  return paths;
}

core::Portfolio build_portfolio(const Args& args, std::size_t catalog_size) {
  core::Layer layer;
  layer.id = 1;
  layer.terms = parse_terms(args);
  const elt::LookupKind kind = parse_lookup(args);
  const double share = args.get_double("share", 1.0);
  for (const std::string& path : elt_paths(args)) {
    const elt::EventLossTable table = load_elt(path);
    if (!table.empty() && table.max_event() >= catalog_size) {
      throw std::runtime_error("ELT " + path + " has events beyond the YET catalog universe");
    }
    core::LayerElt layer_elt;
    layer_elt.lookup = elt::make_lookup(kind, table, catalog_size);
    layer_elt.terms.share = share;
    layer_elt.terms.validate();
    layer.elts.push_back(std::move(layer_elt));
  }
  core::Portfolio portfolio;
  portfolio.layers.push_back(std::move(layer));
  return portfolio;
}

core::CoverageWindow parse_window(const std::string& spec) {
  const auto colon = spec.find(':');
  core::CoverageWindow window;
  try {
    if (colon == std::string::npos) throw std::invalid_argument("");
    window.from = std::stof(spec.substr(0, colon));
    window.to = std::stof(spec.substr(colon + 1));
  } catch (const std::exception&) {
    throw std::runtime_error("--window expects FROM:TO (fractions of the year, e.g. 0.25:0.75), "
                             "got '" + spec + "'");
  }
  window.validate();
  return window;
}

parallel::Partition parse_partition(const Args& args) {
  const std::string name = args.get("partition", "static");
  if (name == "static") return parallel::Partition::kStatic;
  if (name == "dynamic") return parallel::Partition::kDynamic;
  if (name == "guided") return parallel::Partition::kGuided;
  throw std::runtime_error("unknown --partition '" + name + "'");
}

/// Builds the AnalysisConfig from the command line. Engine names resolve
/// through the registry, so `--engine` accepts exactly what list-engines
/// prints.
core::AnalysisConfig parse_engine_config(const Args& args) {
  core::AnalysisConfig config;
  // Sharded output needs a sink-capable engine, so its default is fused
  // (the engine that writes tiles straight into shards); --engine still
  // overrides either default.
  const bool sharded = args.get("output", "materialized") == "sharded";
  const auto& engine =
      core::EngineRegistry::global().require(args.get("engine", sharded ? "fused" : "parallel"));
  config.engine = engine.kind;
  config.engine_name = engine.name;  // exact descriptor, even for custom-named engines
  config.num_threads = static_cast<std::size_t>(args.get_u64("threads", 0));
  config.partition = parse_partition(args);
  config.partition_chunk = static_cast<std::size_t>(args.get_u64("partition-chunk", 256));
  config.chunk_size = static_cast<std::size_t>(args.get_u64("chunk", 4));
  config.tile_trials = static_cast<std::size_t>(args.get_u64("tile", 0));  // 0 = heuristic
  const std::string ext = args.get("simd-ext", "auto");
  const auto extension = core::simd_extension_from_string(ext);
  if (!extension) throw std::runtime_error("unknown --simd-ext '" + ext + "'");
  config.simd_extension = *extension;
  if (args.has("window")) config.window = parse_window(args.require("window"));
  config.collect_phases = args.has("phases");

  const std::string output = args.get("output", "materialized");
  if (output == "sharded") {
    config.output = core::OutputMode::kSharded;
  } else if (output != "materialized") {
    throw std::runtime_error("unknown --output '" + output +
                             "' (expected materialized or sharded)");
  }
  config.sharding.shard_trials = args.get_u64("shard-trials", 4096);
  config.sharding.memory_budget_bytes =
      static_cast<std::size_t>(args.get_u64("memory-budget-mb", 0)) << 20;
  config.sharding.spill_dir = args.get("spill-dir", "");
  return config;
}

/// Telemetry options parsed once per command. Collection is enabled
/// process-wide here, before the engine runs, rather than per-run through
/// AnalysisConfig::telemetry: the sharded read-back pass (CSV streaming, EP
/// reduction) faults shards *after* run_to_sink returns, and its I/O must
/// land in the counters too.
struct TelemetryCli {
  std::string format;    // "json" | "csv" | "prom" | "trace"; empty = no export
  std::string out_path;  // empty = stderr
  bool verbose = false;
};

TelemetryCli parse_telemetry(const Args& args) {
  TelemetryCli telemetry;
  telemetry.verbose = args.has("verbose");
  if (args.has("telemetry")) {
    telemetry.format = args.require("telemetry");
    if (telemetry.format != "json" && telemetry.format != "csv" &&
        telemetry.format != "prom" && telemetry.format != "trace") {
      throw std::runtime_error("unknown --telemetry '" + telemetry.format +
                               "' (expected json, csv, prom, or trace)");
    }
  }
  telemetry.out_path = args.get("telemetry-out", "");
  // --verbose summaries render from the registry, so it too turns the
  // counters on.
  if (!telemetry.format.empty() || telemetry.verbose) obs::set_enabled(true);
  if (telemetry.format == "trace") obs::set_trace_enabled(true);
  return telemetry;
}

void export_telemetry(const TelemetryCli& telemetry) {
  if (telemetry.format.empty()) return;
  std::ofstream file;
  std::ostream* out = &std::cerr;
  if (!telemetry.out_path.empty()) {
    file.open(telemetry.out_path);
    if (!file) throw std::runtime_error("cannot write " + telemetry.out_path);
    out = &file;
  }
  if (telemetry.format == "trace") {
    obs::TraceBuffer::global().write_chrome_json(*out);
    return;
  }
  const obs::Snapshot snapshot = obs::TelemetryRegistry::global().snapshot();
  if (telemetry.format == "json") {
    obs::write_snapshot_json(*out, snapshot);
  } else if (telemetry.format == "csv") {
    obs::write_snapshot_csv(*out, snapshot);
  } else {
    obs::write_snapshot_prometheus(*out, snapshot);
  }
}

/// Post-run execution facts (stderr, so CSV/report stdout stays clean):
/// the Fig-6b phase breakdown for the instrumented engine, the resolved
/// lane type for simd, and whether openmp actually ran OpenMP or fell back.
void report_execution(const core::InstrumentationSink& sink) {
  if (sink.openmp_used && !*sink.openmp_used) {
    std::cerr << "note: OpenMP not compiled in; bit-identical thread-pool fallback ran\n";
  }
  if (sink.simd_extension_used) {
    std::cerr << "note: kernel executed extension '"
              << core::to_string(*sink.simd_extension_used) << "'";
    // The runtime dispatch rationale: explicit request, ARE_SIMD_EXT
    // override, the cpuid / compiled-in cap, or the cache-regime narrowing.
    if (sink.simd_resolution_note && !sink.simd_resolution_note->empty()) {
      std::cerr << " (" << *sink.simd_resolution_note << ")";
    }
    std::cerr << "\n";
  }
  if (sink.phases) {
    const core::PhaseBreakdown& phases = *sink.phases;
    std::cerr << "phase breakdown (Fig 6b):\n";
    const auto row = [](const char* name, double seconds, double fraction) {
      std::fprintf(stderr, "  %-15s %10.4f s  %5.1f%%\n", name, seconds, 100.0 * fraction);
    };
    row("event fetch", phases.fetch_seconds, phases.fetch_fraction());
    row("ELT lookup", phases.lookup_seconds, phases.lookup_fraction());
    row("financial terms", phases.financial_seconds, phases.financial_fraction());
    row("layer terms", phases.layer_seconds, phases.layer_fraction());
    row("output", phases.output_seconds, phases.output_fraction());
    row("total", phases.total_seconds(), 1.0);
  }
  if (sink.accesses) {
    std::fprintf(stderr,
                 "accesses: %llu events fetched, %llu ELT lookups, %llu financial, %llu layer\n",
                 static_cast<unsigned long long>(sink.accesses->events_fetched),
                 static_cast<unsigned long long>(sink.accesses->elt_lookups),
                 static_cast<unsigned long long>(sink.accesses->financial_applications),
                 static_cast<unsigned long long>(sink.accesses->layer_term_applications));
  }
}

core::YearLossTable run_engine(const Args& args, const core::Portfolio& portfolio,
                               const yet::YearEventTable& yet_table) {
  core::AnalysisConfig config = parse_engine_config(args);
  core::InstrumentationSink sink;
  config.instrumentation = &sink;
  auto ylt = core::run({portfolio, yet_table, std::move(config)});
  report_execution(sink);
  return ylt;
}

/// Post-run shard-store facts (stderr, --verbose only): how hard the memory
/// budget pressed. Rendered from the telemetry registry — the store's
/// bespoke stats are no longer read here — so the numbers include every
/// spill/fault of the whole command (run + read-back), exactly what
/// --telemetry exports.
void report_sharding(const shard::ShardedYearLossTable& ylt, const TelemetryCli& telemetry) {
  if (!telemetry.verbose) return;
  const obs::Snapshot snapshot = obs::TelemetryRegistry::global().snapshot();
  std::fprintf(stderr,
               "sharded YLT: %zu shards x %llu trials, %llu spills, %llu faults, "
               "peak resident %.1f MB\n",
               ylt.num_shards(), static_cast<unsigned long long>(ylt.shard_trials()),
               static_cast<unsigned long long>(snapshot.counter_value("shard.spills")),
               static_cast<unsigned long long>(snapshot.counter_value("shard.faults")),
               static_cast<double>(snapshot.gauge_value("shard.peak_resident_bytes")) / 1e6);
}

/// Sharded execution path shared by run/report: engine -> out-of-core YLT.
/// Callers print report_sharding() after consuming the table, so the
/// spill/fault counters include the read-back pass too.
shard::ShardedYearLossTable run_engine_sharded(const Args& args,
                                               const core::Portfolio& portfolio,
                                               const yet::YearEventTable& yet_table) {
  core::AnalysisConfig config = parse_engine_config(args);
  core::InstrumentationSink sink;
  config.instrumentation = &sink;
  auto ylt = shard::run_sharded({portfolio, yet_table, std::move(config)});
  report_execution(sink);
  return ylt;
}

bool sharded_output(const Args& args) { return args.get("output", "materialized") == "sharded"; }

std::size_t universe_of(const yet::YearEventTable& yet_table, const Args& args) {
  // The catalog universe is whatever the user says, defaulting to one past
  // the largest event id present.
  if (args.has("catalog-size")) return static_cast<std::size_t>(args.get_u64("catalog-size", 0));
  yet::EventId max_event = 0;
  for (const auto event : yet_table.events()) max_event = std::max(max_event, event);
  return static_cast<std::size_t>(max_event) + 1;
}

// --- commands ----------------------------------------------------------------

int cmd_gen_elt(const Args& args) {
  elt::SyntheticEltConfig config;
  config.catalog_size = static_cast<std::size_t>(args.get_u64("catalog-size", 2'000'000));
  config.entries = static_cast<std::size_t>(args.get_u64("entries", 20'000));
  config.loss_alpha = args.get_double("loss-alpha", 1.5);
  config.loss_scale = args.get_double("loss-scale", 250e3);
  config.seed = args.get_u64("seed", 1);
  config.elt_id = args.get_u64("elt-id", 0);

  const elt::EventLossTable table = elt::make_synthetic_elt(config);
  const std::string out_path = args.require("out");
  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  io::write_elt_binary(out, table);
  std::cout << "wrote " << out_path << ": " << table.size() << " event losses, total "
            << table.total_loss() << "\n";
  return 0;
}

int cmd_gen_elt_catmodel(const Args& args) {
  catalog::CatalogConfig catalog_config;
  catalog_config.num_events = static_cast<std::size_t>(args.get_u64("events", 50'000));
  catalog_config.expected_events_per_year = args.get_double("rate", 1000.0);
  catalog_config.seed = args.get_u64("seed", 20120901);
  const auto event_catalog = catalog::build_catalog(catalog_config);

  exposure::ExposureConfig exposure_config;
  exposure_config.num_sites = static_cast<std::size_t>(args.get_u64("sites", 5'000));
  exposure_config.seed = args.get_u64("exposure-seed", 7);
  const auto exposure_set = exposure::build_exposure(exposure_config);

  catmodel::CatModelConfig model_config;
  model_config.secondary_uncertainty = args.has("secondary-uncertainty");
  const auto table = catmodel::run_cat_model(event_catalog, exposure_set, model_config);

  const std::string out_path = args.require("out");
  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  io::write_elt_binary(out, table);
  std::cout << "cat model: " << event_catalog.size() << " events x " << exposure_set.size()
            << " sites -> " << table.size() << " event losses; wrote " << out_path << "\n";
  return 0;
}

int cmd_gen_yet(const Args& args) {
  yet::YetConfig config;
  config.num_trials = args.get_u64("trials", 100'000);
  config.events_per_trial = args.get_double("events", 1000.0);
  config.seed = args.get_u64("seed", 2012);
  const std::string model = args.get("model", "fixed");
  if (model == "fixed") {
    config.count_model = yet::CountModel::kFixed;
  } else if (model == "poisson") {
    config.count_model = yet::CountModel::kPoisson;
  } else if (model == "negbin") {
    config.count_model = yet::CountModel::kNegativeBinomial;
    config.dispersion = args.get_double("dispersion", 50.0);
  } else {
    throw std::runtime_error("unknown --model '" + model + "'");
  }

  const auto catalog_size = static_cast<std::size_t>(args.get_u64("catalog-size", 2'000'000));
  const auto table = yet::generate_uniform_yet(config, catalog_size);

  const std::string out_path = args.require("out");
  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  io::write_yet_binary(out, table);
  std::cout << "wrote " << out_path << ": " << table.num_trials() << " trials, "
            << table.total_events() << " occurrences ("
            << static_cast<double>(table.memory_bytes()) / 1e6 << " MB)\n";
  return 0;
}

int cmd_run(const Args& args) {
  const TelemetryCli telemetry = parse_telemetry(args);
  const auto yet_table = load_yet(args.require("yet"));
  const auto portfolio = build_portfolio(args, universe_of(yet_table, args));
  const std::string out_path = args.require("out");

  // The output file is only opened (and truncated) once the engine has
  // succeeded, so a failing run leaves any pre-existing file intact.
  const auto open_out = [&] {
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot write " + out_path);
    return out;
  };

  if (sharded_output(args)) {
    // Out-of-core: the full trials x layers table never exists in memory;
    // the CSV streams out one pinned shard at a time, byte-identical to
    // the materialized writer.
    auto ylt = run_engine_sharded(args, portfolio, yet_table);
    auto out = open_out();
    io::write_ylt_csv(out, ylt);
    report_sharding(ylt, telemetry);
    export_telemetry(telemetry);
    std::cout << "wrote " << out_path << ": " << ylt.num_trials() << " trial losses ("
              << ylt.num_shards() << " shards)\n";
    return 0;
  }
  const auto ylt = run_engine(args, portfolio, yet_table);
  auto out = open_out();
  io::write_ylt_csv(out, ylt);
  export_telemetry(telemetry);
  std::cout << "wrote " << out_path << ": " << ylt.num_trials() << " trial losses\n";
  return 0;
}

int cmd_report(const Args& args) {
  const TelemetryCli telemetry = parse_telemetry(args);
  const auto yet_table = load_yet(args.require("yet"));
  const auto portfolio = build_portfolio(args, universe_of(yet_table, args));

  metrics::EpCurve curve;
  std::uint64_t trials = 0;
  double standard_error = 0.0;
  if (sharded_output(args)) {
    // Shard-wise streaming reduction: sorted runs + k-way merge for the
    // exact EP curve, RunningStats for the standard error — bit-identical
    // to the materialized metrics below.
    auto ylt = run_engine_sharded(args, portfolio, yet_table);
    trials = ylt.num_trials();
    curve = metrics::ep_curve_sharded(ylt, 0);
    const metrics::RunningStats stats = metrics::stats_sharded(ylt, 0);
    standard_error = stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
    report_sharding(ylt, telemetry);
  } else {
    const auto ylt = run_engine(args, portfolio, yet_table);
    trials = ylt.num_trials();
    curve = metrics::EpCurve(ylt.layer_losses(0));
    standard_error = metrics::mean_standard_error(ylt.layer_losses(0));
  }
  export_telemetry(telemetry);

  std::cout << "trials              : " << trials << "\n";
  std::cout << "expected annual loss: " << curve.expected_loss() << "\n";
  std::cout << "TVaR(99%)           : " << curve.tail_value_at_risk(0.99) << "\n";
  std::cout << "EL standard error   : " << standard_error << "\n\n";
  io::write_ep_csv(std::cout, curve.table(metrics::standard_return_periods()));
  return 0;
}

int cmd_price(const Args& args) {
  const TelemetryCli telemetry = parse_telemetry(args);
  const auto yet_table = load_yet(args.require("yet"));
  const auto portfolio = build_portfolio(args, universe_of(yet_table, args));
  const auto ylt = run_engine(args, portfolio, yet_table);

  pricing::PricingAssumptions assumptions;
  assumptions.stddev_loading = args.get_double("stddev-loading", assumptions.stddev_loading);
  assumptions.tvar_loading = args.get_double("tvar-loading", assumptions.tvar_loading);
  assumptions.expense_ratio = args.get_double("expense-ratio", assumptions.expense_ratio);
  const auto quote =
      pricing::price_layer(ylt.layer_losses(0), portfolio.layers[0].terms, assumptions);
  export_telemetry(telemetry);
  std::cout << pricing::describe(quote) << "\n";
  return 0;
}

/// `list-engines --sinks`: runs every sink-capable engine on a small
/// synthetic workload with a deliberately tiny memory budget (shards must
/// spill and fault back) and byte-diffs its sharded CSV against the
/// sequential reference — the in-process version of CI's sharded smoke
/// leg, one command instead of a shell loop. Returns nonzero on the first
/// mismatch.
int smoke_sink_engines() {
  elt::SyntheticEltConfig elt_config;
  elt_config.catalog_size = 20'000;
  elt_config.entries = 2'000;
  core::Layer layer;
  layer.id = 1;
  layer.terms.occurrence_retention = 200e3;
  layer.terms.occurrence_limit = 2e6;
  core::LayerElt layer_elt;
  layer_elt.lookup = elt::make_lookup(elt::LookupKind::kDirectAccess,
                                      elt::make_synthetic_elt(elt_config), elt_config.catalog_size);
  layer.elts.push_back(std::move(layer_elt));
  core::Portfolio portfolio;
  portfolio.layers.push_back(std::move(layer));

  yet::YetConfig yet_config;
  yet_config.num_trials = 2'000;
  yet_config.events_per_trial = 20.0;
  yet_config.count_model = yet::CountModel::kPoisson;
  yet_config.seed = 2012;
  const auto yet_table = yet::generate_uniform_yet(yet_config, elt_config.catalog_size);

  std::ostringstream reference;
  io::write_ylt_csv(reference,
                    core::run({portfolio, yet_table, {.engine = core::EngineKind::kSequential,
                                                      .num_threads = 1}}));

  bool all_passed = true;
  for (const auto& engine : core::EngineRegistry::global().descriptors()) {
    if (!engine.supports_sharded_output() || !engine.available_in_this_build) continue;
    core::AnalysisConfig config;
    config.engine = engine.kind;
    config.engine_name = engine.name;
    config.num_threads = 2;
    config.output = core::OutputMode::kSharded;
    config.sharding.shard_trials = 64;
    config.sharding.memory_budget_bytes = 2 * 64 * sizeof(double);  // ~2 shards: forced spill
    auto sharded = shard::run_sharded({portfolio, yet_table, config});
    std::ostringstream streamed;
    io::write_ylt_csv(streamed, sharded);
    const shard::ShardStoreStats stats = sharded.stats();

    const bool identical = streamed.str() == reference.str();
    const bool spilled = stats.spills > 0;
    // windowed runs full-year here (no window given), so even its CSV must
    // match seq byte-for-byte.
    std::printf("%-13s %s  (%llu spills, %llu faults)\n", engine.name.c_str(),
                identical && spilled ? "PASS" : "FAIL",
                static_cast<unsigned long long>(stats.spills),
                static_cast<unsigned long long>(stats.faults));
    if (!identical) {
      std::fprintf(stderr, "are_cli list-engines --sinks: engine '%s' sharded CSV differs "
                           "from the sequential reference\n", engine.name.c_str());
      all_passed = false;
    }
    if (!spilled) {
      std::fprintf(stderr, "are_cli list-engines --sinks: engine '%s' never spilled — the "
                           "smoke budget is vacuous\n", engine.name.c_str());
      all_passed = false;
    }
  }
  return all_passed ? 0 : 1;
}

int cmd_list_engines(const Args& args) {
  const auto& registry = core::EngineRegistry::global();
  const bool names_only = args.has("names");
  const bool only_bit_identical = args.has("bit-identical");
  if (args.has("sinks")) return smoke_sink_engines();

  if (names_only) {
    // Machine-readable: one canonical name per line, restricted to engines
    // this build can actually run (what CI smoke-loops over).
    for (const auto& engine : registry.descriptors()) {
      if (!engine.available_in_this_build) continue;
      if (only_bit_identical && !engine.bit_identical_to_sequential) continue;
      std::cout << engine.name << "\n";
    }
    return 0;
  }

  std::printf("%-13s %-9s %-13s %-7s %-6s %-5s %-8s %s\n", "engine", "available",
              "bit-identical", "window", "instr", "pool", "sharded", "summary");
  for (const auto& engine : registry.descriptors()) {
    if (only_bit_identical && !engine.bit_identical_to_sequential) continue;
    const auto yn = [](bool value) { return value ? "yes" : "no"; };
    std::printf("%-13s %-9s %-13s %-7s %-6s %-5s %-8s %s\n", engine.name.c_str(),
                yn(engine.available_in_this_build), yn(engine.bit_identical_to_sequential),
                yn(engine.supports_windowing), yn(engine.supports_instrumentation),
                yn(engine.supports_pool_reuse), yn(engine.supports_sharded_output()),
                engine.summary.c_str());
    if (!engine.availability_note.empty()) {
      std::printf("%-13s   %s\n", "", engine.availability_note.c_str());
    }
  }
  return 0;
}

/// `are_cli serve`: load the YET/ELTs once, register them as a book, and
/// answer quote lines over an AF_UNIX socket until SHUTDOWN. Telemetry
/// counters are enabled for the life of the server — the broker's admission
/// state lives in the registry, and every response carries its per-request
/// Snapshot::diff.
int cmd_serve(const Args& args) {
  obs::set_enabled(true);
  auto yet_table = load_yet(args.require("yet"));
  auto portfolio = build_portfolio(args, universe_of(yet_table, args));

  service::ServiceConfig config;
  config.session.num_threads = static_cast<std::size_t>(args.get_u64("threads", 0));
  config.session.ground_up_budget_bytes =
      static_cast<std::size_t>(args.get_u64("ground-up-budget-mb", 512)) << 20;
  config.broker.max_request_cost = args.get_u64("max-request-cost", 0);
  config.broker.max_inflight_cost = args.get_u64("max-inflight-cost", 0);
  config.broker.max_queued = static_cast<std::size_t>(args.get_u64("queue-limit", 16));
  config.broker.memory_budget_bytes =
      static_cast<std::size_t>(args.get_u64("admission-memory-budget-mb", 0)) << 20;
  config.cache_entries = static_cast<std::size_t>(args.get_u64("cache-entries", 64));
  config.default_engine = args.get("engine", "fused");
  core::EngineRegistry::global().require(config.default_engine);  // fail fast on typos
  // Out-of-core execution for sharded=1 quotes (same flag names as `run`).
  config.sharding.shard_trials = args.get_u64("shard-trials", 4096);
  config.sharding.memory_budget_bytes =
      static_cast<std::size_t>(args.get_u64("memory-budget-mb", 0)) << 20;
  config.sharding.spill_dir = args.get("spill-dir", "");
  if (args.has("metrics-port")) {
    config.metrics_port = static_cast<int>(args.get_u64("metrics-port", 0));
    config.metrics_bind = args.get("metrics-bind", "127.0.0.1");
  }
  config.access_log_path = args.get("access-log", "");
  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) obs::set_trace_enabled(true);

  const std::string book = args.get("portfolio", "book");
  service::AnalysisService analysis_service(std::move(yet_table), config);
  analysis_service.register_portfolio(book, std::move(portfolio));

  service::ServerOptions options;
  options.socket_path = args.get("socket", "are.sock");
  options.verbose = args.has("verbose");
  service::Server server(analysis_service, options);
  std::cout << "serving portfolio '" << book << "' on " << options.socket_path
            << " (engine " << config.default_engine << ", "
            << analysis_service.session().yet_table().num_trials() << " trials)";
  if (analysis_service.metrics_server() != nullptr) {
    std::cout << " metrics on http://" << config.metrics_bind << ":"
              << analysis_service.metrics_server()->port();
  }
  std::cout << "\n" << std::flush;
  const int rc = server.serve();
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) throw std::runtime_error("cannot write " + trace_out);
    obs::TraceBuffer::global().write_chrome_json(out);
  }
  return rc;
}

/// `are_cli quote`: one protocol line to a running serve, response to
/// stdout. Exit status is 0 only for an ok response, so shell scripts (and
/// the CI smoke) can gate on it directly.
int cmd_quote(const Args& args) {
  const std::string socket_path = args.get("socket", "are.sock");
  std::ostringstream line;
  if (args.has("ping")) {
    line << "PING";
  } else if (args.has("update")) {
    line << "UPDATE portfolio=" << args.get("portfolio", "book")
         << " layer=" << args.get_u64("layer", 1);
  } else if (args.has("shutdown")) {
    line << "SHUTDOWN";
  } else {
    line << "QUOTE portfolio=" << args.get("portfolio", "book")
         << " layer=" << args.get_u64("layer", 1);
  }
  // Terms ride along verbatim (QUOTE builds a per-request override; UPDATE
  // mutates the book). Only keys the user actually passed are sent, so a
  // bare quote reprices the book's own terms.
  for (const char* key : {"occ-retention", "occ-limit", "agg-retention", "agg-limit"}) {
    if (args.has(key)) line << ' ' << key << '=' << args.require(key);
  }
  if (!args.has("ping") && !args.has("update") && !args.has("shutdown")) {
    if (args.has("engine")) line << " engine=" << args.require("engine");
    if (args.has("window")) line << " window=" << args.require("window");
    if (args.has("phases")) line << " phases=1";
    if (args.has("no-cache")) line << " cache=0";
    if (args.has("no-delta")) line << " delta=0";
    if (args.has("csv")) line << " csv=" << args.require("csv");
    if (args.has("sharded")) line << " sharded=1";
    if (args.has("deadline-ms")) line << " deadline-ms=" << args.get_u64("deadline-ms", 0);
  }

  // Retry loop: exponential backoff with jitter, but only for failures the
  // server marks "retryable":true (deadline, resource exhaustion, spill,
  // I/O, shutdown races) and for transport errors (server not up yet).
  // Malformed requests and other terminal statuses return immediately.
  const std::uint64_t max_retries = args.get_u64("retries", 0);
  const std::uint64_t base_ms = args.get_u64("retry-base-ms", 100);
  std::mt19937_64 jitter_rng(std::random_device{}());
  std::string response;
  for (std::uint64_t attempt = 0;; ++attempt) {
    bool transport_error = false;
    try {
      response = service::Server::round_trip(socket_path, line.str());
    } catch (const std::exception& error) {
      if (attempt >= max_retries) throw;
      transport_error = true;
      std::cerr << "quote attempt " << (attempt + 1) << ": " << error.what() << "\n";
    }
    if (!transport_error) {
      const bool ok = response.find("\"status\":\"ok\"") != std::string::npos;
      const bool retryable = response.find("\"retryable\":true") != std::string::npos;
      if (ok || !retryable || attempt >= max_retries) break;
      std::cerr << "quote attempt " << (attempt + 1) << ": retryable failure: " << response
                << "\n";
    }
    const std::uint64_t backoff = base_ms << std::min<std::uint64_t>(attempt, 10);
    const std::uint64_t jitter =
        backoff > 1 ? std::uniform_int_distribution<std::uint64_t>(0, backoff / 2)(jitter_rng)
                    : 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff + jitter));
  }
  std::cout << response << "\n";
  return response.find("\"status\":\"ok\"") != std::string::npos ? 0 : 1;
}

/// Parses Prometheus text exposition into exact-key samples:
/// "are_service_inflight_cost 42" and
/// "are_service_quote_ns_p50_ns{source=\"cold\"} 9000" keep their full
/// series name (labels included) as the key. Comment/TYPE lines skipped.
std::vector<std::pair<std::string, double>> parse_prometheus_text(const std::string& body) {
  std::vector<std::pair<std::string, double>> samples;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) continue;
    try {
      samples.emplace_back(line.substr(0, space), std::stod(line.substr(space + 1)));
    } catch (const std::exception&) {
      // +Inf etc. in a value position — not a series top cares about.
    }
  }
  return samples;
}

double metric_value(const std::vector<std::pair<std::string, double>>& samples,
                    const std::string& key) {
  for (const auto& [name, value] : samples) {
    if (name == key) return value;
  }
  return 0.0;
}

std::string format_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1 << 20) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", bytes / (1 << 20));
  } else if (bytes >= 1 << 10) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", bytes / (1 << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%.0f B", bytes);
  }
  return buf;
}

/// `are_cli top`: poll a running serve's /metrics endpoint and render a
/// refreshing terminal dashboard. Pure scrape client — everything shown is
/// derivable from the Prometheus text, so anything top displays is also
/// available to a real scraper.
int cmd_top(const Args& args) {
  const std::string connect = args.get("connect", "127.0.0.1:9464");
  const std::size_t colon = connect.rfind(':');
  if (colon == std::string::npos || colon + 1 >= connect.size()) {
    throw std::runtime_error("--connect needs HOST:PORT");
  }
  const std::string host = connect.substr(0, colon);
  const int port = static_cast<int>(std::stoul(connect.substr(colon + 1)));
  const std::uint64_t interval_ms = args.get_u64("interval-ms", 1000);
  const std::uint64_t iterations = args.get_u64("iterations", 0);  // 0 = until ^C
  const bool clear = !args.has("no-clear");

  double prev_requests = -1.0;
  for (std::uint64_t tick = 0; iterations == 0 || tick < iterations; ++tick) {
    if (tick != 0) std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    const auto m = parse_prometheus_text(obs::http_get(host, port, "/metrics"));

    const double requests = metric_value(m, "are_service_requests_total");
    const double qps = prev_requests >= 0.0
                           ? (requests - prev_requests) * 1e3 /
                                 static_cast<double>(interval_ms)
                           : 0.0;
    prev_requests = requests;

    std::ostringstream out;
    out << "are_cli top — " << connect << "  up "
        << metric_value(m, "are_uptime_seconds") << "s\n";
    {
      const double inflight = metric_value(m, "are_service_inflight_requests");
      const double cost = metric_value(m, "are_service_inflight_cost");
      const double budget = metric_value(m, "are_service_inflight_cost_budget");
      const double queued = metric_value(m, "are_service_queued_requests");
      const double queue_limit = metric_value(m, "are_service_queue_limit");
      out << "requests " << requests << " (" << qps << " qps)  inflight " << inflight
          << " cost " << cost << "/"
          << (budget > 0 ? std::to_string(static_cast<long long>(budget)) : "inf")
          << "  queued " << queued << "/" << queue_limit << "\n";
    }
    out << "source       count     p50 ms     p99 ms\n";
    for (const char* source : {"cold", "delta", "cached", "rejected", "failed"}) {
      const std::string labels = "{source=\"" + std::string(source) + "\"}";
      const double count = metric_value(m, "are_service_quote_ns_count" + labels);
      char row[96];
      std::snprintf(row, sizeof row, "%-10s %7.0f %10.2f %10.2f\n", source, count,
                    metric_value(m, "are_service_quote_ns_p50_ns" + labels) / 1e6,
                    metric_value(m, "are_service_quote_ns_p99_ns" + labels) / 1e6);
      out << row;
    }
    {
      const double hits = metric_value(m, "are_service_cache_hits_total");
      const double misses = metric_value(m, "are_service_cache_misses_total");
      const double probes = hits + misses;
      out << "cache hits " << hits << " misses " << misses << " ("
          << (probes > 0 ? 100.0 * hits / probes : 0.0) << "% hit)  evictions "
          << metric_value(m, "are_service_cache_evictions_total") << "\n";
      out << "shard resident " << format_bytes(metric_value(m, "are_shard_resident_bytes"))
          << " peak " << format_bytes(metric_value(m, "are_shard_peak_resident_bytes"))
          << " spills " << metric_value(m, "are_shard_spills_total") << " faults "
          << metric_value(m, "are_shard_faults_total") << "\n";
    }
    {
      std::ostringstream faults;
      constexpr std::string_view prefix = "are_fault_injected_";
      for (const auto& [name, value] : m) {
        if (value == 0.0 || name.rfind(prefix, 0) != 0) continue;
        std::string site = name.substr(prefix.size());
        if (site.size() > 6 && site.compare(site.size() - 6, 6, "_total") == 0) {
          site.resize(site.size() - 6);
        }
        faults << " " << site << "=" << value;
      }
      out << "fault fires:" << (faults.str().empty() ? " none" : faults.str()) << "\n";
    }
    if (clear) std::cout << "\033[H\033[2J";
    std::cout << out.str() << std::flush;
  }
  return 0;
}

/// `are_cli simd-info`: what the runtime dispatch layer resolved for this
/// (binary, host) pair. `--runnable` prints one runnable extension name per
/// line — the machine-readable form CI's ARE_SIMD_EXT override loop
/// consumes, so the loop only pins extensions this host can execute.
int cmd_simd_info(const Args& args) {
  const simd::ExtensionMask runnable = simd::runnable_extensions();
  if (args.has("runnable")) {
    for (int i = 0; i < simd::kNumExtensions; ++i) {
      const auto extension = static_cast<simd::Extension>(i);
      if (simd::mask_has(runnable, extension)) std::cout << simd::name_of(extension) << "\n";
    }
    return 0;
  }
  std::cout << "cpuid detected : " << simd::describe_mask(simd::detected_extensions()) << "\n";
  std::cout << "compiled in    : " << simd::describe_mask(simd::compiled_extensions()) << "\n";
  std::cout << "runnable       : " << simd::describe_mask(runnable) << "\n";
  if (const auto override_ext = simd::env_override()) {
    std::cout << "ARE_SIMD_EXT   : " << simd::name_of(*override_ext) << "\n";
  }
  std::cout << "auto runs      : " << simd::name_of(simd::best_extension()) << " ("
            << simd::best_extension_reason() << ")\n";
  return 0;
}

int cmd_info(const Args& args) {
  if (args.has("yet")) {
    const auto table = load_yet(args.require("yet"));
    std::cout << "YET: " << table.num_trials() << " trials, " << table.total_events()
              << " occurrences, mean " << table.mean_events_per_trial() << " events/trial, "
              << static_cast<double>(table.memory_bytes()) / 1e6 << " MB\n";
    return 0;
  }
  if (args.has("elt")) {
    const auto table = load_elt(args.require("elt"));
    std::cout << "ELT: " << table.size() << " event losses, max event id " << table.max_event()
              << ", total loss " << table.total_loss() << "\n";
    return 0;
  }
  throw std::runtime_error("info needs --yet FILE or --elt FILE");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  try {
    // Fault-injection arming is process-wide and applies to every command:
    // ARE_FAULT first, then --fault (the flag can re-arm or "never" out an
    // env-armed site).
    if (const char* env = std::getenv("ARE_FAULT"); env != nullptr && *env != '\0') {
      fault::FaultRegistry::global().arm_from_list(env);
    }
    if (args.has("fault")) {
      fault::FaultRegistry::global().arm_from_list(args.require("fault"));
    }
    if (command == "gen-elt") return cmd_gen_elt(args);
    if (command == "gen-elt-catmodel") return cmd_gen_elt_catmodel(args);
    if (command == "gen-yet") return cmd_gen_yet(args);
    if (command == "run") return cmd_run(args);
    if (command == "report") return cmd_report(args);
    if (command == "price") return cmd_price(args);
    if (command == "info") return cmd_info(args);
    if (command == "simd-info") return cmd_simd_info(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "quote") return cmd_quote(args);
    if (command == "top") return cmd_top(args);
    if (command == "list-engines" || command == "--list-engines") return cmd_list_engines(args);
    std::cerr << "unknown command '" << command << "'\n";
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "are_cli " << command << ": " << error.what() << "\n";
    return 1;
  }
}
