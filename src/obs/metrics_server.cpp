#include "obs/metrics_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "fault/fault_injection.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "simd/dispatch.hpp"

namespace are::obs {

namespace {

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // scraper went away mid-response; nothing sensible to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* reason, const char* content_type,
                          const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << " " << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

sockaddr_in make_addr(const std::string& address, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("metrics server: bad bind address '" + address + "'");
  }
  return addr;
}

}  // namespace

MetricsServer::MetricsServer(MetricsServerOptions options) : options_(std::move(options)) {}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::start() {
  if (running()) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("metrics server: socket(): " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(options_.bind_address, options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("metrics server: bind/listen on " + options_.bind_address + ":" +
                             std::to_string(options_.port) + ": " + reason);
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("metrics server: getsockname(): " + reason);
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  listen_fd_ = fd;
  started_at_ = std::chrono::steady_clock::now();
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { accept_loop(); });
}

void MetricsServer::stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Read until the end of the request head (or a sane cap — the only
    // requests this server understands fit in one line).
    std::string request;
    char buf[2048];
    while (request.find("\r\n\r\n") == std::string::npos && request.size() < 16 * 1024) {
      const ssize_t n = ::read(conn, buf, sizeof buf);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      request.append(buf, static_cast<std::size_t>(n));
      if (request.find('\n') != std::string::npos) break;  // request line is enough
    }
    std::istringstream head(request);
    std::string method, path;
    head >> method >> path;
    if (method != "GET") {
      write_all(conn, http_response(405, "Method Not Allowed", "text/plain",
                                    "only GET is supported\n"));
    } else {
      write_all(conn, handle_path(path));
    }
    ::close(conn);
  }
}

std::string MetricsServer::handle_path(const std::string& path) const {
  const double uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at_).count();

  if (path == "/metrics") {
    std::ostringstream body;
    write_snapshot_prometheus(body, TelemetryRegistry::global().snapshot());
    body << "# TYPE are_uptime_seconds gauge\n";
    body << "are_uptime_seconds " << uptime_seconds << "\n";
    return http_response(200, "OK", "text/plain; version=0.0.4", body.str());
  }

  if (path == "/healthz") {
    const bool healthy = options_.healthy == nullptr || options_.healthy();
    if (healthy) return http_response(200, "OK", "text/plain", "ok\n");
    return http_response(503, "Service Unavailable", "text/plain", "shutting-down\n");
  }

  if (path == "/statusz") {
    const Snapshot snapshot = TelemetryRegistry::global().snapshot();
    std::ostringstream body;
    body << "{\"build\":{\"compiler\":\"" <<
#if defined(__VERSION__)
        __VERSION__
#else
        "unknown"
#endif
        << "\",\"arch\":\"" <<
#if defined(__x86_64__)
        "x86_64"
#elif defined(__aarch64__)
        "aarch64"
#else
        "unknown"
#endif
        << "\"}";
    // Runtime SIMD dispatch facts: what this host's cpuid reports, which
    // kernel TUs the binary carries, and the extension kAuto executes —
    // the fleet-debugging answer to "is this box actually running AVX2?".
    body << ",\"simd\":{\"detected\":\"" << simd::describe_mask(simd::detected_extensions())
         << "\",\"compiled\":\"" << simd::describe_mask(simd::compiled_extensions())
         << "\",\"best\":\"" << simd::name_of(simd::best_extension())
         << "\",\"reason\":\"" << simd::best_extension_reason() << "\"}";
    body << ",\"uptime_seconds\":" << uptime_seconds;
    body << ",\"gauges\":{";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
      if (i != 0) body << ",";
      body << "\"" << snapshot.gauges[i].name << "\":" << snapshot.gauges[i].value;
    }
    body << "}";
    // Per-source quote counts — the service counters by their stable names
    // (all zero for a non-service embedder; harmless).
    body << ",\"quotes\":{\"requests\":" << snapshot.counter_value("service.requests")
         << ",\"cold\":" << snapshot.counter_value("service.cold_runs")
         << ",\"delta\":" << snapshot.counter_value("service.delta_runs")
         << ",\"cached\":" << snapshot.counter_value("service.cache_hits")
         << ",\"rejected\":" << snapshot.counter_value("service.rejected")
         << ",\"failed\":" << snapshot.counter_value("service.failed") << "}";
    body << ",\"armed_fault_sites\":[";
    const auto sites = fault::FaultRegistry::global().armed_sites();
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (i != 0) body << ",";
      body << "\"" << sites[i] << "\"";
    }
    body << "]";
    if (options_.extra_status != nullptr) {
      const std::string extra = options_.extra_status();
      if (!extra.empty()) body << ",\"embedder\":" << extra;
    }
    body << "}\n";
    return http_response(200, "OK", "application/json", body.str());
  }

  return http_response(404, "Not Found", "text/plain",
                       "unknown path (try /metrics, /healthz, /statusz)\n");
}

std::string http_get(const std::string& host, int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http_get: socket(): " + std::string(std::strerror(errno)));
  sockaddr_in addr{};
  try {
    addr = make_addr(host, port);
  } catch (const std::exception&) {
    ::close(fd);
    throw;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("http_get: connect to " + host + ":" + std::to_string(port) +
                             ": " + reason);
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  write_all(fd, request);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    throw std::runtime_error("http_get: malformed response from " + host + path);
  }
  std::istringstream head(response.substr(0, head_end));
  std::string http_version;
  int status = 0;
  head >> http_version >> status;
  if (status != 200) {
    throw std::runtime_error("http_get: " + host + path + " returned status " +
                             std::to_string(status));
  }
  return response.substr(head_end + 4);
}

}  // namespace are::obs
