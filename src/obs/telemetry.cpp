#include "obs/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <mutex>

#include "obs/trace.hpp"

namespace are::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void Histogram::record_ns(std::uint64_t ns) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);

  std::uint64_t seen_min = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen_min &&
         !min_ns_.compare_exchange_weak(seen_min, ns, std::memory_order_relaxed)) {
  }
  std::uint64_t seen_max = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen_max &&
         !max_ns_.compare_exchange_weak(seen_max, ns, std::memory_order_relaxed)) {
  }

  std::size_t bucket = static_cast<std::size_t>(std::bit_width(ns));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::min_ns() const noexcept {
  std::uint64_t v = min_ns_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::uint64_t Snapshot::HistogramSample::quantile_ns(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank in [1, count] of the sample the quantile falls on.
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < target) continue;
    const std::uint64_t lower = Histogram::bucket_lower_ns(b);
    // The top bucket absorbs everything past its nominal range; the
    // observed max is the honest upper bound there (and a tighter one
    // everywhere, since samples never exceed it).
    std::uint64_t upper = Histogram::bucket_upper_ns(b);
    if (b + 1 == buckets.size() || upper > max_ns) upper = max_ns;
    const double within =
        (target - static_cast<double>(before)) / static_cast<double>(buckets[b]);
    std::uint64_t estimate =
        lower + static_cast<std::uint64_t>(within * static_cast<double>(upper - lower));
    if (estimate < min_ns) estimate = min_ns;
    if (estimate > max_ns) estimate = max_ns;
    return estimate;
  }
  return max_ns;
}

std::uint64_t Snapshot::counter_value(std::string_view name) const noexcept {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t Snapshot::gauge_value(std::string_view name) const noexcept {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

Snapshot Snapshot::diff(const Snapshot& earlier) const {
  Snapshot delta;
  delta.counters.reserve(counters.size());
  for (const CounterSample& c : counters) {
    const std::uint64_t before = earlier.counter_value(c.name);
    delta.counters.push_back({c.name, c.value >= before ? c.value - before : c.value});
  }
  delta.gauges = gauges;  // point-in-time levels: the later reading stands
  delta.histograms.reserve(histograms.size());
  for (const HistogramSample& h : histograms) {
    HistogramSample sample = h;
    for (const HistogramSample& e : earlier.histograms) {
      if (e.name != h.name) continue;
      sample.count = h.count >= e.count ? h.count - e.count : h.count;
      sample.sum_ns = h.sum_ns >= e.sum_ns ? h.sum_ns - e.sum_ns : h.sum_ns;
      if (h.count >= e.count) {
        for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
          sample.buckets[b] =
              h.buckets[b] >= e.buckets[b] ? h.buckets[b] - e.buckets[b] : h.buckets[b];
        }
      }
      break;
    }
    delta.histograms.push_back(sample);
  }
  return delta;
}

TelemetryRegistry& TelemetryRegistry::global() {
  static TelemetryRegistry registry;
  return registry;
}

namespace {

template <typename T, typename Vec>
T& find_or_create(Vec& vec, std::string_view name) {
  for (auto& entry : vec) {
    if (entry.name == name) return *entry.instrument;
  }
  vec.push_back({std::string(name), std::make_unique<T>()});
  return *vec.back().instrument;
}

}  // namespace

Counter& TelemetryRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  return find_or_create<Counter>(counters_, name);
}

Gauge& TelemetryRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  return find_or_create<Gauge>(gauges_, name);
}

Histogram& TelemetryRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  return find_or_create<Histogram>(histograms_, name);
}

void TelemetryRegistry::reset() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& c : counters_) c.instrument->reset();
  for (auto& g : gauges_) g.instrument->reset();
  for (auto& h : histograms_) h.instrument->reset();
}

Snapshot TelemetryRegistry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& c : counters_) snap.counters.push_back({c.name, c.instrument->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto& g : gauges_) snap.gauges.push_back({g.name, g.instrument->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto& h : histograms_) {
      Snapshot::HistogramSample sample;
      sample.name = h.name;
      sample.count = h.instrument->count();
      sample.sum_ns = h.instrument->sum_ns();
      sample.min_ns = h.instrument->min_ns();
      sample.max_ns = h.instrument->max_ns();
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        sample.buckets[b] = h.instrument->bucket(b);
      }
      snap.histograms.push_back(std::move(sample));
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

RunScope::RunScope(bool counters, bool trace) noexcept
    : prior_enabled_(enabled()), prior_trace_(trace_enabled()) {
  if (counters) set_enabled(true);
  if (trace) set_trace_enabled(true);
}

RunScope::~RunScope() {
  set_enabled(prior_enabled_);
  set_trace_enabled(prior_trace_);
}

}  // namespace are::obs
