#include "obs/export.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

namespace are::obs {

namespace {

std::string sanitize(std::string_view dotted) {
  std::string out;
  out.reserve(dotted.size());
  for (char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// An instrument name split on the optional `{key=value,...}` label suffix
/// (see export.hpp): `base` is the sanitized, "are_"-prefixed family name,
/// `labels` the rendered Prometheus label block (`{key="value",...}`) or
/// empty. Unlabelled names render exactly as before this convention existed.
struct PromName {
  std::string base;
  std::string labels;

  /// The label block with one extra `key="value"` pair appended (the
  /// histogram `le` bound).
  std::string labels_with(const std::string& key, const std::string& value) const {
    if (labels.empty()) return "{" + key + "=\"" + value + "\"}";
    return labels.substr(0, labels.size() - 1) + "," + key + "=\"" + value + "\"}";
  }
};

PromName prometheus_name(const std::string& dotted) {
  PromName name;
  const std::size_t brace = dotted.find('{');
  name.base = "are_" + sanitize(std::string_view(dotted).substr(0, brace));
  if (brace == std::string::npos) return name;
  // Parse `key=value` pairs between the braces; values are quoted on the
  // way out (the in-registry convention stores them bare so JSON/CSV names
  // need no escaping).
  std::string labels = "{";
  std::string_view body = std::string_view(dotted).substr(brace + 1);
  if (!body.empty() && body.back() == '}') body.remove_suffix(1);
  std::size_t start = 0;
  bool first = true;
  while (start <= body.size()) {
    std::size_t comma = body.find(',', start);
    if (comma == std::string_view::npos) comma = body.size();
    const std::string_view pair = body.substr(start, comma - start);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos) {
      if (!first) labels += ",";
      first = false;
      labels += sanitize(pair.substr(0, eq));
      labels += "=\"";
      labels += std::string(pair.substr(eq + 1));
      labels += "\"";
    }
    start = comma + 1;
  }
  labels += "}";
  if (labels != "{}") name.labels = labels;
  return name;
}

constexpr double kQuantiles[] = {0.50, 0.95, 0.99};
constexpr const char* kQuantileSuffix[] = {"p50_ns", "p95_ns", "p99_ns"};

void write_json_object(std::ostream& out, const Snapshot& snapshot) {
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << snapshot.counters[i].name << "\":" << snapshot.counters[i].value;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << snapshot.gauges[i].name << "\":" << snapshot.gauges[i].value;
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i != 0) out << ",";
    out << "\"" << h.name << "\":{\"count\":" << h.count << ",\"sum_ns\":" << h.sum_ns
        << ",\"min_ns\":" << h.min_ns << ",\"max_ns\":" << h.max_ns;
    for (std::size_t q = 0; q < 3; ++q) {
      out << ",\"" << kQuantileSuffix[q] << "\":" << h.quantile_ns(kQuantiles[q]);
    }
    out << "}";
  }
  out << "}}";
}

}  // namespace

void write_snapshot_json(std::ostream& out, const Snapshot& snapshot) {
  write_json_object(out, snapshot);
  out << "\n";
}

void write_snapshot_csv(std::ostream& out, const Snapshot& snapshot) {
  out << "kind,name,value\n";
  for (const auto& c : snapshot.counters) out << "counter," << c.name << "," << c.value << "\n";
  for (const auto& g : snapshot.gauges) out << "gauge," << g.name << "," << g.value << "\n";
  for (const auto& h : snapshot.histograms) {
    out << "histogram," << h.name << ".count," << h.count << "\n";
    out << "histogram," << h.name << ".sum_ns," << h.sum_ns << "\n";
    out << "histogram," << h.name << ".min_ns," << h.min_ns << "\n";
    out << "histogram," << h.name << ".max_ns," << h.max_ns << "\n";
    for (std::size_t q = 0; q < 3; ++q) {
      out << "histogram," << h.name << "." << kQuantileSuffix[q] << ","
          << h.quantile_ns(kQuantiles[q]) << "\n";
    }
  }
}

void write_snapshot_prometheus(std::ostream& out, const Snapshot& snapshot) {
  // The snapshot is sorted by instrument name, so labelled members of one
  // family (`service.quote_ns{source=...}`) are adjacent; tracking the last
  // TYPE emitted keeps each family's series grouped under a single TYPE
  // line, as the exposition format requires.
  std::string last_type;
  const auto type_line = [&](const std::string& family, const char* kind) {
    if (family == last_type) return;
    out << "# TYPE " << family << " " << kind << "\n";
    last_type = family;
  };

  for (const auto& c : snapshot.counters) {
    const PromName name = prometheus_name(c.name);
    type_line(name.base + "_total", "counter");
    out << name.base << "_total" << name.labels << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const PromName name = prometheus_name(g.name);
    type_line(name.base, "gauge");
    out << name.base << name.labels << " " << g.value << "\n";
  }
  // Histograms: real Prometheus histogram families — cumulative
  // `_bucket{le="..."}` counts over the power-of-two ns bounds, `_sum` /
  // `_count` — followed by derived p50/p95/p99 gauges and the exact
  // min/max gauges (which a cumulative exposition cannot carry).
  for (const auto& h : snapshot.histograms) {
    const PromName name = prometheus_name(h.name);
    type_line(name.base, "histogram");
    std::size_t highest = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] != 0) highest = b;
    }
    // The top bucket's nominal bound is a lie (it absorbs everything
    // beyond), so its samples ride in +Inf alone.
    if (highest > Histogram::kBuckets - 2) highest = Histogram::kBuckets - 2;
    std::uint64_t cumulative = 0;
    if (h.count != 0) {
      for (std::size_t b = 0; b <= highest; ++b) {
        cumulative += h.buckets[b];
        out << name.base << "_bucket"
            << name.labels_with("le", std::to_string(Histogram::bucket_upper_ns(b))) << " "
            << cumulative << "\n";
      }
    }
    out << name.base << "_bucket" << name.labels_with("le", "+Inf") << " " << h.count << "\n";
    out << name.base << "_sum" << name.labels << " " << h.sum_ns << "\n";
    out << name.base << "_count" << name.labels << " " << h.count << "\n";
  }
  for (std::size_t q = 0; q < 3; ++q) {
    for (const auto& h : snapshot.histograms) {
      const PromName name = prometheus_name(h.name);
      const std::string family = name.base + "_" + kQuantileSuffix[q];
      type_line(family, "gauge");
      out << family << name.labels << " " << h.quantile_ns(kQuantiles[q]) << "\n";
    }
  }
  for (const char* extreme : {"min_ns", "max_ns"}) {
    for (const auto& h : snapshot.histograms) {
      const PromName name = prometheus_name(h.name);
      const std::string family = name.base + "_" + extreme;
      type_line(family, "gauge");
      out << family << name.labels << " "
          << (extreme[1] == 'i' ? h.min_ns : h.max_ns) << "\n";
    }
  }
}

std::string snapshot_json_object(const Snapshot& snapshot) {
  std::ostringstream out;
  write_json_object(out, snapshot);
  return out.str();
}

}  // namespace are::obs
