#include "obs/export.hpp"

#include <ostream>
#include <sstream>

namespace are::obs {

namespace {

std::string prometheus_name(const std::string& dotted) {
  std::string out = "are_";
  out.reserve(out.size() + dotted.size());
  for (char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_json_object(std::ostream& out, const Snapshot& snapshot) {
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << snapshot.counters[i].name << "\":" << snapshot.counters[i].value;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << snapshot.gauges[i].name << "\":" << snapshot.gauges[i].value;
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i != 0) out << ",";
    out << "\"" << h.name << "\":{\"count\":" << h.count << ",\"sum_ns\":" << h.sum_ns
        << ",\"min_ns\":" << h.min_ns << ",\"max_ns\":" << h.max_ns << "}";
  }
  out << "}}";
}

}  // namespace

void write_snapshot_json(std::ostream& out, const Snapshot& snapshot) {
  write_json_object(out, snapshot);
  out << "\n";
}

void write_snapshot_csv(std::ostream& out, const Snapshot& snapshot) {
  out << "kind,name,value\n";
  for (const auto& c : snapshot.counters) out << "counter," << c.name << "," << c.value << "\n";
  for (const auto& g : snapshot.gauges) out << "gauge," << g.name << "," << g.value << "\n";
  for (const auto& h : snapshot.histograms) {
    out << "histogram," << h.name << ".count," << h.count << "\n";
    out << "histogram," << h.name << ".sum_ns," << h.sum_ns << "\n";
    out << "histogram," << h.name << ".min_ns," << h.min_ns << "\n";
    out << "histogram," << h.name << ".max_ns," << h.max_ns << "\n";
  }
}

void write_snapshot_prometheus(std::ostream& out, const Snapshot& snapshot) {
  for (const auto& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name) + "_total";
    out << "# TYPE " << name << " counter\n";
    out << name << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << g.value << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string base = prometheus_name(h.name);
    out << "# TYPE " << base << "_count gauge\n" << base << "_count " << h.count << "\n";
    out << "# TYPE " << base << "_sum_ns gauge\n" << base << "_sum_ns " << h.sum_ns << "\n";
    out << "# TYPE " << base << "_min_ns gauge\n" << base << "_min_ns " << h.min_ns << "\n";
    out << "# TYPE " << base << "_max_ns gauge\n" << base << "_max_ns " << h.max_ns << "\n";
  }
}

std::string snapshot_json_object(const Snapshot& snapshot) {
  std::ostringstream out;
  write_json_object(out, snapshot);
  return out.str();
}

}  // namespace are::obs
