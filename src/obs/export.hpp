#pragma once

// Exporters for a telemetry Snapshot: JSON (machine-readable, the CI smoke
// schema target), CSV (spreadsheet triage), and Prometheus text exposition
// (the future resident service's /metrics). The Chrome-trace exporter
// lives with the buffer in obs/trace.hpp.

#include <iosfwd>
#include <string>

#include "obs/telemetry.hpp"

namespace are::obs {

/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum_ns,min_ns,max_ns}}}
void write_snapshot_json(std::ostream& out, const Snapshot& snapshot);

/// kind,name,value rows (histograms expand to .count/.sum_ns/.min_ns/.max_ns).
void write_snapshot_csv(std::ostream& out, const Snapshot& snapshot);

/// Prometheus text format: dotted names sanitised ('.' and '-' -> '_') and
/// prefixed "are_"; counters get a _total suffix, histogram aggregates
/// become are_<name>_{count,sum_ns,min_ns,max_ns} gauges.
void write_snapshot_prometheus(std::ostream& out, const Snapshot& snapshot);

/// The snapshot as a JSON object fragment (no trailing newline), for
/// embedding — bench records thread this into their `extra` field.
std::string snapshot_json_object(const Snapshot& snapshot);

}  // namespace are::obs
