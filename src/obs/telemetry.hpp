#pragma once

// Unified runtime telemetry — the process-wide registry of named counters,
// gauges, and histogram timers behind every instrumented layer (trial
// kernel, ELT lookup tables, shard store, thread pool).
//
// Design constraints, in order:
//
//   1. Zero cost when disabled. Telemetry is off by default; every
//      instrumentation site gates on obs::enabled() (one relaxed atomic
//      load) and updates at *batch/block granularity*, never per event —
//      the kernel hot path stays bit-identical (counting never touches the
//      arithmetic) and within noise of an untelemetered build.
//   2. Stable handles. counter()/gauge()/histogram() return references
//      that live for the life of the process, so call sites resolve a name
//      once (function-local static) and update through the pointer with no
//      further lookups or locks.
//   3. Thread-safe everywhere. Instruments are plain relaxed atomics;
//      registration and snapshot take the registry mutex. Concurrent
//      updates from pool workers, shard I/O, and a snapshotting exporter
//      are all safe.
//
// The counter catalogue (names are dotted paths; see README "Observability"
// for the full list): kernel.* (blocks/trials/events + per-phase ns),
// elt.<kind>.* (lookups, probes, zero_page_hits), shard.* (spills, faults,
// bytes, resident gauges), pool.* (tasks, idle_ns), parallel.* (costed
// chunks). Exporters for the registry live in obs/export.hpp; the
// Chrome-trace span side lives in obs/trace.hpp.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace are::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when the registry is collecting. Instrumentation sites gate their
/// (batched) updates on this; it is a single relaxed load, hoistable out
/// of loops.
inline bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Flips collection on/off process-wide. Instruments keep their values
/// across toggles; reset via TelemetryRegistry::reset().
void set_enabled(bool on) noexcept;

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (resident bytes, queue depth). set() overwrites;
/// record_max() keeps the high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  void record_max(std::int64_t v) noexcept {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Duration histogram over power-of-two nanosecond buckets: bucket b counts
/// samples with bit_width(ns) == b, i.e. ns in [2^(b-1), 2^b). Tracks
/// count/sum/min/max exactly; the buckets give the shape (a cheap HdrHistogram
/// stand-in for span durations: pool tasks, kernel blocks, shard I/O).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;  // up to ~2^39 ns ~ 9 minutes

  /// Inclusive value range of bucket b: [lower, upper]. Bucket 0 holds only
  /// ns == 0; bucket b >= 1 holds ns with bit_width(ns) == b, i.e.
  /// [2^(b-1), 2^b - 1]. The last bucket additionally absorbs everything
  /// past 2^(kBuckets-1) - 1 (its upper bound is open in practice).
  static constexpr std::uint64_t bucket_lower_ns(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  static constexpr std::uint64_t bucket_upper_ns(std::size_t b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
  }

  void record_ns(std::uint64_t ns) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum_ns() const noexcept { return sum_ns_.load(std::memory_order_relaxed); }
  std::uint64_t min_ns() const noexcept;  // 0 when empty
  std::uint64_t max_ns() const noexcept { return max_ns_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_ns_{UINT64_MAX};
  std::atomic<std::uint64_t> max_ns_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
};

/// RAII timer into a Histogram: stamps on construction when the histogram
/// is non-null, records on destruction. Resolve the histogram through
/// `obs::enabled() ? &h : nullptr` so a disabled run never reads the clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->record_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

/// A consistent-enough copy of every instrument, sorted by name — what the
/// exporters (obs/export.hpp) and the CLI/service render. Values are read
/// with relaxed loads, so a snapshot taken during a run is a moment-in-time
/// sample, not a barrier.
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeSample {
    std::string name;
    std::int64_t value;
  };
  struct HistogramSample {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    /// Per-bucket counts (Histogram's power-of-two ns buckets) — what the
    /// Prometheus exposition's cumulative `_bucket{le=...}` lines and the
    /// derived quantiles are computed from.
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};

    /// Estimated q-quantile (q in [0,1]) in nanoseconds, by linear
    /// interpolation inside the bucket holding the quantile rank, clamped
    /// to the observed [min_ns, max_ns]. 0 when the histogram is empty.
    std::uint64_t quantile_ns(double q) const noexcept;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Counter value by exact name; 0 when absent (tests and admission logic).
  std::uint64_t counter_value(std::string_view name) const noexcept;
  std::int64_t gauge_value(std::string_view name) const noexcept;

  /// The change since `earlier` — the per-request reporting primitive of
  /// the resident service, where the registry otherwise accumulates for the
  /// life of the process. Counters and histogram count/sum subtract
  /// (clamped at zero, so a reset() between the snapshots never
  /// underflows); gauges keep this snapshot's level (a gauge is a
  /// point-in-time reading, not an accumulation); histogram min/max carry
  /// this snapshot's values (the interval's extrema are not recoverable
  /// from two endpoint snapshots). Instruments that exist only in `this`
  /// are kept whole; instruments only in `earlier` are dropped. With
  /// overlapping concurrent requests the process-global counters attribute
  /// the overlap to both diffs.
  Snapshot diff(const Snapshot& earlier) const;
};

/// The process-wide instrument registry. Names are dotted lowercase paths
/// ("shard.spills"); an instrument is created on first request and lives
/// forever, so returned references never dangle.
class TelemetryRegistry {
 public:
  /// The registry every built-in instrumentation site uses.
  static TelemetryRegistry& global();

  /// An empty registry (tests that want isolation from global()).
  TelemetryRegistry() = default;
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  /// Find-or-create; O(instruments) under the registry mutex, so resolve
  /// once and cache the reference (instrument addresses are stable).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zeroes every instrument; names and handles survive (a handle cached
  /// before reset() keeps working). The between-runs/service-scrape hook.
  void reset();

  Snapshot snapshot() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> instrument;
  };

  mutable std::mutex mutex_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

/// Scoped enable for one run: core::run()/run_to_sink() wrap execution in
/// this when AnalysisConfig::telemetry asks for collection, restoring the
/// prior process-wide flags afterwards (so a CLI/service that enabled
/// telemetry globally keeps it on). Both flags are process-global; with
/// concurrent runs the most permissive request wins for the overlap.
class RunScope {
 public:
  RunScope(bool counters, bool trace) noexcept;
  ~RunScope();
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

 private:
  bool prior_enabled_;
  bool prior_trace_;
};

}  // namespace are::obs
