#pragma once

// The scrape surface of the observability plane: a tiny background
// HTTP/1.1 listener (same minimal-socket style as service/server, but
// AF_INET so Prometheus/curl can reach it) serving the process-wide
// telemetry registry:
//
//   GET /metrics  Prometheus text exposition (obs/export.hpp), real
//                 histogram families + derived p50/p95/p99 gauges, plus
//                 are_uptime_seconds.
//   GET /healthz  liveness: "ok" 200 while the `healthy` callback (the
//                 service wires in broker shutdown state) says so,
//                 "shutting-down" 503 once draining.
//   GET /statusz  one JSON object for operators: build info, uptime,
//                 every registry gauge (inflight/queued/cache/shard
//                 levels), per-source quote counts, armed fault sites,
//                 and an optional embedder-supplied fragment.
//
// One request per connection (Connection: close), handled serially on the
// accept thread — a scrape renders in microseconds, and serial handling
// keeps the server at ~zero steady-state cost next to the quote path.
// Responses are moment-in-time registry snapshots; scraping never blocks
// or perturbs instrumentation (the zero-cost telemetry contract holds
// with the server running — CI byte-diffs served CSVs to prove it).
//
// Started by `are_cli serve --metrics-port N` and embeddable anywhere via
// ServiceConfig::metrics (port 0 binds an ephemeral port — tests read the
// real one back from port()). handle_path() is the request core and is
// directly testable without a socket.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace are::obs {

struct MetricsServerOptions {
  /// Address to bind; loopback by default (the operator view and scraper
  /// run beside the service — exposing wider is an explicit decision).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (see port()).
  int port = 0;
  /// Liveness probe for /healthz; null means always healthy. The service
  /// front end wires this to !broker.shutting_down().
  std::function<bool()> healthy;
  /// Optional JSON object (rendered string, e.g. `{"socket":"are.sock"}`)
  /// merged into /statusz under "embedder".
  std::function<std::string()> extra_status;
};

class MetricsServer {
 public:
  explicit MetricsServer(MetricsServerOptions options = {});
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Binds and launches the accept thread. Throws std::runtime_error when
  /// the port cannot be bound. Idempotent once started.
  void start();

  /// Stops the accept loop and joins. Idempotent; the destructor calls it.
  void stop();

  /// The actually-bound port (resolves ephemeral port 0); valid after
  /// start().
  int port() const noexcept { return port_; }

  bool running() const noexcept { return thread_.joinable(); }

  /// Renders the full HTTP response (status line through body) for one
  /// request path — the testable core behind the socket loop.
  std::string handle_path(const std::string& path) const;

 private:
  void accept_loop();

  MetricsServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::chrono::steady_clock::time_point started_at_{};
};

/// Minimal blocking HTTP/1.1 GET (the `are_cli top` poller and the test
/// client): connects, sends the request, returns the response *body*.
/// Throws std::runtime_error on connection failure, malformed response,
/// or a non-200 status.
std::string http_get(const std::string& host, int port, const std::string& path);

}  // namespace are::obs
