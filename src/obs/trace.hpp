#pragma once

// Chrome-trace spans: scoped begin/end events collected per thread and
// exported as `trace_event` JSON that chrome://tracing and Perfetto load
// directly. Spans answer the timeline questions counters cannot — does
// spill I/O overlap compute, how well does the pool pack costed chunks,
// where do kernel launches sit relative to shard faults.
//
// Collection is separate from the counter registry (obs/telemetry.hpp) and
// has its own enable flag, because tracing allocates (per-thread event
// logs) while counters never do. Both are driven by AnalysisConfig
// telemetry options / are_cli --telemetry.
//
// Cost model: a Span is two steady_clock reads plus two appends into a
// thread-local vector under that thread's own (uncontended) mutex; with
// tracing disabled a Span is one relaxed load captured at construction.
// Span names must be string literals (or otherwise outlive the buffer) —
// events store the pointer, not a copy.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace are::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on) noexcept;

/// Process-wide sink for span events. Each thread appends to its own log
/// (registered on first use under the buffer mutex, giving it a stable
/// small tid); export walks every log, so spans from pool workers, shard
/// I/O, and the main thread interleave correctly on the timeline.
class TraceBuffer {
 public:
  static TraceBuffer& global();

  struct Event {
    const char* name;       // string literal; not owned
    const char* category;   // string literal; not owned
    char phase;             // 'B', 'E', or 'i' (instant)
    std::uint32_t tid;      // registration-order thread id (stable, small)
    std::uint64_t time_ns;  // steady_clock since process trace epoch
    std::string args;       // pre-rendered JSON object ("{...}"); empty = none
  };

  TraceBuffer();
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void append(const char* name, const char* category, char phase, std::string args = {});

  /// A zero-duration marker (Chrome-trace 'i' phase, thread scope) — how a
  /// quote's request id lands on the timeline so it is findable by search.
  /// `args` is a pre-rendered JSON object or empty.
  void append_instant(const char* name, const char* category, std::string args = {});

  /// Writes `{"traceEvents":[...]}` with timestamps in microseconds
  /// (fractional, so distinct nanosecond stamps stay distinct and
  /// per-thread ordering survives the unit change).
  void write_chrome_json(std::ostream& out) const;

  /// Drops all recorded events. Thread logs (and tids) persist.
  void clear();

  std::size_t event_count() const;

 private:
  struct ThreadLog {
    mutable std::mutex mutex;  // appends vs. a concurrent export
    std::uint32_t tid = 0;
    std::vector<Event> events;
  };

  ThreadLog& log_for_this_thread();

  mutable std::mutex mutex_;  // guards logs_ growth
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: emits a 'B' event on construction and the matching 'E' on
/// destruction. The enabled flag is captured once at construction, so a
/// span that begins stays balanced even if tracing is switched off
/// mid-scope. `name` and `category` must be string literals.
class Span {
 public:
  Span(const char* name, const char* category) noexcept
      : name_(name), category_(category), active_(trace_enabled()) {
    if (active_) TraceBuffer::global().append(name_, category_, 'B');
  }
  /// Annotated span: `args` (a pre-rendered JSON object, e.g.
  /// `{"request_id":"q-000001"}`) rides on the 'B' event, so the
  /// annotation is visible when the span is selected in the viewer.
  Span(const char* name, const char* category, std::string args)
      : name_(name), category_(category), active_(trace_enabled()) {
    if (active_) TraceBuffer::global().append(name_, category_, 'B', std::move(args));
  }
  ~Span() {
    if (active_) TraceBuffer::global().append(name_, category_, 'E');
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_;
};

}  // namespace are::obs
