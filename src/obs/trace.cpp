#include "obs/trace.hpp"

#include <ostream>

namespace are::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

void set_trace_enabled(bool on) noexcept {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer* buffer = new TraceBuffer();  // leaked: outlives exiting threads
  return *buffer;
}

TraceBuffer::TraceBuffer() : epoch_(std::chrono::steady_clock::now()) {}

TraceBuffer::ThreadLog& TraceBuffer::log_for_this_thread() {
  thread_local ThreadLog* tls_log = nullptr;
  thread_local const TraceBuffer* tls_owner = nullptr;
  if (tls_log == nullptr || tls_owner != this) {
    std::lock_guard<std::mutex> guard(mutex_);
    logs_.push_back(std::make_unique<ThreadLog>());
    logs_.back()->tid = static_cast<std::uint32_t>(logs_.size() - 1);
    tls_log = logs_.back().get();
    tls_owner = this;
  }
  return *tls_log;
}

void TraceBuffer::append(const char* name, const char* category, char phase, std::string args) {
  ThreadLog& log = log_for_this_thread();
  const std::uint64_t now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           epoch_)
          .count());
  std::lock_guard<std::mutex> guard(log.mutex);
  log.events.push_back({name, category, phase, log.tid, now_ns, std::move(args)});
}

void TraceBuffer::append_instant(const char* name, const char* category, std::string args) {
  append(name, category, 'i', std::move(args));
}

void TraceBuffer::write_chrome_json(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> guard(mutex_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_guard(log->mutex);
    for (const Event& e : log->events) {
      if (!first) out << ",";
      first = false;
      // ts is microseconds; emit ns as µs with three decimals so
      // per-thread monotonicity survives the unit conversion.
      const std::uint64_t whole_us = e.time_ns / 1000;
      const std::uint64_t frac_ns = e.time_ns % 1000;
      out << "\n{\"name\":\"" << e.name << "\",\"cat\":\"" << e.category << "\",\"ph\":\""
          << e.phase << "\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << whole_us << ".";
      out << static_cast<char>('0' + frac_ns / 100) << static_cast<char>('0' + frac_ns / 10 % 10)
          << static_cast<char>('0' + frac_ns % 10);
      if (e.phase == 'i') out << ",\"s\":\"t\"";  // thread-scoped instant
      if (!e.args.empty()) out << ",\"args\":" << e.args;
      out << "}";
    }
  }
  out << "\n]}\n";
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& log : logs_) {
    std::lock_guard<std::mutex> log_guard(log->mutex);
    log->events.clear();
  }
}

std::size_t TraceBuffer::event_count() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::size_t n = 0;
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_guard(log->mutex);
    n += log->events.size();
  }
  return n;
}

}  // namespace are::obs
