#include "yet/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/stream.hpp"

namespace are::yet {

namespace {

std::uint64_t draw_count(rng::Stream& stream, const YetConfig& config) {
  switch (config.count_model) {
    case CountModel::kFixed:
      return static_cast<std::uint64_t>(std::llround(config.events_per_trial));
    case CountModel::kPoisson:
      return rng::sample_poisson(stream, config.events_per_trial);
    case CountModel::kNegativeBinomial: {
      // Mean m, r = dispersion  =>  p = r / (r + m).
      const double r = config.dispersion;
      const double p = r / (r + config.events_per_trial);
      return rng::sample_negative_binomial(stream, r, p);
    }
  }
  return 0;
}

struct TrialScratch {
  std::vector<Occurrence> occurrences;
};

template <typename DrawEvent, typename DrawTime>
YearEventTable generate_impl(const YetConfig& config, const DrawEvent& draw_event,
                             const DrawTime& draw_time) {
  if (config.num_trials == 0) throw std::invalid_argument("YET needs at least one trial");
  if (!(config.events_per_trial >= 0.0)) {
    throw std::invalid_argument("events per trial must be >= 0");
  }

  std::vector<std::uint64_t> offsets;
  offsets.reserve(config.num_trials + 1);
  offsets.push_back(0);

  std::vector<EventId> events;
  std::vector<float> times;
  const auto expected_total = static_cast<std::uint64_t>(
      config.events_per_trial * static_cast<double>(config.num_trials) * 1.05);
  events.reserve(expected_total);
  times.reserve(expected_total);

  TrialScratch scratch;
  for (std::uint64_t trial = 0; trial < config.num_trials; ++trial) {
    rng::Stream stream(config.seed, /*stream_id=*/5, /*substream_id=*/trial);
    const std::uint64_t count = draw_count(stream, config);

    scratch.occurrences.clear();
    scratch.occurrences.reserve(count);
    for (std::uint64_t k = 0; k < count; ++k) {
      const EventId id = draw_event(stream);
      const float t = draw_time(stream, id);
      scratch.occurrences.push_back({id, t});
    }
    std::sort(scratch.occurrences.begin(), scratch.occurrences.end(),
              [](const Occurrence& a, const Occurrence& b) { return a.time < b.time; });

    for (const Occurrence& occurrence : scratch.occurrences) {
      events.push_back(occurrence.event);
      times.push_back(occurrence.time);
    }
    offsets.push_back(events.size());
  }

  return YearEventTable(std::move(events), std::move(times), std::move(offsets));
}

}  // namespace

YearEventTable generate_yet(const YetConfig& config, const catalog::EventCatalog& catalog) {
  if (catalog.empty()) throw std::invalid_argument("cannot generate a YET from an empty catalog");
  const std::vector<double> rates = catalog.rates();
  const rng::AliasTable alias(rates);

  const auto draw_event = [&alias](rng::Stream& stream) {
    return static_cast<EventId>(alias.sample(stream));
  };
  const auto draw_time = [&catalog](rng::Stream& stream, EventId id) {
    const catalog::SeasonalityProfile season = catalog::seasonality_for(catalog[id].peril);
    return static_cast<float>(rng::sample_beta(stream, season.alpha, season.beta));
  };
  return generate_impl(config, draw_event, draw_time);
}

YearEventTable generate_uniform_yet(const YetConfig& config, std::size_t catalog_size) {
  if (catalog_size == 0) throw std::invalid_argument("catalog size must be > 0");
  const auto draw_event = [catalog_size](rng::Stream& stream) {
    return static_cast<EventId>(stream.uniform_below(catalog_size));
  };
  const auto draw_time = [](rng::Stream& stream, EventId) {
    return static_cast<float>(stream.uniform01());
  };
  return generate_impl(config, draw_event, draw_time);
}

}  // namespace are::yet
