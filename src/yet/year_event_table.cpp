#include "yet/year_event_table.hpp"

#include <stdexcept>

namespace are::yet {

YearEventTable::YearEventTable(std::vector<EventId> events, std::vector<float> times,
                               std::vector<std::uint64_t> offsets)
    : events_(std::move(events)), times_(std::move(times)), offsets_(std::move(offsets)) {
  if (offsets_.empty()) throw std::invalid_argument("YET offsets must contain at least [0]");
  if (offsets_.front() != 0) throw std::invalid_argument("YET offsets must start at 0");
  if (offsets_.back() != events_.size()) {
    throw std::invalid_argument("YET offsets must end at the event count");
  }
  if (times_.size() != events_.size()) {
    throw std::invalid_argument("YET event and time vectors must have equal length");
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    if (offsets_[i] < offsets_[i - 1]) {
      throw std::invalid_argument("YET offsets must be non-decreasing");
    }
  }
  for (std::size_t trial = 0; trial + 1 < offsets_.size(); ++trial) {
    for (std::uint64_t k = offsets_[trial] + 1; k < offsets_[trial + 1]; ++k) {
      if (times_[k] < times_[k - 1]) {
        throw std::invalid_argument("YET trial occurrences must be time-ordered");
      }
    }
  }
}

}  // namespace are::yet
