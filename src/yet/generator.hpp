#pragma once

#include <cstdint>
#include <optional>

#include "catalog/event_catalog.hpp"
#include "yet/year_event_table.hpp"

namespace are::yet {

/// How the number of occurrences in a trial-year is drawn.
enum class CountModel {
  /// Exactly `events_per_trial` events in every trial — the paper's
  /// benchmark configuration ("each trial comprises 1000 events").
  kFixed,
  /// Poisson with mean `events_per_trial` (a homogeneous compound-Poisson
  /// year, the textbook aggregate-loss model).
  kPoisson,
  /// Negative binomial with mean `events_per_trial` and the given
  /// dispersion: Var = mean * (1 + mean/dispersion). Captures clustered
  /// catastrophe years (active hurricane seasons).
  kNegativeBinomial,
};

struct YetConfig {
  std::uint64_t num_trials = 10'000;
  double events_per_trial = 1000.0;
  CountModel count_model = CountModel::kFixed;
  double dispersion = 50.0;  // negative-binomial r
  std::uint64_t seed = 2012;
};

/// Generates a YET by sampling from `catalog`'s per-event annual rates
/// (alias table) with per-peril seasonal timestamps. Trial i is produced on
/// substream i, so the YET is bit-identical however generation is
/// parallelised or resumed.
YearEventTable generate_yet(const YetConfig& config, const catalog::EventCatalog& catalog);

/// Generates a YET whose event ids are uniform over [0, catalog_size) with
/// uniform timestamps — the shape engine benchmarks need when no full
/// catalog object is in play.
YearEventTable generate_uniform_yet(const YetConfig& config, std::size_t catalog_size);

}  // namespace are::yet
