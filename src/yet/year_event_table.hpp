#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "catalog/types.hpp"

namespace are::yet {

using catalog::EventId;

/// One event occurrence within a trial: the paper's (E_{i,k}, t_{i,k}) pair.
struct Occurrence {
  EventId event = 0;
  /// Timestamp as a fraction of the contractual year in [0, 1).
  float time = 0.0f;
};

/// The Year Event Table: pre-simulated alternative views of one contractual
/// year. Stored flattened exactly as the paper's basic implementation does:
/// "(i) a vector consisting of all E_{i,k} ... (ii) a vector of integer
/// values indicating trial boundaries" (§III-B-1). Trial i owns the
/// half-open slice [offsets[i], offsets[i+1]) of the event/time vectors,
/// with occurrences ordered by ascending timestamp.
class YearEventTable {
 public:
  YearEventTable() = default;
  YearEventTable(std::vector<EventId> events, std::vector<float> times,
                 std::vector<std::uint64_t> offsets);

  std::size_t num_trials() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::uint64_t total_events() const noexcept { return events_.size(); }

  std::size_t trial_size(std::size_t trial) const noexcept {
    return static_cast<std::size_t>(offsets_[trial + 1] - offsets_[trial]);
  }

  std::span<const EventId> trial_events(std::size_t trial) const noexcept {
    return {events_.data() + offsets_[trial], trial_size(trial)};
  }
  std::span<const float> trial_times(std::size_t trial) const noexcept {
    return {times_.data() + offsets_[trial], trial_size(trial)};
  }

  /// Raw flattened views (the engines iterate these directly).
  std::span<const EventId> events() const noexcept { return events_; }
  std::span<const float> times() const noexcept { return times_; }
  std::span<const std::uint64_t> offsets() const noexcept { return offsets_; }

  double mean_events_per_trial() const noexcept {
    return num_trials() == 0 ? 0.0
                             : static_cast<double>(total_events()) /
                                   static_cast<double>(num_trials());
  }

  /// Approximate resident memory (the paper quotes 3.2-6 GB for the event
  /// vector at industrial scale).
  std::size_t memory_bytes() const noexcept {
    return events_.size() * sizeof(EventId) + times_.size() * sizeof(float) +
           offsets_.size() * sizeof(std::uint64_t);
  }

 private:
  std::vector<EventId> events_;
  std::vector<float> times_;
  std::vector<std::uint64_t> offsets_;
};

}  // namespace are::yet
