#pragma once

#include <cstdint>

#include "core/engine.hpp"

namespace are::perfmodel {

/// A shared-memory multicore machine for the roofline model. Defaults model
/// the paper's Intel Core i7-2600 (4 cores / 8 hardware threads, 3.4 GHz,
/// 21 GB/s peak memory bandwidth).
struct MachineSpec {
  int physical_cores = 4;
  int smt_ways = 2;
  double clock_ghz = 3.4;
  double mem_bandwidth_gb_per_s = 21.0;
  /// Average DRAM access latency seen by a pointer-chasing load.
  double mem_latency_ns = 95.0;
  /// Memory-level parallelism one core sustains on random accesses.
  double mlp_per_core = 4.5;
  double cache_line_bytes = 64.0;
  /// Sub-linear scaling of aggregate outstanding misses with core count
  /// (memory-controller and L3 contention): throughput ~ cores^exponent.
  double contention_exponent = 0.55;
  /// Extra throughput from the second hardware thread per core.
  double smt_boost = 1.25;
  /// Maximum fractional gain from heavy software oversubscription
  /// (hundreds of threads per core, paper Fig 3b: 135 s -> 125 s).
  double oversubscription_gain = 0.08;
  /// Arithmetic cost per financial/layer term application.
  double compute_ns_per_term = 1.0;

  static MachineSpec core_i7_2600() { return MachineSpec{}; }
};

struct CpuPrediction {
  double seconds = 0.0;
  double memory_seconds = 0.0;
  double compute_seconds = 0.0;
  double speedup_vs_one_core = 1.0;
};

/// Predicted wall time of the aggregate analysis on `machine` with
/// `software_threads` threads (>= 1). The model charges:
///  * random-access time: ELT lookups at the machine's latency-limited
///    random throughput, scaling sub-linearly in cores and capped by the
///    bandwidth roof (each 8-byte lookup moves a full cache line);
///  * streaming time: event fetches at full bandwidth;
///  * compute: term applications, scaling linearly in cores.
/// This reproduces the paper's observation that the algorithm "spends most
/// of its time performing random access reads into the ELT data
/// structures" with no locality, so adding cores without adding bandwidth
/// saturates (1.5x/2.2x/2.6x at 2/4/8 threads, Fig 3a).
CpuPrediction predict_cpu_time(const core::AccessCounts& counts, const MachineSpec& machine,
                               int software_threads);

/// Convenience overload taking the workload shape directly.
CpuPrediction predict_cpu_time(std::uint64_t trials, double events_per_trial,
                               double elts_per_layer, std::uint64_t layers,
                               const MachineSpec& machine, int software_threads);

}  // namespace are::perfmodel
