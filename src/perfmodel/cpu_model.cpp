#include "perfmodel/cpu_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace are::perfmodel {

namespace {

/// Aggregate random-access throughput (accesses/second) at the given
/// software thread count.
double random_throughput(const MachineSpec& machine, int software_threads) {
  const double single_core =
      machine.mlp_per_core / (machine.mem_latency_ns * 1e-9);

  // Scaling over physical cores is sub-linear (contention); SMT adds a
  // fixed boost; oversubscription past the hardware threads hides a little
  // more latency, saturating exponentially.
  const int hw_threads = machine.physical_cores * machine.smt_ways;
  const double used_cores =
      std::min<double>(software_threads, machine.physical_cores);
  double scale = std::pow(used_cores, machine.contention_exponent);
  if (software_threads > machine.physical_cores) scale *= machine.smt_boost;
  if (software_threads > hw_threads) {
    const double per_hw = static_cast<double>(software_threads) / hw_threads;
    scale *= 1.0 + machine.oversubscription_gain * (1.0 - std::exp(-(per_hw - 1.0) / 32.0));
  }

  const double latency_limited = single_core * scale;
  const double bandwidth_limited =
      machine.mem_bandwidth_gb_per_s * 1e9 / machine.cache_line_bytes;
  return std::min(latency_limited, bandwidth_limited);
}

CpuPrediction predict(const core::AccessCounts& counts, const MachineSpec& machine,
                      int software_threads) {
  if (software_threads < 1) throw std::invalid_argument("need at least one thread");

  CpuPrediction prediction;

  // Random ELT lookups: latency-limited, weakly scaling.
  const double random_seconds =
      static_cast<double>(counts.elt_lookups) / random_throughput(machine, software_threads);

  // Streaming event fetch: sequential scan at full bandwidth.
  const double streaming_seconds = static_cast<double>(counts.events_fetched) * 4.0 /
                                   (machine.mem_bandwidth_gb_per_s * 1e9);

  prediction.memory_seconds = random_seconds + streaming_seconds;

  const double terms = static_cast<double>(counts.financial_applications +
                                           counts.layer_term_applications);
  const double cores_used = std::min<double>(software_threads, machine.physical_cores);
  prediction.compute_seconds = terms * machine.compute_ns_per_term * 1e-9 / cores_used;

  prediction.seconds = prediction.memory_seconds + prediction.compute_seconds;
  return prediction;
}

}  // namespace

CpuPrediction predict_cpu_time(const core::AccessCounts& counts, const MachineSpec& machine,
                               int software_threads) {
  CpuPrediction prediction = predict(counts, machine, software_threads);
  const CpuPrediction single = predict(counts, machine, 1);
  prediction.speedup_vs_one_core = single.seconds / prediction.seconds;
  return prediction;
}

CpuPrediction predict_cpu_time(std::uint64_t trials, double events_per_trial,
                               double elts_per_layer, std::uint64_t layers,
                               const MachineSpec& machine, int software_threads) {
  const double events =
      static_cast<double>(trials) * events_per_trial * static_cast<double>(layers);
  core::AccessCounts counts;
  counts.events_fetched = static_cast<std::uint64_t>(events);
  counts.elt_lookups = static_cast<std::uint64_t>(events * elts_per_layer);
  counts.financial_applications = counts.elt_lookups;
  counts.layer_term_applications = static_cast<std::uint64_t>(2.0 * events);
  return predict_cpu_time(counts, machine, software_threads);
}

}  // namespace are::perfmodel
