#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "catalog/types.hpp"

namespace are::exposure {

/// Structural class of an insured building; drives vulnerability.
enum class ConstructionClass : std::uint8_t {
  kWoodFrame = 0,
  kMasonry,
  kReinforcedConcrete,
  kSteelFrame,
  kLightMetal,
};

inline constexpr int kConstructionCount = 5;

constexpr std::string_view to_string(ConstructionClass c) noexcept {
  switch (c) {
    case ConstructionClass::kWoodFrame: return "wood_frame";
    case ConstructionClass::kMasonry: return "masonry";
    case ConstructionClass::kReinforcedConcrete: return "reinforced_concrete";
    case ConstructionClass::kSteelFrame: return "steel_frame";
    case ConstructionClass::kLightMetal: return "light_metal";
  }
  return "unknown";
}

/// Use/occupancy of the building; scales contents value and downtime.
enum class Occupancy : std::uint8_t {
  kResidential = 0,
  kCommercial,
  kIndustrial,
};

inline constexpr int kOccupancyCount = 3;

constexpr std::string_view to_string(Occupancy o) noexcept {
  switch (o) {
    case Occupancy::kResidential: return "residential";
    case Occupancy::kCommercial: return "commercial";
    case Occupancy::kIndustrial: return "industrial";
  }
  return "unknown";
}

/// One insured site: "construction types, location, value, use, and
/// coverage" (paper §I, description of exposure databases).
struct Site {
  std::uint32_t id = 0;
  catalog::Region region = catalog::Region::kNorthAtlantic;
  /// Normalized location in [0,1)^2 within the region (matches catalog
  /// event footprint coordinates).
  float x = 0.5f;
  float y = 0.5f;
  ConstructionClass construction = ConstructionClass::kWoodFrame;
  Occupancy occupancy = Occupancy::kResidential;
  /// Total insured value.
  double value = 0.0;
  /// Site-level deductible and coverage limit (the "customer's financial
  /// terms" applied inside the catastrophe model).
  double deductible = 0.0;
  double limit = 0.0;
};

/// An exposure database: the collection of sites underlying one ELT.
class ExposureSet {
 public:
  ExposureSet() = default;
  explicit ExposureSet(std::vector<Site> sites) : sites_(std::move(sites)) {}

  std::size_t size() const noexcept { return sites_.size(); }
  bool empty() const noexcept { return sites_.empty(); }
  std::span<const Site> sites() const noexcept { return sites_; }
  const Site& operator[](std::size_t i) const noexcept { return sites_[i]; }

  double total_insured_value() const noexcept;

 private:
  std::vector<Site> sites_;
};

/// Configuration for the synthetic exposure generator.
struct ExposureConfig {
  std::size_t num_sites = 5'000;
  /// Regions this book writes business in (empty = all regions).
  std::vector<catalog::Region> regions;
  /// Lognormal insured-value parameters (median value = e^mu).
  double value_mu = 13.0;  // ~ $440K median
  double value_sigma = 1.2;
  /// Site deductible as a fraction of value.
  double deductible_fraction = 0.01;
  /// Site limit as a fraction of value (1.0 = full value).
  double limit_fraction = 1.0;
  std::uint64_t seed = 7;
};

/// Builds a reproducible synthetic exposure set.
ExposureSet build_exposure(const ExposureConfig& config);

}  // namespace are::exposure
