#include "exposure/exposure.hpp"

#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/stream.hpp"

namespace are::exposure {

double ExposureSet::total_insured_value() const noexcept {
  double total = 0.0;
  for (const Site& site : sites_) total += site.value;
  return total;
}

ExposureSet build_exposure(const ExposureConfig& config) {
  if (config.num_sites == 0) throw std::invalid_argument("exposure set must have sites");
  if (!(config.value_sigma >= 0.0)) throw std::invalid_argument("value sigma must be >= 0");
  if (config.deductible_fraction < 0.0 || config.limit_fraction <= 0.0) {
    throw std::invalid_argument("invalid site term fractions");
  }

  std::vector<catalog::Region> regions = config.regions;
  if (regions.empty()) {
    for (int r = 0; r < catalog::kRegionCount; ++r) {
      regions.push_back(static_cast<catalog::Region>(r));
    }
  }

  std::vector<Site> sites(config.num_sites);
  for (std::size_t i = 0; i < config.num_sites; ++i) {
    rng::Stream stream(config.seed, /*stream_id=*/2, /*substream_id=*/i);
    Site& site = sites[i];
    site.id = static_cast<std::uint32_t>(i);
    site.region = regions[stream.uniform_below(regions.size())];
    site.x = static_cast<float>(stream.uniform01());
    site.y = static_cast<float>(stream.uniform01());

    const double cu = stream.uniform01();
    site.construction = cu < 0.45   ? ConstructionClass::kWoodFrame
                        : cu < 0.70 ? ConstructionClass::kMasonry
                        : cu < 0.85 ? ConstructionClass::kReinforcedConcrete
                        : cu < 0.95 ? ConstructionClass::kSteelFrame
                                    : ConstructionClass::kLightMetal;

    const double ou = stream.uniform01();
    site.occupancy = ou < 0.6   ? Occupancy::kResidential
                     : ou < 0.9 ? Occupancy::kCommercial
                                : Occupancy::kIndustrial;

    double value = rng::sample_lognormal(stream, config.value_mu, config.value_sigma);
    // Commercial/industrial books skew to larger values.
    if (site.occupancy == Occupancy::kCommercial) value *= 4.0;
    if (site.occupancy == Occupancy::kIndustrial) value *= 12.0;
    site.value = value;
    site.deductible = config.deductible_fraction * value;
    site.limit = config.limit_fraction * value;
  }

  return ExposureSet(std::move(sites));
}

}  // namespace are::exposure
