#include "core/analysis.hpp"

#include <stdexcept>
#include <string>

#include "core/engine_registry.hpp"

namespace are::core {

std::string_view to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kSequential: return "seq";
    case EngineKind::kParallel: return "parallel";
    case EngineKind::kChunked: return "chunked";
    case EngineKind::kOpenMp: return "openmp";
    case EngineKind::kSimd: return "simd";
    case EngineKind::kWindowed: return "windowed";
    case EngineKind::kInstrumented: return "instrumented";
    case EngineKind::kFused: return "fused";
  }
  return "unknown";
}

void AnalysisConfig::validate() const {
  if (window) window->validate();
  if (partition_chunk == 0) {
    throw std::invalid_argument("AnalysisConfig: partition_chunk must be > 0");
  }
  if (chunk_size == 0) throw std::invalid_argument("AnalysisConfig: chunk_size must be > 0");
  if (tile_trials == 0) throw std::invalid_argument("AnalysisConfig: tile_trials must be > 0");
}

YearLossTable run(const AnalysisRequest& request) {
  const AnalysisConfig& config = request.config;
  config.validate();

  const EngineRegistry& registry = EngineRegistry::global();
  const EngineDescriptor& engine = config.engine_name.empty()
                                       ? registry.require(config.engine)
                                       : registry.require(config.engine_name);
  if (!engine.available_in_this_build) {
    throw std::invalid_argument("engine '" + engine.name + "' is not available in this build (" +
                                engine.availability_note + ")");
  }
  // Capability mismatches are errors, never silently ignored fields.
  if (config.window && !engine.supports_windowing) {
    throw std::invalid_argument("engine '" + engine.name +
                                "' does not support a coverage window (use the 'windowed' "
                                "engine, or clear AnalysisConfig::window)");
  }
  if (config.pool != nullptr && !engine.supports_pool_reuse) {
    throw std::invalid_argument("engine '" + engine.name +
                                "' cannot reuse a borrowed thread pool (clear "
                                "AnalysisConfig::pool)");
  }
  return engine.run(request);
}

}  // namespace are::core
