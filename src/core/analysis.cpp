#include "core/analysis.hpp"

#include <stdexcept>
#include <string>

#include "core/engine_registry.hpp"
#include "fault/fault_injection.hpp"
#include "obs/telemetry.hpp"

namespace are::core {

std::string_view to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kSequential: return "seq";
    case EngineKind::kParallel: return "parallel";
    case EngineKind::kChunked: return "chunked";
    case EngineKind::kOpenMp: return "openmp";
    case EngineKind::kSimd: return "simd";
    case EngineKind::kWindowed: return "windowed";
    case EngineKind::kInstrumented: return "instrumented";
    case EngineKind::kFused: return "fused";
  }
  return "unknown";
}

void AnalysisConfig::validate() const {
  if (window) window->validate();
  if (partition_chunk == 0) {
    throw std::invalid_argument("AnalysisConfig: partition_chunk must be > 0");
  }
  if (chunk_size == 0) throw std::invalid_argument("AnalysisConfig: chunk_size must be > 0");
  // tile_trials == 0 is valid: the fused engine derives the tile size.
  if (sharding.shard_trials == 0) {
    throw std::invalid_argument("AnalysisConfig: sharding.shard_trials must be > 0");
  }
  if (ground_up_capture != nullptr && ground_up_replay != nullptr) {
    throw std::invalid_argument(
        "AnalysisConfig: ground_up_capture and ground_up_replay are mutually exclusive");
  }
}

namespace {

/// Shared validation + registry resolution + capability checks for both
/// front doors. Capability mismatches are errors, never silently ignored
/// fields.
const EngineDescriptor& resolve_engine(const AnalysisConfig& config) {
  config.validate();

  const EngineRegistry& registry = EngineRegistry::global();
  const EngineDescriptor& engine = config.engine_name.empty()
                                       ? registry.require(config.engine)
                                       : registry.require(config.engine_name);
  if (!engine.available_in_this_build) {
    throw std::invalid_argument("engine '" + engine.name + "' is not available in this build (" +
                                engine.availability_note + ")");
  }
  if (config.window && !engine.supports_windowing) {
    throw std::invalid_argument("engine '" + engine.name +
                                "' does not support a coverage window (every kernel-backed "
                                "builtin does; use one of those, or clear "
                                "AnalysisConfig::window)");
  }
  if (config.pool != nullptr && !engine.supports_pool_reuse) {
    throw std::invalid_argument("engine '" + engine.name +
                                "' cannot reuse a borrowed thread pool (clear "
                                "AnalysisConfig::pool)");
  }
  if (config.collect_phases && !engine.supports_instrumentation) {
    throw std::invalid_argument("engine '" + engine.name +
                                "' cannot collect a phase breakdown (every kernel-backed "
                                "builtin can; use one of those, or clear "
                                "AnalysisConfig::collect_phases)");
  }
  if (config.collect_phases && config.instrumentation == nullptr) {
    throw std::invalid_argument(
        "AnalysisConfig::collect_phases needs an InstrumentationSink to deliver the breakdown "
        "(set AnalysisConfig::instrumentation)");
  }
  return engine;
}

}  // namespace

YearLossTable run(const AnalysisRequest& request) {
  const EngineDescriptor& engine = resolve_engine(request.config);
  if (request.config.output == OutputMode::kSharded) {
    throw std::invalid_argument(
        "run() returns a materialized YLT; for OutputMode::kSharded call shard::run_sharded "
        "(or core::run_to_sink with your own sink)");
  }
  const obs::RunScope telemetry(request.config.telemetry.counters,
                                request.config.telemetry.trace);
  const fault::ScopedArm faults(request.config.faults);
  return engine.run(request);
}

void run_to_sink(const AnalysisRequest& request, YltSink& sink) {
  const EngineDescriptor& engine = resolve_engine(request.config);
  if (engine.run_to_sink == nullptr) {
    throw std::invalid_argument("engine '" + engine.name +
                                "' cannot emit into a YltSink (no sharded/out-of-core output; "
                                "see list-engines for engines with the 'sharded' capability)");
  }
  const obs::RunScope telemetry(request.config.telemetry.counters,
                                request.config.telemetry.trace);
  const fault::ScopedArm faults(request.config.faults);
  engine.run_to_sink(request, sink);
}

}  // namespace are::core
