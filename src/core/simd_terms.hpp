#pragma once

// Financial and layer terms broadcast into vector registers, shared by the
// lane-parallel engines (core/simd_engine.cpp batches trials across lanes;
// core/fused_engine.cpp batches a tile's events across lanes). One
// definition keeps the bit-identity contract in one place: every helper
// rounds exactly like the scalar expressions in financial/terms.hpp (see
// the min/max convention note in simd/vec.hpp).

#include "financial/terms.hpp"

namespace are::core::detail {

/// Per-ELT financial terms broadcast into vector registers, hoisted out of
/// the event loop.
template <typename V>
struct EltTermsV {
  typename V::reg rate, retention, limit, share;

  static EltTermsV from(const financial::FinancialTerms& terms) {
    return {V::broadcast(terms.currency_rate), V::broadcast(terms.occurrence_retention),
            V::broadcast(terms.occurrence_limit), V::broadcast(terms.share)};
  }
};

/// Layer terms broadcast into vector registers.
template <typename V>
struct LayerTermsV {
  typename V::reg occ_retention, occ_limit, agg_retention, agg_limit;

  static LayerTermsV from(const financial::LayerTerms& terms) {
    return {V::broadcast(terms.occurrence_retention), V::broadcast(terms.occurrence_limit),
            V::broadcast(terms.aggregate_retention), V::broadcast(terms.aggregate_limit)};
  }
};

/// Vector excess_of_loss: min(max(x - retention, 0), limit). Identical
/// rounding to the scalar branchy form for the engine's domain (finite
/// non-negative losses, +inf limits) — see the contract note in vec.hpp.
template <typename V>
typename V::reg excess_v(typename V::reg x, typename V::reg retention,
                         typename V::reg limit) noexcept {
  return V::min(V::max(V::sub(x, retention), V::zero()), limit);
}

/// FinancialTerms::apply on a register of raw event losses.
template <typename V>
typename V::reg apply_financial_v(typename V::reg loss, const EltTermsV<V>& terms) noexcept {
  return V::mul(excess_v<V>(V::mul(loss, terms.rate), terms.retention, terms.limit), terms.share);
}

}  // namespace are::core::detail
