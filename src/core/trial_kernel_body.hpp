#pragma once

// The templated trial-block kernel body, shared verbatim by every
// per-extension translation unit (src/core/kernel_ext_*.cpp) and by the
// scalar instantiation in trial_kernel.cpp. Include nowhere else.
//
// Everything below TrialBlockKernel::Impl lives in an anonymous namespace
// ON PURPOSE, even though this is a header: each ISA translation unit is
// compiled with its own -m flags (-mavx2, -mavx512f, …) and must keep a
// private internal-linkage copy of every helper. If these were ordinary
// inline/template symbols, the linker's comdat selection could pick, say,
// the AVX-512-compiled copy of a helper for the whole binary — and a
// binary whose scalar path executes ZMM instructions is exactly the bug
// runtime dispatch exists to prevent. The only external-linkage symbols a
// kernel_ext_*.cpp TU may define are its uniquely-named factory functions
// (see trial_kernel.cpp's dispatch table).

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "core/direct_elt_view.hpp"
#include "core/simd_terms.hpp"
#include "core/status.hpp"
#include "core/trial_kernel.hpp"
#include "fault/fault_injection.hpp"
#include "financial/trial_accumulator.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "simd/prefetch.hpp"
#include "simd/vec.hpp"

namespace are::core {

/// Lane-width erasure: the templated body behind a tiny virtual interface,
/// instantiated once per compiled extension and selected at construction.
/// Defined here (not in trial_kernel.cpp) so the per-extension TUs can
/// derive from it; the definition is identical in every includer.
struct TrialBlockKernel::Impl {
  virtual ~Impl() = default;
  virtual void run_range(std::uint64_t first, std::uint64_t last,
                         TrialKernelScratch& scratch) const = 0;
  std::size_t block_trials = 0;
};

namespace {

using KernelBodyClock = std::chrono::steady_clock;

inline double kernel_seconds_between(KernelBodyClock::time_point a,
                                     KernelBodyClock::time_point b) noexcept {
  return std::chrono::duration<double>(b - a).count();
}

/// Immutable per-layer execution state hoisted out of the block loop: the
/// direct-table view (when eligible), the ELT/layer terms broadcast into
/// registers once, and the layer's YLT row (empty in sink mode, where block
/// rows are staged and emitted instead).
template <typename V>
struct LayerPlan {
  const Layer* layer;
  std::vector<detail::DirectElt> direct;  // empty unless Layer::all_direct_access()
  std::vector<detail::EltTermsV<V>> elt_terms;
  detail::LayerTermsV<V> terms;
  std::span<double> losses;
};

/// Combined ELT loss per event over the staged span, direct-table fast
/// path: guarded gathers straight out of the (untransposed) YET event
/// slice. The first ELT writes, later ELTs accumulate — same per-event
/// summation order as the scalar reference (0.0 + x == x exactly for the
/// engine's domain).
template <typename V>
void combine_elts_direct(const LayerPlan<V>& plan, const yet::EventId* events, std::size_t count,
                         double* combined) noexcept {
  constexpr std::size_t kW = V::kLanes;
  for (std::size_t e = 0; e < plan.direct.size(); ++e) {
    const detail::DirectElt& direct = plan.direct[e];
    const detail::EltTermsV<V>& terms_v = plan.elt_terms[e];
    const financial::FinancialTerms& terms = direct.terms;
    std::size_t i = 0;
    if (e == 0) {
      for (; i + kW <= count; i += kW) {
        const typename V::ivec idx = V::load_index(events + i);
        const typename V::reg loss = V::gather_guarded(direct.data, idx, direct.universe);
        V::store(combined + i, detail::apply_financial_v<V>(loss, terms_v));
      }
      for (; i < count; ++i) {
        const yet::EventId event = events[i];
        combined[i] = terms.apply(event < direct.universe ? direct.data[event] : 0.0);
      }
    } else {
      for (; i + kW <= count; i += kW) {
        const typename V::ivec idx = V::load_index(events + i);
        const typename V::reg loss = V::gather_guarded(direct.data, idx, direct.universe);
        V::store(combined + i,
                 V::add(V::load(combined + i), detail::apply_financial_v<V>(loss, terms_v)));
      }
      for (; i < count; ++i) {
        const yet::EventId event = events[i];
        combined[i] += terms.apply(event < direct.universe ? direct.data[event] : 0.0);
      }
    }
  }
}

/// One ELT's staged raw losses folded into the combined buffer with the
/// vectorized financial terms; shared by the generic and the instrumented
/// paths (identical arithmetic, hence identical bytes).
template <typename V>
void fold_raw_losses(const LayerPlan<V>& plan, std::size_t e, const double* raw,
                     std::size_t count, double* combined) noexcept {
  constexpr std::size_t kW = V::kLanes;
  const detail::EltTermsV<V>& terms_v = plan.elt_terms[e];
  const financial::FinancialTerms& terms = plan.layer->elts[e].terms;
  std::size_t i = 0;
  if (e == 0) {
    for (; i + kW <= count; i += kW) {
      V::store(combined + i, detail::apply_financial_v<V>(V::load(raw + i), terms_v));
    }
    for (; i < count; ++i) combined[i] = terms.apply(raw[i]);
  } else {
    for (; i + kW <= count; i += kW) {
      V::store(combined + i, V::add(V::load(combined + i),
                                    detail::apply_financial_v<V>(V::load(raw + i), terms_v)));
    }
    for (; i < count; ++i) combined[i] += terms.apply(raw[i]);
  }
}

/// Generic path: one lookup_many batch call per ELT (the prefetching
/// overrides in src/elt/), then the vectorized financial terms over the
/// staged raw losses.
template <typename V>
void combine_elts_generic(const LayerPlan<V>& plan, const yet::EventId* events,
                          std::size_t count, double* combined, std::vector<double>& raw) {
  raw.resize(count);
  const std::vector<LayerElt>& elts = plan.layer->elts;
  for (std::size_t e = 0; e < elts.size(); ++e) {
    {
      obs::Span span("elt.lookup_many", "elt");
      elts[e].lookup->lookup_many(events, count, raw.data());
    }
    fold_raw_losses(plan, e, raw.data(), count, combined);
  }
}

/// Occurrence terms, vectorized in place.
template <typename V>
void apply_occurrence_terms(const LayerPlan<V>& plan, double* combined,
                            std::size_t count) noexcept {
  constexpr std::size_t kW = V::kLanes;
  std::size_t i = 0;
  for (; i + kW <= count; i += kW) {
    V::store(combined + i, detail::excess_v<V>(V::load(combined + i), plan.terms.occ_retention,
                                               plan.terms.occ_limit));
  }
  for (; i < count; ++i) combined[i] = plan.layer->terms.apply_occurrence(combined[i]);
}

/// The path-dependent aggregate recurrence, per trial, writing
/// row[trial - t0]. Windowed semantics: out-of-window occurrences are
/// skipped entirely, so they do not advance the recurrence.
inline void aggregate_trials(const financial::LayerTerms& terms, const double* combined,
                             const float* times, const CoverageWindow* window,
                             std::span<const std::uint64_t> offsets, std::uint64_t t0,
                             std::uint64_t t1, std::uint64_t ev0, double* row) noexcept {
  for (std::uint64_t trial = t0; trial < t1; ++trial) {
    financial::TrialAccumulator accumulator(terms);
    const std::size_t begin = static_cast<std::size_t>(offsets[trial] - ev0);
    const std::size_t end = static_cast<std::size_t>(offsets[trial + 1] - ev0);
    if (window == nullptr) {
      for (std::size_t k = begin; k < end; ++k) accumulator.add_occurrence(combined[k]);
    } else {
      for (std::size_t k = begin; k < end; ++k) {
        if (window->covers(times[k])) accumulator.add_occurrence(combined[k]);
      }
    }
    row[trial - t0] = accumulator.trial_loss();
  }
}

template <typename Ext>
class KernelImpl final : public TrialBlockKernel::Impl {
  using V = simd::VecD<Ext>;

 public:
  KernelImpl(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
             const TrialKernelConfig& config, YearLossTable* ylt, YltSink* sink)
      : yet_(&yet_table),
        event_chunk_(config.event_chunk),
        instrument_(config.instrument),
        capture_(config.ground_up_capture),
        replay_(config.ground_up_replay),
        cancel_(config.cancel),
        sink_(sink),
        sink_block_(sink != nullptr ? sink->block_trials() : 0) {
    if (config.window && !config.window->full_year()) {
      window_storage_ = *config.window;
      window_ = &window_storage_;
    }
    plans_.reserve(portfolio.layers.size());
    for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
      const Layer& layer = portfolio.layers[layer_index];
      LayerPlan<V> plan;
      plan.layer = &layer;
      if (layer.all_direct_access()) plan.direct = detail::direct_view(layer);
      plan.elt_terms.reserve(layer.elts.size());
      for (const LayerElt& layer_elt : layer.elts) {
        plan.elt_terms.push_back(detail::EltTermsV<V>::from(layer_elt.terms));
      }
      plan.terms = detail::LayerTermsV<V>::from(layer.terms);
      if (ylt != nullptr) plan.losses = ylt->layer_losses(layer_index);
      plans_.push_back(std::move(plan));
    }
  }

  void run_range(std::uint64_t first, std::uint64_t last,
                 TrialKernelScratch& scratch) const override {
    const std::span<const std::uint64_t> offsets = yet_->offsets();
    const yet::EventId* all_events = yet_->events().data();

    // Telemetry is flushed once per run_range call (= one task / launch
    // slice), never per block or per event: the flag is sampled here and
    // the hot loop below is untouched when disabled.
    const bool telemetry = obs::enabled();
    obs::Histogram* block_hist =
        telemetry ? &obs::TelemetryRegistry::global().histogram("kernel.block_ns") : nullptr;
    std::uint64_t blocks = 0;

    // Completed work is flushed whether the range finishes or is cancelled
    // mid-way — the per-block counters must never claim trials that did not
    // run.
    const auto flush_telemetry = [&](std::uint64_t up_to) {
      if (!telemetry || blocks == 0) return;
      obs::TelemetryRegistry& registry = obs::TelemetryRegistry::global();
      registry.counter("kernel.blocks").add(blocks);
      registry.counter("kernel.trials").add(up_to - first);
      registry.counter("kernel.events").add(offsets[up_to] - offsets[first]);
      if (replay_ != nullptr) {
        registry.counter("kernel.ground_up.replayed_events")
            .add(offsets[up_to] - offsets[first]);
      }
      if (capture_ != nullptr) {
        registry.counter("kernel.ground_up.captured_events")
            .add(offsets[up_to] - offsets[first]);
      }
    };

    for (std::uint64_t t0 = first, t1 = first; t0 < last; t0 = t1) {
      if (cancel_ != nullptr && cancel_->cancelled()) {
        // The cancellation checkpoint: charge the blocks this range will
        // not run (sink clamps ignored — an upper-bound partition count is
        // what the "work abandoned" counter is for), flush what did run,
        // and surface the token's reason. Counted unconditionally: a
        // cancelled quote must be attributable even on an untelemetered
        // service.
        const std::uint64_t remaining = (last - t0 + block_trials - 1) / block_trials;
        obs::TelemetryRegistry::global().counter("kernel.cancelled_blocks").add(remaining);
        flush_telemetry(t0);
        const StatusCode reason = cancel_->reason();
        throw StatusError(reason, "kernel: run cancelled between trial blocks (" +
                                      std::string(to_string(reason)) + ")");
      }
      t1 = std::min<std::uint64_t>(t0 + block_trials, last);
      if (sink_block_ != 0) {
        // Clamp the block at the next sink block (= shard) boundary.
        const std::uint64_t boundary = (t0 / sink_block_ + 1) * sink_block_;
        t1 = std::min<std::uint64_t>(t1, boundary);
      }

      // Stream the head of the NEXT block's event ids toward the cache while
      // this block computes (16 u32 ids per 64-byte line). The burst is
      // capped: past ~4 KB the lines would be evicted again before the
      // multi-layer compute reaches them. A replay block never reads event
      // ids (combined losses come from the ground-up cache), so the
      // prefetch is skipped.
      if (replay_ == nullptr) {
        constexpr std::uint64_t kPrefetchIds = 1024;  // 64 cache lines
        const std::uint64_t n1 = std::min<std::uint64_t>(t1 + block_trials, last);
        const std::uint64_t next_end =
            std::min<std::uint64_t>(offsets[n1], offsets[t1] + kPrefetchIds);
        for (std::uint64_t p = offsets[t1]; p < next_end; p += 16) {
          simd::prefetch_read(all_events + p);
        }
      }

      {
        obs::ScopedTimer block_timer(block_hist);
        run_block(t0, t1, scratch);
      }
      ++blocks;
    }

    flush_telemetry(last);
  }

 private:
  void run_block(std::uint64_t t0, std::uint64_t t1, TrialKernelScratch& scratch) const {
    const std::span<const std::uint64_t> offsets = yet_->offsets();
    const std::uint64_t ev0 = offsets[t0];
    const std::size_t count = static_cast<std::size_t>(offsets[t1] - ev0);
    const yet::EventId* events = yet_->events().data() + ev0;
    const float* times = yet_->times().data() + ev0;
    const std::size_t num_block_trials = static_cast<std::size_t>(t1 - t0);
    if (fault::should_inject(fault::sites::kKernelAlloc)) throw std::bad_alloc();
    scratch.combined.resize(count);
    if (sink_ != nullptr) scratch.block_losses.resize(plans_.size() * num_block_trials);

    if (instrument_) {
      run_block_instrumented(t0, t1, ev0, count, events, times, offsets, scratch);
    } else {
      const std::size_t chunk = event_chunk_ != 0 ? event_chunk_ : count;
      for (std::size_t layer_index = 0; layer_index < plans_.size(); ++layer_index) {
        const LayerPlan<V>& plan = plans_[layer_index];
        double* combined = scratch.combined.data();
        if (replay_ != nullptr) {
          // Delta execution: the combined pre-occurrence losses were
          // captured by an earlier full run; copy them in and skip the
          // fetch/lookup/financial phases entirely. The copied doubles are
          // the very values the full run computed, and occurrence terms are
          // elementwise (min/max/sub, no cross-lane or cross-chunk state),
          // so the bytes below match a cold run exactly.
          const double* cached =
              replay_->layer_values(layer_index) + static_cast<std::size_t>(ev0);
          std::copy(cached, cached + count, combined);
          apply_occurrence_terms<V>(plan, combined, count);
        } else {
          // Phase 1+2: batch ELT lookups + financial terms across ELTs, then
          // occurrence terms — staged in event_chunk-bounded spans (the whole
          // block when unconstrained).
          for (std::size_t c0 = 0; c0 < count; c0 += chunk) {
            const std::size_t n = std::min(chunk, count - c0);
            if (!plan.direct.empty()) {
              combine_elts_direct<V>(plan, events + c0, n, combined + c0);
            } else {
              combine_elts_generic<V>(plan, events + c0, n, combined + c0, scratch.raw);
            }
            if (capture_ != nullptr) {
              // Capture between combine and the in-place occurrence terms:
              // this chunk's slice is final combined losses right here.
              // Concurrent blocks write disjoint [ev0, ev0+count) ranges.
              std::copy(combined + c0, combined + c0 + n,
                        capture_->layer_values(layer_index) +
                            static_cast<std::size_t>(ev0) + c0);
            }
            apply_occurrence_terms<V>(plan, combined + c0, n);
          }
        }
        double* row = sink_ != nullptr
                          ? scratch.block_losses.data() + layer_index * num_block_trials
                          : plan.losses.data() + t0;
        aggregate_trials(plan.layer->terms, combined, times, window_, offsets, t0, t1, ev0, row);
      }
    }

    if (sink_ != nullptr) {
      // The output phase: sink emission (a memcpy for a materialized sink,
      // a shard pin + scatter — possibly faulting — for a sharded one) was
      // previously unattributed on instrumented runs.
      const auto emit_start = instrument_ ? KernelBodyClock::now() : KernelBodyClock::time_point{};
      for (std::size_t layer_index = 0; layer_index < plans_.size(); ++layer_index) {
        sink_->emit(layer_index, t0,
                    {scratch.block_losses.data() + layer_index * num_block_trials,
                     num_block_trials});
      }
      if (instrument_) {
        scratch.phases.output_seconds +=
            kernel_seconds_between(emit_start, KernelBodyClock::now());
      }
    }
  }

  /// Instrumented block: the same arithmetic as the fast path (the YLT
  /// bytes do not change — direct layers route through their lookup_many
  /// overrides, which read the same table cells the gathers do) with the
  /// block's YET slice explicitly staged once (timed as the fetch phase)
  /// and per-phase timers around the batched lookup / financial / layer
  /// sweeps. Access counters follow the paper's algorithmic counts (one
  /// event fetch per layer per event, as the un-fused algorithm performs
  /// them), matching predict_access_counts.
  void run_block_instrumented(std::uint64_t t0, std::uint64_t t1, std::uint64_t ev0,
                              std::size_t count, const yet::EventId* events, const float* times,
                              std::span<const std::uint64_t> offsets,
                              TrialKernelScratch& scratch) const {
    PhaseBreakdown& phases = scratch.phases;

    auto stamp = KernelBodyClock::now();
    // A replay block never reads the event ids (combined losses come from
    // the ground-up cache) — only the timestamps the aggregate recurrence
    // filters on. Its fetch phase is the staging of those plus, per layer
    // below, the cached-loss copy; lookup/financial stay exactly zero.
    if (replay_ == nullptr) scratch.staged_events.assign(events, events + count);
    scratch.staged_times.assign(times, times + count);
    auto now = KernelBodyClock::now();
    phases.fetch_seconds += kernel_seconds_between(stamp, now);
    stamp = now;

    double* combined = scratch.combined.data();
    if (replay_ == nullptr) scratch.raw.resize(count);
    const std::size_t num_block_trials = static_cast<std::size_t>(t1 - t0);

    for (std::size_t layer_index = 0; layer_index < plans_.size(); ++layer_index) {
      const LayerPlan<V>& plan = plans_[layer_index];
      const std::vector<LayerElt>& elts = plan.layer->elts;
      scratch.accesses.events_fetched += count;
      if (replay_ != nullptr) {
        stamp = KernelBodyClock::now();
        const double* cached =
            replay_->layer_values(layer_index) + static_cast<std::size_t>(ev0);
        std::copy(cached, cached + count, combined);
        phases.fetch_seconds += kernel_seconds_between(stamp, KernelBodyClock::now());
      } else {
        for (std::size_t e = 0; e < elts.size(); ++e) {
          stamp = KernelBodyClock::now();
          {
            obs::Span span("elt.lookup_many", "elt");
            elts[e].lookup->lookup_many(scratch.staged_events.data(), count, scratch.raw.data());
          }
          now = KernelBodyClock::now();
          phases.lookup_seconds += kernel_seconds_between(stamp, now);
          fold_raw_losses<V>(plan, e, scratch.raw.data(), count, combined);
          phases.financial_seconds += kernel_seconds_between(now, KernelBodyClock::now());
        }
        scratch.accesses.elt_lookups += elts.size() * count;
        scratch.accesses.financial_applications += elts.size() * count;
        if (capture_ != nullptr) {
          // The combined buffer is final pre-occurrence right here; the
          // capture copy is data placement, so it lands in the output phase.
          stamp = KernelBodyClock::now();
          std::copy(combined, combined + count,
                    capture_->layer_values(layer_index) + static_cast<std::size_t>(ev0));
          phases.output_seconds += kernel_seconds_between(stamp, KernelBodyClock::now());
        }
      }

      stamp = KernelBodyClock::now();
      apply_occurrence_terms<V>(plan, combined, count);
      double* row = sink_ != nullptr
                        ? scratch.block_losses.data() + layer_index * num_block_trials
                        : plan.losses.data() + t0;
      aggregate_trials(plan.layer->terms, combined, scratch.staged_times.data(), window_,
                       offsets, t0, t1, ev0, row);
      phases.layer_seconds += kernel_seconds_between(stamp, KernelBodyClock::now());
      scratch.accesses.layer_term_applications += 2 * count;  // occurrence + aggregate
    }
  }

  std::vector<LayerPlan<V>> plans_;
  const yet::YearEventTable* yet_;
  CoverageWindow window_storage_;
  const CoverageWindow* window_ = nullptr;  // null = full year
  std::size_t event_chunk_;
  bool instrument_;
  GroundUpLossCache* capture_;        // null = no capture
  const GroundUpLossCache* replay_;   // null = full run
  const CancelToken* cancel_;         // null = never cancelled
  YltSink* sink_;
  std::uint64_t sink_block_;
};

}  // namespace
}  // namespace are::core
