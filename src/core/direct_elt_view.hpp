#pragma once

#include <cstddef>
#include <vector>

#include "core/layer.hpp"
#include "elt/direct_access_table.hpp"
#include "financial/terms.hpp"

namespace are::core::detail {

/// Raw-pointer view of a direct access table: the fast path shared by
/// every engine (sequential, parallel, chunked, SIMD gather source).
/// Precondition: Layer::all_direct_access() — every lookup downcasts via
/// as_direct_access(). Keeping this in one place is part of the engines'
/// bit-identity contract: all of them must read the same data/universe
/// pair the same way.
struct DirectElt {
  const double* data;
  std::size_t universe;
  financial::FinancialTerms terms;
};

inline std::vector<DirectElt> direct_view(const Layer& layer) {
  std::vector<DirectElt> view;
  view.reserve(layer.elts.size());
  for (const LayerElt& layer_elt : layer.elts) {
    const elt::DirectAccessTable* table = layer_elt.lookup->as_direct_access();
    view.push_back({table->data(), table->universe(), layer_elt.terms});
  }
  return view;
}

}  // namespace are::core::detail
