#pragma once

// Cooperative cancellation for kernel launches. A CancelToken is a tiny
// shared flag + optional deadline that the trial-block kernel polls once
// per block (milliseconds of work — cheap relative to a block, prompt
// relative to a request): the resident service arms one per quote with the
// request's deadline, and the kernel driver chains an internal token to it
// so one worker's failure stops the others at their next block boundary.
//
// Checking is lock-free (two relaxed atomic loads on the live path; the
// clock is read only when a deadline is armed). All methods are const and
// thread-safe, so a `const CancelToken*` can be shared across workers.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "core/status.hpp"

namespace are::core {

class CancelToken {
 public:
  CancelToken() = default;
  /// A token chained to `parent`: it reports cancelled when the parent does
  /// (adopting the parent's reason) or when cancelled directly. The parent
  /// must outlive this token. Used by the kernel driver so an engine-internal
  /// abort and the caller's deadline share one per-block check.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Marks the token cancelled. The first reason wins; later calls are
  /// no-ops, so a deadline expiry racing an explicit cancel stays coherent.
  void cancel(StatusCode reason = StatusCode::kCancelled) const noexcept {
    std::uint32_t expected = 0;
    state_.compare_exchange_strong(expected, static_cast<std::uint32_t>(reason),
                                   std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// Arms a deadline; past it, cancelled() reports true with
  /// kDeadlineExceeded.
  void set_deadline(std::chrono::steady_clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(), std::memory_order_relaxed);
  }
  void set_deadline_after(std::chrono::nanoseconds budget) noexcept {
    set_deadline(std::chrono::steady_clock::now() + budget);
  }

  bool cancelled() const noexcept {
    if (state_.load(std::memory_order_acquire) != 0) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >= deadline) {
      cancel(StatusCode::kDeadlineExceeded);
      return true;
    }
    if (parent_ != nullptr && parent_->cancelled()) {
      cancel(parent_->reason());
      return true;
    }
    return false;
  }

  /// The cancellation reason, or kOk while the token is live.
  StatusCode reason() const noexcept {
    return static_cast<StatusCode>(state_.load(std::memory_order_acquire));
  }

 private:
  mutable std::atomic<std::uint32_t> state_{0};  // 0 = live, else StatusCode
  std::atomic<std::int64_t> deadline_ns_{0};     // steady_clock epoch ns; 0 = none
  const CancelToken* parent_ = nullptr;
};

}  // namespace are::core
