#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace are::core {

/// The Year Loss Table: the output of aggregate analysis — one ceded loss
/// per (layer, trial). Trial losses for one layer are stored contiguously
/// because every downstream consumer (EP curves, TVaR, pricing) scans a
/// single layer's losses end to end.
class YearLossTable {
 public:
  YearLossTable() = default;

  YearLossTable(std::vector<std::uint32_t> layer_ids, std::size_t num_trials)
      : layer_ids_(std::move(layer_ids)),
        num_trials_(num_trials),
        losses_(layer_ids_.size() * num_trials, 0.0) {}

  std::size_t num_layers() const noexcept { return layer_ids_.size(); }
  std::size_t num_trials() const noexcept { return num_trials_; }
  std::span<const std::uint32_t> layer_ids() const noexcept { return layer_ids_; }

  std::span<double> layer_losses(std::size_t layer_index) noexcept {
    return {losses_.data() + layer_index * num_trials_, num_trials_};
  }
  std::span<const double> layer_losses(std::size_t layer_index) const noexcept {
    return {losses_.data() + layer_index * num_trials_, num_trials_};
  }

  double& at(std::size_t layer_index, std::size_t trial) noexcept {
    return losses_[layer_index * num_trials_ + trial];
  }
  double at(std::size_t layer_index, std::size_t trial) const noexcept {
    return losses_[layer_index * num_trials_ + trial];
  }

  /// Index of the layer with the given external id.
  std::size_t index_of(std::uint32_t layer_id) const {
    for (std::size_t i = 0; i < layer_ids_.size(); ++i) {
      if (layer_ids_[i] == layer_id) return i;
    }
    throw std::out_of_range("layer id not present in YLT");
  }

  /// Portfolio-level trial losses: sum across layers per trial.
  std::vector<double> portfolio_losses() const {
    std::vector<double> total(num_trials_, 0.0);
    for (std::size_t layer = 0; layer < num_layers(); ++layer) {
      const auto losses = layer_losses(layer);
      for (std::size_t trial = 0; trial < num_trials_; ++trial) {
        total[trial] += losses[trial];
      }
    }
    return total;
  }

 private:
  std::vector<std::uint32_t> layer_ids_;
  std::size_t num_trials_ = 0;
  std::vector<double> losses_;
};

}  // namespace are::core
