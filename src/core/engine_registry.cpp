#include "core/engine_registry.hpp"

#include <stdexcept>
#include <utility>

#include "core/fused_engine.hpp"
#include "core/openmp_engine.hpp"
#include "core/trial_kernel.hpp"
#include "simd/dispatch.hpp"

namespace are::core {

namespace {

// --- Adapters: AnalysisRequest -> trial-kernel driver -----------------------
//
// Every builtin engine is a parameterization of the shared trial-block
// kernel: the adapter translates the AnalysisConfig into the kernel config
// (lane width, window, event chunk, instrumentation) and the launch
// (schedule, threads, partitioning) that *define* the engine. Because all
// of them run the same kernel body, the capability matrix is uniform:
// every builtin applies windows, fills the Fig-6b breakdown, and emits into
// a YltSink.

/// The two halves of an engine definition, resolved from the request —
/// plus, for the lane-parallel engines, why that lane type was chosen
/// (surfaced through InstrumentationSink::simd_resolution_note).
struct ResolvedExecution {
  TrialKernelConfig config;
  KernelLaunch launch;
  std::string simd_note;
};

ResolvedExecution resolve_execution(const AnalysisRequest& request, EngineKind kind) {
  const AnalysisConfig& config = request.config;
  ResolvedExecution resolved;
  resolved.config.window = config.window;
  resolved.config.instrument = config.collect_phases || kind == EngineKind::kInstrumented;
  // Ground-up capture/replay parameterize the shared kernel, so every
  // builtin supports delta execution uniformly (schedule and lane width
  // never change the captured or replayed bytes).
  resolved.config.ground_up_capture = config.ground_up_capture;
  resolved.config.ground_up_replay = config.ground_up_replay;
  // Cancellation likewise rides the shared kernel: every builtin honours
  // the caller's token at its block boundaries.
  resolved.config.cancel = config.cancel;
  resolved.launch.num_threads = config.num_threads;
  resolved.launch.pool = config.pool;  // non-null only past the capability check

  switch (kind) {
    case EngineKind::kSequential:
    case EngineKind::kWindowed:
    case EngineKind::kInstrumented:
      resolved.launch.schedule = KernelLaunch::Schedule::kSerial;
      break;
    case EngineKind::kParallel:
      resolved.launch.schedule = KernelLaunch::Schedule::kPool;
      resolved.launch.partition = config.partition;
      resolved.launch.chunk = config.partition_chunk;
      break;
    case EngineKind::kChunked:
      resolved.launch.schedule = KernelLaunch::Schedule::kPool;
      resolved.config.event_chunk = config.chunk_size;
      break;
    case EngineKind::kOpenMp:
      resolved.launch.schedule = KernelLaunch::Schedule::kOpenMp;
      break;
    case EngineKind::kSimd: {
      resolved.launch.schedule = KernelLaunch::Schedule::kPool;
      const SimdResolution simd = resolve_simd_extension_ex(
          request.portfolio, {config.num_threads, config.simd_extension});
      resolved.config.extension = simd.extension;
      resolved.simd_note = simd.note;
      break;
    }
    case EngineKind::kFused: {
      resolved.launch.schedule = KernelLaunch::Schedule::kCosted;
      resolved.launch.partition = config.partition;
      // Full kAuto resolution, not just the widest runnable extension: the
      // fused engine gathers from the same direct tables, so the cache-
      // regime narrowing applies to it identically.
      const SimdResolution simd = resolve_simd_extension_ex(
          request.portfolio, {config.num_threads, config.simd_extension});
      resolved.config.extension = simd.extension;
      resolved.simd_note = simd.note;
      resolved.config.block_trials = config.tile_trials;
      break;
    }
  }
  return resolved;
}

/// Shared execution path of every adapter: records the per-run facts,
/// resolves the kernel config + launch, runs, and delivers the breakdown.
void execute(const AnalysisRequest& request, EngineKind kind, YearLossTable* ylt,
             YltSink* sink) {
  InstrumentationSink* facts = request.config.instrumentation;
  if (facts != nullptr) {
    facts->engine_used = kind;
    if (kind == EngineKind::kOpenMp) {
      // The kernel's kOpenMp schedule uses OpenMP directives whenever the
      // build has them and otherwise falls back to the thread pool; surface
      // which one ran instead of making callers probe openmp_available().
      facts->openmp_used = openmp_available();
    }
  }
  const ResolvedExecution resolved = resolve_execution(request, kind);
  if (facts != nullptr && (kind == EngineKind::kSimd || kind == EngineKind::kFused)) {
    facts->simd_extension_used = resolved.config.extension;
    facts->simd_resolution_note = resolved.simd_note;
  }
  const bool deliver = resolved.config.instrument && facts != nullptr;
  PhaseBreakdown phases;
  AccessCounts accesses;
  run_trial_kernel(request.portfolio, request.yet_table, resolved.config, resolved.launch, ylt,
                   sink, deliver ? &phases : nullptr, deliver ? &accesses : nullptr);
  if (deliver) {
    facts->phases = phases;
    facts->accesses = accesses;
  }
}

template <EngineKind K>
YearLossTable adapt_run(const AnalysisRequest& request) {
  YearLossTable ylt = make_year_loss_table(request.portfolio, request.yet_table);
  execute(request, K, &ylt, nullptr);
  return ylt;
}

template <EngineKind K>
void adapt_run_to_sink(const AnalysisRequest& request, YltSink& sink) {
  execute(request, K, nullptr, &sink);
}

/// The runtime-dispatch facts for this (binary, host) pair: which kernel
/// TUs the build linked, what this host's cpuid reports, and which of them
/// kAuto therefore executes — the note CI greps to prove a baseline
/// (-DARE_MARCH_NATIVE=OFF) binary still runs the wide kernels.
std::string simd_dispatch_note() {
  return "compiled: " + simd::describe_mask(simd::compiled_extensions()) +
         "; cpuid: " + simd::describe_mask(simd::detected_extensions()) +
         "; auto runs " + std::string(simd::name_of(simd::best_extension())) + " (" +
         simd::best_extension_reason() + ")";
}

}  // namespace

void EngineRegistry::register_engine(EngineDescriptor descriptor) {
  if (descriptor.name.empty()) {
    throw std::invalid_argument("engine descriptor needs a non-empty name");
  }
  if (descriptor.run == nullptr) {
    throw std::invalid_argument("engine descriptor '" + descriptor.name +
                                "' needs a run function");
  }
  for (EngineDescriptor& existing : descriptors_) {
    if (existing.name == descriptor.name) {
      existing = std::move(descriptor);
      return;
    }
  }
  descriptors_.push_back(std::move(descriptor));
}

const EngineDescriptor* EngineRegistry::find(EngineKind kind) const noexcept {
  for (const EngineDescriptor& descriptor : descriptors_) {
    if (descriptor.kind == kind) return &descriptor;
  }
  return nullptr;
}

const EngineDescriptor* EngineRegistry::find(std::string_view name) const noexcept {
  for (const EngineDescriptor& descriptor : descriptors_) {
    if (descriptor.name == name) return &descriptor;
  }
  return nullptr;
}

const EngineDescriptor& EngineRegistry::require(EngineKind kind) const {
  if (const EngineDescriptor* descriptor = find(kind)) return *descriptor;
  throw std::invalid_argument("no engine registered for kind '" +
                              std::string(to_string(kind)) + "'");
}

const EngineDescriptor& EngineRegistry::require(std::string_view name) const {
  if (const EngineDescriptor* descriptor = find(name)) return *descriptor;
  throw std::invalid_argument("unknown engine '" + std::string(name) +
                              "' (known engines: " + known_names() + ")");
}

std::string EngineRegistry::known_names() const {
  std::string names;
  for (const EngineDescriptor& descriptor : descriptors_) {
    if (!names.empty()) names += ", ";
    names += descriptor.name;
  }
  return names;
}

EngineRegistry make_builtin_registry() {
  EngineRegistry registry;

  // Every builtin drives the shared trial-block kernel, so the cross-
  // cutting capabilities are uniform: windowing, the Fig-6b breakdown
  // (collect_phases), and sharded/out-of-core output via run_to_sink hold
  // for all of them. What distinguishes the engines is scheduling and lane
  // width — see resolve_execution above.

  registry.register_engine({
      .kind = EngineKind::kSequential,
      .name = "seq",
      .summary = "sequential reference engine (the bit-identity anchor)",
      .supports_windowing = true,
      .supports_instrumentation = true,
      .bit_identical_to_sequential = true,
      .run = &adapt_run<EngineKind::kSequential>,
      .run_to_sink = &adapt_run_to_sink<EngineKind::kSequential>,
  });
  registry.register_engine({
      .kind = EngineKind::kParallel,
      .name = "parallel",
      .summary = "thread-pool trial parallelism (static/dynamic/guided partition)",
      .supports_windowing = true,
      .supports_instrumentation = true,
      .supports_pool_reuse = true,
      .bit_identical_to_sequential = true,
      .run = &adapt_run<EngineKind::kParallel>,
      .run_to_sink = &adapt_run_to_sink<EngineKind::kParallel>,
  });
  registry.register_engine({
      .kind = EngineKind::kChunked,
      .name = "chunked",
      .summary = "event-chunked kernel staging, the CPU analogue of the paper's GPU kernel",
      .supports_windowing = true,
      .supports_instrumentation = true,
      .bit_identical_to_sequential = true,
      .run = &adapt_run<EngineKind::kChunked>,
      .run_to_sink = &adapt_run_to_sink<EngineKind::kChunked>,
  });
  registry.register_engine({
      .kind = EngineKind::kOpenMp,
      .name = "openmp",
      .summary = "OpenMP trial parallelism (paper's multi-core implementation)",
      .supports_windowing = true,
      .supports_instrumentation = true,
      .bit_identical_to_sequential = true,
      .availability_note = openmp_available()
                               ? "OpenMP compiled in; directives run"
                               : "OpenMP not compiled in; bit-identical thread-pool "
                                 "fallback runs (see InstrumentationSink::openmp_used)",
      .run = &adapt_run<EngineKind::kOpenMp>,
      .run_to_sink = &adapt_run_to_sink<EngineKind::kOpenMp>,
  });
  registry.register_engine({
      .kind = EngineKind::kSimd,
      .name = "simd",
      .summary = "lane-parallel batch engine: the kernel at the resolved vector width",
      .supports_windowing = true,
      .supports_instrumentation = true,
      .supports_pool_reuse = true,
      .bit_identical_to_sequential = true,
      .availability_note = simd_dispatch_note(),
      .run = &adapt_run<EngineKind::kSimd>,
      .run_to_sink = &adapt_run_to_sink<EngineKind::kSimd>,
  });
  registry.register_engine({
      .kind = EngineKind::kWindowed,
      .name = "windowed",
      .summary = "sequential engine with a mid-year coverage window",
      .supports_windowing = true,
      .supports_instrumentation = true,
      // A real window changes the YLT by design; only the full-year default
      // matches seq, so the flag must stay false for the CI CSV diff.
      .bit_identical_to_sequential = false,
      .run = &adapt_run<EngineKind::kWindowed>,
      .run_to_sink = &adapt_run_to_sink<EngineKind::kWindowed>,
  });
  registry.register_engine({
      .kind = EngineKind::kFused,
      .name = "fused",
      .summary = "trial-tiled single-pass engine: all layers per tile, cost-aware "
                 "scheduling, widest lanes",
      .supports_windowing = true,
      .supports_instrumentation = true,
      .supports_pool_reuse = true,
      // Bit-identical for the default full-year coverage (what CI diffs); a
      // real mid-year window intentionally changes the YLT — it matches
      // run_windowed for the same window instead.
      .bit_identical_to_sequential = true,
      .availability_note = simd_dispatch_note() +
                           "; a non-full-year --window changes the YLT by design "
                           "(same semantics as the windowed engine)",
      .run = &adapt_run<EngineKind::kFused>,
      .run_to_sink = &adapt_run_to_sink<EngineKind::kFused>,
  });
  registry.register_engine({
      .kind = EngineKind::kInstrumented,
      .name = "instrumented",
      .summary = "sequential engine with Fig-6b phase timers and access counters",
      .supports_windowing = true,
      .supports_instrumentation = true,
      .bit_identical_to_sequential = true,
      .run = &adapt_run<EngineKind::kInstrumented>,
      .run_to_sink = &adapt_run_to_sink<EngineKind::kInstrumented>,
  });

  return registry;
}

EngineRegistry& EngineRegistry::global() {
  static EngineRegistry registry = make_builtin_registry();
  return registry;
}

}  // namespace are::core
