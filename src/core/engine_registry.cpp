#include "core/engine_registry.hpp"

#include <stdexcept>
#include <utility>

#include "core/fused_engine.hpp"
#include "core/openmp_engine.hpp"

namespace are::core {

namespace {

InstrumentationSink* sink_of(const AnalysisRequest& request) {
  return request.config.instrumentation;
}

void note_engine(const AnalysisRequest& request, EngineKind kind) {
  if (InstrumentationSink* sink = sink_of(request)) sink->engine_used = kind;
}

// --- Adapters: AnalysisRequest -> legacy engine entry points ----------------

YearLossTable adapt_sequential(const AnalysisRequest& request) {
  note_engine(request, EngineKind::kSequential);
  return run_sequential(request.portfolio, request.yet_table);
}

void adapt_sequential_to_sink(const AnalysisRequest& request, YltSink& sink) {
  note_engine(request, EngineKind::kSequential);
  run_sequential_to_sink(request.portfolio, request.yet_table, sink);
}

YearLossTable adapt_parallel(const AnalysisRequest& request) {
  note_engine(request, EngineKind::kParallel);
  const AnalysisConfig& config = request.config;
  const ParallelOptions options{config.num_threads, config.partition, config.partition_chunk};
  if (config.pool != nullptr) {
    return run_parallel(request.portfolio, request.yet_table, *config.pool, options);
  }
  return run_parallel(request.portfolio, request.yet_table, options);
}

YearLossTable adapt_chunked(const AnalysisRequest& request) {
  note_engine(request, EngineKind::kChunked);
  const ChunkedOptions options{request.config.chunk_size, request.config.num_threads};
  return run_chunked(request.portfolio, request.yet_table, options);
}

YearLossTable adapt_openmp(const AnalysisRequest& request) {
  if (InstrumentationSink* sink = sink_of(request)) {
    sink->engine_used = EngineKind::kOpenMp;
    // run_openmp uses OpenMP directives whenever the build has them and
    // otherwise falls back to the thread pool; surface which one ran
    // instead of making callers probe openmp_available() themselves.
    sink->openmp_used = openmp_available();
  }
  return run_openmp(request.portfolio, request.yet_table,
                    static_cast<int>(request.config.num_threads));
}

YearLossTable adapt_simd(const AnalysisRequest& request) {
  const AnalysisConfig& config = request.config;
  const SimdOptions options{config.num_threads, config.simd_extension};
  if (InstrumentationSink* sink = sink_of(request)) {
    sink->engine_used = EngineKind::kSimd;
    sink->simd_extension_used = resolve_simd_extension(request.portfolio, options);
  }
  if (config.pool != nullptr) {
    return run_simd(request.portfolio, request.yet_table, *config.pool, options);
  }
  return run_simd(request.portfolio, request.yet_table, options);
}

YearLossTable adapt_windowed(const AnalysisRequest& request) {
  note_engine(request, EngineKind::kWindowed);
  // Absent window = full contractual year, which is bit-identical to seq;
  // the descriptor still reports bit_identical false because a real window
  // changes the YLT by design.
  const CoverageWindow window = request.config.window.value_or(CoverageWindow{});
  return run_windowed(request.portfolio, request.yet_table, window);
}

/// Shared scaffolding of the two fused adapters: builds the FusedOptions
/// (wiring the phase sink only when collect_phases asked for the
/// timer-instrumented tile path — the default hot path stays untimed),
/// invokes the engine, and delivers the breakdown afterwards.
template <typename Invoke>
void with_fused_options(const AnalysisRequest& request, const Invoke& invoke) {
  note_engine(request, EngineKind::kFused);
  const AnalysisConfig& config = request.config;
  InstrumentationSink* sink = sink_of(request);
  PhaseBreakdown phases;
  const bool instrument = config.collect_phases && sink != nullptr;

  FusedOptions options;
  options.tile_trials = config.tile_trials;
  options.num_threads = config.num_threads;
  options.partition = config.partition;
  options.window = config.window;
  options.phases = instrument ? &phases : nullptr;
  invoke(options);
  if (instrument) sink->phases = phases;
}

YearLossTable adapt_fused(const AnalysisRequest& request) {
  YearLossTable ylt;
  with_fused_options(request, [&](const FusedOptions& options) {
    ylt = request.config.pool != nullptr
              ? run_fused(request.portfolio, request.yet_table, *request.config.pool, options)
              : run_fused(request.portfolio, request.yet_table, options);
  });
  return ylt;
}

void adapt_fused_to_sink(const AnalysisRequest& request, YltSink& ylt_sink) {
  with_fused_options(request, [&](const FusedOptions& options) {
    if (request.config.pool != nullptr) {
      run_fused_to_sink(request.portfolio, request.yet_table, *request.config.pool, options,
                        ylt_sink);
    } else {
      run_fused_to_sink(request.portfolio, request.yet_table, options, ylt_sink);
    }
  });
}

YearLossTable adapt_instrumented(const AnalysisRequest& request) {
  InstrumentedResult result = run_instrumented(request.portfolio, request.yet_table);
  if (InstrumentationSink* sink = sink_of(request)) {
    sink->engine_used = EngineKind::kInstrumented;
    sink->phases = result.phases;
    sink->accesses = result.accesses;
  }
  return std::move(result.ylt);
}

std::string compiled_simd_extensions() {
  std::string names;
  for (const SimdExtension extension :
       {SimdExtension::kScalar, SimdExtension::kSse2, SimdExtension::kAvx2,
        SimdExtension::kAvx512, SimdExtension::kNeon}) {
    if (!simd_extension_available(extension)) continue;
    if (!names.empty()) names += ",";
    names += to_string(extension);
  }
  return names;
}

}  // namespace

void EngineRegistry::register_engine(EngineDescriptor descriptor) {
  if (descriptor.name.empty()) {
    throw std::invalid_argument("engine descriptor needs a non-empty name");
  }
  if (descriptor.run == nullptr) {
    throw std::invalid_argument("engine descriptor '" + descriptor.name +
                                "' needs a run function");
  }
  for (EngineDescriptor& existing : descriptors_) {
    if (existing.name == descriptor.name) {
      existing = std::move(descriptor);
      return;
    }
  }
  descriptors_.push_back(std::move(descriptor));
}

const EngineDescriptor* EngineRegistry::find(EngineKind kind) const noexcept {
  for (const EngineDescriptor& descriptor : descriptors_) {
    if (descriptor.kind == kind) return &descriptor;
  }
  return nullptr;
}

const EngineDescriptor* EngineRegistry::find(std::string_view name) const noexcept {
  for (const EngineDescriptor& descriptor : descriptors_) {
    if (descriptor.name == name) return &descriptor;
  }
  return nullptr;
}

const EngineDescriptor& EngineRegistry::require(EngineKind kind) const {
  if (const EngineDescriptor* descriptor = find(kind)) return *descriptor;
  throw std::invalid_argument("no engine registered for kind '" +
                              std::string(to_string(kind)) + "'");
}

const EngineDescriptor& EngineRegistry::require(std::string_view name) const {
  if (const EngineDescriptor* descriptor = find(name)) return *descriptor;
  throw std::invalid_argument("unknown engine '" + std::string(name) +
                              "' (known engines: " + known_names() + ")");
}

std::string EngineRegistry::known_names() const {
  std::string names;
  for (const EngineDescriptor& descriptor : descriptors_) {
    if (!names.empty()) names += ", ";
    names += descriptor.name;
  }
  return names;
}

EngineRegistry make_builtin_registry() {
  EngineRegistry registry;

  registry.register_engine({
      .kind = EngineKind::kSequential,
      .name = "seq",
      .summary = "sequential reference engine (the bit-identity anchor)",
      .bit_identical_to_sequential = true,
      .run = &adapt_sequential,
      .run_to_sink = &adapt_sequential_to_sink,
  });
  registry.register_engine({
      .kind = EngineKind::kParallel,
      .name = "parallel",
      .summary = "thread-pool trial parallelism (static/dynamic/guided partition)",
      .supports_pool_reuse = true,
      .bit_identical_to_sequential = true,
      .run = &adapt_parallel,
  });
  registry.register_engine({
      .kind = EngineKind::kChunked,
      .name = "chunked",
      .summary = "event-chunked kernel, the CPU analogue of the paper's GPU kernel",
      .bit_identical_to_sequential = true,
      .run = &adapt_chunked,
  });
  registry.register_engine({
      .kind = EngineKind::kOpenMp,
      .name = "openmp",
      .summary = "OpenMP trial parallelism (paper's multi-core implementation)",
      .bit_identical_to_sequential = true,
      .availability_note = openmp_available()
                               ? "OpenMP compiled in; directives run"
                               : "OpenMP not compiled in; bit-identical thread-pool "
                                 "fallback runs (see InstrumentationSink::openmp_used)",
      .run = &adapt_openmp,
  });
  registry.register_engine({
      .kind = EngineKind::kSimd,
      .name = "simd",
      .summary = "lane-parallel batch engine, one trial per vector lane",
      .supports_pool_reuse = true,
      .bit_identical_to_sequential = true,
      .availability_note = "compiled extensions: " + compiled_simd_extensions() +
                           "; auto resolves to " + std::string(to_string(best_simd_extension())),
      .run = &adapt_simd,
  });
  registry.register_engine({
      .kind = EngineKind::kWindowed,
      .name = "windowed",
      .summary = "sequential engine with a mid-year coverage window",
      .supports_windowing = true,
      // A real window changes the YLT by design; only the full-year default
      // matches seq, so the flag must stay false for the CI CSV diff.
      .bit_identical_to_sequential = false,
      .run = &adapt_windowed,
  });
  registry.register_engine({
      .kind = EngineKind::kFused,
      .name = "fused",
      .summary = "trial-tiled single-pass engine: all layers per tile, batch ELT "
                 "lookups, zero-allocation scratch",
      .supports_windowing = true,
      // Fills the Fig-6b breakdown from timers around the batched tile
      // phases, but only when AnalysisConfig::collect_phases asks for it
      // (the instrumented tile path is slower; the default stays untimed).
      .supports_instrumentation = true,
      .supports_pool_reuse = true,
      // Bit-identical for the default full-year coverage (what CI diffs); a
      // real mid-year window intentionally changes the YLT — it matches
      // run_windowed for the same window instead.
      .bit_identical_to_sequential = true,
      .availability_note = "a non-full-year --window changes the YLT by design "
                           "(same semantics as the windowed engine)",
      .run = &adapt_fused,
      .run_to_sink = &adapt_fused_to_sink,
  });
  registry.register_engine({
      .kind = EngineKind::kInstrumented,
      .name = "instrumented",
      .summary = "sequential engine with Fig-6b phase timers and access counters",
      .supports_instrumentation = true,
      .bit_identical_to_sequential = true,
      .run = &adapt_instrumented,
  });

  return registry;
}

EngineRegistry& EngineRegistry::global() {
  static EngineRegistry registry = make_builtin_registry();
  return registry;
}

}  // namespace are::core
