#include "core/windowed_engine.hpp"

#include "financial/trial_accumulator.hpp"

namespace are::core {

YearLossTable run_windowed(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                           const CoverageWindow& window) {
  portfolio.validate();
  window.validate();

  std::vector<std::uint32_t> ids;
  for (const Layer& layer : portfolio.layers) ids.push_back(layer.id);
  YearLossTable ylt(std::move(ids), yet_table.num_trials());

  for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
    const Layer& layer = portfolio.layers[layer_index];
    auto losses = ylt.layer_losses(layer_index);

    for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
      const auto events = yet_table.trial_events(trial);
      const auto times = yet_table.trial_times(trial);

      financial::TrialAccumulator accumulator(layer.terms);
      for (std::size_t k = 0; k < events.size(); ++k) {
        if (!window.covers(times[k])) continue;
        double combined = 0.0;
        for (const LayerElt& layer_elt : layer.elts) {
          combined += layer_elt.terms.apply(layer_elt.lookup->lookup(events[k]));
        }
        accumulator.add_occurrence(layer.terms.apply_occurrence(combined));
      }
      losses[trial] = accumulator.trial_loss();
    }
  }
  return ylt;
}

std::vector<std::uint64_t> occurrences_in_window(const yet::YearEventTable& yet_table,
                                                 const CoverageWindow& window) {
  window.validate();
  std::vector<std::uint64_t> counts(yet_table.num_trials(), 0);
  for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
    for (const float time : yet_table.trial_times(trial)) {
      if (window.covers(time)) ++counts[trial];
    }
  }
  return counts;
}

}  // namespace are::core
