#include "core/windowed_engine.hpp"

#include "core/trial_kernel.hpp"

namespace are::core {

YearLossTable run_windowed(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                           const CoverageWindow& window) {
  window.validate();
  YearLossTable ylt = make_year_loss_table(portfolio, yet_table);

  TrialKernelConfig config;
  config.window = window;
  run_trial_kernel(portfolio, yet_table, config, {}, &ylt, nullptr);
  return ylt;
}

std::vector<std::uint64_t> occurrences_in_window(const yet::YearEventTable& yet_table,
                                                 const CoverageWindow& window) {
  window.validate();
  std::vector<std::uint64_t> counts(yet_table.num_trials(), 0);
  for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
    for (const float time : yet_table.trial_times(trial)) {
      if (window.covers(time)) ++counts[trial];
    }
  }
  return counts;
}

}  // namespace are::core
