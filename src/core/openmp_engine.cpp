#include "core/openmp_engine.hpp"

#include "elt/direct_access_table.hpp"
#include "financial/trial_accumulator.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace are::core {

bool openmp_available() noexcept {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

#ifdef _OPENMP

namespace {

/// Same arithmetic, same order as the sequential engine's trial kernel —
/// required for bit-identical YLTs across engines.
double openmp_trial(const Layer& layer, std::span<const yet::EventId> events) noexcept {
  financial::TrialAccumulator accumulator(layer.terms);
  for (const yet::EventId event : events) {
    double combined = 0.0;
    for (const LayerElt& layer_elt : layer.elts) {
      combined += layer_elt.terms.apply(layer_elt.lookup->lookup(event));
    }
    accumulator.add_occurrence(layer.terms.apply_occurrence(combined));
  }
  return accumulator.trial_loss();
}

}  // namespace

YearLossTable run_openmp(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                         int num_threads) {
  portfolio.validate();
  std::vector<std::uint32_t> ids;
  for (const Layer& layer : portfolio.layers) ids.push_back(layer.id);
  YearLossTable ylt(std::move(ids), yet_table.num_trials());

  if (num_threads <= 0) num_threads = omp_get_max_threads();
  const auto trials = static_cast<std::int64_t>(yet_table.num_trials());

  for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
    const Layer& layer = portfolio.layers[layer_index];
    auto losses = ylt.layer_losses(layer_index);
#pragma omp parallel for schedule(static) num_threads(num_threads)
    for (std::int64_t trial = 0; trial < trials; ++trial) {
      losses[static_cast<std::size_t>(trial)] =
          openmp_trial(layer, yet_table.trial_events(static_cast<std::size_t>(trial)));
    }
  }
  return ylt;
}

#else  // !_OPENMP

YearLossTable run_openmp(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                         int num_threads) {
  ParallelOptions options;
  options.num_threads = num_threads <= 0 ? 0 : static_cast<std::size_t>(num_threads);
  return run_parallel(portfolio, yet_table, options);
}

#endif  // _OPENMP

}  // namespace are::core
