#include "core/openmp_engine.hpp"

#include "core/trial_kernel.hpp"

namespace are::core {

bool openmp_available() noexcept {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

YearLossTable run_openmp(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                         int num_threads) {
  YearLossTable ylt = make_year_loss_table(portfolio, yet_table);

  KernelLaunch launch;
  // kOpenMp schedules kernel blocks with an OpenMP static `parallel for`;
  // in builds without OpenMP the kernel driver transparently falls back to
  // the (bit-identical) thread-pool schedule, so callers need no #ifdefs.
  launch.schedule = KernelLaunch::Schedule::kOpenMp;
  launch.num_threads = num_threads <= 0 ? 0 : static_cast<std::size_t>(num_threads);
  run_trial_kernel(portfolio, yet_table, {}, launch, &ylt, nullptr);
  return ylt;
}

}  // namespace are::core
