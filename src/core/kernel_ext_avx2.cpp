// AVX2 kernel translation unit. Compiled with -mavx2 and WITHOUT
// -march=native (see the per-extension stanza in CMakeLists.txt); the
// runtime dispatcher only routes here on hosts whose cpuid (and XCR0 OS
// state) reports AVX2. Also carries the AVX2 gathered probe kernels for
// the hash tables — they share this TU so the set of probe extensions in
// the binary is exactly the set of kernel extensions.

#if !defined(__AVX2__)
#error "kernel_ext_avx2.cpp must be compiled with -mavx2 (check CMakeLists.txt flags)"
#endif

#define ARE_PROBE_BODY_AVX2 1

#include "core/kernel_ext.hpp"
#include "core/trial_kernel_body.hpp"
#include "elt/probe_dispatch.hpp"
#include "elt/probe_kernels.hpp"

namespace are::core::detail {

std::unique_ptr<TrialBlockKernel::Impl> make_kernel_impl_avx2(
    const Portfolio& portfolio, const yet::YearEventTable& yet_table,
    const TrialKernelConfig& config, YearLossTable* ylt, YltSink* sink) {
  return std::make_unique<KernelImpl<simd::avx2_ext>>(portfolio, yet_table, config, ylt, sink);
}

}  // namespace are::core::detail

namespace are::elt::probe {

std::uint64_t robin_hood_probe_avx2(const RobinHoodTable& table, const EventId* events,
                                    std::size_t count, double* out) {
  return robin_hood_probe_avx2_body(table, events, count, out);
}

std::uint64_t cuckoo_probe_avx2(const CuckooTable& table, const EventId* events,
                                std::size_t count, double* out) {
  return cuckoo_probe_avx2_body(table, events, count, out);
}

}  // namespace are::elt::probe
