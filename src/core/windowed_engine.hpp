#pragma once

#include "core/coverage_window.hpp"
#include "core/engine.hpp"

namespace are::core {

/// Sequential aggregate analysis where every layer shares the coverage
/// window: occurrences outside the window contribute nothing (and do not
/// advance the aggregate-terms recurrence). With a full-year window the
/// result is bit-identical to run_sequential. This is the serial driver of
/// the shared trial kernel with the window enabled; every other engine
/// applies the same semantics through AnalysisConfig::window.
YearLossTable run_windowed(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                           const CoverageWindow& window);

/// Per-trial count of in-window occurrences (diagnostics for seasonality
/// studies: a hurricane-season window should capture most hurricane
/// occurrences and few winter-storm ones).
std::vector<std::uint64_t> occurrences_in_window(const yet::YearEventTable& yet_table,
                                                 const CoverageWindow& window);

}  // namespace are::core
