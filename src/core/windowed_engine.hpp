#pragma once

#include "core/engine.hpp"

namespace are::core {

/// A coverage window within the contractual year: real treaties incept and
/// expire mid-year, so a layer only responds to occurrences whose YET
/// timestamp falls inside [from, to). This is the first consumer of the
/// timestamps the paper's YET carries alongside each event id.
struct CoverageWindow {
  float from = 0.0f;  // inclusive, fraction of year
  float to = 1.0f;    // exclusive

  constexpr bool covers(float time) const noexcept { return time >= from && time < to; }
  constexpr bool full_year() const noexcept { return from <= 0.0f && to >= 1.0f; }

  void validate() const {
    if (!(from >= 0.0f) || !(to <= 1.0f) || !(from < to)) {
      throw std::invalid_argument("coverage window must satisfy 0 <= from < to <= 1");
    }
  }
};

/// Sequential aggregate analysis where every layer shares the coverage
/// window: occurrences outside the window contribute nothing (and do not
/// advance the aggregate-terms recurrence). With a full-year window the
/// result is bit-identical to run_sequential.
YearLossTable run_windowed(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                           const CoverageWindow& window);

/// Per-trial count of in-window occurrences (diagnostics for seasonality
/// studies: a hurricane-season window should capture most hurricane
/// occurrences and few winter-storm ones).
std::vector<std::uint64_t> occurrences_in_window(const yet::YearEventTable& yet_table,
                                                 const CoverageWindow& window);

}  // namespace are::core
