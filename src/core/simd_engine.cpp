#include "core/simd_engine.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "core/direct_elt_view.hpp"
#include "core/simd_terms.hpp"
#include "simd/trial_batch.hpp"
#include "simd/vec.hpp"

namespace are::core {

namespace {

using detail::apply_financial_v;
using detail::DirectElt;
using detail::direct_view;
using detail::EltTermsV;
using detail::excess_v;
using detail::LayerTermsV;

/// Combined ELT loss for one event row: gather + financial terms, summed
/// across ELTs in layer order (the summation order run_sequential uses, so
/// it must not be reassociated).
template <typename V>
typename V::reg combine_row(const std::vector<DirectElt>& direct,
                            const std::vector<EltTermsV<V>>& elt_terms,
                            typename V::ivec indices) noexcept {
  typename V::reg combined = V::zero();
  for (std::size_t e = 0; e < direct.size(); ++e) {
    const typename V::reg loss = V::gather_guarded(direct[e].data, indices, direct[e].universe);
    combined = V::add(combined, apply_financial_v<V>(loss, elt_terms[e]));
  }
  return combined;
}

/// One block of trials [first, last) against one layer, W lanes at a time.
/// Per batch the work is phase-split exactly like the paper's algorithm:
/// (A) ELT lookup + financial terms into a per-row combined-loss buffer —
/// every row/ELT gather is independent, so this phase streams at maximum
/// memory-level parallelism; (B) occurrence + aggregate layer terms, the
/// path-dependent recurrence, swept over the buffer in lockstep across
/// lanes. Every lane's arithmetic matches the scalar trial kernel
/// operation for operation.
template <typename V>
void run_block(const Layer& layer, const std::vector<DirectElt>& direct,
               const yet::YearEventTable& yet_table, std::span<double> losses,
               std::uint64_t first, std::uint64_t last) {
  constexpr std::size_t kW = V::kLanes;
  using reg = typename V::reg;

  std::vector<EltTermsV<V>> elt_terms;
  elt_terms.reserve(layer.elts.size());
  for (const LayerElt& layer_elt : layer.elts) {
    elt_terms.push_back(EltTermsV<V>::from(layer_elt.terms));
  }
  const LayerTermsV<V> terms = LayerTermsV<V>::from(layer.terms);

  simd::TrialBatch batch(kW);
  std::vector<double> combined_rows;  // [depth x W] lane-major, phase A -> B
  alignas(64) double raw[kW];
  alignas(64) double out[kW];

  for (std::uint64_t trial = first; trial < last; trial += kW) {
    const std::size_t count = static_cast<std::size_t>(std::min<std::uint64_t>(kW, last - trial));
    batch.load(yet_table, trial, count);
    const std::size_t depth = batch.depth();
    combined_rows.resize(depth * kW);

    // Phase A: ELT lookups (gather on direct tables) + financial terms,
    // combined across ELTs, one buffered row per event position. Rows are
    // independent, so the direct path runs two in flight: each row's
    // 15-odd `combined +=` chain is serial (its order is part of the
    // bit-identity contract), but pairing rows overlaps one chain's
    // gather+add latency with the other's.
    if (!direct.empty()) {
      std::size_t position = 0;
      for (; position + 1 < depth; position += 2) {
        const typename V::ivec indices0 = V::load_index(batch.row(position));
        const typename V::ivec indices1 = V::load_index(batch.row(position + 1));
        const reg combined0 = combine_row<V>(direct, elt_terms, indices0);
        const reg combined1 = combine_row<V>(direct, elt_terms, indices1);
        V::store(combined_rows.data() + position * kW, combined0);
        V::store(combined_rows.data() + (position + 1) * kW, combined1);
      }
      if (position < depth) {
        const typename V::ivec indices = V::load_index(batch.row(position));
        V::store(combined_rows.data() + position * kW, combine_row<V>(direct, elt_terms, indices));
      }
    } else {
      for (std::size_t position = 0; position < depth; ++position) {
        const yet::EventId* row = batch.row(position);
        reg combined = V::zero();
        for (std::size_t e = 0; e < layer.elts.size(); ++e) {
          layer.elts[e].lookup->lookup_many(row, kW, raw);
          combined = V::add(combined, apply_financial_v<V>(V::load(raw), elt_terms[e]));
        }
        V::store(combined_rows.data() + position * kW, combined);
      }
    }

    // Phase B: occurrence terms, then the aggregate recurrence — per-lane
    // TrialAccumulator state (cumulative, previous capped, ceded loss)
    // advanced in lockstep across lanes (each lane is an independent
    // trial, so the within-trial order is untouched).
    reg cumulative = V::zero();
    reg previous_capped = V::zero();
    reg trial_loss = V::zero();
    for (std::size_t position = 0; position < depth; ++position) {
      const reg combined = V::load(combined_rows.data() + position * kW);
      const reg occurrence = excess_v<V>(combined, terms.occ_retention, terms.occ_limit);
      cumulative = V::add(cumulative, occurrence);
      const reg capped = excess_v<V>(cumulative, terms.agg_retention, terms.agg_limit);
      trial_loss = V::add(trial_loss, V::sub(capped, previous_capped));
      previous_capped = capped;
    }

    V::store(out, trial_loss);
    for (std::size_t lane = 0; lane < count; ++lane) {
      losses[trial + lane] = out[lane];
    }
  }
}

/// Direct-table bytes a layer's lookups touch. Above this, gathers lose to
/// the cache hierarchy (lookups miss whatever the lane width, and wide
/// hardware gathers issue more uops per miss than scalar loads), so kAuto
/// narrows to SSE2 — which keeps the vectorized financial/layer phases but
/// gathers with plain loads. Measured crossover on Skylake-class parts is
/// between ~5 MB (still wins) and ~24 MB (loses).
constexpr std::size_t kWideLaneFootprintBytes = 6u << 20;

std::size_t max_layer_direct_footprint(const Portfolio& portfolio) noexcept {
  std::size_t max_bytes = 0;
  for (const Layer& layer : portfolio.layers) {
    if (!layer.all_direct_access()) continue;
    std::size_t bytes = 0;
    for (const LayerElt& layer_elt : layer.elts) {
      bytes += layer_elt.lookup->as_direct_access()->universe() * sizeof(double);
    }
    max_bytes = std::max(max_bytes, bytes);
  }
  return max_bytes;
}

template <typename Ext>
YearLossTable run_simd_impl(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                            parallel::ThreadPool& pool) {
  using V = simd::VecD<Ext>;
  std::vector<std::uint32_t> ids;
  for (const Layer& layer : portfolio.layers) ids.push_back(layer.id);
  YearLossTable ylt(std::move(ids), yet_table.num_trials());

  for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
    const Layer& layer = portfolio.layers[layer_index];
    const std::vector<DirectElt> direct =
        layer.all_direct_access() ? direct_view(layer) : std::vector<DirectElt>{};
    auto losses = ylt.layer_losses(layer_index);
    parallel::parallel_for(pool, 0, yet_table.num_trials(),
                           [&](std::uint64_t first, std::uint64_t last) {
                             run_block<V>(layer, direct, yet_table, losses, first, last);
                           });
  }
  return ylt;
}

}  // namespace

std::string_view to_string(SimdExtension extension) noexcept {
  switch (extension) {
    case SimdExtension::kAuto: return "auto";
    case SimdExtension::kScalar: return "scalar";
    case SimdExtension::kSse2: return "sse2";
    case SimdExtension::kAvx2: return "avx2";
    case SimdExtension::kAvx512: return "avx512";
    case SimdExtension::kNeon: return "neon";
  }
  return "unknown";
}

std::optional<SimdExtension> simd_extension_from_string(std::string_view name) noexcept {
  for (const SimdExtension extension :
       {SimdExtension::kAuto, SimdExtension::kScalar, SimdExtension::kSse2, SimdExtension::kAvx2,
        SimdExtension::kAvx512, SimdExtension::kNeon}) {
    if (name == to_string(extension)) return extension;
  }
  return std::nullopt;
}

bool simd_extension_available(SimdExtension extension) noexcept {
  switch (extension) {
    case SimdExtension::kAuto:
    case SimdExtension::kScalar: return true;
    case SimdExtension::kSse2: return ARE_SIMD_HAVE_SSE2 != 0;
    case SimdExtension::kAvx2: return ARE_SIMD_HAVE_AVX2 != 0;
    case SimdExtension::kAvx512: return ARE_SIMD_HAVE_AVX512 != 0;
    case SimdExtension::kNeon: return ARE_SIMD_HAVE_NEON != 0;
  }
  return false;
}

SimdExtension best_simd_extension() noexcept {
  if constexpr (std::is_same_v<simd::best_ext, simd::avx512_ext>) {
    return SimdExtension::kAvx512;
  } else if constexpr (std::is_same_v<simd::best_ext, simd::avx2_ext>) {
    return SimdExtension::kAvx2;
  } else if constexpr (std::is_same_v<simd::best_ext, simd::sse2_ext>) {
    return SimdExtension::kSse2;
  } else if constexpr (std::is_same_v<simd::best_ext, simd::neon_ext>) {
    return SimdExtension::kNeon;
  } else {
    return SimdExtension::kScalar;
  }
}

std::size_t simd_lane_width(SimdExtension extension) {
  switch (extension) {
    case SimdExtension::kAuto: return simd::kBestLanes;
    case SimdExtension::kScalar: return simd::VecD<simd::scalar_ext>::kLanes;
#if ARE_SIMD_HAVE_SSE2
    case SimdExtension::kSse2: return simd::VecD<simd::sse2_ext>::kLanes;
#endif
#if ARE_SIMD_HAVE_AVX2
    case SimdExtension::kAvx2: return simd::VecD<simd::avx2_ext>::kLanes;
#endif
#if ARE_SIMD_HAVE_AVX512
    case SimdExtension::kAvx512: return simd::VecD<simd::avx512_ext>::kLanes;
#endif
#if ARE_SIMD_HAVE_NEON
    case SimdExtension::kNeon: return simd::VecD<simd::neon_ext>::kLanes;
#endif
    default: break;
  }
  throw std::invalid_argument("simd extension '" + std::string(to_string(extension)) +
                              "' is not compiled into this build");
}

SimdExtension resolve_simd_extension(const Portfolio& portfolio, const SimdOptions& options) {
  SimdExtension extension = options.extension;
  if (extension == SimdExtension::kAuto) {
    extension = best_simd_extension();
    // Memory-bound portfolios: narrow to SSE2 when wide gathers stop
    // paying (see kWideLaneFootprintBytes). Never changes results — every
    // extension is bit-identical — only the lane type.
    if ((extension == SimdExtension::kAvx2 || extension == SimdExtension::kAvx512) &&
        max_layer_direct_footprint(portfolio) > kWideLaneFootprintBytes) {
      extension = SimdExtension::kSse2;
    }
  }
  if (!simd_extension_available(extension)) {
    throw std::invalid_argument("simd extension '" + std::string(to_string(extension)) +
                                "' is not compiled into this build");
  }
  return extension;
}

YearLossTable run_simd(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       parallel::ThreadPool& pool, const SimdOptions& options) {
  portfolio.validate();
  const SimdExtension extension = resolve_simd_extension(portfolio, options);

  switch (extension) {
    case SimdExtension::kScalar:
      return run_simd_impl<simd::scalar_ext>(portfolio, yet_table, pool);
#if ARE_SIMD_HAVE_SSE2
    case SimdExtension::kSse2: return run_simd_impl<simd::sse2_ext>(portfolio, yet_table, pool);
#endif
#if ARE_SIMD_HAVE_AVX2
    case SimdExtension::kAvx2: return run_simd_impl<simd::avx2_ext>(portfolio, yet_table, pool);
#endif
#if ARE_SIMD_HAVE_AVX512
    case SimdExtension::kAvx512:
      return run_simd_impl<simd::avx512_ext>(portfolio, yet_table, pool);
#endif
#if ARE_SIMD_HAVE_NEON
    case SimdExtension::kNeon: return run_simd_impl<simd::neon_ext>(portfolio, yet_table, pool);
#endif
    default:
      throw std::invalid_argument("simd extension '" + std::string(to_string(extension)) +
                                  "' is not compiled into this build");
  }
}

YearLossTable run_simd(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       const SimdOptions& options) {
  parallel::ThreadPool pool(options.num_threads);
  return run_simd(portfolio, yet_table, pool, options);
}

}  // namespace are::core
