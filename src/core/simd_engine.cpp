#include "core/simd_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "core/trial_kernel.hpp"
#include "elt/direct_access_table.hpp"
#include "simd/dispatch.hpp"
#include "simd/vec.hpp"

namespace are::core {

namespace {

/// core::SimdExtension (with kAuto) ↔ simd::Extension (dispatchable only).
simd::Extension to_dispatch(SimdExtension extension) noexcept {
  switch (extension) {
    case SimdExtension::kSse2: return simd::Extension::kSse2;
    case SimdExtension::kAvx2: return simd::Extension::kAvx2;
    case SimdExtension::kAvx512: return simd::Extension::kAvx512;
    case SimdExtension::kNeon: return simd::Extension::kNeon;
    default: return simd::Extension::kScalar;
  }
}

SimdExtension from_dispatch(simd::Extension extension) noexcept {
  switch (extension) {
    case simd::Extension::kSse2: return SimdExtension::kSse2;
    case simd::Extension::kAvx2: return SimdExtension::kAvx2;
    case simd::Extension::kAvx512: return SimdExtension::kAvx512;
    case simd::Extension::kNeon: return SimdExtension::kNeon;
    case simd::Extension::kScalar: break;
  }
  return SimdExtension::kScalar;
}

/// Direct-table bytes a layer's lookups touch. Above this, gathers lose to
/// the cache hierarchy (lookups miss whatever the lane width, and wide
/// hardware gathers issue more uops per miss than scalar loads), so kAuto
/// narrows to SSE2 — which keeps the vectorized financial/layer phases but
/// gathers with plain loads. Measured crossover on Skylake-class parts is
/// between ~5 MB (still wins) and ~24 MB (loses).
constexpr std::size_t kWideLaneFootprintBytes = 6u << 20;

std::size_t max_layer_direct_footprint(const Portfolio& portfolio) noexcept {
  std::size_t max_bytes = 0;
  for (const Layer& layer : portfolio.layers) {
    if (!layer.all_direct_access()) continue;
    std::size_t bytes = 0;
    for (const LayerElt& layer_elt : layer.elts) {
      bytes += layer_elt.lookup->as_direct_access()->universe() * sizeof(double);
    }
    max_bytes = std::max(max_bytes, bytes);
  }
  return max_bytes;
}

}  // namespace

std::string_view to_string(SimdExtension extension) noexcept {
  switch (extension) {
    case SimdExtension::kAuto: return "auto";
    case SimdExtension::kScalar: return "scalar";
    case SimdExtension::kSse2: return "sse2";
    case SimdExtension::kAvx2: return "avx2";
    case SimdExtension::kAvx512: return "avx512";
    case SimdExtension::kNeon: return "neon";
  }
  return "unknown";
}

std::optional<SimdExtension> simd_extension_from_string(std::string_view name) noexcept {
  for (const SimdExtension extension :
       {SimdExtension::kAuto, SimdExtension::kScalar, SimdExtension::kSse2, SimdExtension::kAvx2,
        SimdExtension::kAvx512, SimdExtension::kNeon}) {
    if (name == to_string(extension)) return extension;
  }
  return std::nullopt;
}

bool simd_extension_available(SimdExtension extension) noexcept {
  switch (extension) {
    case SimdExtension::kAuto:
    case SimdExtension::kScalar: return true;
    default:
      return simd::mask_has(simd::runnable_extensions(), to_dispatch(extension));
  }
}

SimdExtension best_simd_extension() noexcept {
  return from_dispatch(simd::best_extension());
}

std::size_t simd_lane_width(SimdExtension extension) {
  if (extension == SimdExtension::kAuto) return simd::lanes_of(simd::best_extension());
  if (!simd_extension_available(extension)) {
    throw std::invalid_argument("simd extension '" + std::string(to_string(extension)) +
                                "' is not compiled into this binary or not supported by this "
                                "host's cpu");
  }
  return simd::lanes_of(to_dispatch(extension));
}

SimdExtension resolve_simd_extension(const Portfolio& portfolio, const SimdOptions& options) {
  return resolve_simd_extension_ex(portfolio, options).extension;
}

SimdResolution resolve_simd_extension_ex(const Portfolio& portfolio,
                                         const SimdOptions& options) {
  SimdResolution resolved;
  resolved.extension = options.extension;
  if (resolved.extension == SimdExtension::kAuto) {
    resolved.extension = best_simd_extension();
    resolved.note = simd::best_extension_reason();
    // Memory-bound portfolios: narrow to SSE2 when wide gathers stop
    // paying (see kWideLaneFootprintBytes). Never changes results — every
    // extension is bit-identical — only the lane type. An explicit
    // ARE_SIMD_EXT override wins over the heuristic: an operator pinning
    // the extension is usually measuring exactly this trade-off.
    if (!simd::env_override() &&
        (resolved.extension == SimdExtension::kAvx2 ||
         resolved.extension == SimdExtension::kAvx512) &&
        max_layer_direct_footprint(portfolio) > kWideLaneFootprintBytes &&
        simd_extension_available(SimdExtension::kSse2)) {
      resolved.note =
          "narrowed " + std::string(to_string(resolved.extension)) +
          " -> sse2: direct-table footprint " +
          std::to_string(max_layer_direct_footprint(portfolio) >> 20) + " MB > " +
          std::to_string(kWideLaneFootprintBytes >> 20) +
          " MB (wide gathers stop paying once every lookup misses)";
      resolved.extension = SimdExtension::kSse2;
    }
  } else {
    resolved.note = "requested explicitly";
  }
  if (!simd_extension_available(resolved.extension)) {
    throw std::invalid_argument("simd extension '" +
                                std::string(to_string(resolved.extension)) +
                                "' is not compiled into this binary or not supported by this "
                                "host's cpu");
  }
  return resolved;
}

YearLossTable run_simd(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       parallel::ThreadPool& pool, const SimdOptions& options) {
  portfolio.validate();
  YearLossTable ylt = make_year_loss_table(portfolio, yet_table);

  TrialKernelConfig config;
  config.extension = resolve_simd_extension(portfolio, options);
  KernelLaunch launch;
  launch.schedule = KernelLaunch::Schedule::kPool;
  launch.pool = &pool;
  run_trial_kernel(portfolio, yet_table, config, launch, &ylt, nullptr);
  return ylt;
}

YearLossTable run_simd(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       const SimdOptions& options) {
  parallel::ThreadPool pool(options.num_threads);
  return run_simd(portfolio, yet_table, pool, options);
}

}  // namespace are::core
