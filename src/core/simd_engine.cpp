#include "core/simd_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "core/trial_kernel.hpp"
#include "elt/direct_access_table.hpp"
#include "simd/vec.hpp"

namespace are::core {

namespace {

/// Direct-table bytes a layer's lookups touch. Above this, gathers lose to
/// the cache hierarchy (lookups miss whatever the lane width, and wide
/// hardware gathers issue more uops per miss than scalar loads), so kAuto
/// narrows to SSE2 — which keeps the vectorized financial/layer phases but
/// gathers with plain loads. Measured crossover on Skylake-class parts is
/// between ~5 MB (still wins) and ~24 MB (loses).
constexpr std::size_t kWideLaneFootprintBytes = 6u << 20;

std::size_t max_layer_direct_footprint(const Portfolio& portfolio) noexcept {
  std::size_t max_bytes = 0;
  for (const Layer& layer : portfolio.layers) {
    if (!layer.all_direct_access()) continue;
    std::size_t bytes = 0;
    for (const LayerElt& layer_elt : layer.elts) {
      bytes += layer_elt.lookup->as_direct_access()->universe() * sizeof(double);
    }
    max_bytes = std::max(max_bytes, bytes);
  }
  return max_bytes;
}

}  // namespace

std::string_view to_string(SimdExtension extension) noexcept {
  switch (extension) {
    case SimdExtension::kAuto: return "auto";
    case SimdExtension::kScalar: return "scalar";
    case SimdExtension::kSse2: return "sse2";
    case SimdExtension::kAvx2: return "avx2";
    case SimdExtension::kAvx512: return "avx512";
    case SimdExtension::kNeon: return "neon";
  }
  return "unknown";
}

std::optional<SimdExtension> simd_extension_from_string(std::string_view name) noexcept {
  for (const SimdExtension extension :
       {SimdExtension::kAuto, SimdExtension::kScalar, SimdExtension::kSse2, SimdExtension::kAvx2,
        SimdExtension::kAvx512, SimdExtension::kNeon}) {
    if (name == to_string(extension)) return extension;
  }
  return std::nullopt;
}

bool simd_extension_available(SimdExtension extension) noexcept {
  switch (extension) {
    case SimdExtension::kAuto:
    case SimdExtension::kScalar: return true;
    case SimdExtension::kSse2: return ARE_SIMD_HAVE_SSE2 != 0;
    case SimdExtension::kAvx2: return ARE_SIMD_HAVE_AVX2 != 0;
    case SimdExtension::kAvx512: return ARE_SIMD_HAVE_AVX512 != 0;
    case SimdExtension::kNeon: return ARE_SIMD_HAVE_NEON != 0;
  }
  return false;
}

SimdExtension best_simd_extension() noexcept {
  if constexpr (std::is_same_v<simd::best_ext, simd::avx512_ext>) {
    return SimdExtension::kAvx512;
  } else if constexpr (std::is_same_v<simd::best_ext, simd::avx2_ext>) {
    return SimdExtension::kAvx2;
  } else if constexpr (std::is_same_v<simd::best_ext, simd::sse2_ext>) {
    return SimdExtension::kSse2;
  } else if constexpr (std::is_same_v<simd::best_ext, simd::neon_ext>) {
    return SimdExtension::kNeon;
  } else {
    return SimdExtension::kScalar;
  }
}

std::size_t simd_lane_width(SimdExtension extension) {
  switch (extension) {
    case SimdExtension::kAuto: return simd::kBestLanes;
    case SimdExtension::kScalar: return simd::VecD<simd::scalar_ext>::kLanes;
#if ARE_SIMD_HAVE_SSE2
    case SimdExtension::kSse2: return simd::VecD<simd::sse2_ext>::kLanes;
#endif
#if ARE_SIMD_HAVE_AVX2
    case SimdExtension::kAvx2: return simd::VecD<simd::avx2_ext>::kLanes;
#endif
#if ARE_SIMD_HAVE_AVX512
    case SimdExtension::kAvx512: return simd::VecD<simd::avx512_ext>::kLanes;
#endif
#if ARE_SIMD_HAVE_NEON
    case SimdExtension::kNeon: return simd::VecD<simd::neon_ext>::kLanes;
#endif
    default: break;
  }
  throw std::invalid_argument("simd extension '" + std::string(to_string(extension)) +
                              "' is not compiled into this build");
}

SimdExtension resolve_simd_extension(const Portfolio& portfolio, const SimdOptions& options) {
  SimdExtension extension = options.extension;
  if (extension == SimdExtension::kAuto) {
    extension = best_simd_extension();
    // Memory-bound portfolios: narrow to SSE2 when wide gathers stop
    // paying (see kWideLaneFootprintBytes). Never changes results — every
    // extension is bit-identical — only the lane type.
    if ((extension == SimdExtension::kAvx2 || extension == SimdExtension::kAvx512) &&
        max_layer_direct_footprint(portfolio) > kWideLaneFootprintBytes) {
      extension = SimdExtension::kSse2;
    }
  }
  if (!simd_extension_available(extension)) {
    throw std::invalid_argument("simd extension '" + std::string(to_string(extension)) +
                                "' is not compiled into this build");
  }
  return extension;
}

YearLossTable run_simd(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       parallel::ThreadPool& pool, const SimdOptions& options) {
  portfolio.validate();
  YearLossTable ylt = make_year_loss_table(portfolio, yet_table);

  TrialKernelConfig config;
  config.extension = resolve_simd_extension(portfolio, options);
  KernelLaunch launch;
  launch.schedule = KernelLaunch::Schedule::kPool;
  launch.pool = &pool;
  run_trial_kernel(portfolio, yet_table, config, launch, &ylt, nullptr);
  return ylt;
}

YearLossTable run_simd(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       const SimdOptions& options) {
  parallel::ThreadPool pool(options.num_threads);
  return run_simd(portfolio, yet_table, pool, options);
}

}  // namespace are::core
