#pragma once

// Structured error taxonomy — the failure-side counterpart of the engine's
// bit-identity contract. Every failure that can cross the resident-service
// boundary (src/service/) is classified here, so clients decide *what to do*
// (retry, shrink the request, give up) from a stable code instead of parsing
// exception text. Inside the engine, failures still travel as exceptions —
// StatusError carries the code — and the service boundary converts them to
// Status values; no exception escapes AnalysisService::quote().

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace are::core {

/// Stable failure classification. Codes are ordered roughly by "whose fault"
/// — caller, time, resources, storage, service lifecycle, then bugs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< malformed request; retrying the same request cannot help
  kDeadlineExceeded,   ///< the request's deadline expired; cancelled between trial blocks
  kCancelled,          ///< explicitly cancelled via CancelToken
  kResourceExhausted,  ///< allocation failure or admission capacity (queue/memory/cost)
  kSpillFailure,       ///< out-of-core spill write failed (ENOSPC, injected fault)
  kDataCorruption,     ///< checksum/magic mismatch in a binary stream or spill shard
  kIoError,            ///< transient I/O failure (read/write/open) other than corruption
  kUnavailable,        ///< service shutting down or socket-level failure
  kInternal,           ///< unclassified engine failure — a bug until proven otherwise
};

/// Canonical wire name ("ok", "deadline-exceeded", ...) — what the service
/// JSON and `are_cli quote` retry logic match on.
std::string_view to_string(StatusCode code) noexcept;

/// Whether a client may reasonably retry the identical request. Transient
/// conditions (deadline, capacity, spill pressure, I/O, shutdown of one
/// instance) are retryable; caller mistakes, corruption, and bugs are not.
bool retryable(StatusCode code) noexcept;

/// A code plus a human sentence. Default-constructed = ok.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok_status() { return {}; }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }
  bool retryable() const noexcept { return core::retryable(code_); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Exception that carries a taxonomy code. Subsystems whose failures must
/// cross the service boundary throw this (spill failures, corrupt shards,
/// cancellation); it derives from std::runtime_error so pre-taxonomy catch
/// sites and tests keep working unchanged.
class StatusError : public std::runtime_error {
 public:
  StatusError(StatusCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  StatusCode code() const noexcept { return code_; }

 private:
  StatusCode code_;
};

/// Maps the in-flight exception to a Status — the service-boundary
/// converter. Call only from inside a catch block. StatusError keeps its
/// code; bad_alloc becomes kResourceExhausted, invalid_argument becomes
/// kInvalidArgument, anything else kInternal.
Status status_from_current_exception();

}  // namespace are::core
