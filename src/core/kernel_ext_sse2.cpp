// SSE2 kernel translation unit. Compiled with -msse2 and WITHOUT
// -march=native (see the per-extension stanza in CMakeLists.txt): the only
// instructions this TU may emit are ones every x86-64 host executes, so the
// runtime dispatcher can always fall back here. No gathered probe kernels —
// SSE2 has no hardware gather; hash probing stays on the scalar rings.

#if !defined(__SSE2__) && !defined(__x86_64__) && !defined(_M_X64)
#error "kernel_ext_sse2.cpp must target x86-64 / SSE2 (check CMakeLists.txt flags)"
#endif

#include "core/kernel_ext.hpp"
#include "core/trial_kernel_body.hpp"

namespace are::core::detail {

std::unique_ptr<TrialBlockKernel::Impl> make_kernel_impl_sse2(
    const Portfolio& portfolio, const yet::YearEventTable& yet_table,
    const TrialKernelConfig& config, YearLossTable* ylt, YltSink* sink) {
  return std::make_unique<KernelImpl<simd::sse2_ext>>(portfolio, yet_table, config, ylt, sink);
}

}  // namespace are::core::detail
