#include "core/engine.hpp"

#include <stdexcept>
#include <vector>

#include "core/trial_kernel.hpp"

// Every engine in this file is a *driver* over the shared trial-block
// kernel (core/trial_kernel.hpp): it only chooses block partitioning,
// scheduling, and lane width. The loop nest itself — ELT lookups, financial
// and occurrence terms, the aggregate recurrence — lives in the kernel,
// exactly once, which is what keeps every engine's YLT bit-identical to the
// sequential reference.

namespace are::core {

YearLossTable run_sequential(const Portfolio& portfolio, const yet::YearEventTable& yet_table) {
  YearLossTable ylt = make_year_loss_table(portfolio, yet_table);
  run_trial_kernel(portfolio, yet_table, {}, {}, &ylt, nullptr);
  return ylt;
}

void run_sequential_to_sink(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                            YltSink& sink) {
  run_trial_kernel(portfolio, yet_table, {}, {}, nullptr, &sink);
}

YearLossTable run_parallel(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                           parallel::ThreadPool& pool, const ParallelOptions& options) {
  YearLossTable ylt = make_year_loss_table(portfolio, yet_table);
  KernelLaunch launch;
  launch.schedule = KernelLaunch::Schedule::kPool;
  launch.pool = &pool;
  launch.partition = options.partition;
  launch.chunk = options.chunk;
  run_trial_kernel(portfolio, yet_table, {}, launch, &ylt, nullptr);
  return ylt;
}

YearLossTable run_parallel(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                           const ParallelOptions& options) {
  parallel::ThreadPool pool(options.num_threads);
  return run_parallel(portfolio, yet_table, pool, options);
}

YearLossTable run_chunked(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                          const ChunkedOptions& options) {
  if (options.chunk_size == 0) throw std::invalid_argument("chunk size must be > 0");
  YearLossTable ylt = make_year_loss_table(portfolio, yet_table);
  TrialKernelConfig config;
  config.event_chunk = options.chunk_size;
  KernelLaunch launch;
  launch.schedule = KernelLaunch::Schedule::kPool;
  launch.num_threads = options.num_threads;
  run_trial_kernel(portfolio, yet_table, config, launch, &ylt, nullptr);
  return ylt;
}

InstrumentedResult run_instrumented(const Portfolio& portfolio,
                                    const yet::YearEventTable& yet_table) {
  InstrumentedResult result{make_year_loss_table(portfolio, yet_table), {}, {}};
  TrialKernelConfig config;
  config.instrument = true;
  run_trial_kernel(portfolio, yet_table, config, {}, &result.ylt, nullptr, &result.phases,
                   &result.accesses);
  return result;
}

AccessCounts predict_access_counts(const Portfolio& portfolio,
                                   const yet::YearEventTable& yet_table) noexcept {
  AccessCounts counts;
  const std::uint64_t total_events = yet_table.total_events();
  for (const Layer& layer : portfolio.layers) {
    counts.events_fetched += total_events;
    counts.elt_lookups += layer.elts.size() * total_events;
    counts.financial_applications += layer.elts.size() * total_events;
    counts.layer_term_applications += 2 * total_events;
  }
  return counts;
}

}  // namespace are::core
