#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "core/direct_elt_view.hpp"
#include "financial/trial_accumulator.hpp"
#include "parallel/task_scratch.hpp"

namespace are::core {

namespace {

using Clock = std::chrono::steady_clock;

using detail::DirectElt;
using detail::direct_view;

/// One trial against one layer, virtual-dispatch path. Every engine variant
/// reduces to this arithmetic in this order, which is what makes their YLTs
/// bit-identical.
double run_trial_generic(const Layer& layer, std::span<const yet::EventId> events) noexcept {
  financial::TrialAccumulator accumulator(layer.terms);
  for (const yet::EventId event : events) {
    double combined = 0.0;
    for (const LayerElt& layer_elt : layer.elts) {
      combined += layer_elt.terms.apply(layer_elt.lookup->lookup(event));
    }
    accumulator.add_occurrence(layer.terms.apply_occurrence(combined));
  }
  return accumulator.trial_loss();
}

double run_trial_direct(const std::vector<DirectElt>& elts, const financial::LayerTerms& terms,
                        std::span<const yet::EventId> events) noexcept {
  financial::TrialAccumulator accumulator(terms);
  for (const yet::EventId event : events) {
    double combined = 0.0;
    for (const DirectElt& direct : elts) {
      const double loss = event < direct.universe ? direct.data[event] : 0.0;
      combined += direct.terms.apply(loss);
    }
    accumulator.add_occurrence(terms.apply_occurrence(combined));
  }
  return accumulator.trial_loss();
}

template <typename TrialFn>
void for_each_trial(const yet::YearEventTable& yet_table, std::uint64_t first, std::uint64_t last,
                    const TrialFn& trial_fn) {
  for (std::uint64_t trial = first; trial < last; ++trial) {
    trial_fn(trial, yet_table.trial_events(trial));
  }
}

}  // namespace

YearLossTable run_sequential(const Portfolio& portfolio, const yet::YearEventTable& yet_table) {
  portfolio.validate();
  std::vector<std::uint32_t> ids;
  for (const Layer& layer : portfolio.layers) ids.push_back(layer.id);
  YearLossTable ylt(std::move(ids), yet_table.num_trials());

  for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
    const Layer& layer = portfolio.layers[layer_index];
    auto losses = ylt.layer_losses(layer_index);
    if (layer.all_direct_access()) {
      const std::vector<DirectElt> elts = direct_view(layer);
      for_each_trial(yet_table, 0, yet_table.num_trials(),
                     [&](std::uint64_t trial, std::span<const yet::EventId> events) {
                       losses[trial] = run_trial_direct(elts, layer.terms, events);
                     });
    } else {
      for_each_trial(yet_table, 0, yet_table.num_trials(),
                     [&](std::uint64_t trial, std::span<const yet::EventId> events) {
                       losses[trial] = run_trial_generic(layer, events);
                     });
    }
  }
  return ylt;
}

void run_sequential_to_sink(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                            YltSink& sink) {
  portfolio.validate();
  const std::uint64_t num_trials = yet_table.num_trials();
  const std::uint64_t block =
      sink.block_trials() != 0 ? sink.block_trials() : std::uint64_t{4096};

  // Direct views hoisted out of the block loop (tiny blocks — shard size 1
  // is supported — would otherwise rebuild them per block per layer).
  std::vector<std::vector<DirectElt>> direct_views(portfolio.layers.size());
  for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
    if (portfolio.layers[layer_index].all_direct_access()) {
      direct_views[layer_index] = direct_view(portfolio.layers[layer_index]);
    }
  }

  std::vector<double> row;  // one layer's losses for the current block
  for (std::uint64_t first = 0; first < num_trials; first += block) {
    const std::uint64_t last = std::min(first + block, num_trials);
    row.resize(static_cast<std::size_t>(last - first));
    for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
      const Layer& layer = portfolio.layers[layer_index];
      const std::vector<DirectElt>& elts = direct_views[layer_index];
      if (!elts.empty()) {
        for_each_trial(yet_table, first, last,
                       [&](std::uint64_t trial, std::span<const yet::EventId> events) {
                         row[trial - first] = run_trial_direct(elts, layer.terms, events);
                       });
      } else {
        for_each_trial(yet_table, first, last,
                       [&](std::uint64_t trial, std::span<const yet::EventId> events) {
                         row[trial - first] = run_trial_generic(layer, events);
                       });
      }
      sink.emit(layer_index, first, row);
    }
  }
}

YearLossTable run_parallel(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                           parallel::ThreadPool& pool, const ParallelOptions& options) {
  portfolio.validate();
  std::vector<std::uint32_t> ids;
  for (const Layer& layer : portfolio.layers) ids.push_back(layer.id);
  YearLossTable ylt(std::move(ids), yet_table.num_trials());

  const parallel::ForOptions for_options{options.partition, options.chunk};

  for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
    const Layer& layer = portfolio.layers[layer_index];
    auto losses = ylt.layer_losses(layer_index);
    if (layer.all_direct_access()) {
      const std::vector<DirectElt> elts = direct_view(layer);
      parallel::parallel_for(
          pool, 0, yet_table.num_trials(),
          [&](std::uint64_t first, std::uint64_t last) {
            for_each_trial(yet_table, first, last,
                           [&](std::uint64_t trial, std::span<const yet::EventId> events) {
                             losses[trial] = run_trial_direct(elts, layer.terms, events);
                           });
          },
          for_options);
    } else {
      parallel::parallel_for(
          pool, 0, yet_table.num_trials(),
          [&](std::uint64_t first, std::uint64_t last) {
            for_each_trial(yet_table, first, last,
                           [&](std::uint64_t trial, std::span<const yet::EventId> events) {
                             losses[trial] = run_trial_generic(layer, events);
                           });
          },
          for_options);
    }
  }
  return ylt;
}

YearLossTable run_parallel(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                           const ParallelOptions& options) {
  parallel::ThreadPool pool(options.num_threads);
  return run_parallel(portfolio, yet_table, pool, options);
}

namespace {

/// Chunked processing of one trial: the paper's optimised kernel shape.
/// Scratch buffers play the role of per-SM shared memory; the aggregate
/// recurrence is carried across chunks by the accumulator.
class ChunkedTrialRunner {
 public:
  ChunkedTrialRunner(const Layer& layer, std::size_t chunk_size)
      : layer_(layer),
        chunk_size_(chunk_size),
        event_buffer_(chunk_size),
        combined_buffer_(chunk_size) {
    if (layer.all_direct_access()) direct_ = direct_view(layer);
  }

  double run(std::span<const yet::EventId> events) noexcept {
    financial::TrialAccumulator accumulator(layer_.terms);
    for (std::size_t base = 0; base < events.size(); base += chunk_size_) {
      const std::size_t count = std::min(chunk_size_, events.size() - base);

      // Phase 1: stage the chunk's event ids into the scratch buffer
      // (models the coalesced global->shared copy).
      for (std::size_t i = 0; i < count; ++i) event_buffer_[i] = events[base + i];

      // Phase 2: ELT lookup + financial terms, combined across ELTs.
      for (std::size_t i = 0; i < count; ++i) combined_buffer_[i] = 0.0;
      if (!direct_.empty()) {
        for (std::size_t i = 0; i < count; ++i) {
          const yet::EventId event = event_buffer_[i];
          double combined = 0.0;
          for (const DirectElt& direct : direct_) {
            const double loss = event < direct.universe ? direct.data[event] : 0.0;
            combined += direct.terms.apply(loss);
          }
          combined_buffer_[i] = combined;
        }
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          const yet::EventId event = event_buffer_[i];
          double combined = 0.0;
          for (const LayerElt& layer_elt : layer_.elts) {
            combined += layer_elt.terms.apply(layer_elt.lookup->lookup(event));
          }
          combined_buffer_[i] = combined;
        }
      }

      // Phase 3: occurrence terms on the chunk.
      for (std::size_t i = 0; i < count; ++i) {
        combined_buffer_[i] = layer_.terms.apply_occurrence(combined_buffer_[i]);
      }

      // Phase 4: aggregate terms — path-dependent, carried across chunks.
      for (std::size_t i = 0; i < count; ++i) {
        accumulator.add_occurrence(combined_buffer_[i]);
      }
    }
    return accumulator.trial_loss();
  }

 private:
  const Layer& layer_;
  std::size_t chunk_size_;
  std::vector<yet::EventId> event_buffer_;
  std::vector<double> combined_buffer_;
  std::vector<DirectElt> direct_;
};

}  // namespace

YearLossTable run_chunked(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                          const ChunkedOptions& options) {
  portfolio.validate();
  if (options.chunk_size == 0) throw std::invalid_argument("chunk size must be > 0");
  std::vector<std::uint32_t> ids;
  for (const Layer& layer : portfolio.layers) ids.push_back(layer.id);
  YearLossTable ylt(std::move(ids), yet_table.num_trials());

  parallel::ThreadPool pool(options.num_threads);

  for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
    const Layer& layer = portfolio.layers[layer_index];
    auto losses = ylt.layer_losses(layer_index);
    // One runner per worker, reused across every task that worker claims —
    // the scratch buffers (and the direct view) are built once, not per
    // submitted trial range.
    parallel::TaskScratch<ChunkedTrialRunner> runners(pool);
    parallel::parallel_for(pool, 0, yet_table.num_trials(),
                           [&](std::uint64_t first, std::uint64_t last) {
                             ChunkedTrialRunner& runner = runners.local(
                                 [&] { return ChunkedTrialRunner(layer, options.chunk_size); });
                             for (std::uint64_t trial = first; trial < last; ++trial) {
                               losses[trial] = runner.run(yet_table.trial_events(trial));
                             }
                           });
  }
  return ylt;
}

InstrumentedResult run_instrumented(const Portfolio& portfolio,
                                    const yet::YearEventTable& yet_table) {
  portfolio.validate();
  std::vector<std::uint32_t> ids;
  for (const Layer& layer : portfolio.layers) ids.push_back(layer.id);
  InstrumentedResult result{YearLossTable(std::move(ids), yet_table.num_trials()), {}, {}};

  // Phase-at-a-time structure over per-trial buffers, matching the paper's
  // line-by-line algorithm so the attribution corresponds to Fig 6b.
  std::vector<yet::EventId> event_buffer;
  std::vector<double> raw_losses;       // [elt][event] for the current trial
  std::vector<double> combined_buffer;  // per-event loss net of financial terms

  for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
    const Layer& layer = portfolio.layers[layer_index];
    auto losses = result.ylt.layer_losses(layer_index);
    const std::size_t num_elts = layer.elts.size();

    for (std::uint64_t trial = 0; trial < yet_table.num_trials(); ++trial) {
      const auto events = yet_table.trial_events(trial);
      const std::size_t n = events.size();

      // Phase: fetch events from the YET (lines 4 / "for all d in Et").
      auto t0 = Clock::now();
      event_buffer.assign(events.begin(), events.end());
      result.accesses.events_fetched += n;

      // Phase: ELT lookups in the lookup tables (line 5).
      auto t1 = Clock::now();
      raw_losses.resize(num_elts * n);
      for (std::size_t e = 0; e < num_elts; ++e) {
        const elt::ILossLookup& lookup = *layer.elts[e].lookup;
        double* out = raw_losses.data() + e * n;
        for (std::size_t i = 0; i < n; ++i) out[i] = lookup.lookup(event_buffer[i]);
      }
      result.accesses.elt_lookups += num_elts * n;

      // Phase: financial terms + combination across ELTs (lines 6-9).
      auto t2 = Clock::now();
      combined_buffer.assign(n, 0.0);
      for (std::size_t e = 0; e < num_elts; ++e) {
        const financial::FinancialTerms& terms = layer.elts[e].terms;
        const double* in = raw_losses.data() + e * n;
        for (std::size_t i = 0; i < n; ++i) combined_buffer[i] += terms.apply(in[i]);
      }
      result.accesses.financial_applications += num_elts * n;

      // Phase: layer terms — occurrence then aggregate (lines 10-19).
      auto t3 = Clock::now();
      financial::TrialAccumulator accumulator(layer.terms);
      for (std::size_t i = 0; i < n; ++i) {
        accumulator.add_occurrence(layer.terms.apply_occurrence(combined_buffer[i]));
      }
      losses[trial] = accumulator.trial_loss();
      result.accesses.layer_term_applications += 2 * n;  // occurrence + aggregate
      auto t4 = Clock::now();

      const auto seconds = [](Clock::time_point a, Clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
      };
      result.phases.fetch_seconds += seconds(t0, t1);
      result.phases.lookup_seconds += seconds(t1, t2);
      result.phases.financial_seconds += seconds(t2, t3);
      result.phases.layer_seconds += seconds(t3, t4);
    }
  }
  return result;
}

AccessCounts predict_access_counts(const Portfolio& portfolio,
                                   const yet::YearEventTable& yet_table) noexcept {
  AccessCounts counts;
  const std::uint64_t total_events = yet_table.total_events();
  for (const Layer& layer : portfolio.layers) {
    counts.events_fetched += total_events;
    counts.elt_lookups += layer.elts.size() * total_events;
    counts.financial_applications += layer.elts.size() * total_events;
    counts.layer_term_applications += 2 * total_events;
  }
  return counts;
}

}  // namespace are::core
