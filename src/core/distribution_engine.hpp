#pragma once

#include <vector>

#include "core/layer.hpp"
#include "financial/loss_distribution.hpp"
#include "yet/year_event_table.hpp"

namespace are::core {

/// Options for distribution-mode aggregate analysis — the paper's §IV
/// extension: "if the system is extended to represent losses as a
/// distribution (rather than a simple mean) then the algorithm would likely
/// benefit from use of a numerical library for convolution."
///
/// Each event's loss is modelled as a lognormal around the ELT's mean loss
/// with the given coefficient of variation, discretized onto a uniform
/// grid. Per trial, the event severity distributions pass through the
/// occurrence terms and are convolved into the trial's aggregate-loss
/// distribution, which then passes through the aggregate terms. The
/// per-layer annual loss distribution is the equal-weight mixture over
/// trials.
struct DistributionOptions {
  std::size_t grid_size = 256;
  /// Bin width of the shared loss grid. 0 = auto: sized so the layer's
  /// aggregate limit (or a multiple of the mean trial loss when unlimited)
  /// spans the grid.
  double bin_width = 0.0;
  /// Secondary uncertainty around each event's mean loss.
  double coefficient_of_variation = 0.5;
};

struct DistributionResult {
  /// One annual ceded-loss distribution per layer.
  std::vector<financial::LossDistribution> layer_distributions;
  /// Grid actually used per layer (equals options.bin_width unless auto).
  std::vector<double> bin_widths;
};

/// Runs distribution-mode aggregate analysis. O(trials * events * grid^2):
/// intended for focused books (the extension's accuracy study), not the
/// 1M-trial production path — which is exactly why the paper defers it to
/// a convolution library.
DistributionResult run_distribution_analysis(const Portfolio& portfolio,
                                             const yet::YearEventTable& yet_table,
                                             const DistributionOptions& options = {});

/// Mean-mode cross-check: with coefficient_of_variation == 0 every event
/// distribution is a point mass and the distribution engine must reproduce
/// the scalar engine's expected losses (up to grid quantisation). Exposed
/// as a helper so tests and examples can quantify the grid error.
double expected_loss_of(const financial::LossDistribution& distribution);

}  // namespace are::core
