#pragma once

// The unified trial-block kernel — the one loop nest behind every engine.
//
// The paper's aggregate analysis is a single computation: walk YET trials,
// look up each event's loss in the layer's ELTs, apply financial/occurrence/
// aggregate terms, land the net trial loss in the YLT. This layer implements
// that computation exactly once, over one contiguous *block* of trials for
// all layers, with every cross-cutting feature built in:
//
//   - scalar and simd::VecD term paths (one templated body; the lane type is
//     a runtime choice, resolved once at kernel construction),
//   - an optional CoverageWindow (the windowed engine's semantics),
//   - optional per-phase timers + access counters (the Fig-6b breakdown),
//   - optional event-chunked staging (the chunked engine's Fig-5a knob),
//   - delivery either straight into a YearLossTable or into a YltSink
//     (finished blocks never cross sink.block_trials() boundaries, so a
//     sharded sink receives each block into exactly one shard).
//
// The engines are now *drivers*: each one only chooses block partitioning,
// scheduling (serial / parallel_for / parallel_for_costed / OpenMP), and
// lane width over this kernel — see KernelLaunch and run_trial_kernel().
// Every (engine x threads x lane x sink) combination produces bytes
// identical to the sequential reference, because every combination runs
// this body: per (layer, trial) cell the arithmetic and its order never
// change, only which cells share a register or a thread.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

#include "core/cancel.hpp"
#include "core/coverage_window.hpp"
#include "core/engine.hpp"
#include "core/simd_engine.hpp"
#include "core/ylt_sink.hpp"
#include "parallel/parallel_for.hpp"

namespace are::core {

/// Per-(layer, event-occurrence) *combined* losses: the exact intermediate
/// the kernel produces after the ELT lookups and per-ELT financial terms
/// have been folded across a layer's ELTs, but BEFORE the layer's
/// occurrence terms touch the buffer. This is the delta-execution cache of
/// the resident service (src/service/): the buffer depends on the YET and
/// the layers' ELT sets + FinancialTerms, but not on LayerTerms or on the
/// coverage window (windows only filter inside the aggregate recurrence).
/// A request that differs from a captured run only in layer terms or
/// window can therefore skip the fetch + lookup + financial phases — ~78%
/// of runtime per Fig 6b — and replay the cached values through occurrence
/// terms + aggregation, bit-identical to a full run by construction
/// (capture copies the very doubles the full run computes).
///
/// Layout: layer-major, one double per YET event occurrence
/// (num_layers x total_events). Capture writes disjoint event ranges from
/// concurrent workers; replay is read-only, so one cache can serve many
/// concurrent replays.
class GroundUpLossCache {
 public:
  GroundUpLossCache(std::size_t num_layers, std::uint64_t total_events)
      : num_layers_(num_layers),
        total_events_(total_events),
        values_(num_layers * static_cast<std::size_t>(total_events), 0.0) {}

  std::size_t num_layers() const noexcept { return num_layers_; }
  std::uint64_t total_events() const noexcept { return total_events_; }

  double* layer_values(std::size_t layer_index) noexcept {
    return values_.data() + layer_index * static_cast<std::size_t>(total_events_);
  }
  const double* layer_values(std::size_t layer_index) const noexcept {
    return values_.data() + layer_index * static_cast<std::size_t>(total_events_);
  }

  std::size_t memory_bytes() const noexcept { return values_.size() * sizeof(double); }

  /// What a capture for this shape would cost — the admission-side check
  /// before allocating (layers x events x 8 B).
  static std::size_t estimate_bytes(std::size_t num_layers,
                                    std::uint64_t total_events) noexcept {
    return num_layers * static_cast<std::size_t>(total_events) * sizeof(double);
  }

 private:
  std::size_t num_layers_ = 0;
  std::uint64_t total_events_ = 0;
  std::vector<double> values_;
};

/// What the kernel computes per block — the cross-cutting knobs every
/// driver shares. Scheduling lives in KernelLaunch, not here.
struct TrialKernelConfig {
  /// Resolved lane type for the vectorized term phases. kScalar runs the
  /// same body one element at a time; kAuto resolves to the widest compiled
  /// extension (drivers that want the memory-bound narrowing resolve with
  /// resolve_simd_extension() first and pass the result).
  SimdExtension extension = SimdExtension::kScalar;

  /// Coverage window; absent or full-year = every occurrence counts.
  std::optional<CoverageWindow> window;

  /// Maximum trials per kernel block (the fused engine's tile size). The
  /// staged per-event buffers are proportional to a block's event count, so
  /// blocks bound scratch memory. 0 = derive from the ELT footprint and
  /// events/trial (default_tile_trials).
  std::size_t block_trials = 0;

  /// When non-zero, the combine/occurrence phases stage at most this many
  /// events at a time (the chunked engine's events-per-chunk knob, Fig 5a).
  /// 0 = stage the whole block at once. Never changes the output bytes.
  std::size_t event_chunk = 0;

  /// Run the timer-instrumented block path: the same arithmetic (identical
  /// bytes) with the block's YET slice explicitly staged (timed as the
  /// fetch phase), per-phase timers around the lookup/financial/layer
  /// sweeps, and the paper's access counts accumulated per scratch.
  bool instrument = false;

  /// Capture: every block additionally copies its combined per-event losses
  /// (post-financial-terms, pre-occurrence-terms) into this cache. Workers
  /// write disjoint event ranges of the pre-sized buffer, so concurrent
  /// blocks are safe. The cache shape must match the run
  /// (portfolio layers x YET total events); the kernel constructor throws
  /// otherwise. Never changes the output bytes.
  GroundUpLossCache* ground_up_capture = nullptr;

  /// Replay (delta execution): skip the fetch/lookup/financial phases and
  /// read each layer's combined losses from this cache instead, then run
  /// occurrence terms + aggregation as usual. Produces exactly the bytes a
  /// full run with the same layer terms and window would — and performs
  /// zero ELT lookups (`elt.*.lookups` and `kernel.phase.lookup_ns` stay 0).
  /// Mutually exclusive with ground_up_capture; shape-checked like it.
  const GroundUpLossCache* ground_up_replay = nullptr;

  /// Cooperative cancellation: every run_range checks the token once per
  /// block (the kernel's natural preemption quantum) and, when cancelled,
  /// counts the blocks it will not run into `kernel.cancelled_blocks` and
  /// throws StatusError carrying the token's reason (kDeadlineExceeded /
  /// kCancelled). The resident service arms this with each quote's
  /// deadline; run_trial_kernel additionally chains an internal token so
  /// one worker's failure stops the others at their next block boundary.
  /// Null = never cancelled, zero per-block cost beyond a pointer test.
  const CancelToken* cancel = nullptr;
};

/// Per-worker scratch, reused across every block a worker executes (via
/// parallel::TaskScratch or a per-thread local): buffers grow to the block
/// high-water mark during the first blocks, then the hot path allocates
/// nothing.
struct TrialKernelScratch {
  std::vector<double> raw;       // one ELT's batch lookups for the block
  std::vector<double> combined;  // per-event combined loss, then net of occurrence terms
  std::vector<double> block_losses;         // sink mode: layers x block trials, emitted per block
  std::vector<yet::EventId> staged_events;  // instrumented mode: the block's staged YET slice
  std::vector<float> staged_times;
  PhaseBreakdown phases;    // instrumented mode: this worker's share
  AccessCounts accesses;    // instrumented mode: this worker's share
};

/// The kernel: immutable per-run execution state (per-layer direct views,
/// broadcast terms, output rows) behind a lane-width-erased interface.
/// run_range() may be called concurrently on disjoint trial ranges, each
/// with its own scratch.
class TrialBlockKernel {
 public:
  /// Validates the portfolio and window, resolves the lane type and block
  /// size. Exactly one of `ylt` / `sink` must be non-null: with a YLT the
  /// kernel writes layer rows in place; with a sink it stages each finished
  /// block and emits it as one span per layer, blocks clamped so they never
  /// cross sink.block_trials() boundaries.
  TrialBlockKernel(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                   const TrialKernelConfig& config, YearLossTable* ylt, YltSink* sink);
  ~TrialBlockKernel();

  TrialBlockKernel(const TrialBlockKernel&) = delete;
  TrialBlockKernel& operator=(const TrialBlockKernel&) = delete;

  /// Computes trials [first, last) for every layer: walks the range in
  /// blocks of at most block_trials() (clamped to sink boundaries), software-
  /// prefetching the head of the next block's event ids while the current
  /// block computes.
  void run_range(std::uint64_t first, std::uint64_t last, TrialKernelScratch& scratch) const;

  /// The resolved block size (config.block_trials, or the footprint
  /// heuristic when that was 0).
  std::size_t block_trials() const noexcept;

  /// The extension this kernel actually executes: config.extension, or —
  /// for kAuto — the runtime dispatch decision (cpuid ∩ compiled-in, env
  /// override honored; see simd/dispatch.hpp). Never kAuto.
  SimdExtension extension() const noexcept { return extension_; }

  /// Adds an instrumented scratch's phase timers and access counts into the
  /// given accumulators (either may be null) — the post-run merge step for
  /// parallel drivers.
  static void collect(const TrialKernelScratch& scratch, PhaseBreakdown* phases,
                      AccessCounts* accesses) noexcept;

  /// Lane-width erasure (public so the .cpp's extension-templated bodies
  /// can derive from it; opaque to callers).
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
  SimdExtension extension_ = SimdExtension::kScalar;
};

/// How a driver schedules kernel blocks onto threads — together with
/// TrialKernelConfig this is the *entire* definition of an engine.
struct KernelLaunch {
  enum class Schedule {
    kSerial,  ///< one thread, one scratch (seq / windowed / instrumented)
    kPool,    ///< parallel_for over trials on a thread pool (parallel / chunked / simd)
    kCosted,  ///< parallel_for_costed over the YET offsets (fused): chunks
              ///< carry ~one block's worth of *events*, so skewed trial
              ///< lengths balance across workers
    kOpenMp,  ///< OpenMP `parallel for` over block indices; falls back to
              ///< kPool (bit-identical) when the build lacks OpenMP
  };

  Schedule schedule = Schedule::kSerial;
  /// Worker threads when the driver owns them; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Borrowed pool (kPool/kCosted); nullptr = own a pool of num_threads.
  parallel::ThreadPool* pool = nullptr;
  /// Trial-range partitioning (kPool: index chunks of `chunk` trials;
  /// kCosted: equal-cost chunks).
  parallel::Partition partition = parallel::Partition::kStatic;
  std::size_t chunk = 256;
};

/// The one driver entry point: builds the kernel, schedules it per
/// `launch`, and (for instrumented configs) merges every worker's phase
/// timers and access counts into `phases` / `accesses` (assigned, not
/// accumulated; may be null). Exactly one of `ylt` / `sink` must be
/// non-null.
void run_trial_kernel(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                      const TrialKernelConfig& config, const KernelLaunch& launch,
                      YearLossTable* ylt, YltSink* sink, PhaseBreakdown* phases = nullptr,
                      AccessCounts* accesses = nullptr);

/// The block-size heuristic behind TrialKernelConfig::block_trials == 0
/// (historically the fused engine's tile heuristic): sizes the block so its
/// staged per-event working set (~20 B per event across ids, timestamps,
/// and the combined-loss buffer) fits the cache share a block can
/// realistically claim. Cache-regime aware: when the portfolio's lookup
/// tables themselves fit in cache the whole budget goes to the block; once
/// the tables far exceed it, lookups miss regardless and a smaller block
/// keeps the staged buffers from thrashing too. Clamped to [16, 4096].
std::size_t default_tile_trials(const Portfolio& portfolio,
                                const yet::YearEventTable& yet_table) noexcept;

}  // namespace are::core
