#pragma once

// Per-extension kernel factories — the seam between the runtime dispatch
// table in trial_kernel.cpp and the per-ISA translation units.
//
// Each factory is defined in exactly one src/core/kernel_ext_<ext>.cpp,
// compiled with exactly that extension's -m flags (and never
// -march=native), and returns the KernelImpl<Ext> instantiation from
// trial_kernel_body.hpp. trial_kernel.cpp references a factory only when
// CMake defines the matching ARE_KERNEL_TU_* macro, which it does iff the
// translation unit is in the build — so a binary never links a factory it
// does not carry, and simd::compiled_extensions() (driven by the same
// macros) is truthful by construction.
//
// Deliberately plain non-inline functions with unique names: no static
// registrar objects (a static library's unreferenced members get dropped
// by the linker) and no shared inline symbols (comdat selection across TUs
// compiled with different -m flags could leak wide instructions into
// narrow paths).

#include <memory>

#include "core/trial_kernel.hpp"

namespace are::core::detail {

std::unique_ptr<TrialBlockKernel::Impl> make_kernel_impl_sse2(
    const Portfolio& portfolio, const yet::YearEventTable& yet_table,
    const TrialKernelConfig& config, YearLossTable* ylt, YltSink* sink);

std::unique_ptr<TrialBlockKernel::Impl> make_kernel_impl_avx2(
    const Portfolio& portfolio, const yet::YearEventTable& yet_table,
    const TrialKernelConfig& config, YearLossTable* ylt, YltSink* sink);

std::unique_ptr<TrialBlockKernel::Impl> make_kernel_impl_avx512(
    const Portfolio& portfolio, const yet::YearEventTable& yet_table,
    const TrialKernelConfig& config, YearLossTable* ylt, YltSink* sink);

std::unique_ptr<TrialBlockKernel::Impl> make_kernel_impl_neon(
    const Portfolio& portfolio, const yet::YearEventTable& yet_table,
    const TrialKernelConfig& config, YearLossTable* ylt, YltSink* sink);

}  // namespace are::core::detail
