#pragma once

#include <cstddef>
#include <optional>

#include "core/engine.hpp"
#include "core/trial_kernel.hpp"
#include "core/windowed_engine.hpp"
#include "core/ylt_sink.hpp"

namespace are::core {

struct FusedOptions {
  /// Trials per tile (= kernel block). Small tiles keep a tile's events
  /// (and the staged per-event loss buffers) cache-resident across all
  /// layers; large tiles amortise per-tile overhead. 0 (the default)
  /// derives the tile from the portfolio's ELT footprint and the YET's
  /// events/trial — see default_tile_trials(); bench_fused_tiling sweeps
  /// this knob and any explicit value overrides the heuristic.
  std::size_t tile_trials = 0;
  /// Worker threads; 0 = hardware concurrency, 1 = single-threaded.
  std::size_t num_threads = 0;
  /// How trial tiles are scheduled onto workers. The fused engine schedules
  /// by *event count* (parallel_for_costed over the YET offsets), so even
  /// kStatic blocks are balanced by work, and kDynamic/kGuided additionally
  /// absorb runtime skew by claiming ~tile-sized chunks from a shared
  /// cursor instead of serialising on the slowest static partition.
  parallel::Partition partition = parallel::Partition::kDynamic;
  /// Optional coverage window (the windowed engine's semantics: occurrences
  /// outside the window contribute nothing and do not advance the
  /// aggregate-terms recurrence). Absent or full-year = bit-identical to
  /// run_sequential; a real mid-year window changes the YLT by design and
  /// is bit-identical to run_windowed instead.
  std::optional<CoverageWindow> window;
  /// When non-null, the engine runs the kernel's timer-instrumented block
  /// path (still bit-identical) and accumulates the Fig-6b phase
  /// attribution here: fetch = the per-tile YET staging (paid once per tile
  /// instead of once per layer x trial — the fusion's predicted event-fetch
  /// saving, now directly measurable), lookup = the lookup_many batches,
  /// financial = the vectorized terms + cross-ELT combine, layer =
  /// occurrence terms + the aggregate recurrence.
  PhaseBreakdown* phases = nullptr;
};

/// Fused trial-tiled engine: the cost-aware driver of the shared trial
/// kernel. One pass over trial tiles, and for each tile *all layers* are
/// processed while the tile's slice of the year-event table is hot, so the
/// YET is streamed once per analysis instead of once per layer. Within a
/// tile the paper's phases run batched over the tile's events: ELT lookups
/// go through ILossLookup::lookup_many (prefetching batch overrides;
/// hardware gathers on direct tables), financial and occurrence terms run
/// on the widest compiled simd::VecD lanes, and only the path-dependent
/// aggregate recurrence sweeps each trial scalar. Scratch lives in
/// per-worker arenas (parallel::TaskScratch) so the hot path performs no
/// allocation, and the next tile's event ids are software-prefetched while
/// the current tile computes. Tiles are scheduled by *event count*
/// (parallel_for_costed over the YET offsets) so skewed trial lengths
/// spread across workers.
///
/// Bit-identical to run_sequential for every tile size, thread count, and
/// scheduling policy (tiling only decides which events share a register,
/// never how a trial's arithmetic associates).
YearLossTable run_fused(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                        const FusedOptions& options = {});

/// Reuses an existing pool (cheaper when an application runs many analyses;
/// mirrors the run_parallel/run_simd overloads).
YearLossTable run_fused(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                        parallel::ThreadPool& pool, const FusedOptions& options = {});

/// Sink-emitting variant: every finished tile is delivered to `sink` as one
/// block per layer instead of being written into an owned YearLossTable,
/// and tile boundaries are clamped to multiples of sink.block_trials() so
/// each block lands in exactly one shard of a sharded sink. With a
/// MaterializedYltSink this produces the same bytes as run_fused; with a
/// shard::ShardedYltSink the full trials x layers table never exists in
/// memory — the out-of-core path.
void run_fused_to_sink(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       parallel::ThreadPool& pool, const FusedOptions& options, YltSink& sink);

void run_fused_to_sink(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       const FusedOptions& options, YltSink& sink);

}  // namespace are::core
