#pragma once

// Unified engine API — the single front door to the aggregate-analysis
// engines. The paper's contribution is one algorithm mapped onto many
// execution strategies; this header makes that literal: callers build an
// AnalysisRequest (portfolio + YET + AnalysisConfig) and call run(). Which
// strategy executes is data (EngineKind in the config, resolved through the
// EngineRegistry), not a choice of free function, so an
// engines x window x instrumentation sweep is a loop over configs.
//
// The legacy run_sequential / run_parallel / run_chunked / run_openmp /
// run_simd / run_windowed / run_instrumented entry points remain as the
// engine implementations; outside src/core they should only appear in
// equivalence tests that pin the new API against them.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "core/cancel.hpp"
#include "core/engine.hpp"
#include "core/simd_engine.hpp"
#include "core/windowed_engine.hpp"

namespace are::core {

class GroundUpLossCache;  // core/trial_kernel.hpp

/// Every execution strategy the registry knows about. The enumerators are
/// stable identifiers; their canonical string names (used by the CLI and
/// config files) live in the EngineRegistry descriptors.
enum class EngineKind {
  kSequential = 0,  ///< reference implementation, the bit-identity anchor
  kParallel,        ///< thread-pool trial parallelism (paper's multi-core)
  kChunked,         ///< event-chunked kernel (CPU analogue of the GPU kernel)
  kOpenMp,          ///< OpenMP directives (falls back to thread pool)
  kSimd,            ///< lane-parallel batch engine (one trial per lane)
  kWindowed,        ///< sequential with a mid-year coverage window
  kInstrumented,    ///< sequential with per-phase timers + access counters
  kFused,           ///< trial-tiled single-pass engine: all layers per tile
};

/// Canonical name of the engine kind ("seq", "parallel", ...). Matches the
/// registry descriptor's name.
std::string_view to_string(EngineKind kind) noexcept;

/// Per-run facts written back through AnalysisConfig::instrumentation.
/// Every engine adapter records which engine actually executed and its
/// engine-specific resolution (did OpenMP really run? which SIMD lane type
/// did kAuto pick?); only engines whose descriptor sets
/// supports_instrumentation also fill the phase/access breakdown.
struct InstrumentationSink {
  /// The engine that executed the request.
  std::optional<EngineKind> engine_used;

  /// kOpenMp only: true when OpenMP directives actually ran, false when the
  /// build lacks OpenMP and the bit-identical thread-pool fallback executed.
  /// The legacy run_openmp hid this; the registry surfaces it.
  std::optional<bool> openmp_used;

  /// kSimd and kFused: the extension that actually executed after kAuto
  /// resolution — the runtime dispatch decision (cpuid ∩ compiled-in,
  /// ARE_SIMD_EXT override) plus the memory-bound narrowing to SSE2.
  std::optional<SimdExtension> simd_extension_used;

  /// kSimd and kFused: WHY that extension ran — explicit request, the env
  /// override, the cpuid / compiled-in cap, or the cache-regime narrowing
  /// with the footprint that triggered it. Mirrors
  /// core::resolve_simd_extension_ex().note; --verbose prints it.
  std::optional<std::string> simd_resolution_note;

  /// Fig-6b phase attribution and memory-access counters (kInstrumented).
  std::optional<PhaseBreakdown> phases;
  std::optional<AccessCounts> accesses;
};

/// Where the output YLT lives. kMaterialized is the classic in-memory
/// trials x layers YearLossTable returned by run(); kSharded stores losses
/// in fixed trial-range shards behind a disk-spilling ShardStore
/// (src/shard/) and is executed through shard::run_sharded / run_to_sink —
/// the out-of-core path for trial counts whose full table would not fit
/// the memory budget.
enum class OutputMode {
  kMaterialized = 0,
  kSharded,
};

/// Runtime-telemetry collection for one run (src/obs/). Both flags enable
/// the process-wide collectors for the duration of the run (RAII-scoped
/// inside run()/run_to_sink(), restoring the prior state), so concurrent
/// runs see each other's requests; long-lived hosts (the CLI, the future
/// resident service) instead call obs::set_enabled()/set_trace_enabled()
/// directly and leave these off. Off by default: the disabled hot path is
/// bit-identical and within noise of an untelemetered build.
struct TelemetryOptions {
  /// Collect counters/gauges/histograms into obs::TelemetryRegistry::global().
  bool counters = false;
  /// Record Chrome-trace spans into obs::TraceBuffer::global().
  bool trace = false;
};

/// Knobs of the sharded output mode (read when output == kSharded).
struct ShardingOptions {
  /// Trials per shard. Shard boundaries also clamp the fused engine's tile
  /// boundaries, so every finished tile lands in exactly one shard.
  std::uint64_t shard_trials = 4096;
  /// Resident-shard budget in bytes; 0 = unlimited (nothing spills).
  std::size_t memory_budget_bytes = 0;
  /// Base directory for spilled shards (each run spills into its own
  /// unique subdirectory, removed afterwards); empty = the system temp
  /// dir.
  std::string spill_dir;
};

/// Composable execution configuration. One struct covers every engine; each
/// engine reads the fields it understands and run() rejects combinations
/// the engine's descriptor says it cannot honour (no silent ignoring).
struct AnalysisConfig {
  EngineKind engine = EngineKind::kParallel;

  /// When non-empty, run() dispatches by this registry name instead of
  /// `engine`. This is how engines registered under custom names are
  /// reached: EngineKind is a closed enum, so a runtime-registered backend
  /// reuses an existing kind, and kind lookup would find the builtin first.
  /// The CLI always dispatches by name.
  std::string engine_name;

  /// Worker threads for the threaded engines (kParallel, kChunked, kOpenMp,
  /// kSimd): 0 = hardware concurrency, 1 = single-threaded.
  std::size_t num_threads = 0;

  /// kParallel: trial-range partitioning strategy and, for dynamic/guided,
  /// the number of trials per work item.
  parallel::Partition partition = parallel::Partition::kStatic;
  std::size_t partition_chunk = 256;

  /// kChunked: events staged per scratch chunk (the paper's Fig-5a knob).
  std::size_t chunk_size = 4;

  /// kFused: trials per tile (the fused engine processes every layer over
  /// one tile's events before moving on; see core/fused_engine.hpp).
  /// 0 = derive from the ELT footprint and events/trial
  /// (core::default_tile_trials).
  std::size_t tile_trials = 0;

  /// kSimd: lane type to run; kAuto resolves to the widest compiled
  /// extension with the memory-bound narrowing.
  SimdExtension simd_extension = SimdExtension::kAuto;

  /// Coverage window within the contractual year; requires an engine whose
  /// descriptor sets supports_windowing (kWindowed). Absent = full year.
  std::optional<CoverageWindow> window;

  /// When set, the engine adapter records execution facts here, and
  /// engines with supports_instrumentation fill the phase breakdown.
  /// Borrowed, not owned; any engine accepts it.
  InstrumentationSink* instrumentation = nullptr;

  /// Request the Fig-6b phase breakdown; requires an engine whose
  /// descriptor sets supports_instrumentation and a non-null
  /// `instrumentation` sink to receive it. kInstrumented always fills the
  /// breakdown; kFused switches to a timer-instrumented (slower,
  /// bit-identical) tile path only when this is set, so the default fused
  /// hot path stays untimed.
  bool collect_phases = false;

  /// Output placement. run() serves kMaterialized only; kSharded runs go
  /// through shard::run_sharded (or run_to_sink with your own sink) and
  /// require an engine whose descriptor has a run_to_sink adapter.
  OutputMode output = OutputMode::kMaterialized;
  ShardingOptions sharding;

  /// Runtime counters/spans for this run (see TelemetryOptions).
  TelemetryOptions telemetry;

  /// Borrowed thread pool, reused across runs (the real-time pricing path);
  /// requires an engine whose descriptor sets supports_pool_reuse
  /// (kParallel, kSimd). nullptr = the engine owns its threads.
  parallel::ThreadPool* pool = nullptr;

  /// Delta execution (core/trial_kernel.hpp GroundUpLossCache; the resident
  /// service's fast path — see src/service/). Capture: this run additionally
  /// records its combined pre-occurrence-terms losses into the cache (shape
  /// must be portfolio layers x YET total events). Replay: this run skips
  /// the fetch/lookup/financial phases and reads the combined losses from
  /// the cache — valid only when the portfolio's ELT sets and per-ELT
  /// FinancialTerms are unchanged since capture (LayerTerms and the window
  /// may differ), bit-identical to a cold run by construction. Any engine
  /// accepts either pointer (they parameterize the shared kernel); setting
  /// both is rejected. Borrowed, not owned.
  GroundUpLossCache* ground_up_capture = nullptr;
  const GroundUpLossCache* ground_up_replay = nullptr;

  /// Cooperative cancellation + deadline for this run (core/cancel.hpp).
  /// The kernel checks the token between trial blocks; a fired token makes
  /// the run throw core::StatusError with the token's reason
  /// (kDeadlineExceeded / kCancelled) and produce no output. Borrowed, not
  /// owned; null = never cancelled.
  const CancelToken* cancel = nullptr;

  /// Fault-injection sites to arm for the duration of this run, as a
  /// comma-separated SITE=SPEC list (src/fault/fault_injection.hpp) —
  /// "shard.spill_write=always,io.read=every:3". Armed process-wide
  /// (RAII-scoped inside run()/run_to_sink()); empty = no injection.
  /// Test/chaos tooling only.
  std::string faults;

  /// Engine-independent sanity checks; throws std::invalid_argument on a
  /// malformed window, partition_chunk == 0, chunk_size == 0, or
  /// sharding.shard_trials == 0 (tile_trials == 0 is valid: it selects the
  /// tile-size heuristic).
  /// Engine-capability checks (window/pool vs. descriptor flags, extension
  /// availability) happen in run(), which knows the registry.
  void validate() const;
};

/// Everything run() needs: the inputs by reference (portfolio and YET are
/// large and immutable during a run) plus the execution config by value.
struct AnalysisRequest {
  const Portfolio& portfolio;
  const yet::YearEventTable& yet_table;
  AnalysisConfig config{};
};

/// The front door: validates the config, resolves the engine through
/// EngineRegistry::global(), rejects capability mismatches
/// (std::invalid_argument), and dispatches. Output YLTs of engines whose
/// descriptor sets bit_identical_to_sequential are bit-identical to
/// EngineKind::kSequential for the same request. Serves
/// OutputMode::kMaterialized only — a sharded config is redirected (by
/// error message) to shard::run_sharded, which owns the sharded table.
YearLossTable run(const AnalysisRequest& request);

/// Sink front door: same validation/capability checks as run(), then the
/// engine emits finished trial-range blocks into `sink` instead of an
/// owned YearLossTable. Requires an engine whose descriptor carries a
/// run_to_sink adapter (descriptor.supports_sharded_output()); engines
/// whose descriptor also sets bit_identical_to_sequential deliver exactly
/// the bytes run_sequential would have produced for every cell.
void run_to_sink(const AnalysisRequest& request, YltSink& sink);

}  // namespace are::core
