// NEON kernel translation unit (AArch64). NEON is baseline on AArch64, so
// no extra -m flags are needed — this TU exists so the dispatch table has a
// uniform per-extension factory shape on ARM too. No gathered probe
// kernels — NEON has no hardware gather.

#if !defined(__ARM_NEON) || !defined(__aarch64__)
#error "kernel_ext_neon.cpp must target AArch64 NEON (check CMakeLists.txt arch gating)"
#endif

#include "core/kernel_ext.hpp"
#include "core/trial_kernel_body.hpp"

namespace are::core::detail {

std::unique_ptr<TrialBlockKernel::Impl> make_kernel_impl_neon(
    const Portfolio& portfolio, const yet::YearEventTable& yet_table,
    const TrialKernelConfig& config, YearLossTable* ylt, YltSink* sink) {
  return std::make_unique<KernelImpl<simd::neon_ext>>(portfolio, yet_table, config, ylt, sink);
}

}  // namespace are::core::detail
