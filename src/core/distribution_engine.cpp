#include "core/distribution_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "financial/discretize.hpp"
#include "financial/terms.hpp"

namespace are::core {

namespace {

/// Combined mean loss of one event across the layer's ELTs, net of the
/// ELT-level financial terms (the same combination the scalar engine uses).
double combined_mean_loss(const Layer& layer, yet::EventId event) noexcept {
  double combined = 0.0;
  for (const LayerElt& layer_elt : layer.elts) {
    combined += layer_elt.terms.apply(layer_elt.lookup->lookup(event));
  }
  return combined;
}

double auto_bin_width(const Layer& layer, const yet::YearEventTable& yet_table,
                      std::size_t grid_size) {
  // Grid top: the aggregate limit when finite, else 4x the mean trial loss.
  double top = 0.0;
  if (layer.terms.aggregate_limit != financial::kUnlimited) {
    top = layer.terms.aggregate_retention + layer.terms.aggregate_limit;
  } else {
    double total = 0.0;
    for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
      for (const yet::EventId event : yet_table.trial_events(trial)) {
        total += layer.terms.apply_occurrence(combined_mean_loss(layer, event));
      }
    }
    const double mean_trial =
        total / std::max<double>(1.0, static_cast<double>(yet_table.num_trials()));
    top = 4.0 * mean_trial;
  }
  if (top <= 0.0) top = 1.0;
  return top / static_cast<double>(grid_size - 1);
}

}  // namespace

double expected_loss_of(const financial::LossDistribution& distribution) {
  return distribution.mean();
}

DistributionResult run_distribution_analysis(const Portfolio& portfolio,
                                             const yet::YearEventTable& yet_table,
                                             const DistributionOptions& options) {
  portfolio.validate();
  if (options.grid_size < 2) throw std::invalid_argument("grid must have >= 2 points");
  if (options.bin_width < 0.0) throw std::invalid_argument("bin width must be >= 0");
  if (yet_table.num_trials() == 0) throw std::invalid_argument("YET has no trials");

  DistributionResult result;
  result.layer_distributions.reserve(portfolio.layers.size());
  result.bin_widths.reserve(portfolio.layers.size());

  for (const Layer& layer : portfolio.layers) {
    const double bin_width = options.bin_width > 0.0
                                 ? options.bin_width
                                 : auto_bin_width(layer, yet_table, options.grid_size);

    // Equal-weight mixture across trials, accumulated directly on the grid.
    std::vector<double> annual_mass(options.grid_size, 0.0);
    const double trial_weight = 1.0 / static_cast<double>(yet_table.num_trials());

    for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
      financial::LossDistribution trial_dist =
          financial::LossDistribution::point_mass(0.0, bin_width, 1);

      for (const yet::EventId event : yet_table.trial_events(trial)) {
        const double mean = combined_mean_loss(layer, event);
        if (mean <= 0.0) continue;  // zero-mass event: convolution identity

        financial::LossDistribution severity = financial::discretize_lognormal(
            mean, options.coefficient_of_variation, bin_width, options.grid_size);
        // Occurrence terms apply per event *before* aggregation.
        severity = severity.apply_excess_of_loss(layer.terms.occurrence_retention,
                                                 layer.terms.occurrence_limit);
        trial_dist = trial_dist.convolve(severity, options.grid_size);
      }

      // Aggregate terms on the trial's aggregate-loss distribution.
      const financial::LossDistribution ceded = trial_dist.apply_excess_of_loss(
          layer.terms.aggregate_retention, layer.terms.aggregate_limit);

      const auto mass = ceded.mass();
      for (std::size_t k = 0; k < mass.size() && k < annual_mass.size(); ++k) {
        annual_mass[k] += trial_weight * mass[k];
      }
    }

    result.layer_distributions.emplace_back(std::move(annual_mass), bin_width);
    result.bin_widths.push_back(bin_width);
  }
  return result;
}

}  // namespace are::core
