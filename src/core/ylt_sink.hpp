#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

#include "core/year_loss_table.hpp"

namespace are::core {

/// Where an engine delivers finished trial losses. The materialized path
/// (core::run returning a YearLossTable) stays the default; a sink is how an
/// engine emits into storage it does not own — most importantly the sharded
/// out-of-core YLT in src/shard/, where no monolithic trials x layers buffer
/// may ever exist.
///
/// Contract: the engine calls emit() exactly once per (layer, trial) cell,
/// in blocks of consecutive trials that never cross a block_trials()
/// boundary (when that is non-zero). Blocks for disjoint trial ranges may be
/// emitted concurrently from different workers; implementations must make
/// that safe. Values are final — a sink never sees a cell twice.
class YltSink {
 public:
  virtual ~YltSink() = default;

  /// Delivers `losses` for trials [trial_begin, trial_begin + losses.size())
  /// of layer `layer_index` (the portfolio's layer order).
  virtual void emit(std::size_t layer_index, std::uint64_t trial_begin,
                    std::span<const double> losses) = 0;

  /// When non-zero, emitted blocks must not cross multiples of this trial
  /// count — the sharded sink returns its shard size here so the fused
  /// engine clamps tile boundaries to shard boundaries and every tile lands
  /// in exactly one shard.
  virtual std::uint64_t block_trials() const noexcept { return 0; }
};

/// Sink over an ordinary in-memory YearLossTable: emit() copies straight
/// into the layer row. Lets sink-capable engines serve the materialized
/// path with one code path, and anchors the sharded-vs-materialized
/// bit-identity tests.
class MaterializedYltSink final : public YltSink {
 public:
  explicit MaterializedYltSink(YearLossTable& ylt) : ylt_(ylt) {}

  void emit(std::size_t layer_index, std::uint64_t trial_begin,
            std::span<const double> losses) override {
    double* row = ylt_.layer_losses(layer_index).data();
    std::copy(losses.begin(), losses.end(), row + trial_begin);
  }

 private:
  YearLossTable& ylt_;
};

}  // namespace are::core
