#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "core/engine.hpp"

namespace are::core {

/// Runtime-selectable instruction-set extension for run_simd. kAuto is a
/// true load-time decision since the per-extension kernel TUs landed (see
/// simd/dispatch.hpp): the widest extension that is BOTH compiled into this
/// binary AND reported by this host's cpuid (ARE_SIMD_EXT overrides),
/// narrowing to SSE2 for portfolios whose direct tables far outgrow the
/// cache (wide hardware gathers stop paying once every lookup misses).
/// Narrower extensions remain selectable so equivalence tests can assert
/// that results are lane-width independent.
enum class SimdExtension {
  kAuto = 0,
  kScalar,
  kSse2,
  kAvx2,
  kAvx512,
  kNeon,
};

std::string_view to_string(SimdExtension extension) noexcept;

/// Inverse of to_string, for CLI/config parsing ("auto", "scalar", "sse2",
/// "avx2", "avx512", "neon"); std::nullopt for unknown names.
std::optional<SimdExtension> simd_extension_from_string(std::string_view name) noexcept;

/// True when the extension is RUNNABLE here: its kernel translation unit
/// is linked into this binary and this host's cpu executes it (kScalar and
/// kAuto are always available). A runtime property of (binary, host) — the
/// same binary answers differently on different machines.
bool simd_extension_available(SimdExtension extension) noexcept;

/// The extension kAuto executes before cache-regime narrowing: the runtime
/// dispatch decision (detected ∩ compiled, ARE_SIMD_EXT override honored).
SimdExtension best_simd_extension() noexcept;

/// Lane width (doubles per vector register) of the given extension — the
/// kernel's vectorized term phases process this many events at once.
/// Throws for extensions not runnable here. For kAuto this is
/// best_simd_extension()'s width — the width a particular run actually
/// uses can be narrower (kAuto is portfolio-dependent); resolve with
/// resolve_simd_extension() first when reporting a real run.
std::size_t simd_lane_width(SimdExtension extension);

struct SimdOptions {
  /// Worker threads for the outer trial-block loop; 0 = hardware
  /// concurrency, 1 = single-threaded lane-parallel execution. Values > 1
  /// compose lane-level and thread-level parallelism (the bench's
  /// "simd x threads" mode).
  std::size_t num_threads = 1;
  /// Which lane type to run; throws std::invalid_argument from run_simd if
  /// the extension is not compiled into this build.
  SimdExtension extension = SimdExtension::kAuto;
};

/// The extension run_simd will actually execute for this portfolio and
/// options: resolves kAuto (runtime dispatch + the footprint narrowing)
/// and throws std::invalid_argument for extensions not runnable here.
SimdExtension resolve_simd_extension(const Portfolio& portfolio, const SimdOptions& options);

/// resolve_simd_extension plus WHY — the one-sentence rationale the
/// instrumentation note and --verbose surface: explicit request, the
/// ARE_SIMD_EXT override, the cpuid / compiled-in cap, or the cache-regime
/// narrowing (with the footprint that triggered it).
struct SimdResolution {
  SimdExtension extension = SimdExtension::kScalar;
  std::string note;
};
SimdResolution resolve_simd_extension_ex(const Portfolio& portfolio, const SimdOptions& options);

/// Lane-parallel batch engine: the shared trial-block kernel
/// (core/trial_kernel.hpp) driven at the resolved vector width. The hot
/// phases of the paper's algorithm — ELT lookup (hardware gather on
/// direct-access tables, prefetching lookup_many batches otherwise),
/// financial terms, and occurrence terms — run on vector registers over a
/// block's events; only the path-dependent aggregate recurrence
/// (TrialAccumulator) sweeps each trial scalar.
///
/// Bit-identical output to run_sequential for every lane width and thread
/// count: the vectorized phases perform the same double-precision
/// operations in the same order as the scalar expressions (see
/// simd/vec.hpp for the min/max rounding contract), and lane width only
/// decides which events share a register, never how a trial's own
/// arithmetic associates.
YearLossTable run_simd(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       const SimdOptions& options = {});

/// Reuses an existing pool (cheaper when an application runs many
/// analyses; mirrors the run_parallel overload).
YearLossTable run_simd(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       parallel::ThreadPool& pool, const SimdOptions& options = {});

}  // namespace are::core
