#pragma once

#include "core/engine.hpp"

namespace are::core {

/// True when the library was compiled with OpenMP support.
bool openmp_available() noexcept;

/// The paper's multi-core CPU implementation: "threading is implemented by
/// introducing OpenMP directives into the C++ source", one logical thread
/// per trial with static scheduling. Bit-identical output to
/// run_sequential.
///
/// When the library is built without OpenMP this transparently falls back
/// to the thread-pool engine with the same thread count (also
/// bit-identical), so callers need no #ifdefs.
YearLossTable run_openmp(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                         int num_threads = 0);

}  // namespace are::core
