#include "core/trial_kernel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/kernel_ext.hpp"
#include "core/trial_kernel_body.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "parallel/task_scratch.hpp"

namespace are::core {

namespace {

/// The runtime dispatch table behind kernel construction. The scalar
/// instantiation lives in THIS translation unit (compiled with the default
/// flags — it must run anywhere the binary loads); every wider extension
/// routes to the factory in its own src/core/kernel_ext_*.cpp TU, present
/// exactly when CMake defined the matching ARE_KERNEL_TU_* macro. Callers
/// reach a wide factory only for extensions simd_extension_available()
/// reports runnable (the constructor and resolve_simd_extension guard), so
/// a host never executes instructions its cpuid did not report.
std::unique_ptr<TrialBlockKernel::Impl> make_impl(SimdExtension extension,
                                                  const Portfolio& portfolio,
                                                  const yet::YearEventTable& yet_table,
                                                  const TrialKernelConfig& config,
                                                  YearLossTable* ylt, YltSink* sink) {
  switch (extension) {
    case SimdExtension::kScalar:
      return std::make_unique<KernelImpl<simd::scalar_ext>>(portfolio, yet_table, config, ylt,
                                                            sink);
#if defined(ARE_KERNEL_TU_SSE2)
    case SimdExtension::kSse2:
      return detail::make_kernel_impl_sse2(portfolio, yet_table, config, ylt, sink);
#endif
#if defined(ARE_KERNEL_TU_AVX2)
    case SimdExtension::kAvx2:
      return detail::make_kernel_impl_avx2(portfolio, yet_table, config, ylt, sink);
#endif
#if defined(ARE_KERNEL_TU_AVX512)
    case SimdExtension::kAvx512:
      return detail::make_kernel_impl_avx512(portfolio, yet_table, config, ylt, sink);
#endif
#if defined(ARE_KERNEL_TU_NEON)
    case SimdExtension::kNeon:
      return detail::make_kernel_impl_neon(portfolio, yet_table, config, ylt, sink);
#endif
    default:
      throw std::invalid_argument("trial kernel: simd extension '" +
                                  std::string(to_string(extension)) +
                                  "' is not compiled into this binary");
  }
}

}  // namespace

TrialBlockKernel::TrialBlockKernel(const Portfolio& portfolio,
                                   const yet::YearEventTable& yet_table,
                                   const TrialKernelConfig& config, YearLossTable* ylt,
                                   YltSink* sink) {
  portfolio.validate();
  if (config.window) config.window->validate();
  if ((ylt == nullptr) == (sink == nullptr)) {
    throw std::invalid_argument("trial kernel: exactly one of YLT / sink must be given");
  }
  if (config.ground_up_capture != nullptr && config.ground_up_replay != nullptr) {
    throw std::invalid_argument(
        "trial kernel: ground_up_capture and ground_up_replay are mutually exclusive");
  }
  const auto check_cache_shape = [&](const GroundUpLossCache& cache, const char* which) {
    if (cache.num_layers() != portfolio.layers.size() ||
        cache.total_events() != yet_table.total_events()) {
      throw std::invalid_argument(
          std::string("trial kernel: ") + which + " cache shape (" +
          std::to_string(cache.num_layers()) + " layers x " +
          std::to_string(cache.total_events()) + " events) does not match the run (" +
          std::to_string(portfolio.layers.size()) + " layers x " +
          std::to_string(yet_table.total_events()) + " events)");
    }
  };
  if (config.ground_up_capture != nullptr) {
    check_cache_shape(*config.ground_up_capture, "ground-up capture");
  }
  if (config.ground_up_replay != nullptr) {
    check_cache_shape(*config.ground_up_replay, "ground-up replay");
  }
  SimdExtension extension = config.extension;
  if (extension == SimdExtension::kAuto) {
    extension = best_simd_extension();
  } else if (!simd_extension_available(extension)) {
    // Explicit requests are checked against the RUNTIME capability (cpuid ∩
    // compiled-in) before any wide factory runs — an unrunnable extension
    // must fail with a diagnosable error, never an illegal instruction.
    throw std::invalid_argument("trial kernel: simd extension '" +
                                std::string(to_string(extension)) +
                                "' is not compiled into this binary or not supported by this "
                                "host's cpu");
  }
  extension_ = extension;
  impl_ = make_impl(extension, portfolio, yet_table, config, ylt, sink);
  impl_->block_trials = config.block_trials != 0 ? config.block_trials
                                                 : default_tile_trials(portfolio, yet_table);
}

TrialBlockKernel::~TrialBlockKernel() = default;

void TrialBlockKernel::run_range(std::uint64_t first, std::uint64_t last,
                                 TrialKernelScratch& scratch) const {
  if (first >= last) return;
  impl_->run_range(first, last, scratch);
}

std::size_t TrialBlockKernel::block_trials() const noexcept { return impl_->block_trials; }

void TrialBlockKernel::collect(const TrialKernelScratch& scratch, PhaseBreakdown* phases,
                               AccessCounts* accesses) noexcept {
  if (phases != nullptr) {
    phases->fetch_seconds += scratch.phases.fetch_seconds;
    phases->lookup_seconds += scratch.phases.lookup_seconds;
    phases->financial_seconds += scratch.phases.financial_seconds;
    phases->layer_seconds += scratch.phases.layer_seconds;
    phases->output_seconds += scratch.phases.output_seconds;
  }
  if (accesses != nullptr) {
    accesses->events_fetched += scratch.accesses.events_fetched;
    accesses->elt_lookups += scratch.accesses.elt_lookups;
    accesses->financial_applications += scratch.accesses.financial_applications;
    accesses->layer_term_applications += scratch.accesses.layer_term_applications;
  }
}

// --- The driver entry point ---------------------------------------------------

void run_trial_kernel(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                      const TrialKernelConfig& config, const KernelLaunch& launch,
                      YearLossTable* ylt, YltSink* sink, PhaseBreakdown* phases,
                      AccessCounts* accesses) {
  // The kernel polls a driver-internal token chained to the caller's: a
  // worker that fails (spill error, alloc, deadline) cancels it, and every
  // other worker stops at its next block boundary instead of grinding out
  // an answer nobody will read. The caller's token still supplies the
  // reason when IT fires (chained tokens adopt the parent's reason).
  CancelToken abort(config.cancel);
  TrialKernelConfig kernel_config = config;
  kernel_config.cancel = &abort;
  const TrialBlockKernel kernel(portfolio, yet_table, kernel_config, ylt, sink);
  if (phases != nullptr) *phases = {};
  if (accesses != nullptr) *accesses = {};
  const std::uint64_t num_trials = yet_table.num_trials();
  if (num_trials == 0) return;

  obs::Span launch_span("kernel.launch", "kernel");
  if (obs::enabled()) {
    obs::TelemetryRegistry& registry = obs::TelemetryRegistry::global();
    registry.counter("kernel.launches").increment();
    // Which extension actually executed, per launch — the runtime dispatch
    // decision made observable (exported to /metrics and --telemetry like
    // every other name-embedded label family).
    registry
        .counter("kernel.simd_ext{ext=" + std::string(to_string(kernel.extension())) + "}")
        .increment();
  }

  KernelLaunch::Schedule schedule = launch.schedule;
#ifndef _OPENMP
  // No OpenMP in this build: the bit-identical thread-pool fallback runs
  // (surfaced to callers via InstrumentationSink::openmp_used).
  if (schedule == KernelLaunch::Schedule::kOpenMp) schedule = KernelLaunch::Schedule::kPool;
#endif

  switch (schedule) {
    case KernelLaunch::Schedule::kSerial: {
      TrialKernelScratch scratch;
      kernel.run_range(0, num_trials, scratch);
      TrialBlockKernel::collect(scratch, phases, accesses);
      break;
    }
    case KernelLaunch::Schedule::kPool:
    case KernelLaunch::Schedule::kCosted: {
      std::optional<parallel::ThreadPool> owned;
      parallel::ThreadPool& pool =
          launch.pool != nullptr ? *launch.pool : owned.emplace(launch.num_threads);
      parallel::TaskScratch<TrialKernelScratch> scratches(pool);
      // Pool tasks must not throw (an escaping exception terminates, by
      // pool design): the body catches everything, keeps the FIRST failure,
      // cancels the shared token so sibling tasks wind down at their next
      // block, and the driver rethrows once the launch has drained.
      std::mutex failure_mutex;
      std::exception_ptr failure;
      const auto body = [&](std::uint64_t first, std::uint64_t last) {
        try {
          kernel.run_range(first, last, scratches.local());
        } catch (...) {
          {
            std::lock_guard<std::mutex> guard(failure_mutex);
            if (!failure) failure = std::current_exception();
          }
          abort.cancel();
        }
      };
      if (schedule == KernelLaunch::Schedule::kPool) {
        parallel::parallel_for(pool, 0, num_trials, body, {launch.partition, launch.chunk});
      } else {
        // Chunks carry ~one block's worth of events (the YET offsets are
        // the cost prefix), so skewed trial lengths spread across workers.
        const double mean_events = std::max(1.0, yet_table.mean_events_per_trial());
        const std::uint64_t chunk_cost = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(static_cast<double>(kernel.block_trials()) *
                                          mean_events));
        parallel::parallel_for_costed(pool, 0, num_trials, yet_table.offsets(), chunk_cost,
                                      body, launch.partition);
      }
      if (failure) std::rethrow_exception(failure);
      scratches.for_each([&](const TrialKernelScratch& scratch) {
        TrialBlockKernel::collect(scratch, phases, accesses);
      });
      break;
    }
    case KernelLaunch::Schedule::kOpenMp: {
#ifdef _OPENMP
      int num_threads = static_cast<int>(launch.num_threads);
      if (num_threads <= 0) num_threads = omp_get_max_threads();
      const std::uint64_t block = kernel.block_trials();
      const auto num_blocks = static_cast<std::int64_t>((num_trials + block - 1) / block);
      // Exceptions may not escape an OpenMP region: same first-failure +
      // shared-token protocol as the pool path, rethrown after the join.
      std::mutex failure_mutex;
      std::exception_ptr failure;
#pragma omp parallel num_threads(num_threads)
      {
        TrialKernelScratch scratch;
#pragma omp for schedule(static)
        for (std::int64_t b = 0; b < num_blocks; ++b) {
          try {
            const std::uint64_t first = static_cast<std::uint64_t>(b) * block;
            kernel.run_range(first, std::min<std::uint64_t>(first + block, num_trials),
                             scratch);
          } catch (...) {
            {
              std::lock_guard<std::mutex> guard(failure_mutex);
              if (!failure) failure = std::current_exception();
            }
            abort.cancel();
          }
        }
#pragma omp critical(are_trial_kernel_collect)
        TrialBlockKernel::collect(scratch, phases, accesses);
      }
      if (failure) std::rethrow_exception(failure);
#endif
      break;
    }
  }

  // Feed the collected per-phase wall times into the registry so an
  // instrumented run's Fig-6b attribution is visible to exporters and the
  // future service without threading InstrumentedResult around.
  if (obs::enabled() && config.instrument && phases != nullptr) {
    obs::TelemetryRegistry& registry = obs::TelemetryRegistry::global();
    const auto ns = [](double seconds) {
      return static_cast<std::uint64_t>(seconds * 1e9);
    };
    registry.counter("kernel.phase.fetch_ns").add(ns(phases->fetch_seconds));
    registry.counter("kernel.phase.lookup_ns").add(ns(phases->lookup_seconds));
    registry.counter("kernel.phase.financial_ns").add(ns(phases->financial_seconds));
    registry.counter("kernel.phase.layer_ns").add(ns(phases->layer_seconds));
    registry.counter("kernel.phase.output_ns").add(ns(phases->output_seconds));
  }
}

std::size_t default_tile_trials(const Portfolio& portfolio,
                                const yet::YearEventTable& yet_table) noexcept {
  // Per staged event a block touches ~20 bytes across the batched phases:
  // the event id (4 B) + timestamp (4 B) + combined-loss entry (8 B), plus
  // amortised shares of the raw-lookup buffer on the generic path.
  constexpr double kBytesPerEvent = 20.0;
  constexpr std::size_t kCacheResident = std::size_t{2} << 20;

  std::size_t footprint = 0;
  for (const Layer& layer : portfolio.layers) {
    for (const LayerElt& layer_elt : layer.elts) {
      if (layer_elt.lookup) footprint += layer_elt.lookup->memory_bytes();
    }
  }
  // Cache-resident tables leave the whole budget to the block (the regime
  // where bench_fused_tiling measured ~256-trial optima at sub-scale); once
  // the tables far exceed the cache, lookups miss regardless and a smaller
  // block keeps the staged buffers from thrashing as well.
  const std::size_t block_budget =
      footprint <= kCacheResident ? (std::size_t{1} << 20) : (std::size_t{1} << 18);
  const double events = std::max(1.0, yet_table.mean_events_per_trial());
  const double block = static_cast<double>(block_budget) / (kBytesPerEvent * events);
  return std::clamp(static_cast<std::size_t>(block), std::size_t{16}, std::size_t{4096});
}

}  // namespace are::core
