#pragma once

#include <stdexcept>

namespace are::core {

/// A coverage window within the contractual year: real treaties incept and
/// expire mid-year, so a layer only responds to occurrences whose YET
/// timestamp falls inside [from, to). This is the first consumer of the
/// timestamps the paper's YET carries alongside each event id. Every
/// kernel-backed engine applies the same semantics: out-of-window
/// occurrences contribute nothing and do not advance the aggregate-terms
/// recurrence.
struct CoverageWindow {
  float from = 0.0f;  // inclusive, fraction of year
  float to = 1.0f;    // exclusive

  constexpr bool covers(float time) const noexcept { return time >= from && time < to; }
  constexpr bool full_year() const noexcept { return from <= 0.0f && to >= 1.0f; }

  void validate() const {
    if (!(from >= 0.0f) || !(to <= 1.0f) || !(from < to)) {
      throw std::invalid_argument("coverage window must satisfy 0 <= from < to <= 1");
    }
  }
};

}  // namespace are::core
