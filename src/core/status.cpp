#include "core/status.hpp"

#include <new>

namespace are::core {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kSpillFailure: return "spill-failure";
    case StatusCode::kDataCorruption: return "data-corruption";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

bool retryable(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kSpillFailure:
    case StatusCode::kIoError:
    case StatusCode::kUnavailable:
      return true;
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kCancelled:
    case StatusCode::kDataCorruption:
    case StatusCode::kInternal:
      return false;
  }
  return false;
}

Status status_from_current_exception() {
  try {
    throw;
  } catch (const StatusError& error) {
    return {error.code(), error.what()};
  } catch (const std::bad_alloc&) {
    return {StatusCode::kResourceExhausted, "allocation failed"};
  } catch (const std::invalid_argument& error) {
    return {StatusCode::kInvalidArgument, error.what()};
  } catch (const std::exception& error) {
    return {StatusCode::kInternal, error.what()};
  } catch (...) {
    return {StatusCode::kInternal, "unknown error"};
  }
}

}  // namespace are::core
