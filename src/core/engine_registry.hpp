#pragma once

// Runtime engine registry: maps EngineKind (and its canonical string name,
// for CLI/config parsing) to a self-describing descriptor with capability
// flags and the adapter that executes an AnalysisRequest. The built-in
// engines are registered at construction; new backends register themselves
// at startup via EngineRegistry::global().register_engine() and become
// reachable from core::run(), are_cli --engine, and list-engines without
// touching any caller.

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/analysis.hpp"

namespace are::core {

/// Self-description of one execution strategy. The capability flags are
/// what run() enforces and what sweeps/CI introspect, so a descriptor must
/// tell the truth: claim supports_windowing only if the engine applies
/// AnalysisConfig::window, bit_identical_to_sequential only if its YLT is
/// byte-for-byte equal to the sequential engine's for any request.
struct EngineDescriptor {
  EngineKind kind = EngineKind::kSequential;
  /// Canonical name for string lookup ("seq", "parallel", ...). Lowercase,
  /// no spaces; unique within the registry.
  std::string name;
  /// One-line human description for list-engines.
  std::string summary;

  /// Applies AnalysisConfig::window instead of rejecting it.
  bool supports_windowing = false;
  /// Fills InstrumentationSink::phases/accesses (every engine records the
  /// execution facts; this flag is about the Fig-6b breakdown).
  bool supports_instrumentation = false;
  /// Honours AnalysisConfig::pool instead of rejecting it.
  bool supports_pool_reuse = false;
  /// YLT is byte-for-byte equal to kSequential for any request — the
  /// contract CI enforces by diffing CSVs against seq.
  bool bit_identical_to_sequential = false;
  /// False when this build cannot execute the engine at all. Engines with a
  /// bit-identical fallback (kOpenMp without OpenMP) stay available and say
  /// so in availability_note.
  bool available_in_this_build = true;
  /// Build-dependent detail: OpenMP presence/fallback, compiled SIMD
  /// extensions, ... Surfaced by list-engines.
  std::string availability_note;

  /// The adapter: unpacks the request into the engine implementation.
  /// Preconditions (config validated, capabilities checked) are run()'s
  /// job; adapters may assume them.
  YearLossTable (*run)(const AnalysisRequest&) = nullptr;

  /// Optional sink adapter: emits finished trial-range blocks into a
  /// YltSink instead of returning an owned table — the out-of-core path
  /// behind OutputMode::kSharded. Engines without one reject sharded
  /// output in core::run_to_sink.
  void (*run_to_sink)(const AnalysisRequest&, YltSink&) = nullptr;

  /// True when this engine can execute with sharded/out-of-core output.
  bool supports_sharded_output() const noexcept { return run_to_sink != nullptr; }
};

/// Registry of execution strategies, keyed by kind and by name.
class EngineRegistry {
 public:
  /// The process-wide registry used by core::run(), pre-populated with the
  /// built-in engines. Register new backends at startup; concurrent
  /// registration with in-flight lookups is not synchronised.
  static EngineRegistry& global();

  /// An empty registry (for tests that want isolation from global()).
  EngineRegistry() = default;

  /// Adds a descriptor; a descriptor with the same name replaces the
  /// existing one (kinds may legitimately repeat — an experimental backend
  /// can shadow a builtin under a new name). Throws std::invalid_argument
  /// on an empty name or null run function.
  void register_engine(EngineDescriptor descriptor);

  /// nullptr when absent. Kind lookup returns the first (builtin) entry.
  const EngineDescriptor* find(EngineKind kind) const noexcept;
  const EngineDescriptor* find(std::string_view name) const noexcept;

  /// Throwing lookups; the name overload's message lists the known names so
  /// CLI typos are self-explanatory.
  const EngineDescriptor& require(EngineKind kind) const;
  const EngineDescriptor& require(std::string_view name) const;

  /// All descriptors in registration order (builtins first). The span is
  /// invalidated by register_engine.
  std::span<const EngineDescriptor> descriptors() const noexcept { return descriptors_; }

  /// Comma-separated canonical names, for error messages and usage text.
  std::string known_names() const;

 private:
  std::vector<EngineDescriptor> descriptors_;
};

/// Builds a registry containing the built-in engines with this build's
/// availability facts (OpenMP presence, compiled SIMD extensions).
/// global() calls this once; tests can call it for a fresh instance.
EngineRegistry make_builtin_registry();

}  // namespace are::core
