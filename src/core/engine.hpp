#pragma once

#include <cstddef>
#include <cstdint>

#include "core/layer.hpp"
#include "core/year_loss_table.hpp"
#include "core/ylt_sink.hpp"
#include "parallel/parallel_for.hpp"
#include "yet/year_event_table.hpp"

namespace are::core {

/// Builds the (layer ids x trials) output table every driver fills —
/// shared by the engine entry points and the registry adapters.
inline YearLossTable make_year_loss_table(const Portfolio& portfolio,
                                          const yet::YearEventTable& yet_table) {
  std::vector<std::uint32_t> ids;
  ids.reserve(portfolio.layers.size());
  for (const Layer& layer : portfolio.layers) ids.push_back(layer.id);
  return YearLossTable(std::move(ids), yet_table.num_trials());
}

/// Aggregate analysis, sequential reference engine — the bit-identity
/// anchor. The paper's "Basic Algorithm for Aggregate Risk Analysis" —
/// (1) look up each event's loss in each covered ELT, (2) apply the ELT
/// financial terms and combine across ELTs, (3) apply occurrence terms,
/// (4) accumulate and apply aggregate terms — executes in the shared
/// trial-block kernel (core/trial_kernel.hpp); this driver runs it on one
/// thread over the whole trial range.
YearLossTable run_sequential(const Portfolio& portfolio, const yet::YearEventTable& yet_table);

/// Sequential engine emitting into a YltSink: the kernel processes trials
/// in blocks that never cross sink.block_trials(), each block's layer rows
/// staged in one block-sized scratch buffer and emitted — so with a
/// sharded sink the monolithic trials x layers table never exists. The
/// per-trial arithmetic is exactly run_sequential's, so a
/// MaterializedYltSink reproduces its YLT byte-for-byte.
void run_sequential_to_sink(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                            YltSink& sink);

struct ParallelOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  parallel::Partition partition = parallel::Partition::kStatic;
  /// Trials per dynamic/guided chunk.
  std::size_t chunk = 256;
};

/// Trial-parallel engine: one logical task per block of trials on a thread
/// pool, mirroring the paper's OpenMP implementation ("a single thread is
/// employed per trial"). Bit-identical output to run_sequential.
YearLossTable run_parallel(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                           const ParallelOptions& options = {});

/// Reuses an existing pool (cheaper when an application runs many analyses,
/// e.g. the real-time pricing scenario).
YearLossTable run_parallel(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                           parallel::ThreadPool& pool, const ParallelOptions& options = {});

struct ChunkedOptions {
  /// Events processed per chunk — the paper's GPU "chunk size" knob
  /// (Fig 5a: best at 4, flat to 12, cliff beyond shared-memory capacity).
  std::size_t chunk_size = 4;
  /// Threads for the trial-parallel outer loop (0 = hardware concurrency,
  /// 1 = fully sequential chunked execution).
  std::size_t num_threads = 1;
};

/// Chunked engine: the CPU analogue of the paper's optimised GPU kernel.
/// The kernel's combine/occurrence phases stage at most chunk_size events
/// at a time in the scratch buffers (the stand-in for per-SM shared
/// memory), with the path-dependent aggregate state carried across chunks
/// by TrialAccumulator. Bit-identical output to run_sequential.
YearLossTable run_chunked(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                          const ChunkedOptions& options = {});

/// Phase attribution for the instrumented engine (Fig 6b of the paper:
/// event fetch / ELT lookup / financial terms / layer terms) plus an
/// output phase for sink emission — zero on materialized runs (no sink),
/// so the four Fig-6b fractions still sum to 1.0 there.
struct PhaseBreakdown {
  double fetch_seconds = 0.0;
  double lookup_seconds = 0.0;
  double financial_seconds = 0.0;
  double layer_seconds = 0.0;
  double output_seconds = 0.0;

  double total_seconds() const noexcept {
    return fetch_seconds + lookup_seconds + financial_seconds + layer_seconds + output_seconds;
  }
  /// Fractions are 0.0 (not NaN) when nothing has been timed yet.
  double fetch_fraction() const noexcept { return fraction(fetch_seconds); }
  double lookup_fraction() const noexcept { return fraction(lookup_seconds); }
  double financial_fraction() const noexcept { return fraction(financial_seconds); }
  double layer_fraction() const noexcept { return fraction(layer_seconds); }
  double output_fraction() const noexcept { return fraction(output_seconds); }

 private:
  double fraction(double seconds) const noexcept {
    const double total = total_seconds();
    return total > 0.0 ? seconds / total : 0.0;
  }
};

/// Memory-access counts per run — the inputs to the perfmodel and simgpu
/// cost models. "Random" accesses are dependent loads with no locality
/// (ELT lookups); "streaming" accesses are sequential scans (event fetch).
struct AccessCounts {
  std::uint64_t events_fetched = 0;       // streaming reads of E_{i,k}
  std::uint64_t elt_lookups = 0;          // random reads into lookup tables
  std::uint64_t financial_applications = 0;
  std::uint64_t layer_term_applications = 0;
};

struct InstrumentedResult {
  YearLossTable ylt;
  PhaseBreakdown phases;
  AccessCounts accesses;
};

/// Runs the analysis with per-phase timers and access counters (the
/// kernel's instrumented block path: each phase sweeps the block's staged
/// event buffer), so attribution is directly comparable to Fig 6b. Access
/// counts follow the paper's line-by-line algorithm and match
/// predict_access_counts. Output YLT is bit-identical to run_sequential.
InstrumentedResult run_instrumented(const Portfolio& portfolio,
                                    const yet::YearEventTable& yet_table);

/// Pure access-count prediction without running the simulation (used by the
/// analytical models and asserted against the instrumented engine's actual
/// counters in tests).
AccessCounts predict_access_counts(const Portfolio& portfolio,
                                   const yet::YearEventTable& yet_table) noexcept;

}  // namespace are::core
