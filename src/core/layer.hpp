#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "elt/lookup.hpp"
#include "financial/terms.hpp"

namespace are::core {

/// One ELT as seen by a layer: the loss lookup structure plus the ELT-level
/// financial terms `I` (paper: "terms that are applied at the level of each
/// individual event loss").
struct LayerElt {
  std::shared_ptr<const elt::ILossLookup> lookup;
  financial::FinancialTerms terms;
};

/// A reinsurance layer (paper §II-A): a set of ELTs under layer terms
/// `T = (TOccR, TOccL, TAggR, TAggL)`. A typical layer covers 3-30 ELTs.
struct Layer {
  std::uint32_t id = 0;
  std::vector<LayerElt> elts;
  financial::LayerTerms terms;

  void validate() const {
    if (elts.empty()) throw std::invalid_argument("layer must cover at least one ELT");
    for (const LayerElt& layer_elt : elts) {
      if (!layer_elt.lookup) throw std::invalid_argument("layer ELT has no lookup table");
      layer_elt.terms.validate();
    }
    terms.validate();
  }

  /// True when every ELT of this layer is a plain direct access table — the
  /// precondition for the engines' raw-pointer fast path. Decorated tables
  /// (e.g. severity-stressed wrappers) intentionally fail this check and
  /// take the virtual path.
  bool all_direct_access() const noexcept {
    for (const LayerElt& layer_elt : elts) {
      if (!layer_elt.lookup || layer_elt.lookup->as_direct_access() == nullptr) {
        return false;
      }
    }
    return !elts.empty();
  }
};

/// The portfolio under analysis: the layers of the outermost loop of the
/// paper's algorithm (line 1: "for all a in L").
struct Portfolio {
  std::vector<Layer> layers;

  void validate() const {
    if (layers.empty()) throw std::invalid_argument("portfolio must contain at least one layer");
    for (const Layer& layer : layers) layer.validate();
  }

  std::size_t num_layers() const noexcept { return layers.size(); }
};

}  // namespace are::core
