#include "core/fused_engine.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/direct_elt_view.hpp"
#include "core/simd_terms.hpp"
#include "financial/trial_accumulator.hpp"
#include "parallel/task_scratch.hpp"
#include "simd/prefetch.hpp"
#include "simd/vec.hpp"

namespace are::core {

namespace {

using detail::DirectElt;
using detail::direct_view;

// Element-wise vertical math over contiguous buffers: the widest compiled
// lane type always pays here (unlike the trial-per-lane engine, there is no
// gather-width trade-off to narrow for).
using V = simd::VecD<simd::best_ext>;
constexpr std::size_t kW = V::kLanes;

/// Per-worker scratch, owned by a parallel::TaskScratch arena: buffers grow
/// to the tile high-water mark during the first tasks and are then reused,
/// so the steady-state hot path allocates nothing.
struct FusedScratch {
  std::vector<double> raw;       // one ELT's batch lookups for the tile
  std::vector<double> combined;  // per-event combined loss, then net of occurrence terms
};

/// Immutable per-layer execution state hoisted out of the parallel region:
/// the direct-table view (when eligible), the ELT/layer terms broadcast
/// into registers once, and the layer's YLT row.
struct LayerPlan {
  const Layer* layer;
  std::vector<DirectElt> direct;  // empty unless Layer::all_direct_access()
  std::vector<detail::EltTermsV<V>> elt_terms;
  detail::LayerTermsV<V> terms;
  std::span<double> losses;
};

/// Combined ELT loss per event over the tile, direct-table fast path:
/// guarded gathers straight out of the (untransposed) YET event slice. The
/// first ELT writes, later ELTs accumulate — same per-event summation order
/// as run_sequential (0.0 + x == x exactly for the engine's domain).
void combine_elts_direct(const LayerPlan& plan, const yet::EventId* events, std::size_t count,
                         double* combined) noexcept {
  for (std::size_t e = 0; e < plan.direct.size(); ++e) {
    const DirectElt& direct = plan.direct[e];
    const detail::EltTermsV<V>& terms_v = plan.elt_terms[e];
    const financial::FinancialTerms& terms = direct.terms;
    std::size_t i = 0;
    if (e == 0) {
      for (; i + kW <= count; i += kW) {
        const typename V::ivec idx = V::load_index(events + i);
        const typename V::reg loss = V::gather_guarded(direct.data, idx, direct.universe);
        V::store(combined + i, detail::apply_financial_v<V>(loss, terms_v));
      }
      for (; i < count; ++i) {
        const yet::EventId event = events[i];
        combined[i] = terms.apply(event < direct.universe ? direct.data[event] : 0.0);
      }
    } else {
      for (; i + kW <= count; i += kW) {
        const typename V::ivec idx = V::load_index(events + i);
        const typename V::reg loss = V::gather_guarded(direct.data, idx, direct.universe);
        V::store(combined + i,
                 V::add(V::load(combined + i), detail::apply_financial_v<V>(loss, terms_v)));
      }
      for (; i < count; ++i) {
        const yet::EventId event = events[i];
        combined[i] += terms.apply(event < direct.universe ? direct.data[event] : 0.0);
      }
    }
  }
}

/// Generic path: one lookup_many batch call per ELT (the prefetching
/// overrides in src/elt/), then the vectorized financial terms over the
/// staged raw losses.
void combine_elts_generic(const LayerPlan& plan, const yet::EventId* events, std::size_t count,
                          double* combined, std::vector<double>& raw) {
  raw.resize(count);
  const std::vector<LayerElt>& elts = plan.layer->elts;
  for (std::size_t e = 0; e < elts.size(); ++e) {
    elts[e].lookup->lookup_many(events, count, raw.data());
    const detail::EltTermsV<V>& terms_v = plan.elt_terms[e];
    const financial::FinancialTerms& terms = elts[e].terms;
    std::size_t i = 0;
    if (e == 0) {
      for (; i + kW <= count; i += kW) {
        V::store(combined + i, detail::apply_financial_v<V>(V::load(raw.data() + i), terms_v));
      }
      for (; i < count; ++i) combined[i] = terms.apply(raw[i]);
    } else {
      for (; i + kW <= count; i += kW) {
        V::store(combined + i,
                 V::add(V::load(combined + i),
                        detail::apply_financial_v<V>(V::load(raw.data() + i), terms_v)));
      }
      for (; i < count; ++i) combined[i] += terms.apply(raw[i]);
    }
  }
}

/// Tiles of [first, last) — one task's share of the trial range. Per tile,
/// every layer is processed while the tile's YET slice (and the staged
/// per-event buffers) are hot: this is the fusion that streams the YET once
/// per analysis instead of once per layer.
void run_tiles(const std::vector<LayerPlan>& plans, const yet::YearEventTable& yet_table,
               const CoverageWindow* window, std::size_t tile_trials, std::uint64_t first,
               std::uint64_t last, FusedScratch& scratch) {
  const std::span<const std::uint64_t> offsets = yet_table.offsets();
  const yet::EventId* all_events = yet_table.events().data();
  const float* all_times = yet_table.times().data();

  for (std::uint64_t t0 = first; t0 < last; t0 += tile_trials) {
    const std::uint64_t t1 = std::min<std::uint64_t>(t0 + tile_trials, last);

    // Stream the head of the NEXT tile's event ids toward the cache while
    // this tile computes (16 u32 ids per 64-byte line). The burst is capped:
    // past ~4 KB the lines would be evicted again before the multi-layer
    // compute reaches them, and an unbounded burst for large tiles would
    // pollute the very working set the tiling protects.
    constexpr std::uint64_t kPrefetchIds = 1024;  // 64 cache lines
    const std::uint64_t n1 = std::min<std::uint64_t>(t1 + tile_trials, last);
    const std::uint64_t next_end =
        std::min<std::uint64_t>(offsets[n1], offsets[t1] + kPrefetchIds);
    for (std::uint64_t p = offsets[t1]; p < next_end; p += 16) {
      simd::prefetch_read(all_events + p);
    }

    const std::uint64_t ev0 = offsets[t0];
    const std::size_t count = static_cast<std::size_t>(offsets[t1] - ev0);
    const yet::EventId* events = all_events + ev0;
    const float* times = all_times + ev0;
    scratch.combined.resize(count);
    double* combined = scratch.combined.data();

    for (const LayerPlan& plan : plans) {
      // Phase 1+2: batch ELT lookups + financial terms across ELTs.
      if (!plan.direct.empty()) {
        combine_elts_direct(plan, events, count, combined);
      } else {
        combine_elts_generic(plan, events, count, combined, scratch.raw);
      }

      // Phase 3: occurrence terms, vectorized in place.
      {
        std::size_t i = 0;
        for (; i + kW <= count; i += kW) {
          V::store(combined + i, detail::excess_v<V>(V::load(combined + i),
                                                     plan.terms.occ_retention,
                                                     plan.terms.occ_limit));
        }
        for (; i < count; ++i) combined[i] = plan.layer->terms.apply_occurrence(combined[i]);
      }

      // Phase 4: the path-dependent aggregate recurrence, per trial.
      for (std::uint64_t trial = t0; trial < t1; ++trial) {
        financial::TrialAccumulator accumulator(plan.layer->terms);
        const std::size_t begin = static_cast<std::size_t>(offsets[trial] - ev0);
        const std::size_t end = static_cast<std::size_t>(offsets[trial + 1] - ev0);
        if (window == nullptr) {
          for (std::size_t k = begin; k < end; ++k) accumulator.add_occurrence(combined[k]);
        } else {
          // Windowed semantics: out-of-window occurrences are skipped
          // entirely, so they do not advance the recurrence.
          for (std::size_t k = begin; k < end; ++k) {
            if (window->covers(times[k])) accumulator.add_occurrence(combined[k]);
          }
        }
        plan.losses[trial] = accumulator.trial_loss();
      }
    }
  }
}

}  // namespace

YearLossTable run_fused(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                        parallel::ThreadPool& pool, const FusedOptions& options) {
  portfolio.validate();
  if (options.tile_trials == 0) {
    throw std::invalid_argument("fused engine: tile_trials must be > 0");
  }
  if (options.window) options.window->validate();
  const CoverageWindow* window =
      (options.window && !options.window->full_year()) ? &*options.window : nullptr;

  std::vector<std::uint32_t> ids;
  for (const Layer& layer : portfolio.layers) ids.push_back(layer.id);
  YearLossTable ylt(std::move(ids), yet_table.num_trials());

  std::vector<LayerPlan> plans;
  plans.reserve(portfolio.layers.size());
  for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
    const Layer& layer = portfolio.layers[layer_index];
    LayerPlan plan;
    plan.layer = &layer;
    if (layer.all_direct_access()) plan.direct = direct_view(layer);
    plan.elt_terms.reserve(layer.elts.size());
    for (const LayerElt& layer_elt : layer.elts) {
      plan.elt_terms.push_back(detail::EltTermsV<V>::from(layer_elt.terms));
    }
    plan.terms = detail::LayerTermsV<V>::from(layer.terms);
    plan.losses = ylt.layer_losses(layer_index);
    plans.push_back(std::move(plan));
  }

  const std::uint64_t num_trials = yet_table.num_trials();
  if (num_trials == 0) return ylt;

  // Schedule by event count (the YET offsets are the cost prefix), claiming
  // ~one tile's worth of events per chunk, so skewed trial lengths spread
  // across workers instead of serialising on the longest static block.
  const double mean_events = std::max(1.0, yet_table.mean_events_per_trial());
  const std::uint64_t chunk_cost = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(options.tile_trials) * mean_events));
  parallel::TaskScratch<FusedScratch> scratch(pool);
  parallel::parallel_for_costed(
      pool, 0, num_trials, yet_table.offsets(), chunk_cost,
      [&](std::uint64_t first, std::uint64_t last) {
        run_tiles(plans, yet_table, window, options.tile_trials, first, last, scratch.local());
      },
      options.partition);
  return ylt;
}

YearLossTable run_fused(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                        const FusedOptions& options) {
  parallel::ThreadPool pool(options.num_threads);
  return run_fused(portfolio, yet_table, pool, options);
}

}  // namespace are::core
