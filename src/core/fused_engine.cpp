#include "core/fused_engine.hpp"

namespace are::core {

namespace {

/// The fused driver: widest compiled lanes, tile-sized kernel blocks, and
/// cost-aware scheduling over the YET offsets. Everything else — the
/// per-tile multi-layer term/emit body, window handling, the instrumented
/// tile path, sink block clamping — is the shared trial kernel.
void run_fused_impl(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                    parallel::ThreadPool& pool, const FusedOptions& options, YearLossTable* ylt,
                    YltSink* sink) {
  TrialKernelConfig config;
  // Widest RUNNABLE lanes — a load-time cpuid decision since the runtime
  // dispatch layer landed (simd/dispatch.hpp), so a baseline build still
  // runs AVX2 tiles on an AVX2 host. The registry's fused adapter
  // additionally applies the cache-regime narrowing; this legacy entry
  // point keeps the simple policy (identical bytes either way).
  config.extension = best_simd_extension();
  config.window = options.window;
  config.block_trials = options.tile_trials;
  config.instrument = options.phases != nullptr;

  KernelLaunch launch;
  launch.schedule = KernelLaunch::Schedule::kCosted;
  launch.pool = &pool;
  launch.partition = options.partition;
  run_trial_kernel(portfolio, yet_table, config, launch, ylt, sink, options.phases, nullptr);
}

}  // namespace

YearLossTable run_fused(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                        parallel::ThreadPool& pool, const FusedOptions& options) {
  YearLossTable ylt = make_year_loss_table(portfolio, yet_table);
  run_fused_impl(portfolio, yet_table, pool, options, &ylt, nullptr);
  return ylt;
}

YearLossTable run_fused(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                        const FusedOptions& options) {
  parallel::ThreadPool pool(options.num_threads);
  return run_fused(portfolio, yet_table, pool, options);
}

void run_fused_to_sink(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       parallel::ThreadPool& pool, const FusedOptions& options, YltSink& sink) {
  run_fused_impl(portfolio, yet_table, pool, options, nullptr, &sink);
}

void run_fused_to_sink(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       const FusedOptions& options, YltSink& sink) {
  parallel::ThreadPool pool(options.num_threads);
  run_fused_to_sink(portfolio, yet_table, pool, options, sink);
}

}  // namespace are::core
