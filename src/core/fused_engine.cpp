#include "core/fused_engine.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/direct_elt_view.hpp"
#include "core/simd_terms.hpp"
#include "financial/trial_accumulator.hpp"
#include "parallel/task_scratch.hpp"
#include "simd/prefetch.hpp"
#include "simd/vec.hpp"

namespace are::core {

namespace {

using Clock = std::chrono::steady_clock;

using detail::DirectElt;
using detail::direct_view;

// Element-wise vertical math over contiguous buffers: the widest compiled
// lane type always pays here (unlike the trial-per-lane engine, there is no
// gather-width trade-off to narrow for).
using V = simd::VecD<simd::best_ext>;
constexpr std::size_t kW = V::kLanes;

/// Per-worker scratch, owned by a parallel::TaskScratch arena: buffers grow
/// to the tile high-water mark during the first tasks and are then reused,
/// so the steady-state hot path allocates nothing.
struct FusedScratch {
  std::vector<double> raw;       // one ELT's batch lookups for the tile
  std::vector<double> combined;  // per-event combined loss, then net of occurrence terms
  std::vector<double> tile_losses;          // sink mode: layers x tile trials, emitted per tile
  std::vector<yet::EventId> staged_events;  // instrumented mode: the tile's staged YET slice
  std::vector<float> staged_times;
  PhaseBreakdown phases;  // instrumented mode: this worker's share, merged after the run
};

/// Immutable per-layer execution state hoisted out of the parallel region:
/// the direct-table view (when eligible), the ELT/layer terms broadcast
/// into registers once, and the layer's YLT row (empty in sink mode, where
/// tile rows are emitted instead).
struct LayerPlan {
  const Layer* layer;
  std::vector<DirectElt> direct;  // empty unless Layer::all_direct_access()
  std::vector<detail::EltTermsV<V>> elt_terms;
  detail::LayerTermsV<V> terms;
  std::span<double> losses;
};

/// Everything one tile pass needs, fixed for the whole run.
struct TilePass {
  const std::vector<LayerPlan>* plans = nullptr;
  const yet::YearEventTable* yet = nullptr;
  const CoverageWindow* window = nullptr;
  std::size_t tile_trials = 0;
  std::uint64_t block_trials = 0;  // sink alignment; 0 = unconstrained
  YltSink* sink = nullptr;         // null = write LayerPlan::losses in place
  bool instrument = false;         // time the phases into FusedScratch::phases
};

/// Combined ELT loss per event over the tile, direct-table fast path:
/// guarded gathers straight out of the (untransposed) YET event slice. The
/// first ELT writes, later ELTs accumulate — same per-event summation order
/// as run_sequential (0.0 + x == x exactly for the engine's domain).
void combine_elts_direct(const LayerPlan& plan, const yet::EventId* events, std::size_t count,
                         double* combined) noexcept {
  for (std::size_t e = 0; e < plan.direct.size(); ++e) {
    const DirectElt& direct = plan.direct[e];
    const detail::EltTermsV<V>& terms_v = plan.elt_terms[e];
    const financial::FinancialTerms& terms = direct.terms;
    std::size_t i = 0;
    if (e == 0) {
      for (; i + kW <= count; i += kW) {
        const typename V::ivec idx = V::load_index(events + i);
        const typename V::reg loss = V::gather_guarded(direct.data, idx, direct.universe);
        V::store(combined + i, detail::apply_financial_v<V>(loss, terms_v));
      }
      for (; i < count; ++i) {
        const yet::EventId event = events[i];
        combined[i] = terms.apply(event < direct.universe ? direct.data[event] : 0.0);
      }
    } else {
      for (; i + kW <= count; i += kW) {
        const typename V::ivec idx = V::load_index(events + i);
        const typename V::reg loss = V::gather_guarded(direct.data, idx, direct.universe);
        V::store(combined + i,
                 V::add(V::load(combined + i), detail::apply_financial_v<V>(loss, terms_v)));
      }
      for (; i < count; ++i) {
        const yet::EventId event = events[i];
        combined[i] += terms.apply(event < direct.universe ? direct.data[event] : 0.0);
      }
    }
  }
}

/// One ELT's staged raw losses folded into the combined buffer with the
/// vectorized financial terms; shared by the generic and the instrumented
/// paths (identical arithmetic, hence identical bytes).
void fold_raw_losses(const LayerPlan& plan, std::size_t e, const double* raw, std::size_t count,
                     double* combined) noexcept {
  const detail::EltTermsV<V>& terms_v = plan.elt_terms[e];
  const financial::FinancialTerms& terms = plan.layer->elts[e].terms;
  std::size_t i = 0;
  if (e == 0) {
    for (; i + kW <= count; i += kW) {
      V::store(combined + i, detail::apply_financial_v<V>(V::load(raw + i), terms_v));
    }
    for (; i < count; ++i) combined[i] = terms.apply(raw[i]);
  } else {
    for (; i + kW <= count; i += kW) {
      V::store(combined + i, V::add(V::load(combined + i),
                                    detail::apply_financial_v<V>(V::load(raw + i), terms_v)));
    }
    for (; i < count; ++i) combined[i] += terms.apply(raw[i]);
  }
}

/// Generic path: one lookup_many batch call per ELT (the prefetching
/// overrides in src/elt/), then the vectorized financial terms over the
/// staged raw losses.
void combine_elts_generic(const LayerPlan& plan, const yet::EventId* events, std::size_t count,
                          double* combined, std::vector<double>& raw) {
  raw.resize(count);
  const std::vector<LayerElt>& elts = plan.layer->elts;
  for (std::size_t e = 0; e < elts.size(); ++e) {
    elts[e].lookup->lookup_many(events, count, raw.data());
    fold_raw_losses(plan, e, raw.data(), count, combined);
  }
}

/// Phase 3: occurrence terms, vectorized in place.
void apply_occurrence_terms(const LayerPlan& plan, double* combined, std::size_t count) noexcept {
  std::size_t i = 0;
  for (; i + kW <= count; i += kW) {
    V::store(combined + i, detail::excess_v<V>(V::load(combined + i), plan.terms.occ_retention,
                                               plan.terms.occ_limit));
  }
  for (; i < count; ++i) combined[i] = plan.layer->terms.apply_occurrence(combined[i]);
}

/// Phase 4: the path-dependent aggregate recurrence, per trial, writing
/// row[trial - t0].
void aggregate_trials(const LayerPlan& plan, const double* combined, const float* times,
                      const CoverageWindow* window, std::span<const std::uint64_t> offsets,
                      std::uint64_t t0, std::uint64_t t1, std::uint64_t ev0,
                      double* row) noexcept {
  for (std::uint64_t trial = t0; trial < t1; ++trial) {
    financial::TrialAccumulator accumulator(plan.layer->terms);
    const std::size_t begin = static_cast<std::size_t>(offsets[trial] - ev0);
    const std::size_t end = static_cast<std::size_t>(offsets[trial + 1] - ev0);
    if (window == nullptr) {
      for (std::size_t k = begin; k < end; ++k) accumulator.add_occurrence(combined[k]);
    } else {
      // Windowed semantics: out-of-window occurrences are skipped
      // entirely, so they do not advance the recurrence.
      for (std::size_t k = begin; k < end; ++k) {
        if (window->covers(times[k])) accumulator.add_occurrence(combined[k]);
      }
    }
    row[trial - t0] = accumulator.trial_loss();
  }
}

double seconds_between(Clock::time_point a, Clock::time_point b) noexcept {
  return std::chrono::duration<double>(b - a).count();
}

/// Instrumented tile: the same arithmetic as the fast path (the YLT bytes
/// do not change — direct layers route through their lookup_many overrides,
/// which read the same table cells the gathers do) with the tile's YET
/// slice explicitly staged once (timed as the fetch phase) and per-phase
/// timers around the batched lookup / financial / layer sweeps.
void run_tile_instrumented(const TilePass& pass, std::uint64_t t0, std::uint64_t t1,
                           std::uint64_t ev0, std::size_t count, const yet::EventId* events,
                           const float* times, std::span<const std::uint64_t> offsets,
                           FusedScratch& scratch) {
  PhaseBreakdown& phases = scratch.phases;

  auto stamp = Clock::now();
  scratch.staged_events.assign(events, events + count);
  scratch.staged_times.assign(times, times + count);
  auto now = Clock::now();
  phases.fetch_seconds += seconds_between(stamp, now);
  stamp = now;

  const std::vector<LayerPlan>& plans = *pass.plans;
  double* combined = scratch.combined.data();
  scratch.raw.resize(count);
  const std::size_t num_tile_trials = static_cast<std::size_t>(t1 - t0);

  for (std::size_t layer_index = 0; layer_index < plans.size(); ++layer_index) {
    const LayerPlan& plan = plans[layer_index];
    const std::vector<LayerElt>& elts = plan.layer->elts;
    for (std::size_t e = 0; e < elts.size(); ++e) {
      stamp = Clock::now();
      elts[e].lookup->lookup_many(scratch.staged_events.data(), count, scratch.raw.data());
      now = Clock::now();
      phases.lookup_seconds += seconds_between(stamp, now);
      fold_raw_losses(plan, e, scratch.raw.data(), count, combined);
      phases.financial_seconds += seconds_between(now, Clock::now());
    }

    stamp = Clock::now();
    apply_occurrence_terms(plan, combined, count);
    double* row = pass.sink != nullptr
                      ? scratch.tile_losses.data() + layer_index * num_tile_trials
                      : plan.losses.data() + t0;
    aggregate_trials(plan, combined, scratch.staged_times.data(), pass.window, offsets, t0, t1,
                     ev0, row);
    phases.layer_seconds += seconds_between(stamp, Clock::now());
  }
}

/// Tiles of [first, last) — one task's share of the trial range. Per tile,
/// every layer is processed while the tile's YET slice (and the staged
/// per-event buffers) are hot: this is the fusion that streams the YET once
/// per analysis instead of once per layer. When a sink is attached, the
/// finished tile is emitted as one block per layer (tiles never cross a
/// sink block boundary, so each block lands in exactly one shard).
void run_tiles(const TilePass& pass, std::uint64_t first, std::uint64_t last,
               FusedScratch& scratch) {
  const std::vector<LayerPlan>& plans = *pass.plans;
  const std::span<const std::uint64_t> offsets = pass.yet->offsets();
  const yet::EventId* all_events = pass.yet->events().data();
  const float* all_times = pass.yet->times().data();

  for (std::uint64_t t0 = first, t1 = first; t0 < last; t0 = t1) {
    t1 = std::min<std::uint64_t>(t0 + pass.tile_trials, last);
    if (pass.block_trials != 0) {
      // Clamp the tile at the next sink block (= shard) boundary.
      const std::uint64_t boundary = (t0 / pass.block_trials + 1) * pass.block_trials;
      t1 = std::min<std::uint64_t>(t1, boundary);
    }

    // Stream the head of the NEXT tile's event ids toward the cache while
    // this tile computes (16 u32 ids per 64-byte line). The burst is capped:
    // past ~4 KB the lines would be evicted again before the multi-layer
    // compute reaches them, and an unbounded burst for large tiles would
    // pollute the very working set the tiling protects.
    constexpr std::uint64_t kPrefetchIds = 1024;  // 64 cache lines
    const std::uint64_t n1 = std::min<std::uint64_t>(t1 + pass.tile_trials, last);
    const std::uint64_t next_end =
        std::min<std::uint64_t>(offsets[n1], offsets[t1] + kPrefetchIds);
    for (std::uint64_t p = offsets[t1]; p < next_end; p += 16) {
      simd::prefetch_read(all_events + p);
    }

    const std::uint64_t ev0 = offsets[t0];
    const std::size_t count = static_cast<std::size_t>(offsets[t1] - ev0);
    const yet::EventId* events = all_events + ev0;
    const float* times = all_times + ev0;
    const std::size_t num_tile_trials = static_cast<std::size_t>(t1 - t0);
    scratch.combined.resize(count);
    double* combined = scratch.combined.data();
    if (pass.sink != nullptr) scratch.tile_losses.resize(plans.size() * num_tile_trials);

    if (pass.instrument) {
      run_tile_instrumented(pass, t0, t1, ev0, count, events, times, offsets, scratch);
    } else {
      for (std::size_t layer_index = 0; layer_index < plans.size(); ++layer_index) {
        const LayerPlan& plan = plans[layer_index];
        // Phase 1+2: batch ELT lookups + financial terms across ELTs.
        if (!plan.direct.empty()) {
          combine_elts_direct(plan, events, count, combined);
        } else {
          combine_elts_generic(plan, events, count, combined, scratch.raw);
        }

        apply_occurrence_terms(plan, combined, count);

        double* row = pass.sink != nullptr
                          ? scratch.tile_losses.data() + layer_index * num_tile_trials
                          : plan.losses.data() + t0;
        aggregate_trials(plan, combined, times, pass.window, offsets, t0, t1, ev0, row);
      }
    }

    if (pass.sink != nullptr) {
      for (std::size_t layer_index = 0; layer_index < plans.size(); ++layer_index) {
        pass.sink->emit(layer_index, t0,
                        {scratch.tile_losses.data() + layer_index * num_tile_trials,
                         num_tile_trials});
      }
    }
  }
}

/// Shared driver behind the materialized and sink entry points.
void run_fused_impl(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                    parallel::ThreadPool& pool, const FusedOptions& options, YearLossTable* ylt,
                    YltSink* sink) {
  portfolio.validate();
  if (options.window) options.window->validate();
  const CoverageWindow* window =
      (options.window && !options.window->full_year()) ? &*options.window : nullptr;
  const std::size_t tile_trials = options.tile_trials != 0
                                      ? options.tile_trials
                                      : default_tile_trials(portfolio, yet_table);

  std::vector<LayerPlan> plans;
  plans.reserve(portfolio.layers.size());
  for (std::size_t layer_index = 0; layer_index < portfolio.layers.size(); ++layer_index) {
    const Layer& layer = portfolio.layers[layer_index];
    LayerPlan plan;
    plan.layer = &layer;
    if (layer.all_direct_access()) plan.direct = direct_view(layer);
    plan.elt_terms.reserve(layer.elts.size());
    for (const LayerElt& layer_elt : layer.elts) {
      plan.elt_terms.push_back(detail::EltTermsV<V>::from(layer_elt.terms));
    }
    plan.terms = detail::LayerTermsV<V>::from(layer.terms);
    if (ylt != nullptr) plan.losses = ylt->layer_losses(layer_index);
    plans.push_back(std::move(plan));
  }

  const std::uint64_t num_trials = yet_table.num_trials();
  if (num_trials == 0) return;

  TilePass pass;
  pass.plans = &plans;
  pass.yet = &yet_table;
  pass.window = window;
  pass.tile_trials = tile_trials;
  pass.block_trials = sink != nullptr ? sink->block_trials() : 0;
  pass.sink = sink;
  pass.instrument = options.phases != nullptr;

  // Schedule by event count (the YET offsets are the cost prefix), claiming
  // ~one tile's worth of events per chunk, so skewed trial lengths spread
  // across workers instead of serialising on the longest static block.
  const double mean_events = std::max(1.0, yet_table.mean_events_per_trial());
  const std::uint64_t chunk_cost = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(tile_trials) * mean_events));
  parallel::TaskScratch<FusedScratch> scratch(pool);
  parallel::parallel_for_costed(
      pool, 0, num_trials, yet_table.offsets(), chunk_cost,
      [&](std::uint64_t first, std::uint64_t last) { run_tiles(pass, first, last, scratch.local()); },
      options.partition);

  if (options.phases != nullptr) {
    PhaseBreakdown total;
    scratch.for_each([&](const FusedScratch& worker) {
      total.fetch_seconds += worker.phases.fetch_seconds;
      total.lookup_seconds += worker.phases.lookup_seconds;
      total.financial_seconds += worker.phases.financial_seconds;
      total.layer_seconds += worker.phases.layer_seconds;
    });
    *options.phases = total;
  }
}

}  // namespace

std::size_t default_tile_trials(const Portfolio& portfolio,
                                const yet::YearEventTable& yet_table) noexcept {
  // Per staged event a tile touches ~20 bytes across the batched phases:
  // the event id (4 B) + timestamp (4 B) + combined-loss entry (8 B), plus
  // amortised shares of the raw-lookup buffer on the generic path.
  constexpr double kBytesPerEvent = 20.0;
  constexpr std::size_t kCacheResident = std::size_t{2} << 20;

  std::size_t footprint = 0;
  for (const Layer& layer : portfolio.layers) {
    for (const LayerElt& layer_elt : layer.elts) {
      if (layer_elt.lookup) footprint += layer_elt.lookup->memory_bytes();
    }
  }
  // Cache-resident tables leave the whole budget to the tile (the regime
  // where bench_fused_tiling measured ~256-trial optima at sub-scale); once
  // the tables far exceed the cache, lookups miss regardless and a smaller
  // tile keeps the staged buffers from thrashing as well.
  const std::size_t tile_budget =
      footprint <= kCacheResident ? (std::size_t{1} << 20) : (std::size_t{1} << 18);
  const double events = std::max(1.0, yet_table.mean_events_per_trial());
  const double tile = static_cast<double>(tile_budget) / (kBytesPerEvent * events);
  return std::clamp(static_cast<std::size_t>(tile), std::size_t{16}, std::size_t{4096});
}

YearLossTable run_fused(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                        parallel::ThreadPool& pool, const FusedOptions& options) {
  std::vector<std::uint32_t> ids;
  for (const Layer& layer : portfolio.layers) ids.push_back(layer.id);
  YearLossTable ylt(std::move(ids), yet_table.num_trials());
  run_fused_impl(portfolio, yet_table, pool, options, &ylt, nullptr);
  return ylt;
}

YearLossTable run_fused(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                        const FusedOptions& options) {
  parallel::ThreadPool pool(options.num_threads);
  return run_fused(portfolio, yet_table, pool, options);
}

void run_fused_to_sink(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       parallel::ThreadPool& pool, const FusedOptions& options, YltSink& sink) {
  run_fused_impl(portfolio, yet_table, pool, options, nullptr, &sink);
}

void run_fused_to_sink(const Portfolio& portfolio, const yet::YearEventTable& yet_table,
                       const FusedOptions& options, YltSink& sink) {
  parallel::ThreadPool pool(options.num_threads);
  run_fused_to_sink(portfolio, yet_table, pool, options, sink);
}

}  // namespace are::core
