// AVX-512 kernel translation unit. Compiled with -mavx512f and WITHOUT
// -march=native (see the per-extension stanza in CMakeLists.txt); the
// runtime dispatcher only routes here on hosts whose cpuid (and XCR0 ZMM
// state) reports AVX-512F. Also carries the AVX-512 gathered probe kernels
// for the hash tables.

#if !defined(__AVX512F__)
#error "kernel_ext_avx512.cpp must be compiled with -mavx512f (check CMakeLists.txt flags)"
#endif

#define ARE_PROBE_BODY_AVX512 1

#include "core/kernel_ext.hpp"
#include "core/trial_kernel_body.hpp"
#include "elt/probe_dispatch.hpp"
#include "elt/probe_kernels.hpp"

namespace are::core::detail {

std::unique_ptr<TrialBlockKernel::Impl> make_kernel_impl_avx512(
    const Portfolio& portfolio, const yet::YearEventTable& yet_table,
    const TrialKernelConfig& config, YearLossTable* ylt, YltSink* sink) {
  return std::make_unique<KernelImpl<simd::avx512_ext>>(portfolio, yet_table, config, ylt, sink);
}

}  // namespace are::core::detail

namespace are::elt::probe {

std::uint64_t robin_hood_probe_avx512(const RobinHoodTable& table, const EventId* events,
                                      std::size_t count, double* out) {
  return robin_hood_probe_avx512_body(table, events, count, out);
}

std::uint64_t cuckoo_probe_avx512(const CuckooTable& table, const EventId* events,
                                  std::size_t count, double* out) {
  return cuckoo_probe_avx512_body(table, events, count, out);
}

}  // namespace are::elt::probe
