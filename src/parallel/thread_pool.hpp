#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace are::parallel {

/// A fixed-size worker pool. The aggregate risk engine assigns one logical
/// task per trial range (mirroring the paper's one-OpenMP-thread-per-trial
/// design); the pool is the shared-memory substrate under the
/// ParallelEngine.
class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate (by design — engine kernels are noexcept).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace are::parallel
