#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace are::parallel {

/// A fixed-size worker pool. The aggregate risk engine assigns one logical
/// task per trial range (mirroring the paper's one-OpenMP-thread-per-trial
/// design); the pool is the shared-memory substrate under the
/// ParallelEngine.
class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Identity of the calling thread within its owning pool: 1..size() on a
  /// pool worker, 0 on any other thread (including the thread that runs a
  /// parallel_for body inline when the pool has one worker). A worker
  /// belongs to exactly one pool for its whole life, so the slot is stable
  /// — TaskScratch uses it to give each worker a private scratch arena
  /// without locks or allocation on the hot path.
  static std::size_t worker_slot() noexcept;

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate (by design — engine kernels are noexcept).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop(std::size_t slot);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace are::parallel
