#include "parallel/thread_pool.hpp"

#include <chrono>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace are::parallel {

namespace {

/// 1..size() inside a pool worker, 0 elsewhere. thread_local (not a pool
/// member): a thread serves one pool forever, so its slot never changes.
thread_local std::size_t tls_worker_slot = 0;

}  // namespace

std::size_t ThreadPool::worker_slot() noexcept { return tls_worker_slot; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop(std::size_t slot) {
  tls_worker_slot = slot;
  for (;;) {
    // Sampled once per claim, so a disabled run's loop is the original
    // lock/wait/execute sequence with one extra relaxed load.
    const bool telemetry = obs::enabled();
    std::chrono::steady_clock::time_point wait_start{};
    if (telemetry) wait_start = std::chrono::steady_clock::now();

    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down with an empty queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    if (telemetry) {
      // Idle time = queue wait + claim contention, the utilization gap a
      // timeline shows between this worker's task spans.
      static obs::Counter& tasks_claimed = obs::TelemetryRegistry::global().counter("pool.tasks");
      static obs::Counter& idle_ns = obs::TelemetryRegistry::global().counter("pool.idle_ns");
      tasks_claimed.increment();
      idle_ns.add(static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                                 std::chrono::steady_clock::now() - wait_start)
                                                 .count()));
    }
    {
      obs::Span span("pool.task", "pool");
      obs::ScopedTimer timer(
          telemetry ? &obs::TelemetryRegistry::global().histogram("pool.task_ns") : nullptr);
      task();
    }
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace are::parallel
