#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace are::parallel {

/// Per-worker scratch arena for parallel_for bodies: one T per pool worker
/// (plus one for the calling thread, which runs the body inline when the
/// pool has a single worker), constructed lazily on first use and reused
/// across every task that worker claims. This is what keeps the engines'
/// hot path allocation-free — a scratch object's buffers grow to the
/// high-water mark during the first few tasks and are then recycled, where
/// constructing scratch inside the body would reallocate per task.
///
/// Thread safety: slots are indexed by ThreadPool::worker_slot(), and a
/// slot is only ever touched by one thread at a time — a parallel_for call
/// either runs its body inline on the calling thread or submits every task
/// to the pool's workers, never both. worker_slot() is process-wide, so a
/// caller that is itself a worker of a *different* (larger) pool can reach
/// local() through the inline path with a slot beyond this arena; those
/// foreign slots fold to slot 0 (the calling-thread slot), which the
/// inline path owns exclusively.
template <typename T>
class TaskScratch {
 public:
  explicit TaskScratch(const ThreadPool& pool) : slots_(pool.size() + 1) {}

  /// The calling worker's scratch object, default-constructed on first use.
  T& local() {
    return local([] { return T{}; });
  }

  /// As local(), but first use constructs via `make()` (for scratch types
  /// without a default constructor, e.g. per-layer runners).
  template <typename Make>
  T& local(const Make& make) {
    std::size_t index = ThreadPool::worker_slot();
    if (index >= slots_.size()) index = 0;  // foreign pool's worker on the inline path
    std::unique_ptr<T>& slot = slots_[index];
    if (!slot) slot = std::make_unique<T>(make());
    return *slot;
  }

  /// Visits every scratch object constructed so far — the post-run merge
  /// step for per-worker accumulators (phase timers, counters). Only valid
  /// after the parallel region has completed; not synchronised with
  /// running tasks.
  template <typename Fn>
  void for_each(const Fn& fn) const {
    for (const std::unique_ptr<T>& slot : slots_) {
      if (slot) fn(*slot);
    }
  }

 private:
  std::vector<std::unique_ptr<T>> slots_;
};

}  // namespace are::parallel
