#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace are::parallel {

/// How an index range is split across workers.
enum class Partition {
  kStatic,   // contiguous equal blocks, one per worker — best locality
  kDynamic,  // fixed-size chunks claimed from an atomic cursor — best balance
  kGuided,   // exponentially shrinking chunks — balance with less contention
};

struct ForOptions {
  Partition partition = Partition::kStatic;
  /// Chunk granularity for dynamic/guided scheduling, in loop iterations.
  std::size_t chunk = 1024;
};

/// Runs body(begin, end) over disjoint subranges of [first, last) on the
/// pool, blocking until complete. `body` receives half-open index ranges and
/// must be safe to run concurrently on disjoint ranges. Runs inline when the
/// range is empty or the pool has one thread (keeps single-core containers
/// and tests deterministic and cheap).
template <typename Body>
void parallel_for(ThreadPool& pool, std::uint64_t first, std::uint64_t last, const Body& body,
                  ForOptions options = {}) {
  if (first >= last) return;
  const std::uint64_t count = last - first;
  const std::size_t workers = pool.size();
  if (workers <= 1 || count == 1) {
    body(first, last);
    return;
  }

  switch (options.partition) {
    case Partition::kStatic: {
      const std::uint64_t block = (count + workers - 1) / workers;
      for (std::size_t w = 0; w < workers; ++w) {
        const std::uint64_t lo = first + static_cast<std::uint64_t>(w) * block;
        if (lo >= last) break;
        const std::uint64_t hi = std::min<std::uint64_t>(lo + block, last);
        pool.submit([&body, lo, hi] { body(lo, hi); });
      }
      break;
    }
    case Partition::kDynamic: {
      auto cursor = std::make_shared<std::atomic<std::uint64_t>>(first);
      const std::uint64_t chunk = std::max<std::uint64_t>(1, options.chunk);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.submit([&body, cursor, chunk, last] {
          for (;;) {
            const std::uint64_t lo = cursor->fetch_add(chunk, std::memory_order_relaxed);
            if (lo >= last) return;
            body(lo, std::min<std::uint64_t>(lo + chunk, last));
          }
        });
      }
      break;
    }
    case Partition::kGuided: {
      auto cursor = std::make_shared<std::atomic<std::uint64_t>>(first);
      const std::uint64_t min_chunk = std::max<std::uint64_t>(1, options.chunk);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.submit([&body, cursor, min_chunk, last, workers] {
          for (;;) {
            std::uint64_t lo = cursor->load(std::memory_order_relaxed);
            std::uint64_t hi;
            do {
              if (lo >= last) return;
              const std::uint64_t remaining = last - lo;
              const std::uint64_t size =
                  std::max<std::uint64_t>(min_chunk, remaining / (2 * workers));
              hi = std::min<std::uint64_t>(lo + size, last);
            } while (!cursor->compare_exchange_weak(lo, hi, std::memory_order_relaxed));
            body(lo, hi);
          }
        });
      }
      break;
    }
  }
  pool.wait_idle();
}

namespace detail {

/// First index hi in (lo, last] whose chunk [lo, hi) carries at least
/// `budget` cost under the monotone prefix, or last. Always advances by at
/// least one index, so zero-cost indices (e.g. empty trials) cannot stall
/// a claimant.
inline std::uint64_t advance_by_cost(std::span<const std::uint64_t> cost_prefix,
                                     std::uint64_t lo, std::uint64_t last,
                                     std::uint64_t budget) noexcept {
  const std::uint64_t target = cost_prefix[lo] + budget;
  const auto begin = cost_prefix.begin();
  // Search ends at index `last` exclusive: when every candidate chunk falls
  // short of the budget the claimant takes everything up to `last`.
  const auto it = std::lower_bound(begin + static_cast<std::ptrdiff_t>(lo + 1),
                                   begin + static_cast<std::ptrdiff_t>(last), target);
  return static_cast<std::uint64_t>(it - begin);
}

/// Costed-chunk execution with telemetry: every claimed chunk is one span
/// on the worker's timeline (how well equal-cost chunks actually pack) and
/// one tick of parallel.costed_chunks.
template <typename Body>
inline void run_costed_chunk(const Body& body, std::uint64_t lo, std::uint64_t hi) {
  if (obs::enabled()) {
    static obs::Counter& chunks =
        obs::TelemetryRegistry::global().counter("parallel.costed_chunks");
    chunks.increment();
  }
  obs::Span span("parallel.costed_chunk", "parallel");
  body(lo, hi);
}

}  // namespace detail

/// Cost-aware parallel_for for ranges whose per-index work is skewed (the
/// aggregate engines' trials: a Poisson/neg-binomial YET makes some trials
/// many times longer than others, so equal-*count* chunks serialize on the
/// worker that drew the long trials). `cost_prefix` is a monotone prefix
/// sum over the index domain — cost of [a, b) is prefix[b] - prefix[a] and
/// prefix must be valid on [first, last]; the YET's offsets() span is
/// exactly this shape for trial indices. Chunk boundaries are chosen so
/// every chunk carries ~`chunk_cost` cost:
///   kStatic  — equal-cost contiguous blocks, at most one per worker
///              (chunk_cost is ignored; best locality, balanced by cost)
///   kDynamic — ~chunk_cost-sized chunks claimed from an atomic cursor
///   kGuided  — cost-proportional shrinking chunks, floored at chunk_cost
/// Same body contract and inline small-range behaviour as parallel_for.
template <typename Body>
void parallel_for_costed(ThreadPool& pool, std::uint64_t first, std::uint64_t last,
                         std::span<const std::uint64_t> cost_prefix, std::uint64_t chunk_cost,
                         const Body& body, Partition partition = Partition::kDynamic) {
  if (first >= last) return;
  const std::size_t workers = pool.size();
  if (workers <= 1 || last - first == 1) {
    detail::run_costed_chunk(body, first, last);
    return;
  }
  const std::uint64_t min_cost = std::max<std::uint64_t>(1, chunk_cost);

  switch (partition) {
    case Partition::kStatic: {
      const std::uint64_t total = cost_prefix[last] - cost_prefix[first];
      const std::uint64_t block_cost = total / workers + 1;  // ceil-ish: <= workers blocks
      std::uint64_t lo = first;
      while (lo < last) {
        const std::uint64_t hi = detail::advance_by_cost(cost_prefix, lo, last, block_cost);
        pool.submit([&body, lo, hi] { detail::run_costed_chunk(body, lo, hi); });
        lo = hi;
      }
      break;
    }
    case Partition::kDynamic: {
      auto cursor = std::make_shared<std::atomic<std::uint64_t>>(first);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.submit([&body, cursor, cost_prefix, min_cost, last] {
          for (;;) {
            std::uint64_t lo = cursor->load(std::memory_order_relaxed);
            std::uint64_t hi;
            do {
              if (lo >= last) return;
              hi = detail::advance_by_cost(cost_prefix, lo, last, min_cost);
            } while (!cursor->compare_exchange_weak(lo, hi, std::memory_order_relaxed));
            detail::run_costed_chunk(body, lo, hi);
          }
        });
      }
      break;
    }
    case Partition::kGuided: {
      auto cursor = std::make_shared<std::atomic<std::uint64_t>>(first);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.submit([&body, cursor, cost_prefix, min_cost, last, workers] {
          for (;;) {
            std::uint64_t lo = cursor->load(std::memory_order_relaxed);
            std::uint64_t hi;
            do {
              if (lo >= last) return;
              const std::uint64_t remaining = cost_prefix[last] - cost_prefix[lo];
              const std::uint64_t budget =
                  std::max<std::uint64_t>(min_cost, remaining / (2 * workers));
              hi = detail::advance_by_cost(cost_prefix, lo, last, budget);
            } while (!cursor->compare_exchange_weak(lo, hi, std::memory_order_relaxed));
            detail::run_costed_chunk(body, lo, hi);
          }
        });
      }
      break;
    }
  }
  pool.wait_idle();
}

}  // namespace are::parallel
