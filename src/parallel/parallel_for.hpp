#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "parallel/thread_pool.hpp"

namespace are::parallel {

/// How an index range is split across workers.
enum class Partition {
  kStatic,   // contiguous equal blocks, one per worker — best locality
  kDynamic,  // fixed-size chunks claimed from an atomic cursor — best balance
  kGuided,   // exponentially shrinking chunks — balance with less contention
};

struct ForOptions {
  Partition partition = Partition::kStatic;
  /// Chunk granularity for dynamic/guided scheduling, in loop iterations.
  std::size_t chunk = 1024;
};

/// Runs body(begin, end) over disjoint subranges of [first, last) on the
/// pool, blocking until complete. `body` receives half-open index ranges and
/// must be safe to run concurrently on disjoint ranges. Runs inline when the
/// range is empty or the pool has one thread (keeps single-core containers
/// and tests deterministic and cheap).
template <typename Body>
void parallel_for(ThreadPool& pool, std::uint64_t first, std::uint64_t last, const Body& body,
                  ForOptions options = {}) {
  if (first >= last) return;
  const std::uint64_t count = last - first;
  const std::size_t workers = pool.size();
  if (workers <= 1 || count == 1) {
    body(first, last);
    return;
  }

  switch (options.partition) {
    case Partition::kStatic: {
      const std::uint64_t block = (count + workers - 1) / workers;
      for (std::size_t w = 0; w < workers; ++w) {
        const std::uint64_t lo = first + static_cast<std::uint64_t>(w) * block;
        if (lo >= last) break;
        const std::uint64_t hi = std::min<std::uint64_t>(lo + block, last);
        pool.submit([&body, lo, hi] { body(lo, hi); });
      }
      break;
    }
    case Partition::kDynamic: {
      auto cursor = std::make_shared<std::atomic<std::uint64_t>>(first);
      const std::uint64_t chunk = std::max<std::uint64_t>(1, options.chunk);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.submit([&body, cursor, chunk, last] {
          for (;;) {
            const std::uint64_t lo = cursor->fetch_add(chunk, std::memory_order_relaxed);
            if (lo >= last) return;
            body(lo, std::min<std::uint64_t>(lo + chunk, last));
          }
        });
      }
      break;
    }
    case Partition::kGuided: {
      auto cursor = std::make_shared<std::atomic<std::uint64_t>>(first);
      const std::uint64_t min_chunk = std::max<std::uint64_t>(1, options.chunk);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.submit([&body, cursor, min_chunk, last, workers] {
          for (;;) {
            std::uint64_t lo = cursor->load(std::memory_order_relaxed);
            std::uint64_t hi;
            do {
              if (lo >= last) return;
              const std::uint64_t remaining = last - lo;
              const std::uint64_t size =
                  std::max<std::uint64_t>(min_chunk, remaining / (2 * workers));
              hi = std::min<std::uint64_t>(lo + size, last);
            } while (!cursor->compare_exchange_weak(lo, hi, std::memory_order_relaxed));
            body(lo, hi);
          }
        });
      }
      break;
    }
  }
  pool.wait_idle();
}

}  // namespace are::parallel
