#pragma once

#include <cmath>

#include "catalog/event_catalog.hpp"
#include "exposure/exposure.hpp"

namespace are::catmodel {

/// Hazard intensity experienced at a site from one event: the event's
/// epicentral intensity attenuated by an exponential footprint in
/// normalized distance. Sites in a different region are unaffected.
///
/// `epicentral_intensity` is drawn once per event by the model (lognormal
/// with the event's mu/sigma); this function is the deterministic spatial
/// part, so the same event produces spatially coherent damage across the
/// exposure set — the mechanism that makes catastrophe losses correlated
/// within an ELT.
inline double intensity_at_site(const catalog::CatalogEvent& event,
                                const exposure::Site& site,
                                double epicentral_intensity) noexcept {
  if (site.region != event.region) return 0.0;
  const double dx = static_cast<double>(site.x) - static_cast<double>(event.centre_x);
  const double dy = static_cast<double>(site.y) - static_cast<double>(event.centre_y);
  const double distance = std::sqrt(dx * dx + dy * dy);
  return epicentral_intensity * std::exp(-event.footprint_decay * distance);
}

/// Footprint radius beyond which intensity is below `threshold` — used to
/// skip far-away sites cheaply.
inline double footprint_radius(const catalog::CatalogEvent& event, double epicentral_intensity,
                               double threshold) noexcept {
  if (epicentral_intensity <= threshold) return 0.0;
  return std::log(epicentral_intensity / threshold) / event.footprint_decay;
}

}  // namespace are::catmodel
