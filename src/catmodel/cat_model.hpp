#pragma once

#include <cstdint>

#include "catalog/event_catalog.hpp"
#include "elt/event_loss_table.hpp"
#include "exposure/exposure.hpp"

namespace are::catmodel {

/// Catastrophe-model configuration (pipeline stage 1 of the paper: "each
/// event-exposure pair is analysed by a risk model that quantifies the
/// hazard intensity at the exposure site, the vulnerability of the building
/// and resulting damage level, and the resultant expected loss, given the
/// customer's financial terms").
struct CatModelConfig {
  /// Hazard intensities below this contribute no loss (footprint cutoff).
  double intensity_threshold = 0.05;
  /// Event losses below this do not enter the ELT (keeps the ELT sparse,
  /// which is the regime the paper's direct access table discussion
  /// assumes). Industrial thresholds are a few thousand dollars: below
  /// that, the event is noise against a multi-million-dollar book.
  double loss_threshold = 1000.0;
  /// Secondary uncertainty: when true the damage ratio is Beta-distributed
  /// around the vulnerability curve's mean with this concentration (higher
  /// = tighter around the mean); when false the mean damage ratio is used
  /// directly. (Paper §IV: extending the system to represent "losses as a
  /// distribution rather than a simple mean".)
  bool secondary_uncertainty = false;
  double damage_concentration = 10.0;
  /// Seed for the per-event epicentral intensity and damage draws.
  std::uint64_t seed = 42;
};

/// Expected ground-up loss of one event against one site (no sampling; uses
/// the mean damage ratio). Exposed for unit tests and examples.
double expected_site_loss(const catalog::CatalogEvent& event, const exposure::Site& site,
                          double epicentral_intensity);

/// Runs the catastrophe model over every event of `catalog` against
/// `exposure_set`, producing the Event Loss Table for that exposure set.
/// Losses are net of site-level deductible/limit (the customer's terms).
elt::EventLossTable run_cat_model(const catalog::EventCatalog& catalog,
                                  const exposure::ExposureSet& exposure_set,
                                  const CatModelConfig& config = {});

}  // namespace are::catmodel
