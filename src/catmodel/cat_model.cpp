#include "catmodel/cat_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "catmodel/hazard.hpp"
#include "catmodel/vulnerability.hpp"
#include "financial/terms.hpp"
#include "rng/distributions.hpp"
#include "rng/stream.hpp"

namespace are::catmodel {

double expected_site_loss(const catalog::CatalogEvent& event, const exposure::Site& site,
                          double epicentral_intensity) {
  const double intensity = intensity_at_site(event, site, epicentral_intensity);
  if (intensity <= 0.0) return 0.0;
  const VulnerabilityCurve curve = vulnerability_for(site.construction, event.peril);
  const double mdr = curve.mean_damage_ratio(intensity);
  const double ground_up = mdr * site.value * occupancy_factor(site.occupancy);
  // Customer's financial terms: site deductible and limit.
  return financial::excess_of_loss(ground_up, site.deductible, site.limit);
}

elt::EventLossTable run_cat_model(const catalog::EventCatalog& catalog,
                                  const exposure::ExposureSet& exposure_set,
                                  const CatModelConfig& config) {
  // Bucket sites by region so each event only visits plausible targets.
  std::array<std::vector<const exposure::Site*>, catalog::kRegionCount> sites_by_region;
  for (const exposure::Site& site : exposure_set.sites()) {
    sites_by_region[static_cast<int>(site.region)].push_back(&site);
  }

  std::vector<elt::EventLoss> records;
  for (const catalog::CatalogEvent& event : catalog.events()) {
    const auto& sites = sites_by_region[static_cast<int>(event.region)];
    if (sites.empty()) continue;

    // One substream per event: the ELT is reproducible and insensitive to
    // catalog iteration order.
    rng::Stream stream(config.seed, /*stream_id=*/3, /*substream_id=*/event.id);
    const double epicentral =
        rng::sample_lognormal(stream, event.intensity_mu, event.intensity_sigma);

    const double radius = footprint_radius(event, epicentral, config.intensity_threshold);
    if (radius <= 0.0) continue;
    const double radius_sq = radius * radius;

    double event_loss = 0.0;
    for (const exposure::Site* site : sites) {
      const double dx = static_cast<double>(site->x) - static_cast<double>(event.centre_x);
      const double dy = static_cast<double>(site->y) - static_cast<double>(event.centre_y);
      if (dx * dx + dy * dy > radius_sq) continue;

      const double intensity = intensity_at_site(event, *site, epicentral);
      if (intensity < config.intensity_threshold) continue;

      const VulnerabilityCurve curve = vulnerability_for(site->construction, event.peril);
      double damage_ratio = curve.mean_damage_ratio(intensity);
      if (config.secondary_uncertainty && damage_ratio > 0.0 && damage_ratio < 1.0) {
        // Beta with mean = damage_ratio, concentration = damage_concentration.
        const double a = damage_ratio * config.damage_concentration;
        const double b = (1.0 - damage_ratio) * config.damage_concentration;
        damage_ratio = rng::sample_beta(stream, a, b);
      }
      const double ground_up = damage_ratio * site->value * occupancy_factor(site->occupancy);
      event_loss += financial::excess_of_loss(ground_up, site->deductible, site->limit);
    }

    if (event_loss >= config.loss_threshold) {
      records.push_back({event.id, event_loss});
    }
  }

  return elt::EventLossTable(std::move(records));
}

}  // namespace are::catmodel
