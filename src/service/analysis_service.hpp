#pragma once

// The resident analysis service: PortfolioSession (resident YET + pool +
// books) + RequestBroker (cost-aware admission off the telemetry registry)
// + ResultCache (fingerprint-keyed quotes) + the delta executor (ground-up
// loss capture/replay through the trial kernel), composed behind one
// quote() call. This is what `are_cli serve` hosts; tests drive it
// in-process.
//
// A quote resolves in one of four ways, in order:
//
//   cached — the fingerprint (portfolio id + generation, effective terms,
//            engine, trial count, window, phases flag) hits the result
//            cache: no admission, no engine, the shared outcome is returned
//            as-is. Bit-identical to the run that populated it by identity.
//   rejected — the broker refuses admission (structured reason: request
//            too large, queue full, memory pressure); outcome is null.
//   delta  — the book has published ground-up losses and the request only
//            varies layer terms / window / trial aggregation: the kernel
//            replays the cached combined losses, skipping the fetch +
//            lookup + per-ELT financial phases entirely (zero elt.*.lookups
//            by construction) and re-running occurrence terms and the
//            aggregate recurrence. Bit-identical to a cold run.
//   cold   — full execution; opportunistically captures ground-up losses
//            (claim/publish protocol, budget-gated) so the *next* terms
//            tweak is a delta.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/analysis.hpp"
#include "core/status.hpp"
#include "obs/telemetry.hpp"
#include "pricing/pricing.hpp"
#include "service/portfolio_session.hpp"
#include "service/request_broker.hpp"
#include "service/result_cache.hpp"

namespace are::obs {
class MetricsServer;
}  // namespace are::obs

namespace are::service {

class AccessLog;

struct ServiceConfig {
  SessionConfig session;
  BrokerConfig broker;
  std::size_t cache_entries = 64;
  pricing::PricingAssumptions assumptions;
  /// Registry name used when a request does not name an engine.
  std::string default_engine = "fused";
  /// Sharded-output knobs for quotes with QuoteRequest::sharded (shard
  /// size, spill dir, memory budget). The tiny-budget + spill-dir
  /// combination is how a server is driven into the out-of-core regime.
  core::ShardingOptions sharding;
  /// TCP port for the embedded scrape endpoint (obs::MetricsServer:
  /// /metrics, /healthz, /statusz). -1 = no server (the default); 0 =
  /// ephemeral port, read back via metrics_server()->port().
  int metrics_port = -1;
  std::string metrics_bind = "127.0.0.1";
  /// Append-only JSONL access log (one line per quote); empty = off.
  /// The constructor throws std::runtime_error when the path cannot be
  /// opened.
  std::string access_log_path;
};

/// Per-request replacement of one layer's terms, applied on top of the
/// registered book without mutating it — the what-if probe of a pricing
/// session. Layer terms sit after the ground-up combine stage, so an
/// override never invalidates the delta fast path.
struct TermsOverride {
  std::uint32_t layer_id = 0;
  financial::LayerTerms terms;
};

struct QuoteRequest {
  std::string portfolio_id;
  std::vector<TermsOverride> overrides;
  /// Engine registry name; empty = ServiceConfig::default_engine.
  std::string engine;
  std::optional<core::CoverageWindow> window;
  /// Fill QuoteOutcome::phases (Fig-6b attribution for this request).
  bool collect_phases = false;
  /// false bypasses the result cache (lookup and insert) — forces execution.
  bool use_cache = true;
  /// false forbids ground-up replay *and* capture — forces the cold path.
  bool use_delta = true;
  /// Wall-clock budget for this quote in milliseconds; 0 = none. The kernel
  /// checks the deadline between trial blocks, so an expired quote stops
  /// within one block and fails with status kDeadlineExceeded — admitted
  /// broker cost released, no partial state, nothing cached.
  std::uint64_t deadline_ms = 0;
  /// Execute through the sharded out-of-core path (shard::run_sharded with
  /// ServiceConfig::sharding) and materialize the result. Output bytes are
  /// identical to the default path; what changes is the failure surface —
  /// a spill failure under memory pressure fails THIS quote with
  /// kSpillFailure instead of crashing the process.
  bool sharded = false;
};

enum class QuoteSource { kRejected, kCold, kCached, kDelta, kFailed };
std::string_view to_string(QuoteSource source) noexcept;

struct QuoteResponse {
  /// Service-assigned id ("q-000001", unique per service instance) — the
  /// correlation key across the wire response, the access log, and the
  /// trace (instant event + span args). Assigned before anything can
  /// fail, so every response carries one.
  std::string request_id;
  QuoteSource source = QuoteSource::kRejected;
  /// kOk for served quotes; the taxonomy code + message otherwise (both
  /// rejections and kFailed executions). This is the ONE failure channel
  /// crossing the service boundary — quote() throws only on malformed
  /// requests (std::invalid_argument), never on execution failure.
  core::Status status;
  AdmissionDecision admission;
  /// Null exactly when rejected. Shared with the cache: hits alias the
  /// original outcome.
  std::shared_ptr<const QuoteOutcome> outcome;
  std::uint64_t fingerprint = 0;
  std::string engine;
  double wall_seconds = 0.0;
  /// Registry change over this request (Snapshot::diff of before/after),
  /// present when telemetry collection is enabled. Exact per-request
  /// attribution only without overlapping requests — the registry is
  /// process-global.
  std::optional<obs::Snapshot> telemetry;
};

class AnalysisService {
 public:
  /// Starts the embedded metrics server and opens the access log when the
  /// config asks for them (throws std::runtime_error when either cannot
  /// bind/open — fail at startup, not on the first quote).
  AnalysisService(yet::YearEventTable yet_table, ServiceConfig config = {});
  ~AnalysisService();

  /// Registers/replaces a book and drops its cached quotes.
  void register_portfolio(std::string id, core::Portfolio portfolio);

  /// Durable terms-only mutation of the book itself (vs. the per-request
  /// QuoteRequest::overrides). Drops the book's cached quotes; keeps its
  /// ground-up losses (see PortfolioSession::update_layer_terms).
  void update_layer_terms(std::string_view id, std::uint32_t layer_id,
                          const financial::LayerTerms& terms);

  /// The front door. Throws std::invalid_argument on malformed requests
  /// (unknown portfolio/layer/engine, bad window); admission refusals are
  /// returned as kRejected responses and execution failures (deadline,
  /// cancellation, spill, corruption, allocation) as kFailed responses
  /// carrying a structured core::Status — never exceptions.
  QuoteResponse quote(const QuoteRequest& request);

  PortfolioSession& session() noexcept { return session_; }
  RequestBroker& broker() noexcept { return broker_; }
  ResultCache& cache() noexcept { return cache_; }
  const ServiceConfig& config() const noexcept { return config_; }

  /// Null unless ServiceConfig::metrics_port >= 0.
  obs::MetricsServer* metrics_server() noexcept { return metrics_server_.get(); }
  /// Null unless ServiceConfig::access_log_path is set.
  AccessLog* access_log() noexcept { return access_log_.get(); }

 private:
  std::uint64_t fingerprint_of(std::string_view portfolio_id, std::uint64_t generation,
                               const core::Portfolio& effective,
                               std::string_view engine_name,
                               const QuoteRequest& request) const;

  ServiceConfig config_;
  PortfolioSession session_;
  RequestBroker broker_;
  ResultCache cache_;
  std::atomic<std::uint64_t> next_request_id_{0};
  std::unique_ptr<obs::MetricsServer> metrics_server_;
  std::unique_ptr<AccessLog> access_log_;
};

}  // namespace are::service
