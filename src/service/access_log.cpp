#include "service/access_log.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace are::service {

namespace {

constexpr std::string_view kFaultPrefix = "fault.injected.";

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

RequestLogEntry make_log_entry(const QuoteRequest& request, const QuoteResponse& response) {
  RequestLogEntry entry;
  entry.request_id = response.request_id;
  entry.portfolio_id = request.portfolio_id;
  entry.source = std::string(to_string(response.source));
  entry.status = response.source == QuoteSource::kRejected ? "rejected"
                 : response.source == QuoteSource::kFailed ? "error"
                                                           : "ok";
  entry.code = std::string(core::to_string(response.status.code()));
  entry.engine = response.engine;
  {
    char fp[24];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(response.fingerprint));
    entry.fingerprint_hex = fp;
  }
  entry.admission = std::string(to_string(response.admission.outcome));
  entry.admission_reason = std::string(to_string(response.admission.reason));
  entry.queue_wait_seconds = response.admission.queue_wait_seconds;
  entry.deadline_ms = request.deadline_ms;
  entry.wall_ns = static_cast<std::uint64_t>(response.wall_seconds * 1e9);
  if (response.telemetry.has_value()) {
    const obs::Snapshot& diff = *response.telemetry;
    for (const auto& counter : diff.counters) {
      const std::string& name = counter.name;
      if (name.size() > 4 && name.compare(0, 4, "elt.") == 0 &&
          name.compare(name.size() - 8, 8, ".lookups") == 0) {
        entry.elt_lookups += counter.value;
      } else if (name == "shard.bytes_spilled") {
        entry.bytes_spilled = counter.value;
      } else if (counter.value != 0 && name.size() > kFaultPrefix.size() &&
                 name.compare(0, kFaultPrefix.size(), kFaultPrefix) == 0) {
        entry.fault_fires.emplace_back(name.substr(kFaultPrefix.size()), counter.value);
      }
    }
  }
  return entry;
}

std::string access_log_json(const RequestLogEntry& entry) {
  std::ostringstream out;
  out << "{\"request_id\":\"" << json_escape(entry.request_id) << "\""
      << ",\"portfolio\":\"" << json_escape(entry.portfolio_id) << "\""
      << ",\"source\":\"" << entry.source << "\""
      << ",\"status\":\"" << entry.status << "\""
      << ",\"code\":\"" << entry.code << "\""
      << ",\"engine\":\"" << json_escape(entry.engine) << "\""
      << ",\"fingerprint\":\"" << entry.fingerprint_hex << "\""
      << ",\"admission\":\"" << entry.admission << "\""
      << ",\"reason\":\"" << entry.admission_reason << "\""
      << ",\"queue_wait_seconds\":" << entry.queue_wait_seconds
      << ",\"deadline_ms\":" << entry.deadline_ms << ",\"wall_ns\":" << entry.wall_ns
      << ",\"elt_lookups\":" << entry.elt_lookups
      << ",\"bytes_spilled\":" << entry.bytes_spilled << ",\"fault_fires\":{";
  for (std::size_t i = 0; i < entry.fault_fires.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << json_escape(entry.fault_fires[i].first)
        << "\":" << entry.fault_fires[i].second;
  }
  out << "}}";
  return out.str();
}

std::string access_log_human(const RequestLogEntry& entry) {
  std::ostringstream out;
  out << "[serve] " << entry.request_id << " " << entry.portfolio_id
      << " source=" << entry.source << " status=" << entry.status;
  if (entry.status != "ok") out << " code=" << entry.code;
  out << " engine=" << entry.engine << " wall_ms=" << static_cast<double>(entry.wall_ns) / 1e6;
  if (entry.queue_wait_seconds > 0.0) out << " queue_wait_s=" << entry.queue_wait_seconds;
  out << " elt_lookups=" << entry.elt_lookups;
  if (entry.bytes_spilled != 0) out << " bytes_spilled=" << entry.bytes_spilled;
  for (const auto& [site, fires] : entry.fault_fires) {
    out << " fault." << site << "=" << fires;
  }
  return out.str();
}

AccessLog::AccessLog(const std::string& path) : out_(path, std::ios::app) {
  if (!out_) throw std::runtime_error("cannot open access log path " + path);
}

void AccessLog::write(const RequestLogEntry& entry) {
  std::lock_guard<std::mutex> guard(mutex_);
  out_ << access_log_json(entry) << '\n';
  out_.flush();
}

}  // namespace are::service
