#pragma once

// Result cache of the resident analysis service: completed quotes keyed by
// a fingerprint of everything that determines the YLT bytes — portfolio id
// + generation, effective layer terms (layer and per-ELT), engine name,
// trial range, and coverage window. Entries hold the full YearLossTable
// (shared_ptr, so concurrent hits share one copy and a hit can serve the
// same CSV a cold run would write) plus the per-layer quotes priced from
// it.
//
// Invalidation: the portfolio generation is part of the fingerprint, so any
// book mutation makes prior entries unreachable; invalidate(portfolio_id)
// additionally drops them eagerly so a mutated book never pins stale
// tables in memory. Eviction is LRU over a fixed entry cap.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "core/year_loss_table.hpp"
#include "pricing/pricing.hpp"

namespace are::service {

/// What one completed quote produced. Immutable once cached; shared between
/// the cache and every response that hit it.
struct QuoteOutcome {
  core::YearLossTable ylt;
  std::vector<pricing::Quote> quotes;  // one per layer, portfolio order
  /// Fig-6b attribution when the request asked for phases (a delta run
  /// reports lookup_seconds == 0 here — the acceptance signal).
  std::optional<core::PhaseBreakdown> phases;
};

/// FNV-1a 64 accumulator over the request identity. Doubles are mixed as
/// bit patterns: fingerprints distinguish exactly what bit-identity
/// distinguishes.
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t v) noexcept;
  Fingerprint& mix_double(double v) noexcept;
  Fingerprint& mix(std::string_view s) noexcept;
  std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t max_entries = 64) : max_entries_(max_entries) {}

  /// The cached outcome, or nullptr on a miss. A hit refreshes LRU order.
  std::shared_ptr<const QuoteOutcome> get(std::uint64_t key);

  /// Inserts (or replaces) the outcome for `key`, evicting the least
  /// recently used entry when over the cap. `portfolio_id` tags the entry
  /// for invalidate(). No-op when max_entries is 0 (cache disabled).
  void put(std::uint64_t key, std::string portfolio_id,
           std::shared_ptr<const QuoteOutcome> outcome);

  /// Drops every entry of one portfolio (called on book mutation). Returns
  /// the number dropped.
  std::size_t invalidate(std::string_view portfolio_id);

  std::size_t size() const;
  std::size_t max_entries() const noexcept { return max_entries_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::string portfolio_id;
    std::shared_ptr<const QuoteOutcome> outcome;
    std::uint64_t last_used = 0;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  std::size_t max_entries_;
};

}  // namespace are::service
