#include "service/request_broker.hpp"

#include <chrono>

#include "obs/telemetry.hpp"

namespace are::service {

namespace {

struct BrokerInstruments {
  obs::Gauge& inflight_requests;
  obs::Gauge& inflight_cost;
  obs::Gauge& queued_requests;
  obs::Counter& admitted;
  obs::Counter& queued;
  obs::Counter& rejected;

  static BrokerInstruments& get() {
    // Resolved once; instrument addresses are stable for the process life.
    static BrokerInstruments instruments{
        obs::TelemetryRegistry::global().gauge("service.inflight_requests"),
        obs::TelemetryRegistry::global().gauge("service.inflight_cost"),
        obs::TelemetryRegistry::global().gauge("service.queued_requests"),
        obs::TelemetryRegistry::global().counter("service.admitted"),
        obs::TelemetryRegistry::global().counter("service.queued"),
        obs::TelemetryRegistry::global().counter("service.rejected"),
    };
    return instruments;
  }
};

std::string format_cost(std::uint64_t cost) {
  return std::to_string(cost) + " estimated lookups";
}

}  // namespace

std::string_view to_string(AdmissionOutcome outcome) noexcept {
  return outcome == AdmissionOutcome::kAdmitted ? "admitted" : "rejected";
}

std::string_view to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kRequestCost:
      return "request-too-large";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kMemoryPressure:
      return "memory-pressure";
    case RejectReason::kShuttingDown:
      return "shutting-down";
    case RejectReason::kSpillFailure:
      return "spill-failure";
  }
  return "unknown";
}

RequestBroker::RequestBroker(BrokerConfig config) : config_(config) {
  BrokerInstruments::get();  // pre-register the gauges so snapshots list them
  // The configured limits as gauges, so the scrape surface (and `are_cli
  // top`) can render load as inflight-vs-budget without knowing the config.
  obs::TelemetryRegistry::global()
      .gauge("service.inflight_cost_budget")
      .set(static_cast<std::int64_t>(config_.max_inflight_cost));
  obs::TelemetryRegistry::global()
      .gauge("service.queue_limit")
      .set(static_cast<std::int64_t>(config_.max_queued));
}

std::uint64_t RequestBroker::estimate_cost(const core::Portfolio& portfolio,
                                           const yet::YearEventTable& yet_table) noexcept {
  return static_cast<std::uint64_t>(portfolio.layers.size()) * yet_table.total_events();
}

std::uint64_t RequestBroker::estimate_replay_cost(const core::Portfolio& portfolio) noexcept {
  return static_cast<std::uint64_t>(portfolio.layers.size());
}

AdmissionDecision RequestBroker::admit(std::uint64_t estimated_cost) {
  auto& registry = obs::TelemetryRegistry::global();
  auto& instruments = BrokerInstruments::get();

  AdmissionDecision decision;
  decision.estimated_cost = estimated_cost;
  decision.pool_tasks = registry.counter("pool.tasks").value();
  decision.pool_idle_ns = registry.counter("pool.idle_ns").value();

  auto reject = [&](RejectReason reason, std::string message) {
    decision.outcome = AdmissionOutcome::kRejected;
    decision.reason = reason;
    decision.message = std::move(message);
    instruments.rejected.increment();
    return decision;
  };

  // A request that can never fit is rejected outright — queueing cannot help.
  if (config_.max_request_cost != 0 && estimated_cost > config_.max_request_cost) {
    decision.inflight_cost =
        static_cast<std::uint64_t>(instruments.inflight_cost.value());
    decision.resident_bytes = registry.gauge("shard.resident_bytes").value();
    return reject(RejectReason::kRequestCost,
                  "request cost " + format_cost(estimated_cost) +
                      " exceeds max_request_cost " +
                      std::to_string(config_.max_request_cost));
  }
  if (config_.max_inflight_cost != 0 && estimated_cost > config_.max_inflight_cost) {
    decision.inflight_cost =
        static_cast<std::uint64_t>(instruments.inflight_cost.value());
    decision.resident_bytes = registry.gauge("shard.resident_bytes").value();
    return reject(RejectReason::kRequestCost,
                  "request cost " + format_cost(estimated_cost) +
                      " can never fit under max_inflight_cost " +
                      std::to_string(config_.max_inflight_cost));
  }

  const auto wait_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mutex_);

  bool counted_as_queued = false;
  for (;;) {
    // Checked on entry AND after every wakeup: shutdown() notifies the cv,
    // and a waiter parked on capacity that will never free must leave with
    // a structured rejection, not hang the connection thread forever.
    if (shutting_down_) {
      if (counted_as_queued) {
        --waiting_;
        instruments.queued_requests.add(-1);
      }
      decision.inflight_cost =
          static_cast<std::uint64_t>(instruments.inflight_cost.value());
      decision.resident_bytes = registry.gauge("shard.resident_bytes").value();
      return reject(RejectReason::kShuttingDown, "service is shutting down");
    }
    // Live load is read back from the registry gauges — the broker keeps no
    // separate tally, so exporters and admission always agree.
    const std::int64_t inflight_cost = instruments.inflight_cost.value();
    const std::int64_t inflight_requests = instruments.inflight_requests.value();
    const std::int64_t resident = registry.gauge("shard.resident_bytes").value();
    decision.inflight_cost = static_cast<std::uint64_t>(inflight_cost);
    decision.resident_bytes = resident;

    const bool cost_fits =
        config_.max_inflight_cost == 0 ||
        static_cast<std::uint64_t>(inflight_cost) + estimated_cost <=
            config_.max_inflight_cost;
    const bool memory_ok =
        config_.memory_budget_bytes == 0 ||
        resident <= static_cast<std::int64_t>(config_.memory_budget_bytes);

    if (cost_fits && memory_ok) break;

    if (!memory_ok && inflight_requests == 0) {
      // Nothing in flight can drain the shard store; waiting is futile.
      if (counted_as_queued) {
        --waiting_;
        instruments.queued_requests.add(-1);
      }
      return reject(RejectReason::kMemoryPressure,
                    "shard.resident_bytes " + std::to_string(resident) +
                        " over memory budget " +
                        std::to_string(config_.memory_budget_bytes) +
                        " with no requests in flight");
    }

    if (!counted_as_queued) {
      if (waiting_ >= config_.max_queued) {
        return reject(RejectReason::kQueueFull,
                      "wait queue full (" + std::to_string(waiting_) + "/" +
                          std::to_string(config_.max_queued) +
                          " queued, inflight cost " +
                          std::to_string(inflight_cost) + ")");
      }
      counted_as_queued = true;
      ++waiting_;
      instruments.queued_requests.add(1);
      instruments.queued.increment();
    }
    capacity_freed_.wait(lock);
  }

  if (counted_as_queued) {
    --waiting_;
    instruments.queued_requests.add(-1);
    decision.queue_wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wait_start)
            .count();
  }

  instruments.inflight_requests.add(1);
  instruments.inflight_cost.add(static_cast<std::int64_t>(estimated_cost));
  instruments.admitted.increment();
  decision.message = "admitted at inflight cost " +
                     std::to_string(decision.inflight_cost) + " + " +
                     format_cost(estimated_cost);
  return decision;
}

void RequestBroker::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  capacity_freed_.notify_all();
}

bool RequestBroker::shutting_down() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutting_down_;
}

void RequestBroker::release(std::uint64_t estimated_cost) {
  auto& instruments = BrokerInstruments::get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    instruments.inflight_requests.add(-1);
    instruments.inflight_cost.add(-static_cast<std::int64_t>(estimated_cost));
  }
  capacity_freed_.notify_all();
}

}  // namespace are::service
