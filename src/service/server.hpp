#pragma once

// Socket front end of the resident analysis service: a line-oriented
// protocol over an AF_UNIX stream socket. One request per line, one
// single-line JSON response per request — trivially scriptable from CI
// (`are_cli quote` is the bundled client; `nc -U` works too).
//
// Requests (space-separated key=value tokens after the verb):
//
//   PING
//   QUOTE portfolio=<id> [layer=<id>] [occ-retention=] [occ-limit=]
//         [agg-retention=] [agg-limit=] [engine=<name>] [window=<from:to>]
//         [phases=1] [cache=0] [delta=0] [csv=<path>] [deadline-ms=<n>]
//         [sharded=1]
//   UPDATE portfolio=<id> layer=<id> [occ-retention=] [occ-limit=]
//         [agg-retention=] [agg-limit=]
//   SHUTDOWN
//
// Responses carry "status":"ok" | "rejected" | "error"; the non-ok forms
// add the structured failure triple "code" (core::StatusCode wire name),
// "retryable", and "message" — see README "Failure model". Bit-identity
// guarantees apply to "ok" responses only. deadline-ms bounds the quote's
// wall clock (cancelled between trial blocks → code "deadline-exceeded");
// sharded=1 executes out-of-core under ServiceConfig::sharding, where
// spill failure fails the quote ("spill-failure"), never the process.
//
// QUOTE term keys build a per-request TermsOverride (the book is not
// mutated); UPDATE mutates the book durably (terms-only, so the ground-up
// cache survives and subsequent quotes take the delta path). csv=<path>
// makes the *server* write the resulting YLT as CSV before responding —
// the CI smoke byte-diffs that file against a one-shot `are_cli run`.
//
// handle_line() is the protocol core and is directly testable without a
// socket; serve() owns the accept loop (one thread per connection, joined
// on shutdown).

#include <atomic>
#include <string>

#include "service/analysis_service.hpp"

namespace are::service {

struct ServerOptions {
  std::string socket_path = "are.sock";
  /// Print a per-request line to stderr with the source, wall time, and
  /// the request's telemetry diff highlights (lookups, lookup_ns).
  bool verbose = false;
};

class Server {
 public:
  Server(AnalysisService& service, ServerOptions options = {});

  /// Executes one protocol line and returns the JSON response (no trailing
  /// newline). Never throws: malformed requests and engine errors come
  /// back as {"status":"error","message":...}.
  std::string handle_line(const std::string& line);

  /// Binds the socket and serves until a SHUTDOWN request or
  /// request_stop(). Returns 0 on clean shutdown; throws std::runtime_error
  /// when the socket cannot be bound.
  int serve();

  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const noexcept { return stop_.load(std::memory_order_relaxed); }

  /// Minimal client: connect, send one line, read one response line.
  /// Throws std::runtime_error on connection or I/O failure.
  static std::string round_trip(const std::string& socket_path, const std::string& line);

 private:
  std::string handle_quote(const std::string& line);
  std::string handle_update(const std::string& line);

  AnalysisService& service_;
  ServerOptions options_;
  std::atomic<bool> stop_{false};
};

}  // namespace are::service
