#pragma once

// Cost-aware admission control for the resident analysis service.
//
// The broker's live state *is* the obs telemetry registry — no bespoke
// bookkeeping: in-flight load lives in the `service.inflight_requests` /
// `service.inflight_cost` / `service.queued_requests` gauges (updated
// unconditionally: they are the admission state store, not optional
// reporting; broker operations are request-granularity, far off the
// per-event hot path the zero-cost contract protects), memory pressure is
// read from the shard store's `shard.resident_bytes` gauge, and the pool
// load counters (`pool.tasks`, `pool.idle_ns`) are sampled into every
// decision. The same numbers are therefore visible to every exporter
// (Prometheus scrape included) with no extra plumbing.
//
// A request's cost estimate is its ELT lookup count — layers x YET event
// occurrences, the paper's ~78%-of-runtime driver (Fig 6b) and the quantity
// the engines' wall time is linear in.

#include <cstdint>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>

#include "core/layer.hpp"
#include "yet/year_event_table.hpp"

namespace are::service {

struct BrokerConfig {
  /// Largest single request, in estimated lookups; 0 = unlimited.
  std::uint64_t max_request_cost = 0;
  /// Total estimated lookups allowed in flight at once; 0 = unlimited.
  /// A request that would exceed it queues until running work releases.
  std::uint64_t max_inflight_cost = 0;
  /// Requests allowed to wait for capacity before kQueueFull rejections.
  std::size_t max_queued = 16;
  /// Reject (under idle) / queue (under load) new work while the shard
  /// store's resident bytes exceed this; 0 = no memory gate.
  std::size_t memory_budget_bytes = 0;
};

enum class AdmissionOutcome { kAdmitted, kRejected };

enum class RejectReason {
  kNone,           ///< admitted
  kRequestCost,    ///< the request alone exceeds a cost budget; retrying cannot help
  kQueueFull,      ///< capacity exists but the wait queue is at max_queued
  kMemoryPressure, ///< shard.resident_bytes over budget with nothing in flight to drain
  kShuttingDown,   ///< the service is draining; queued waiters are woken with this
  kSpillFailure,   ///< the admitted run failed spilling its sharded output (ENOSPC)
};

std::string_view to_string(AdmissionOutcome outcome) noexcept;
std::string_view to_string(RejectReason reason) noexcept;

/// The structured admission decision: machine-readable outcome/reason plus
/// the registry readings it was based on and a human sentence.
struct AdmissionDecision {
  AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
  RejectReason reason = RejectReason::kNone;
  std::uint64_t estimated_cost = 0;
  /// service.inflight_cost at decision time (before this request joined).
  std::uint64_t inflight_cost = 0;
  /// shard.resident_bytes at decision time.
  std::int64_t resident_bytes = 0;
  /// pool.tasks / pool.idle_ns readings at decision time (load context).
  std::uint64_t pool_tasks = 0;
  std::uint64_t pool_idle_ns = 0;
  /// Time spent queued waiting for capacity (0 for immediate decisions).
  double queue_wait_seconds = 0.0;
  std::string message;

  bool admitted() const noexcept { return outcome == AdmissionOutcome::kAdmitted; }
};

class RequestBroker {
 public:
  explicit RequestBroker(BrokerConfig config = {});

  /// A request's estimated cost: layers x YET event occurrences (the ELT
  /// lookup count of one full run).
  static std::uint64_t estimate_cost(const core::Portfolio& portfolio,
                                     const yet::YearEventTable& yet_table) noexcept;

  /// Cost of a delta-replay request: ~0. A replay performs ZERO ELT
  /// lookups (it reads the captured ground-up buffer and runs only the
  /// occurrence/aggregate sweep, ~22% of a cold run's time and none of its
  /// lookup cost), so charging it the full estimate_cost would make the
  /// broker reject or queue exactly the quotes the delta path makes cheap.
  /// One unit per layer keeps the pairing visible in the inflight gauges
  /// without consuming meaningful budget.
  static std::uint64_t estimate_replay_cost(const core::Portfolio& portfolio) noexcept;

  /// Admits, queues (blocking until capacity frees), or rejects. Every
  /// admitted call must be paired with release(same cost), even on engine
  /// failure.
  AdmissionDecision admit(std::uint64_t estimated_cost);

  void release(std::uint64_t estimated_cost);

  /// Begins shutdown: every queued waiter wakes and is rejected with
  /// kShuttingDown, and every later admit() rejects immediately. In-flight
  /// (already admitted) work is untouched — the caller drains it by pairing
  /// the outstanding release() calls as usual. Idempotent.
  void shutdown();
  bool shutting_down() const;

  const BrokerConfig& config() const noexcept { return config_; }

 private:
  BrokerConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable capacity_freed_;
  std::size_t waiting_ = 0;  // guarded by mutex_; mirrored in the queued gauge
  bool shutting_down_ = false;  // guarded by mutex_
};

}  // namespace are::service
