#include "service/result_cache.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/telemetry.hpp"

namespace are::service {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

Fingerprint& Fingerprint::mix(std::uint64_t v) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash_ ^= (v >> (8 * byte)) & 0xffu;
    hash_ *= kFnvPrime;
  }
  return *this;
}

Fingerprint& Fingerprint::mix_double(double v) noexcept {
  return mix(std::bit_cast<std::uint64_t>(v));
}

Fingerprint& Fingerprint::mix(std::string_view s) noexcept {
  for (const char c : s) {
    hash_ ^= static_cast<unsigned char>(c);
    hash_ *= kFnvPrime;
  }
  // Length terminator so ("ab","c") and ("a","bc") never collide.
  return mix(static_cast<std::uint64_t>(s.size()));
}

std::shared_ptr<const QuoteOutcome> ResultCache::get(std::uint64_t key) {
  std::lock_guard<std::mutex> guard(mutex_);
  for (Entry& entry : entries_) {
    if (entry.key != key) continue;
    entry.last_used = ++tick_;
    return entry.outcome;
  }
  return nullptr;
}

void ResultCache::put(std::uint64_t key, std::string portfolio_id,
                      std::shared_ptr<const QuoteOutcome> outcome) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> guard(mutex_);
  for (Entry& entry : entries_) {
    if (entry.key != key) continue;
    entry.portfolio_id = std::move(portfolio_id);
    entry.outcome = std::move(outcome);
    entry.last_used = ++tick_;
    return;
  }
  if (entries_.size() >= max_entries_) {
    auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
    entries_.erase(victim);
    obs::TelemetryRegistry::global().counter("service.cache.evictions").increment();
  }
  entries_.push_back({key, std::move(portfolio_id), std::move(outcome), ++tick_});
}

std::size_t ResultCache::invalidate(std::string_view portfolio_id) {
  std::lock_guard<std::mutex> guard(mutex_);
  const std::size_t before = entries_.size();
  std::erase_if(entries_,
                [&](const Entry& entry) { return entry.portfolio_id == portfolio_id; });
  const std::size_t dropped = before - entries_.size();
  if (dropped != 0) {
    obs::TelemetryRegistry::global().counter("service.cache.invalidations").add(dropped);
  }
  return dropped;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return entries_.size();
}

}  // namespace are::service
