#include "service/analysis_service.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/engine_registry.hpp"
#include "obs/metrics_server.hpp"
#include "obs/trace.hpp"
#include "service/access_log.hpp"
#include "shard/sharded_run.hpp"

namespace are::service {

namespace {

/// The book's portfolio with the request's terms overrides applied. Returns
/// the book's own shared_ptr when there is nothing to override (the common
/// repricing loop allocates nothing).
std::shared_ptr<const core::Portfolio> effective_portfolio(
    const PortfolioSession::BookSnapshot& book, const QuoteRequest& request) {
  if (request.overrides.empty()) return book.portfolio;
  auto copy = std::make_shared<core::Portfolio>(*book.portfolio);
  for (const TermsOverride& override_ : request.overrides) {
    override_.terms.validate();
    bool found = false;
    for (core::Layer& layer : copy->layers) {
      if (layer.id != override_.layer_id) continue;
      layer.terms = override_.terms;
      found = true;
      break;
    }
    if (!found) {
      throw std::invalid_argument("terms override names unknown layer " +
                                  std::to_string(override_.layer_id));
    }
  }
  return copy;
}

/// The taxonomy code a broker rejection maps to on the wire. Retryability
/// follows: queue/memory/shutdown pressure is transient, an oversized
/// request is the caller's to fix.
core::StatusCode status_code_of(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return core::StatusCode::kOk;
    case RejectReason::kRequestCost: return core::StatusCode::kInvalidArgument;
    case RejectReason::kQueueFull:
    case RejectReason::kMemoryPressure: return core::StatusCode::kResourceExhausted;
    case RejectReason::kShuttingDown: return core::StatusCode::kUnavailable;
    case RejectReason::kSpillFailure: return core::StatusCode::kSpillFailure;
  }
  return core::StatusCode::kInternal;
}

}  // namespace

std::string_view to_string(QuoteSource source) noexcept {
  switch (source) {
    case QuoteSource::kRejected:
      return "rejected";
    case QuoteSource::kCold:
      return "cold";
    case QuoteSource::kCached:
      return "cached";
    case QuoteSource::kDelta:
      return "delta";
    case QuoteSource::kFailed:
      return "failed";
  }
  return "unknown";
}

AnalysisService::AnalysisService(yet::YearEventTable yet_table, ServiceConfig config)
    : config_(std::move(config)),
      session_(std::move(yet_table), config_.session),
      broker_(config_.broker),
      cache_(config_.cache_entries) {
  if (!config_.access_log_path.empty()) {
    access_log_ = std::make_unique<AccessLog>(config_.access_log_path);
  }
  if (config_.metrics_port >= 0) {
    obs::MetricsServerOptions options;
    options.bind_address = config_.metrics_bind;
    options.port = config_.metrics_port;
    options.healthy = [this] { return !broker_.shutting_down(); };
    options.extra_status = [this] {
      return "{\"cached_results\":" + std::to_string(cache_.size()) +
             ",\"default_engine\":\"" + config_.default_engine + "\"}";
    };
    metrics_server_ = std::make_unique<obs::MetricsServer>(std::move(options));
    metrics_server_->start();
  }
}

AnalysisService::~AnalysisService() = default;

void AnalysisService::register_portfolio(std::string id, core::Portfolio portfolio) {
  cache_.invalidate(id);
  session_.register_portfolio(std::move(id), std::move(portfolio));
}

void AnalysisService::update_layer_terms(std::string_view id, std::uint32_t layer_id,
                                         const financial::LayerTerms& terms) {
  session_.update_layer_terms(id, layer_id, terms);
  cache_.invalidate(id);
}

std::uint64_t AnalysisService::fingerprint_of(std::string_view portfolio_id,
                                              std::uint64_t generation,
                                              const core::Portfolio& effective,
                                              std::string_view engine_name,
                                              const QuoteRequest& request) const {
  Fingerprint fp;
  fp.mix(portfolio_id).mix(generation).mix(engine_name);
  fp.mix(session_.yet_table().num_trials()).mix(session_.yet_table().total_events());
  fp.mix(request.window.has_value() ? 1u : 0u);
  if (request.window.has_value()) {
    fp.mix_double(request.window->from).mix_double(request.window->to);
  }
  fp.mix(request.collect_phases ? 1u : 0u);
  fp.mix(request.sharded ? 1u : 0u);
  for (const core::Layer& layer : effective.layers) {
    fp.mix(layer.id);
    fp.mix_double(layer.terms.occurrence_retention)
        .mix_double(layer.terms.occurrence_limit)
        .mix_double(layer.terms.aggregate_retention)
        .mix_double(layer.terms.aggregate_limit);
    fp.mix(layer.elts.size());
    for (const core::LayerElt& elt : layer.elts) {
      fp.mix_double(elt.terms.occurrence_retention)
          .mix_double(elt.terms.occurrence_limit)
          .mix_double(elt.terms.share)
          .mix_double(elt.terms.currency_rate);
    }
  }
  return fp.value();
}

QuoteResponse AnalysisService::quote(const QuoteRequest& request) {
  auto& registry = obs::TelemetryRegistry::global();
  const bool telemetry_on = obs::enabled();
  const obs::Snapshot before = telemetry_on ? registry.snapshot() : obs::Snapshot{};
  registry.counter("service.requests").increment();
  const auto wall_start = std::chrono::steady_clock::now();

  // The correlation key across the wire response, access log, and trace.
  std::string request_id;
  {
    char id[16];
    std::snprintf(id, sizeof id, "q-%06llu",
                  static_cast<unsigned long long>(
                      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1));
    request_id = id;
  }
  obs::Span quote_span("service.quote", "service",
                       obs::trace_enabled()
                           ? "{\"request_id\":\"" + request_id + "\",\"portfolio\":\"" +
                                 request.portfolio_id + "\"}"
                           : std::string{});

  if (request.window.has_value()) request.window->validate();
  const PortfolioSession::BookSnapshot book = session_.snapshot(request.portfolio_id);
  const std::shared_ptr<const core::Portfolio> portfolio =
      effective_portfolio(book, request);
  const std::string& engine_name =
      request.engine.empty() ? config_.default_engine : request.engine;
  const core::EngineDescriptor& descriptor =
      core::EngineRegistry::global().require(engine_name);

  QuoteResponse response;
  response.request_id = request_id;
  response.engine = engine_name;
  response.fingerprint =
      fingerprint_of(request.portfolio_id, book.generation, *portfolio, engine_name,
                     request);

  auto finish = [&](QuoteResponse&& done) {
    done.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    if (telemetry_on) done.telemetry = registry.snapshot().diff(before);
    // Per-source latency histogram. Updated unconditionally at request
    // granularity (the same discipline as the broker gauges — this is the
    // scrape surface's data, far off the per-event hot path the zero-cost
    // contract protects).
    const auto wall_ns = static_cast<std::uint64_t>(done.wall_seconds * 1e9);
    registry
        .histogram("service.quote_ns{source=" + std::string(to_string(done.source)) + "}")
        .record_ns(wall_ns);
    if (obs::trace_enabled()) {
      // Instant event carrying the request id: a slow quote found in the
      // access log is findable on the trace timeline by the same id.
      obs::TraceBuffer::global().append_instant(
          "service.quote.done", "service",
          "{\"request_id\":\"" + done.request_id + "\",\"source\":\"" +
              std::string(to_string(done.source)) + "\",\"wall_ns\":" +
              std::to_string(wall_ns) + "}");
    }
    if (access_log_ != nullptr) access_log_->write(make_log_entry(request, done));
    return std::move(done);
  };

  if (request.use_cache) {
    if (auto hit = cache_.get(response.fingerprint)) {
      registry.counter("service.cache_hits").increment();
      response.source = QuoteSource::kCached;
      response.admission.message = "served from result cache";
      response.outcome = std::move(hit);
      return finish(std::move(response));
    }
    registry.counter("service.cache_misses").increment();
  }

  // Delta decision BEFORE admission. Replay needs a ground-up cache
  // published at this structure generation (terms overrides and windows
  // never invalidate it); otherwise a cold run may claim the capture slot
  // and produce one. Resolved first because admission is delta-aware: a
  // replay performs zero ELT lookups, so it is charged
  // estimate_replay_cost (~0) instead of the full layers x events
  // estimate — re-pricing bursts against a warm book no longer consume
  // the inflight-cost budget cold runs are throttled by.
  const std::shared_ptr<const core::GroundUpLossCache> replay =
      request.use_delta ? book.ground_up : nullptr;

  const std::uint64_t cost =
      replay != nullptr ? RequestBroker::estimate_replay_cost(*portfolio)
                        : RequestBroker::estimate_cost(*portfolio, session_.yet_table());
  response.admission = broker_.admit(cost);
  if (!response.admission.admitted()) {
    response.source = QuoteSource::kRejected;
    response.status = {status_code_of(response.admission.reason),
                       response.admission.message};
    return finish(std::move(response));
  }

  std::shared_ptr<core::GroundUpLossCache> capture;
  if (request.use_delta && replay == nullptr) {
    const std::size_t bytes = core::GroundUpLossCache::estimate_bytes(
        portfolio->layers.size(), session_.yet_table().total_events());
    if (session_.try_claim_capture(request.portfolio_id, book.structure_generation,
                                   bytes)) {
      capture = std::make_shared<core::GroundUpLossCache>(
          portfolio->layers.size(), session_.yet_table().total_events());
    }
  }

  core::AnalysisConfig config;
  config.engine = descriptor.kind;
  config.engine_name = engine_name;
  config.num_threads = config_.session.num_threads;
  config.window = request.window;
  if (descriptor.supports_pool_reuse) config.pool = &session_.pool();
  config.ground_up_replay = replay.get();
  config.ground_up_capture = capture.get();
  core::InstrumentationSink sink;
  if (request.collect_phases) {
    config.instrumentation = &sink;
    config.collect_phases = true;
  }

  // Per-request deadline: the kernel polls the token between trial blocks,
  // so an expired quote stops within one block of the deadline.
  core::CancelToken deadline;
  if (request.deadline_ms != 0) {
    deadline.set_deadline_after(std::chrono::milliseconds(request.deadline_ms));
    config.cancel = &deadline;
  }

  auto outcome = std::make_shared<QuoteOutcome>();
  try {
    if (request.sharded) {
      config.output = core::OutputMode::kSharded;
      config.sharding = config_.sharding;
      shard::ShardedYearLossTable sharded =
          shard::run_sharded({*portfolio, session_.yet_table(), config});
      outcome->ylt = sharded.materialize();
    } else {
      outcome->ylt = core::run({*portfolio, session_.yet_table(), config});
    }
  } catch (const std::invalid_argument&) {
    // Malformed request: the documented throwing path (nothing ran).
    broker_.release(cost);
    if (capture != nullptr) session_.abandon_capture(request.portfolio_id);
    throw;
  } catch (...) {
    // Execution failure — the hardened path. Unwind EVERYTHING the quote
    // acquired (admitted cost, the claimed capture slot; the sharded table
    // and its spill dir unwound with the stack) and convert to a structured
    // kFailed response: the server connection lives on, the next quote
    // starts from a clean slate, and bit-identity is unaffected because
    // nothing partial is published or cached.
    broker_.release(cost);
    if (capture != nullptr) session_.abandon_capture(request.portfolio_id);
    response.source = QuoteSource::kFailed;
    response.status = core::status_from_current_exception();
    if (response.status.code() == core::StatusCode::kSpillFailure) {
      response.admission.reason = RejectReason::kSpillFailure;
    }
    registry.counter("service.failed").increment();
    return finish(std::move(response));
  }
  broker_.release(cost);
  if (capture != nullptr) {
    session_.publish_ground_up(request.portfolio_id, book.structure_generation,
                               std::move(capture));
  }

  outcome->quotes.reserve(portfolio->layers.size());
  for (std::size_t i = 0; i < portfolio->layers.size(); ++i) {
    outcome->quotes.push_back(pricing::price_layer(
        outcome->ylt.layer_losses(i), portfolio->layers[i].terms, config_.assumptions));
  }
  if (sink.phases.has_value()) outcome->phases = sink.phases;

  response.source = replay != nullptr ? QuoteSource::kDelta : QuoteSource::kCold;
  registry
      .counter(replay != nullptr ? "service.delta_runs" : "service.cold_runs")
      .increment();
  response.outcome = outcome;
  if (request.use_cache) {
    cache_.put(response.fingerprint, request.portfolio_id, outcome);
  }
  return finish(std::move(response));
}

}  // namespace are::service
