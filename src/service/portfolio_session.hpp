#pragma once

// Resident state of the analysis service: the YET and thread pool loaded
// once and reused across every request (the amortization the paper's
// one-shot pipeline cannot offer), plus the registered portfolio books.
//
// Each book carries two version numbers:
//
//   - `generation` bumps on *any* mutation and is part of the result-cache
//     fingerprint, so stale quotes become unreachable.
//   - `structure_generation` bumps only on mutations that change the ELT
//     sets or per-ELT FinancialTerms — exactly the inputs the ground-up
//     loss cache depends on. A terms-only update (update_layer_terms) bumps
//     `generation` but not `structure_generation`, which is what keeps the
//     captured ground-up losses valid for delta re-pricing.
//
// Ground-up captures follow a claim/publish protocol so concurrent cold
// runs do not duplicate the (layers x events x 8 bytes) buffer: one caller
// claims the capture slot, runs with TrialKernelConfig::ground_up_capture,
// then publishes (or abandons on failure). Published caches are immutable
// and shared_ptr'd, so replays run lock-free against a snapshot even while
// a later mutation swaps the book.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/layer.hpp"
#include "core/trial_kernel.hpp"
#include "financial/terms.hpp"
#include "parallel/thread_pool.hpp"
#include "yet/year_event_table.hpp"

namespace are::service {

struct SessionConfig {
  /// Worker threads of the resident pool; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Total bytes of ground-up loss caches the session may keep resident
  /// across all books; a capture whose buffer would exceed it is not
  /// claimed (requests still run, just without the delta fast path).
  /// 0 = delta caching disabled.
  std::size_t ground_up_budget_bytes = 512ull << 20;
};

class PortfolioSession {
 public:
  /// Immutable view of one book at a point in time. The shared_ptrs keep
  /// the portfolio and ground-up cache alive for the duration of a request
  /// even if the book mutates mid-run.
  struct BookSnapshot {
    std::shared_ptr<const core::Portfolio> portfolio;
    std::uint64_t generation = 0;
    std::uint64_t structure_generation = 0;
    /// Ground-up losses captured at this structure_generation, or null when
    /// no capture has been published yet.
    std::shared_ptr<const core::GroundUpLossCache> ground_up;
  };

  explicit PortfolioSession(yet::YearEventTable yet_table, SessionConfig config = {});

  const yet::YearEventTable& yet_table() const noexcept { return yet_; }
  parallel::ThreadPool& pool() noexcept { return pool_; }
  const SessionConfig& config() const noexcept { return config_; }

  /// Registers (or wholesale replaces) a book. Validates the portfolio,
  /// bumps both generations, and drops any published ground-up cache —
  /// a replacement may change ELT structure arbitrarily.
  void register_portfolio(std::string id, core::Portfolio portfolio);

  /// Terms-only mutation: replaces the LayerTerms of one layer. Bumps
  /// `generation` (result-cache entries for the old terms stay reachable —
  /// the terms are part of the fingerprint — but the generation records the
  /// mutation) and *keeps* the ground-up cache: occurrence/aggregate terms
  /// are applied after the cached combine stage, so delta replay stays
  /// bit-identical. Throws std::invalid_argument on unknown ids.
  void update_layer_terms(std::string_view id, std::uint32_t layer_id,
                          const financial::LayerTerms& terms);

  /// Current snapshot of a book; throws std::invalid_argument when unknown.
  BookSnapshot snapshot(std::string_view id) const;

  std::vector<std::string> portfolio_ids() const;

  /// Claims the capture slot of a book: returns true iff no published cache
  /// exists for `structure_generation`, no other capture is in flight, and
  /// `estimated_bytes` fits the remaining ground-up budget. A successful
  /// claim must be followed by publish_ground_up or abandon_capture.
  bool try_claim_capture(std::string_view id, std::uint64_t structure_generation,
                         std::size_t estimated_bytes);

  /// Publishes a completed capture. Discarded (not an error) when the book
  /// mutated structurally while the capture ran — the cache no longer
  /// describes the book.
  void publish_ground_up(std::string_view id, std::uint64_t structure_generation,
                         std::shared_ptr<const core::GroundUpLossCache> cache);

  void abandon_capture(std::string_view id);

  /// Resident ground-up bytes across all books (mirrors the
  /// `service.ground_up_bytes` gauge).
  std::size_t ground_up_bytes() const;

 private:
  struct Book {
    std::shared_ptr<const core::Portfolio> portfolio;
    std::uint64_t generation = 0;
    std::uint64_t structure_generation = 0;
    std::shared_ptr<const core::GroundUpLossCache> ground_up;
    bool capture_claimed = false;
  };

  // Both called under mutex_.
  Book& book_or_throw(std::string_view id);
  const Book& book_or_throw(std::string_view id) const;
  void set_ground_up_locked(Book& book,
                            std::shared_ptr<const core::GroundUpLossCache> cache);

  yet::YearEventTable yet_;
  SessionConfig config_;
  parallel::ThreadPool pool_;
  mutable std::mutex mutex_;
  std::map<std::string, Book, std::less<>> books_;
  std::size_t ground_up_bytes_ = 0;
};

}  // namespace are::service
