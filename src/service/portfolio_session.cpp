#include "service/portfolio_session.hpp"

#include <stdexcept>
#include <utility>

#include "obs/telemetry.hpp"

namespace are::service {

namespace {

obs::Gauge& ground_up_gauge() {
  static obs::Gauge& gauge =
      obs::TelemetryRegistry::global().gauge("service.ground_up_bytes");
  return gauge;
}

}  // namespace

PortfolioSession::PortfolioSession(yet::YearEventTable yet_table, SessionConfig config)
    : yet_(std::move(yet_table)), config_(config), pool_(config.num_threads) {}

void PortfolioSession::register_portfolio(std::string id, core::Portfolio portfolio) {
  portfolio.validate();
  auto shared = std::make_shared<const core::Portfolio>(std::move(portfolio));
  std::lock_guard<std::mutex> guard(mutex_);
  Book& book = books_[std::move(id)];
  book.portfolio = std::move(shared);
  ++book.generation;
  ++book.structure_generation;
  book.capture_claimed = false;
  set_ground_up_locked(book, nullptr);
}

void PortfolioSession::update_layer_terms(std::string_view id, std::uint32_t layer_id,
                                          const financial::LayerTerms& terms) {
  terms.validate();
  std::lock_guard<std::mutex> guard(mutex_);
  Book& book = book_or_throw(id);
  auto updated = std::make_shared<core::Portfolio>(*book.portfolio);
  bool found = false;
  for (core::Layer& layer : updated->layers) {
    if (layer.id != layer_id) continue;
    layer.terms = terms;
    found = true;
    break;
  }
  if (!found) {
    throw std::invalid_argument("portfolio '" + std::string(id) + "' has no layer " +
                                std::to_string(layer_id));
  }
  book.portfolio = std::move(updated);
  ++book.generation;  // structure_generation unchanged: the ground-up cache survives
}

PortfolioSession::BookSnapshot PortfolioSession::snapshot(std::string_view id) const {
  std::lock_guard<std::mutex> guard(mutex_);
  const Book& book = book_or_throw(id);
  return {book.portfolio, book.generation, book.structure_generation, book.ground_up};
}

std::vector<std::string> PortfolioSession::portfolio_ids() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<std::string> ids;
  ids.reserve(books_.size());
  for (const auto& [id, book] : books_) ids.push_back(id);
  return ids;
}

bool PortfolioSession::try_claim_capture(std::string_view id,
                                         std::uint64_t structure_generation,
                                         std::size_t estimated_bytes) {
  std::lock_guard<std::mutex> guard(mutex_);
  Book& book = book_or_throw(id);
  if (book.capture_claimed) return false;
  if (book.structure_generation != structure_generation) return false;
  if (book.ground_up != nullptr) return false;  // already captured
  if (estimated_bytes > config_.ground_up_budget_bytes ||
      ground_up_bytes_ + estimated_bytes > config_.ground_up_budget_bytes) {
    return false;
  }
  book.capture_claimed = true;
  return true;
}

void PortfolioSession::publish_ground_up(
    std::string_view id, std::uint64_t structure_generation,
    std::shared_ptr<const core::GroundUpLossCache> cache) {
  std::lock_guard<std::mutex> guard(mutex_);
  Book& book = book_or_throw(id);
  book.capture_claimed = false;
  if (book.structure_generation != structure_generation) return;  // stale capture
  set_ground_up_locked(book, std::move(cache));
  obs::TelemetryRegistry::global().counter("service.captures").increment();
}

void PortfolioSession::abandon_capture(std::string_view id) {
  std::lock_guard<std::mutex> guard(mutex_);
  Book& book = book_or_throw(id);
  book.capture_claimed = false;
}

std::size_t PortfolioSession::ground_up_bytes() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return ground_up_bytes_;
}

PortfolioSession::Book& PortfolioSession::book_or_throw(std::string_view id) {
  auto it = books_.find(id);
  if (it == books_.end()) {
    throw std::invalid_argument("unknown portfolio '" + std::string(id) + "'");
  }
  return it->second;
}

const PortfolioSession::Book& PortfolioSession::book_or_throw(std::string_view id) const {
  auto it = books_.find(id);
  if (it == books_.end()) {
    throw std::invalid_argument("unknown portfolio '" + std::string(id) + "'");
  }
  return it->second;
}

void PortfolioSession::set_ground_up_locked(
    Book& book, std::shared_ptr<const core::GroundUpLossCache> cache) {
  if (book.ground_up != nullptr) ground_up_bytes_ -= book.ground_up->memory_bytes();
  book.ground_up = std::move(cache);
  if (book.ground_up != nullptr) ground_up_bytes_ += book.ground_up->memory_bytes();
  ground_up_gauge().set(static_cast<std::int64_t>(ground_up_bytes_));
}

}  // namespace are::service
