#pragma once

// Structured per-request access log of the resident service — one JSONL
// line per quote (served, rejected, and failed alike; protocol-level
// parse errors are connection noise, not quotes, and do not log). The
// line is rendered from the quote's telemetry diff (Snapshot::diff), so
// it carries the same per-request numbers the wire response and the
// trace annotations do — request id first, so `grep q-000042` across the
// access log and the Chrome trace tells one story.
//
// Schema (stable keys, one JSON object per line — see README "Operating
// the service" for the field table):
//
//   {"request_id":"q-000001","portfolio":"book","source":"cold",
//    "status":"ok","code":"ok","engine":"fused","fingerprint":"9f…",
//    "admission":"admitted","reason":"none","queue_wait_seconds":0,
//    "deadline_ms":0,"wall_ns":1234567,"elt_lookups":40000,
//    "bytes_spilled":0,"cache_hit":false,"fault_fires":{}}
//
// The same RequestLogEntry renders the `--verbose` stderr line
// (access_log_human), so the two surfaces cannot drift apart.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "service/analysis_service.hpp"

namespace are::service {

/// Everything one access-log line / verbose line says about a quote,
/// extracted once from the request + response (incl. the telemetry diff
/// when present — the counter-derived fields are zero without it).
struct RequestLogEntry {
  std::string request_id;
  std::string portfolio_id;
  std::string source;            ///< cold | cached | delta | rejected | failed
  std::string status;            ///< ok | rejected | error (wire status)
  std::string code;              ///< core::StatusCode wire name
  std::string engine;
  std::string fingerprint_hex;   ///< %016llx, as on the wire
  std::string admission;         ///< admitted | rejected
  std::string admission_reason;  ///< RejectReason wire name
  double queue_wait_seconds = 0.0;
  std::uint64_t deadline_ms = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t elt_lookups = 0;    ///< sum of elt.*.lookups over the request
  std::uint64_t bytes_spilled = 0;  ///< shard.bytes_spilled over the request
  /// fault.injected.* counters that fired during the request (site suffix,
  /// fire count) — chaos runs are self-describing in the log.
  std::vector<std::pair<std::string, std::uint64_t>> fault_fires;
};

/// Builds the entry for one completed quote() call.
RequestLogEntry make_log_entry(const QuoteRequest& request, const QuoteResponse& response);

/// One JSON object, no trailing newline.
std::string access_log_json(const RequestLogEntry& entry);

/// The `--verbose` stderr rendering ("[serve] q-000001 book source=cold ...").
std::string access_log_human(const RequestLogEntry& entry);

/// Append-only JSONL sink; thread-safe, flushed per line so a tail -f (or
/// a crashed process) never sees a torn line.
class AccessLog {
 public:
  /// Throws std::runtime_error when the path cannot be opened for append.
  explicit AccessLog(const std::string& path);

  void write(const RequestLogEntry& entry);

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace are::service
