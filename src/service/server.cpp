#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <mutex>

#include "fault/fault_injection.hpp"
#include "io/csv.hpp"
#include "obs/export.hpp"
#include "service/access_log.hpp"

namespace are::service {

namespace {

// ---- protocol parsing -----------------------------------------------------

/// key=value tokens after the verb. Values may not contain spaces (paths
/// with spaces are not supported by the protocol — documented limitation).
std::map<std::string, std::string> parse_fields(const std::string& line,
                                                std::string& verb) {
  std::istringstream in(line);
  in >> verb;
  std::map<std::string, std::string> fields;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("malformed token '" + token + "' (expected key=value)");
    }
    fields[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return fields;
}

double parse_amount(const std::string& value, const std::string& key) {
  if (value == "inf" || value == "unlimited") return financial::kUnlimited;
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != value.size()) {
    throw std::invalid_argument("field " + key + ": cannot parse amount '" + value + "'");
  }
  return parsed;
}

/// Builds the terms override from whichever of the four term keys are
/// present, starting from the layer's current terms so a single-knob tweak
/// (the common what-if) does not reset the others.
bool parse_terms_fields(const std::map<std::string, std::string>& fields,
                        financial::LayerTerms& terms) {
  bool any = false;
  auto take = [&](const char* key, double& out) {
    auto it = fields.find(key);
    if (it == fields.end()) return;
    out = parse_amount(it->second, key);
    any = true;
  };
  take("occ-retention", terms.occurrence_retention);
  take("occ-limit", terms.occurrence_limit);
  take("agg-retention", terms.aggregate_retention);
  take("agg-limit", terms.aggregate_limit);
  return any;
}

std::uint32_t parse_layer_id(const std::map<std::string, std::string>& fields) {
  auto it = fields.find("layer");
  if (it == fields.end()) return 1;  // are_cli-built books have a single layer id 1
  return static_cast<std::uint32_t>(std::stoul(it->second));
}

bool parse_flag(const std::map<std::string, std::string>& fields, const char* key,
                bool fallback) {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  return it->second != "0" && it->second != "false";
}

// ---- JSON rendering ---------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Protocol-level failure: status "error" plus the taxonomy code +
/// retryability, so `are_cli quote --retries` and chaos CI match on
/// structure, never on message text.
std::string error_json(const core::Status& status) {
  return "{\"status\":\"error\",\"code\":\"" + std::string(core::to_string(status.code())) +
         "\",\"retryable\":" + (status.retryable() ? "true" : "false") +
         ",\"message\":\"" + json_escape(status.message()) + "\"}";
}

std::string error_json(const std::string& message) {
  return error_json(core::Status{core::StatusCode::kInternal, message});
}

std::string admission_json(const AdmissionDecision& decision) {
  std::ostringstream out;
  out << "{\"outcome\":\"" << to_string(decision.outcome) << "\""
      << ",\"reason\":\"" << to_string(decision.reason) << "\""
      << ",\"estimated_cost\":" << decision.estimated_cost
      << ",\"inflight_cost\":" << decision.inflight_cost
      << ",\"resident_bytes\":" << decision.resident_bytes
      << ",\"pool_tasks\":" << decision.pool_tasks
      << ",\"pool_idle_ns\":" << decision.pool_idle_ns
      << ",\"queue_wait_seconds\":" << json_double(decision.queue_wait_seconds)
      << ",\"message\":\"" << json_escape(decision.message) << "\"}";
  return out.str();
}

std::string response_json(const QuoteResponse& response) {
  // Three statuses on the wire: "ok" (quote served; bit-identity applies),
  // "rejected" (admission refused), "error" (admitted but execution
  // failed). The non-ok forms always carry code/retryable/message from the
  // structured core::Status.
  const bool rejected = response.source == QuoteSource::kRejected;
  const bool failed = response.source == QuoteSource::kFailed;
  std::ostringstream out;
  out << "{\"status\":\"" << (rejected ? "rejected" : failed ? "error" : "ok") << "\""
      << ",\"request_id\":\"" << json_escape(response.request_id) << "\"";
  if (!response.status.ok()) {
    out << ",\"code\":\"" << core::to_string(response.status.code()) << "\""
        << ",\"retryable\":" << (response.status.retryable() ? "true" : "false")
        << ",\"message\":\"" << json_escape(response.status.message()) << "\"";
  }
  out << ",\"source\":\"" << to_string(response.source) << "\""
      << ",\"engine\":\"" << json_escape(response.engine) << "\"";
  {
    char fp[24];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(response.fingerprint));
    out << ",\"fingerprint\":\"" << fp << "\"";
  }
  out << ",\"wall_seconds\":" << json_double(response.wall_seconds)
      << ",\"admission\":" << admission_json(response.admission);
  if (response.outcome != nullptr) {
    out << ",\"trials\":" << response.outcome->ylt.num_trials() << ",\"quotes\":[";
    const auto layer_ids = response.outcome->ylt.layer_ids();
    for (std::size_t i = 0; i < response.outcome->quotes.size(); ++i) {
      const pricing::Quote& quote = response.outcome->quotes[i];
      if (i != 0) out << ',';
      out << "{\"layer\":" << (i < layer_ids.size() ? layer_ids[i] : 0)
          << ",\"expected_loss\":" << json_double(quote.expected_loss)
          << ",\"stddev\":" << json_double(quote.stddev)
          << ",\"tvar\":" << json_double(quote.tvar)
          << ",\"technical_premium\":" << json_double(quote.technical_premium)
          << ",\"rate_on_line\":" << json_double(quote.rate_on_line) << "}";
    }
    out << ']';
    if (response.outcome->phases.has_value()) {
      const core::PhaseBreakdown& phases = *response.outcome->phases;
      out << ",\"phases\":{\"fetch_seconds\":" << json_double(phases.fetch_seconds)
          << ",\"lookup_seconds\":" << json_double(phases.lookup_seconds)
          << ",\"financial_seconds\":" << json_double(phases.financial_seconds)
          << ",\"layer_seconds\":" << json_double(phases.layer_seconds)
          << ",\"output_seconds\":" << json_double(phases.output_seconds) << "}";
    }
  }
  if (response.telemetry.has_value()) {
    out << ",\"telemetry\":" << obs::snapshot_json_object(*response.telemetry);
  }
  out << '}';
  return out.str();
}

// ---- socket plumbing --------------------------------------------------------

int make_listen_socket(const std::string& path) {
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind/listen on " + path + ": " + reason);
  }
  return fd;
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing sensible to do server-side
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

Server::Server(AnalysisService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

std::string Server::handle_quote(const std::string& line) {
  std::string verb;
  const auto fields = parse_fields(line, verb);

  QuoteRequest request;
  const auto portfolio = fields.find("portfolio");
  if (portfolio == fields.end()) {
    throw std::invalid_argument("QUOTE requires portfolio=<id>");
  }
  request.portfolio_id = portfolio->second;

  const std::uint32_t layer_id = parse_layer_id(fields);
  {
    // Start the override from the book's current terms so one-knob tweaks
    // keep the rest (snapshot() throws on unknown portfolio — wanted here).
    const auto book = service_.session().snapshot(request.portfolio_id);
    financial::LayerTerms terms;
    bool layer_known = false;
    for (const core::Layer& layer : book.portfolio->layers) {
      if (layer.id != layer_id) continue;
      terms = layer.terms;
      layer_known = true;
      break;
    }
    if (parse_terms_fields(fields, terms)) {
      if (!layer_known) {
        throw std::invalid_argument("terms override names unknown layer " +
                                    std::to_string(layer_id));
      }
      request.overrides.push_back({layer_id, terms});
    }
  }

  if (const auto it = fields.find("engine"); it != fields.end()) {
    request.engine = it->second;
  }
  if (const auto it = fields.find("window"); it != fields.end()) {
    const std::size_t colon = it->second.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("window must be <from:to>");
    }
    core::CoverageWindow window;
    window.from = std::stof(it->second.substr(0, colon));
    window.to = std::stof(it->second.substr(colon + 1));
    window.validate();
    request.window = window;
  }
  request.collect_phases = parse_flag(fields, "phases", false);
  request.use_cache = parse_flag(fields, "cache", true);
  request.use_delta = parse_flag(fields, "delta", true);
  request.sharded = parse_flag(fields, "sharded", false);
  if (const auto it = fields.find("deadline-ms"); it != fields.end()) {
    request.deadline_ms = std::stoull(it->second);
  }

  const QuoteResponse response = service_.quote(request);

  if (const auto it = fields.find("csv");
      it != fields.end() && response.outcome != nullptr) {
    std::ofstream out(it->second);
    if (!out) throw std::runtime_error("cannot open csv path " + it->second);
    io::write_ylt_csv(out, response.outcome->ylt);
  }

  if (options_.verbose) {
    // Same RequestLogEntry the access log serializes — the two surfaces
    // render one extraction and cannot drift apart.
    std::cerr << access_log_human(make_log_entry(request, response)) << '\n';
  }
  return response_json(response);
}

std::string Server::handle_update(const std::string& line) {
  std::string verb;
  const auto fields = parse_fields(line, verb);
  const auto portfolio = fields.find("portfolio");
  if (portfolio == fields.end()) {
    throw std::invalid_argument("UPDATE requires portfolio=<id>");
  }
  const std::uint32_t layer_id = parse_layer_id(fields);
  const auto book = service_.session().snapshot(portfolio->second);
  financial::LayerTerms terms;
  bool layer_known = false;
  for (const core::Layer& layer : book.portfolio->layers) {
    if (layer.id != layer_id) continue;
    terms = layer.terms;
    layer_known = true;
    break;
  }
  if (!layer_known) {
    throw std::invalid_argument("UPDATE names unknown layer " + std::to_string(layer_id));
  }
  if (!parse_terms_fields(fields, terms)) {
    throw std::invalid_argument("UPDATE requires at least one terms field");
  }
  service_.update_layer_terms(portfolio->second, layer_id, terms);
  if (options_.verbose) {
    std::cerr << "[serve] updated " << portfolio->second << " layer " << layer_id << '\n';
  }
  return "{\"status\":\"ok\",\"updated\":\"" + json_escape(portfolio->second) + "\"}";
}

std::string Server::handle_line(const std::string& line) {
  try {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty()) return error_json("empty request");
    if (verb == "PING") return "{\"status\":\"ok\",\"pong\":true}";
    if (verb == "SHUTDOWN") {
      // Wake broker queue waiters first (they answer their clients with a
      // structured shutting-down rejection), then stop the accept loop;
      // serve() drains in-flight quotes before joining.
      service_.broker().shutdown();
      request_stop();
      return "{\"status\":\"ok\",\"shutdown\":true}";
    }
    if (verb == "QUOTE") return handle_quote(line);
    if (verb == "UPDATE") return handle_update(line);
    return error_json("unknown verb '" + verb + "'");
  } catch (const std::exception& error) {
    return error_json(error.what());
  }
}

int Server::serve() {
  const int listen_fd = make_listen_socket(options_.socket_path);
  std::vector<std::thread> connections;
  // Open connection fds, so shutdown can unblock threads parked in read().
  std::mutex conns_mutex;
  std::vector<int> open_conns;
  while (!stop_requested()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    if (fault::should_inject(fault::sites::kServiceSocket)) {
      // Simulated accept-side failure (fd exhaustion, peer reset before
      // handshake): the connection is dropped, the accept loop lives on —
      // clients see a closed socket, never a dead server.
      ::close(conn);
      continue;
    }
    {
      std::lock_guard<std::mutex> guard(conns_mutex);
      open_conns.push_back(conn);
    }
    connections.emplace_back([this, conn, &conns_mutex, &open_conns] {
      std::string pending;
      char buf[4096];
      for (;;) {
        const ssize_t n = ::read(conn, buf, sizeof buf);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        pending.append(buf, static_cast<std::size_t>(n));
        std::size_t newline;
        while ((newline = pending.find('\n')) != std::string::npos) {
          const std::string request = pending.substr(0, newline);
          pending.erase(0, newline + 1);
          write_all(conn, handle_line(request) + "\n");
        }
        if (stop_requested()) break;
      }
      {
        std::lock_guard<std::mutex> guard(conns_mutex);
        open_conns.erase(std::find(open_conns.begin(), open_conns.end(), conn));
      }
      ::close(conn);
    });
  }
  // Shutdown drain. Order matters: wake broker queue waiters (their
  // connection threads answer with structured rejections), then half-close
  // every idle connection so threads parked in read() wake with EOF —
  // in-flight responses still flow out the write side — and only then
  // join. Before this, a client that kept its connection open hung the
  // join forever.
  service_.broker().shutdown();
  {
    std::lock_guard<std::mutex> guard(conns_mutex);
    for (const int conn : open_conns) ::shutdown(conn, SHUT_RD);
  }
  for (std::thread& connection : connections) connection.join();
  ::close(listen_fd);
  ::unlink(options_.socket_path.c_str());
  if (options_.verbose) {
    // Lifetime summary, with the fault-injection fire tallies so a chaos
    // run's stderr says exactly what was provoked.
    const obs::Snapshot snapshot = obs::TelemetryRegistry::global().snapshot();
    std::ostringstream note;
    note << "[serve] shutdown requests=" << snapshot.counter_value("service.requests")
         << " cold=" << snapshot.counter_value("service.cold_runs")
         << " delta=" << snapshot.counter_value("service.delta_runs")
         << " cached=" << snapshot.counter_value("service.cache_hits")
         << " rejected=" << snapshot.counter_value("service.rejected")
         << " failed=" << snapshot.counter_value("service.failed");
    for (const auto& counter : snapshot.counters) {
      if (counter.value != 0 && counter.name.rfind("fault.injected.", 0) == 0) {
        note << " " << counter.name << "=" << counter.value;
      }
    }
    std::cerr << note.str() << '\n';
  }
  return 0;
}

std::string Server::round_trip(const std::string& socket_path, const std::string& line) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("connect to " + socket_path + ": " + reason);
  }
  write_all(fd, line + "\n");
  std::string response;
  char buf[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t newline = response.find('\n');
  if (newline == std::string::npos) {
    throw std::runtime_error("connection closed before a full response line");
  }
  return response.substr(0, newline);
}

}  // namespace are::service
