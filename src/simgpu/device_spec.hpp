#pragma once

#include <cstddef>

namespace are::simgpu {

/// Parameters of a CUDA-like many-core device. Defaults model the NVIDIA
/// Tesla C2075 used in the paper (14 SMs x 32 cores, Fermi-class memory
/// system). This spec drives an *analytical cost model*, not an emulator:
/// the paper's GPU results are memory-system trade-offs (occupancy vs.
/// latency hiding, shared-memory capacity vs. chunk size), which the model
/// reproduces mechanistically.
struct DeviceSpec {
  int num_sms = 14;
  int cores_per_sm = 32;
  int warp_size = 32;
  int max_threads_per_block = 1024;
  int max_threads_per_sm = 1536;  // Fermi
  int max_blocks_per_sm = 8;
  int max_warps_per_sm = 48;
  std::size_t shared_mem_per_sm_bytes = 48 * 1024;
  std::size_t constant_mem_bytes = 64 * 1024;

  double core_clock_ghz = 1.15;
  /// Global memory: bandwidth and (unhidden) latency.
  double mem_bandwidth_gb_per_s = 144.0;
  double global_latency_cycles = 400.0;
  /// Shared memory access cost per element.
  double shared_latency_cycles = 2.0;
  /// Minimum memory transaction: an uncoalesced random 8-byte read still
  /// moves a whole segment.
  double transaction_bytes = 128.0;
  /// Arithmetic cost charged per financial/layer term application.
  double compute_cycles_per_term = 4.0;
  /// Fixed cost per kernel block launch (scheduling + sync), in cycles.
  double block_overhead_cycles = 2000.0;
  /// Fixed cost per chunk iteration (loop + barrier), in cycles per thread.
  double chunk_overhead_cycles = 24.0;

  static DeviceSpec tesla_c2075() { return DeviceSpec{}; }
};

/// Occupancy of a kernel launch: how many blocks/warps an SM can host given
/// the block size and its shared-memory appetite.
struct Occupancy {
  int blocks_per_sm = 0;
  int active_threads_per_sm = 0;
  int active_warps_per_sm = 0;
  /// active warps / max warps — the latency-hiding headroom.
  double warp_occupancy = 0.0;
  /// True when one block's shared memory demand exceeds the SM capacity:
  /// the overflow spills to global memory (the Fig 5a cliff).
  bool shared_overflow = false;
};

Occupancy compute_occupancy(const DeviceSpec& device, int threads_per_block,
                            std::size_t shared_bytes_per_block) noexcept;

}  // namespace are::simgpu
