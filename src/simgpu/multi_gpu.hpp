#pragma once

#include "simgpu/kernel_model.hpp"

namespace are::simgpu {

/// Multi-device estimate for the paper's §IV remark: "If a complete
/// portfolio analysis is required on a 1M trial basis then a multi-GPU
/// hardware platform would likely be required."
///
/// Trials are embarrassingly parallel, so the workload splits by trial
/// across devices; each device additionally pays a host-side staging cost
/// to receive its YET slice and ELT copies over PCIe, which is what keeps
/// the scaling short of ideal for small slices.
struct MultiGpuEstimate {
  double seconds = 0.0;
  double kernel_seconds = 0.0;   // slowest device's kernel time
  double transfer_seconds = 0.0; // per-device input staging (overlappable ELTs excluded)
  double speedup_vs_one = 1.0;
  int devices = 1;
};

struct TransferSpec {
  /// Effective host-to-device bandwidth (PCIe 2.0 x16 era for the C2075).
  double pcie_gb_per_s = 5.0;
  /// Bytes per YET entry shipped to the device (event id + timestamp).
  double bytes_per_event = 8.0;
  /// Direct access tables are replicated on every device.
  double elt_replica_bytes_per_event_slot = 8.0;
};

/// Chunked-kernel estimate on `devices` identical devices. `catalog_size`
/// determines the replicated direct-access-table footprint.
MultiGpuEstimate estimate_multi_gpu(const DeviceSpec& device, const WorkloadShape& shape,
                                    int devices, int threads_per_block, int chunk_size,
                                    std::size_t catalog_size,
                                    const TransferSpec& transfer = {});

/// Convenience: how many devices are needed to run `shape` under
/// `target_seconds` (e.g. the paper's real-time pricing budget)? Returns 0
/// if no count up to `max_devices` meets the target.
int devices_for_target(const DeviceSpec& device, const WorkloadShape& shape,
                       double target_seconds, int threads_per_block, int chunk_size,
                       std::size_t catalog_size, int max_devices = 64);

}  // namespace are::simgpu
