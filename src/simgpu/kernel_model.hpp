#pragma once

#include <cstdint>

#include "simgpu/device_spec.hpp"

namespace are::simgpu {

/// Shape of an aggregate-analysis workload, the four size parameters of the
/// paper's §III-C-1.
struct WorkloadShape {
  std::uint64_t num_trials = 1'000'000;
  double events_per_trial = 1000.0;
  double elts_per_layer = 15.0;
  std::uint64_t num_layers = 1;

  double total_events() const noexcept {
    return static_cast<double>(num_trials) * events_per_trial * static_cast<double>(num_layers);
  }
};

/// Prediction output of the kernel cost model.
struct KernelEstimate {
  double seconds = 0.0;
  /// Which resource bound the estimate (diagnostics for reports).
  double latency_bound_seconds = 0.0;
  double bandwidth_bound_seconds = 0.0;
  double compute_seconds = 0.0;
  double overhead_seconds = 0.0;
  Occupancy occupancy;
};

/// Cost model of the *basic* GPU kernel (paper §III-B-1): one thread per
/// trial, all data structures in global memory, including the per-event
/// intermediates lx_d / lox_d that every financial/layer step re-reads and
/// re-writes ("adding considerable overhead").
KernelEstimate estimate_basic_kernel(const DeviceSpec& device, const WorkloadShape& shape,
                                     int threads_per_block);

/// Cost model of the *optimised/chunked* kernel (paper §III-B-2): events
/// processed in fixed-size chunks staged in shared memory; financial and
/// layer terms in constant memory; intermediates never touch global memory
/// unless the chunk's shared-memory demand overflows the SM (at which point
/// the overflow fraction is serviced at global cost — the Fig 5a cliff).
KernelEstimate estimate_chunked_kernel(const DeviceSpec& device, const WorkloadShape& shape,
                                       int threads_per_block, int chunk_size);

/// Shared-memory bytes one thread's chunk buffers occupy. Event id staging,
/// the per-event combined loss, and the running per-ELT loss slot:
/// the quantity that caps threads-per-block at 192 for chunk size 4 on the
/// C2075 (paper §III-C-3).
std::size_t chunk_shared_bytes_per_thread(int chunk_size) noexcept;

/// Largest threads-per-block (multiple of warp size) whose shared demand
/// fits one SM for the given chunk size.
int max_threads_for_chunk(const DeviceSpec& device, int chunk_size) noexcept;

}  // namespace are::simgpu
