#include "simgpu/multi_gpu.hpp"

#include <stdexcept>

namespace are::simgpu {

MultiGpuEstimate estimate_multi_gpu(const DeviceSpec& device, const WorkloadShape& shape,
                                    int devices, int threads_per_block, int chunk_size,
                                    std::size_t catalog_size, const TransferSpec& transfer) {
  if (devices < 1) throw std::invalid_argument("need at least one device");

  // Per-device slice: ceil-split of the trials.
  WorkloadShape slice = shape;
  slice.num_trials = (shape.num_trials + static_cast<std::uint64_t>(devices) - 1) /
                     static_cast<std::uint64_t>(devices);

  MultiGpuEstimate estimate;
  estimate.devices = devices;
  const KernelEstimate kernel =
      estimate_chunked_kernel(device, slice, threads_per_block, chunk_size);
  estimate.kernel_seconds = kernel.seconds;

  // Input staging per device: its YET slice plus a full replica of every
  // layer's direct access tables. ELT replication is the part that does
  // not shrink with more devices.
  const double yet_bytes = static_cast<double>(slice.num_trials) * slice.events_per_trial *
                           transfer.bytes_per_event;
  const double elt_bytes = static_cast<double>(catalog_size) * shape.elts_per_layer *
                           static_cast<double>(shape.num_layers) *
                           transfer.elt_replica_bytes_per_event_slot;
  estimate.transfer_seconds = (yet_bytes + elt_bytes) / (transfer.pcie_gb_per_s * 1e9);

  estimate.seconds = estimate.kernel_seconds + estimate.transfer_seconds;

  const KernelEstimate single =
      estimate_chunked_kernel(device, shape, threads_per_block, chunk_size);
  const double single_transfer =
      (static_cast<double>(shape.num_trials) * shape.events_per_trial *
           transfer.bytes_per_event +
       elt_bytes) /
      (transfer.pcie_gb_per_s * 1e9);
  estimate.speedup_vs_one = (single.seconds + single_transfer) / estimate.seconds;
  return estimate;
}

int devices_for_target(const DeviceSpec& device, const WorkloadShape& shape,
                       double target_seconds, int threads_per_block, int chunk_size,
                       std::size_t catalog_size, int max_devices) {
  if (!(target_seconds > 0.0)) throw std::invalid_argument("target must be > 0 seconds");
  for (int devices = 1; devices <= max_devices; ++devices) {
    const MultiGpuEstimate estimate = estimate_multi_gpu(device, shape, devices,
                                                         threads_per_block, chunk_size,
                                                         catalog_size);
    if (estimate.seconds <= target_seconds) return devices;
  }
  return 0;
}

}  // namespace are::simgpu
