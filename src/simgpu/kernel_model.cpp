#include "simgpu/kernel_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace are::simgpu {

namespace {

/// Fraction of peak DRAM bandwidth achievable by the random-access pattern
/// of aggregate analysis with ECC enabled (the C2075 ships with ECC on,
/// which alone costs ~20% of usable bandwidth).
constexpr double kBandwidthEfficiency = 0.65;

/// Average outstanding memory transactions per warp for a dependent-access
/// kernel (each thread's next action depends on the loaded value). The
/// latency-hiding constant of the model; calibrated so that 256
/// threads/block is the occupancy knee on the C2075 (paper Fig 4).
constexpr double kOutstandingPerWarp = 0.28;

/// The chunked kernel's lookup phase iterates independent chunk slots, so a
/// thread keeps ~4 extra loads in flight per chunk slot (bounded by the
/// scoreboard).
constexpr double kChunkMlpFactor = 4.0;
constexpr double kMaxWarpMlp = 32.0;

/// Effective bytes per access for the basic kernel's per-thread lx_d/lox_d
/// intermediates: thread-local and reused within a phase, so they mostly
/// hit L2 (a 32B sector with ~2/3 hit rate -> ~48B average).
constexpr double kIntermediateBytes = 48.0;

/// Penalty multiplier on intermediate traffic that spills past shared
/// memory capacity: spilled accesses are uncoalesced *and* serialize behind
/// the lookup traffic (the Fig 5a cliff).
constexpr double kSpillAmplification = 4.0;

double clock_hz(const DeviceSpec& device) { return device.core_clock_ghz * 1e9; }

double effective_bandwidth(const DeviceSpec& device) {
  return device.mem_bandwidth_gb_per_s * 1e9 * kBandwidthEfficiency;
}

double global_latency_seconds(const DeviceSpec& device) {
  return device.global_latency_cycles / clock_hz(device);
}

/// Per-event term-application count: one per ELT (financial) plus
/// occurrence + aggregate.
double terms_per_event(const WorkloadShape& shape) { return shape.elts_per_layer + 2.0; }

double compute_seconds(const DeviceSpec& device, const WorkloadShape& shape) {
  const double total_cores = static_cast<double>(device.num_sms * device.cores_per_sm);
  const double cycles = shape.total_events() * terms_per_event(shape) *
                        device.compute_cycles_per_term;
  return cycles / (total_cores * clock_hz(device));
}

void validate(const WorkloadShape& shape, int threads_per_block, const DeviceSpec& device) {
  if (threads_per_block <= 0 || threads_per_block > device.max_threads_per_block) {
    throw std::invalid_argument("threads per block out of device range");
  }
  if (shape.num_trials == 0 || shape.num_layers == 0 || shape.events_per_trial <= 0.0 ||
      shape.elts_per_layer <= 0.0) {
    throw std::invalid_argument("degenerate workload shape");
  }
}

double block_overhead_seconds(const DeviceSpec& device, const WorkloadShape& shape,
                              int threads_per_block) {
  const double blocks = std::ceil(static_cast<double>(shape.num_trials) /
                                  static_cast<double>(threads_per_block)) *
                        static_cast<double>(shape.num_layers);
  return blocks * device.block_overhead_cycles /
         (static_cast<double>(device.num_sms) * clock_hz(device));
}

KernelEstimate finalize(KernelEstimate estimate) {
  estimate.seconds = std::max(estimate.latency_bound_seconds, estimate.bandwidth_bound_seconds) +
                     estimate.compute_seconds + estimate.overhead_seconds;
  return estimate;
}

}  // namespace

Occupancy compute_occupancy(const DeviceSpec& device, int threads_per_block,
                            std::size_t shared_bytes_per_block) noexcept {
  Occupancy occupancy;
  if (shared_bytes_per_block > device.shared_mem_per_sm_bytes) {
    // Not even one block fits its shared request: the runtime services the
    // overflow from global memory (modelled by the caller as spill).
    occupancy.shared_overflow = true;
    occupancy.blocks_per_sm = 1;
  } else {
    int blocks = device.max_blocks_per_sm;
    blocks = std::min(blocks, device.max_threads_per_sm / threads_per_block);
    if (shared_bytes_per_block > 0) {
      blocks = std::min(blocks, static_cast<int>(device.shared_mem_per_sm_bytes /
                                                 shared_bytes_per_block));
    }
    occupancy.blocks_per_sm = std::max(blocks, 1);
  }
  occupancy.active_threads_per_sm = occupancy.blocks_per_sm * threads_per_block;
  occupancy.active_warps_per_sm =
      (occupancy.active_threads_per_sm + device.warp_size - 1) / device.warp_size;
  occupancy.active_warps_per_sm = std::min(occupancy.active_warps_per_sm, device.max_warps_per_sm);
  occupancy.warp_occupancy = static_cast<double>(occupancy.active_warps_per_sm) /
                             static_cast<double>(device.max_warps_per_sm);
  return occupancy;
}

std::size_t chunk_shared_bytes_per_thread(int chunk_size) noexcept {
  // Per chunk slot: staged event id (4B) + lx scratch (8B) + lox scratch
  // (8B) + bank-conflict padding -> 64B per slot in the allocation.
  return static_cast<std::size_t>(chunk_size) * 64;
}

int max_threads_for_chunk(const DeviceSpec& device, int chunk_size) noexcept {
  const std::size_t per_thread = chunk_shared_bytes_per_thread(chunk_size);
  if (per_thread == 0) return device.max_threads_per_block;
  int threads = static_cast<int>(device.shared_mem_per_sm_bytes / per_thread);
  threads = (threads / device.warp_size) * device.warp_size;  // round down to warp multiple
  return std::clamp(threads, 0, device.max_threads_per_block);
}

KernelEstimate estimate_basic_kernel(const DeviceSpec& device, const WorkloadShape& shape,
                                     int threads_per_block) {
  validate(shape, threads_per_block, device);
  KernelEstimate estimate;
  estimate.occupancy = compute_occupancy(device, threads_per_block, /*shared=*/0);

  const double events = shape.total_events();
  const double elts = shape.elts_per_layer;

  // Random global transactions: the per-event id fetch (each thread walks
  // its own trial, so fetches are uncoalesced across the warp) and one
  // dependent random read per covered ELT (the direct access table lookup).
  const double random_transactions = events * (1.0 + elts);
  // Intermediates lx_d / lox_d live in global memory: a write+read per ELT
  // for the financial step and a read-modify-write for the occurrence and
  // aggregate steps (2*E + 2 accesses per event), partially L2-cached.
  const double intermediate_accesses = events * (2.0 * elts + 2.0);

  const double bytes = random_transactions * device.transaction_bytes +
                       intermediate_accesses * kIntermediateBytes;
  estimate.bandwidth_bound_seconds = bytes / effective_bandwidth(device);

  const double warps_total =
      static_cast<double>(estimate.occupancy.active_warps_per_sm * device.num_sms);
  const double throughput = warps_total * kOutstandingPerWarp / global_latency_seconds(device);
  estimate.latency_bound_seconds = random_transactions / throughput;

  estimate.compute_seconds = compute_seconds(device, shape);
  estimate.overhead_seconds = block_overhead_seconds(device, shape, threads_per_block);
  return finalize(estimate);
}

KernelEstimate estimate_chunked_kernel(const DeviceSpec& device, const WorkloadShape& shape,
                                       int threads_per_block, int chunk_size) {
  validate(shape, threads_per_block, device);
  if (chunk_size <= 0) throw std::invalid_argument("chunk size must be > 0");

  KernelEstimate estimate;
  const std::size_t shared_per_block =
      static_cast<std::size_t>(threads_per_block) * chunk_shared_bytes_per_thread(chunk_size);
  estimate.occupancy = compute_occupancy(device, threads_per_block, shared_per_block);

  const double events = shape.total_events();
  const double elts = shape.elts_per_layer;
  const double chunk = static_cast<double>(chunk_size);

  // Event fetch is staged per chunk: one coalesced transaction covers the
  // whole chunk's ids, so per-event fetch traffic falls as 1/chunk.
  const double fetch_transactions = events / chunk;
  const double lookup_transactions = events * elts;  // irreducible random reads

  // Intermediates live in shared memory... unless the block's shared
  // request overflows the SM, in which case the overflow fraction is
  // serviced from global memory with heavy penalty (the Fig 5a cliff).
  double spill_fraction = 0.0;
  if (shared_per_block > device.shared_mem_per_sm_bytes) {
    spill_fraction = 1.0 - static_cast<double>(device.shared_mem_per_sm_bytes) /
                               static_cast<double>(shared_per_block);
  }
  const double intermediate_accesses = events * (2.0 * elts + 2.0);
  const double spill_bytes = intermediate_accesses * spill_fraction * device.transaction_bytes *
                             kSpillAmplification;

  const double bytes =
      (fetch_transactions + lookup_transactions) * device.transaction_bytes + spill_bytes;
  estimate.bandwidth_bound_seconds = bytes / effective_bandwidth(device);

  const double warps_total =
      static_cast<double>(estimate.occupancy.active_warps_per_sm * device.num_sms);
  const double warp_mlp =
      std::min(kOutstandingPerWarp * chunk * kChunkMlpFactor, kMaxWarpMlp * kOutstandingPerWarp);
  const double throughput = warps_total * warp_mlp / global_latency_seconds(device);
  estimate.latency_bound_seconds = (fetch_transactions + lookup_transactions) / throughput;

  // Shared-memory traffic for the intermediates (cheap but not free).
  const double shared_seconds =
      intermediate_accesses * (1.0 - spill_fraction) * device.shared_latency_cycles /
      (static_cast<double>(device.num_sms * device.cores_per_sm) * clock_hz(device));

  estimate.compute_seconds = compute_seconds(device, shape) + shared_seconds;
  estimate.overhead_seconds =
      block_overhead_seconds(device, shape, threads_per_block) +
      // Per-chunk loop/barrier cost, amortized across the device.
      (events / chunk) * device.chunk_overhead_cycles /
          (static_cast<double>(device.num_sms * device.cores_per_sm) * clock_hz(device));
  return finalize(estimate);
}

}  // namespace are::simgpu
