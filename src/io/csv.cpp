#include "io/csv.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace are::io {

void write_elt_csv(std::ostream& out, const elt::EventLossTable& table) {
  out << "event_id,loss\n";
  for (const elt::EventLoss& record : table.records()) {
    out << record.event << ',' << record.loss << '\n';
  }
}

elt::EventLossTable read_elt_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("empty ELT CSV");
  if (line.rfind("event_id,", 0) != 0) throw std::runtime_error("missing ELT CSV header");

  std::vector<elt::EventLoss> records;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_csv_line(line);
    if (fields.size() != 2) {
      throw std::runtime_error("ELT CSV line " + std::to_string(line_number) +
                               ": expected 2 fields");
    }
    elt::EventLoss record;
    auto [ptr, ec] = std::from_chars(fields[0].data(), fields[0].data() + fields[0].size(),
                                     record.event);
    if (ec != std::errc{} || ptr != fields[0].data() + fields[0].size()) {
      throw std::runtime_error("ELT CSV line " + std::to_string(line_number) + ": bad event id");
    }
    try {
      record.loss = std::stod(fields[1]);
    } catch (const std::exception&) {
      throw std::runtime_error("ELT CSV line " + std::to_string(line_number) + ": bad loss");
    }
    records.push_back(record);
  }
  return elt::EventLossTable(std::move(records));
}

void write_ylt_csv(std::ostream& out, const core::YearLossTable& ylt) {
  out << "trial";
  for (std::uint32_t id : ylt.layer_ids()) out << ",layer_" << id;
  out << '\n';
  for (std::size_t trial = 0; trial < ylt.num_trials(); ++trial) {
    out << trial;
    for (std::size_t layer = 0; layer < ylt.num_layers(); ++layer) {
      out << ',' << ylt.at(layer, trial);
    }
    out << '\n';
  }
}

void write_ylt_csv(std::ostream& out, shard::ShardedYearLossTable& ylt) {
  out << "trial";
  for (std::uint32_t id : ylt.layer_ids()) out << ",layer_" << id;
  out << '\n';
  ylt.for_each_shard([&](shard::ShardedYearLossTable::ShardView& view) {
    for (std::size_t i = 0; i < view.trials(); ++i) {
      out << view.trial_begin() + i;
      for (std::size_t layer = 0; layer < ylt.num_layers(); ++layer) {
        out << ',' << view.layer_losses(layer)[i];
      }
      out << '\n';
    }
  });
}

void write_ep_csv(std::ostream& out, const std::vector<metrics::EpPoint>& points) {
  out << "return_period,probability,loss\n";
  for (const metrics::EpPoint& point : points) {
    out << point.return_period << ',' << point.probability << ',' << point.loss << '\n';
  }
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace are::io
