#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace are::io {

/// Plain-text table renderer for analyst-facing reports (CLI output,
/// example programs). Right-aligns numeric-looking cells, pads columns,
/// draws a header rule. Deliberately dependency-free.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; must match the header width.
  TextTable& add_row(std::vector<std::string> cells);

  /// Convenience for mixed text/number rows.
  TextTable& add_row_values(const std::string& label, const std::vector<double>& values,
                            int precision = 2);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders with single-space-padded columns and a dashed header rule.
  std::string render() const;

  friend std::ostream& operator<<(std::ostream& out, const TextTable& table);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a monetary amount with thousands separators ("12,345,678").
std::string format_money(double amount);

/// Formats a ratio as a percentage with the given precision ("12.5%").
std::string format_percent(double ratio, int precision = 1);

}  // namespace are::io
