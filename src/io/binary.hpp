#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>

#include "elt/event_loss_table.hpp"
#include "yet/year_event_table.hpp"

namespace are::io {

/// Compact binary formats for the bulk inputs and the YLT spill shards.
/// Each record starts with a magic tag and a format version and ends with
/// an FNV-1a checksum of the payload, so corrupted or truncated files are
/// rejected rather than silently mispriced. All integers little-endian,
/// losses as IEEE doubles.

void write_elt_binary(std::ostream& out, const elt::EventLossTable& table);
elt::EventLossTable read_elt_binary(std::istream& in);

void write_yet_binary(std::ostream& out, const yet::YearEventTable& table);
yet::YearEventTable read_yet_binary(std::istream& in);

/// One spilled YLT shard: a flat run of doubles (the shard's layer-major
/// loss buffer), checksummed like the other formats so a torn spill file is
/// an error instead of silently zeroed trials.
void write_shard_binary(std::ostream& out, std::span<const double> values);

/// Restores a shard written by write_shard_binary into `values`; throws
/// std::runtime_error on magic/version/size/checksum mismatch.
void read_shard_binary(std::istream& in, std::span<double> values);

/// FNV-1a 64-bit over a byte range (exposed for tests).
std::uint64_t fnv1a(const void* data, std::size_t size) noexcept;

}  // namespace are::io
