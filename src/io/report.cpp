#include "io/report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace are::io {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t digits = 0;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    else if (c != '.' && c != ',' && c != '-' && c != '+' && c != '%' && c != 'e') return false;
  }
  return digits > 0;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs at least one column");
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width does not match header");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

TextTable& TextTable::add_row_values(const std::string& label, const std::vector<double>& values,
                                     int precision) {
  std::vector<std::string> cells;
  cells.push_back(label);
  for (const double value : values) {
    std::ostringstream stream;
    stream.setf(std::ios::fixed);
    stream.precision(precision);
    stream << value;
    cells.push_back(stream.str());
  }
  return add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << "  ";
      const auto pad = widths[c] - cells[c].size();
      if (looks_numeric(cells[c])) {
        out << std::string(pad, ' ') << cells[c];
      } else {
        out << cells[c] << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  emit(headers_);
  std::size_t rule_width = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule_width += widths[c] + (c > 0 ? 2 : 0);
  out << std::string(rule_width, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& out, const TextTable& table) {
  return out << table.render();
}

std::string format_money(double amount) {
  const bool negative = amount < 0.0;
  const auto magnitude = static_cast<long long>(std::llround(std::abs(amount)));
  std::string digits = std::to_string(magnitude);
  std::string grouped;
  grouped.reserve(digits.size() + digits.size() / 3 + 1);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (digits.size() - i) % 3 == 0) grouped.push_back(',');
    grouped.push_back(digits[i]);
  }
  return negative ? "-" + grouped : grouped;
}

std::string format_percent(double ratio, int precision) {
  std::ostringstream stream;
  stream.setf(std::ios::fixed);
  stream.precision(precision);
  stream << 100.0 * ratio << '%';
  return stream.str();
}

}  // namespace are::io
