#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/year_loss_table.hpp"
#include "elt/event_loss_table.hpp"
#include "metrics/ep_curve.hpp"
#include "shard/sharded_ylt.hpp"

namespace are::io {

/// Writes an ELT as `event_id,loss` rows with a header.
void write_elt_csv(std::ostream& out, const elt::EventLossTable& table);

/// Reads an ELT written by write_elt_csv. Throws std::runtime_error on
/// malformed input.
elt::EventLossTable read_elt_csv(std::istream& in);

/// Writes a YLT as `trial,<layer_id>...` wide rows.
void write_ylt_csv(std::ostream& out, const core::YearLossTable& ylt);

/// Streams a sharded YLT as the same wide rows, one pinned shard at a time
/// (peak residency: one shard). Byte-identical output to write_ylt_csv of
/// the materialized table — what the CI sharded smoke leg diffs.
void write_ylt_csv(std::ostream& out, shard::ShardedYearLossTable& ylt);

/// Writes an EP table as `return_period,probability,loss` rows.
void write_ep_csv(std::ostream& out, const std::vector<metrics::EpPoint>& points);

/// Splits one CSV line on commas (no quoting — our formats never quote).
std::vector<std::string> split_csv_line(const std::string& line);

}  // namespace are::io
