#include "io/binary.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "fault/fault_injection.hpp"

namespace are::io {

namespace {

// Corruption and I/O failures carry taxonomy codes so the service boundary
// can classify them; StatusError derives from std::runtime_error, so
// existing catch sites are unaffected.
[[noreturn]] void throw_corrupt(const std::string& message) {
  throw core::StatusError(core::StatusCode::kDataCorruption, message);
}

}  // namespace

namespace {

constexpr std::uint32_t kEltMagic = 0x454C5431;    // "ELT1"
constexpr std::uint32_t kYetMagic = 0x59455431;    // "YET1"
constexpr std::uint32_t kShardMagic = 0x53485244;  // "SHRD"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw_corrupt("truncated binary stream");
  return value;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& values, std::uint64_t& hash) {
  const auto count = static_cast<std::uint64_t>(values.size());
  write_pod(out, count);
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
  hash ^= fnv1a(values.data(), values.size() * sizeof(T));
}

template <typename T>
std::vector<T> read_vector(std::istream& in, std::uint64_t& hash) {
  const auto count = read_pod<std::uint64_t>(in);
  // Refuse absurd sizes before allocating (corrupt count field).
  if (count > (1ULL << 33)) throw_corrupt("implausible vector size in binary stream");
  std::vector<T> values(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(T)));
  if (!in) throw_corrupt("truncated binary stream");
  hash ^= fnv1a(values.data(), values.size() * sizeof(T));
  return values;
}

void check_header(std::istream& in, std::uint32_t magic) {
  if (read_pod<std::uint32_t>(in) != magic) throw_corrupt("bad magic in binary stream");
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw_corrupt("unsupported binary format version");
  }
}

void check_footer(std::istream& in, std::uint64_t hash) {
  if (read_pod<std::uint64_t>(in) != hash) {
    throw_corrupt("checksum mismatch: corrupt binary stream");
  }
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void write_elt_binary(std::ostream& out, const elt::EventLossTable& table) {
  write_pod(out, kEltMagic);
  write_pod(out, kVersion);
  std::uint64_t hash = 0;
  std::vector<elt::EventId> events;
  std::vector<double> losses;
  events.reserve(table.size());
  losses.reserve(table.size());
  for (const elt::EventLoss& record : table.records()) {
    events.push_back(record.event);
    losses.push_back(record.loss);
  }
  write_vector(out, events, hash);
  write_vector(out, losses, hash);
  write_pod(out, hash);
}

elt::EventLossTable read_elt_binary(std::istream& in) {
  check_header(in, kEltMagic);
  std::uint64_t hash = 0;
  const auto events = read_vector<elt::EventId>(in, hash);
  const auto losses = read_vector<double>(in, hash);
  check_footer(in, hash);
  if (events.size() != losses.size()) {
    throw_corrupt("ELT binary stream: event/loss length mismatch");
  }
  std::vector<elt::EventLoss> records(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) records[i] = {events[i], losses[i]};
  return elt::EventLossTable(std::move(records));
}

void write_yet_binary(std::ostream& out, const yet::YearEventTable& table) {
  write_pod(out, kYetMagic);
  write_pod(out, kVersion);
  std::uint64_t hash = 0;
  const std::vector<yet::EventId> events(table.events().begin(), table.events().end());
  const std::vector<float> times(table.times().begin(), table.times().end());
  const std::vector<std::uint64_t> offsets(table.offsets().begin(), table.offsets().end());
  write_vector(out, events, hash);
  write_vector(out, times, hash);
  write_vector(out, offsets, hash);
  write_pod(out, hash);
}

void write_shard_binary(std::ostream& out, std::span<const double> values) {
  if (fault::should_inject(fault::sites::kIoWrite)) {
    throw core::StatusError(core::StatusCode::kIoError,
                            "injected fault: io.write (shard binary write)");
  }
  write_pod(out, kShardMagic);
  write_pod(out, kVersion);
  const auto count = static_cast<std::uint64_t>(values.size());
  write_pod(out, count);
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
  write_pod(out, fnv1a(values.data(), values.size() * sizeof(double)));
}

void read_shard_binary(std::istream& in, std::span<double> values) {
  if (fault::should_inject(fault::sites::kIoRead)) {
    throw core::StatusError(core::StatusCode::kIoError,
                            "injected fault: io.read (shard binary read)");
  }
  check_header(in, kShardMagic);
  const auto count = read_pod<std::uint64_t>(in);
  if (count != values.size()) {
    throw_corrupt("shard binary stream: size mismatch (file has " + std::to_string(count) +
                  " values, expected " + std::to_string(values.size()) + ")");
  }
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!in) throw_corrupt("truncated binary stream");
  if (!values.empty() && fault::should_inject(fault::sites::kShardCorruptRead)) {
    // Flip one payload bit before the checksum check — exercises the
    // corruption-detection path exactly as a bad disk would.
    values[0] = values[0] == 0.0 ? 1.0 : -values[0];
  }
  check_footer(in, fnv1a(values.data(), values.size() * sizeof(double)));
}

yet::YearEventTable read_yet_binary(std::istream& in) {
  check_header(in, kYetMagic);
  std::uint64_t hash = 0;
  auto events = read_vector<yet::EventId>(in, hash);
  auto times = read_vector<float>(in, hash);
  auto offsets = read_vector<std::uint64_t>(in, hash);
  check_footer(in, hash);
  return yet::YearEventTable(std::move(events), std::move(times), std::move(offsets));
}

}  // namespace are::io
