#pragma once

#include <cstdint>

namespace are::rng {

/// SplitMix64 (Steele, Lea, Flood 2014). Used for seeding the other
/// generators and as a cheap standalone generator in tests. Passes BigCrush
/// when used as a 64-bit stream.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Mixes a single value without advancing any state. Useful for deriving
  /// decorrelated seeds from structured ids (trial, layer, event).
  static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace are::rng
