#include "rng/distributions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace are::rng {

namespace {

constexpr double kPi = 3.14159265358979323846;

// log(k!) via lgamma; exact enough for the PTRS acceptance test.
double log_factorial(double k) { return std::lgamma(k + 1.0); }

std::uint64_t sample_poisson_small(Stream& stream, double mean) {
  // Inversion by sequential search (Devroye III.10). O(mean) expected.
  const double l = std::exp(-mean);
  std::uint64_t k = 0;
  double p = stream.uniform01_open_left();
  while (p > l) {
    p *= stream.uniform01_open_left();
    ++k;
  }
  return k;
}

std::uint64_t sample_poisson_ptrs(Stream& stream, double mean) {
  // Hörmann's PTRS transformed rejection, valid for mean >= 10.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);

  for (;;) {
    const double u = stream.uniform01() - 0.5;
    const double v = stream.uniform01_open_left();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) {
      return static_cast<std::uint64_t>(k);
    }
    if (k < 0.0 || (us < 0.013 && v > us)) {
      continue;
    }
    const double log_accept = std::log(v * inv_alpha / (a / (us * us) + b));
    if (log_accept <= k * std::log(mean) - mean - log_factorial(k)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

}  // namespace

double sample_exponential(Stream& stream, double rate) {
  if (!(rate > 0.0)) throw std::invalid_argument("exponential rate must be > 0");
  return -std::log(stream.uniform01_open_left()) / rate;
}

std::uint64_t sample_poisson(Stream& stream, double mean) {
  if (mean < 0.0 || !std::isfinite(mean)) throw std::invalid_argument("poisson mean must be >= 0");
  if (mean == 0.0) return 0;
  return mean < 10.0 ? sample_poisson_small(stream, mean) : sample_poisson_ptrs(stream, mean);
}

double sample_normal(Stream& stream, double mean, double stddev) {
  const double u1 = stream.uniform01_open_left();
  const double u2 = stream.uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * kPi * u2);
}

double sample_gamma(Stream& stream, double shape, double scale) {
  if (!(shape > 0.0) || !(scale > 0.0)) throw std::invalid_argument("gamma shape/scale must be > 0");
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    const double u = stream.uniform01_open_left();
    return sample_gamma(stream, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = sample_normal(stream);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = stream.uniform01_open_left();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return scale * d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) return scale * d * v;
  }
}

double sample_beta(Stream& stream, double a, double b) {
  const double x = sample_gamma(stream, a, 1.0);
  const double y = sample_gamma(stream, b, 1.0);
  return x / (x + y);
}

double sample_lognormal(Stream& stream, double mu, double sigma) {
  return std::exp(sample_normal(stream, mu, sigma));
}

double sample_pareto_lomax(Stream& stream, double alpha, double scale) {
  if (!(alpha > 0.0) || !(scale > 0.0)) throw std::invalid_argument("pareto alpha/scale must be > 0");
  const double u = stream.uniform01_open_left();
  return scale * (std::pow(u, -1.0 / alpha) - 1.0);
}

std::uint64_t sample_negative_binomial(Stream& stream, double r, double p) {
  if (!(r > 0.0) || !(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("negative binomial needs r > 0 and p in (0,1)");
  }
  // NB(r, p) == Poisson(Gamma(r, (1-p)/p)).
  const double lambda = sample_gamma(stream, r, (1.0 - p) / p);
  return sample_poisson(stream, lambda);
}

double sample_lognormal_truncated(Stream& stream, double mu, double sigma, double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("truncation window must satisfy lo < hi");
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const double x = sample_lognormal(stream, mu, sigma);
    if (x >= lo && x <= hi) return x;
  }
  // Window has negligible mass; fall back to the nearest bound's interior.
  return 0.5 * (lo + hi);
}

AliasTable::AliasTable(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("alias table needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("alias table weights must be finite and non-negative");
    }
    total += w;
  }
  if (!(total > 0.0)) throw std::invalid_argument("alias table weights must not all be zero");

  const std::size_t n = weights.size();
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);
  normalized_.resize(n);

  // Scaled probabilities: mean 1.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) probability_[i] = 1.0;
  for (std::uint32_t i : small) probability_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Stream& stream) const noexcept {
  const std::size_t cell = static_cast<std::size_t>(stream.uniform_below(probability_.size()));
  const double u = stream.uniform01();
  return u < probability_[cell] ? cell : alias_[cell];
}

double AliasTable::probability_of(std::size_t i) const noexcept {
  return i < normalized_.size() ? normalized_[i] : 0.0;
}

}  // namespace are::rng
