#pragma once

#include <array>
#include <cstdint>

namespace are::rng {

/// Philox4x32-10 counter-based generator (Salmon et al., SC'11).
///
/// Counter-based RNGs are the natural fit for the trial-parallel Monte
/// Carlo in the aggregate risk engine: the random value consumed by
/// (trial, draw) is a pure function of (key, counter), so any trial can be
/// generated on any thread, in any order, with bit-identical results. This
/// is what makes the pre-simulated Year Event Table reproducible across the
/// sequential, thread-pool and chunked engines.
class Philox4x32 {
 public:
  using result_type = std::uint32_t;
  using counter_type = std::array<std::uint32_t, 4>;
  using key_type = std::array<std::uint32_t, 2>;

  static constexpr int kRounds = 10;

  constexpr Philox4x32() noexcept : Philox4x32(0, 0) {}

  /// `key` selects an independent stream; `counter_hi` partitions a stream
  /// into substreams (e.g. one per trial).
  constexpr explicit Philox4x32(std::uint64_t key, std::uint64_t counter_hi = 0) noexcept
      : key_{static_cast<std::uint32_t>(key), static_cast<std::uint32_t>(key >> 32)},
        counter_{0, 0, static_cast<std::uint32_t>(counter_hi),
                 static_cast<std::uint32_t>(counter_hi >> 32)} {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint32_t{0}; }

  /// Core bijection: encrypt `ctr` under `key`.
  static constexpr counter_type bijection(counter_type ctr, key_type key) noexcept {
    for (int round = 0; round < kRounds; ++round) {
      ctr = single_round(ctr, key);
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    return ctr;
  }

  constexpr result_type operator()() noexcept {
    if (block_pos_ == 0) {
      block_ = bijection(counter_, key_);
      increment_counter();
    }
    const result_type out = block_[block_pos_];
    block_pos_ = (block_pos_ + 1) & 3;
    return out;
  }

  /// Jump directly to a (substream, offset) position. Offset is measured in
  /// 128-bit blocks.
  constexpr void seek(std::uint64_t block_index) noexcept {
    counter_[0] = static_cast<std::uint32_t>(block_index);
    counter_[1] = static_cast<std::uint32_t>(block_index >> 32);
    block_pos_ = 0;
  }

  constexpr key_type key() const noexcept { return key_; }
  constexpr counter_type counter() const noexcept { return counter_; }

 private:
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3)-1
  static constexpr std::uint32_t kMul0 = 0xD2511F53u;
  static constexpr std::uint32_t kMul1 = 0xCD9E8D57u;

  static constexpr std::uint32_t mulhi(std::uint32_t a, std::uint32_t b) noexcept {
    return static_cast<std::uint32_t>((static_cast<std::uint64_t>(a) * b) >> 32);
  }
  static constexpr std::uint32_t mullo(std::uint32_t a, std::uint32_t b) noexcept {
    return a * b;
  }

  static constexpr counter_type single_round(const counter_type& ctr, const key_type& key) noexcept {
    const std::uint32_t hi0 = mulhi(kMul0, ctr[0]);
    const std::uint32_t lo0 = mullo(kMul0, ctr[0]);
    const std::uint32_t hi1 = mulhi(kMul1, ctr[2]);
    const std::uint32_t lo1 = mullo(kMul1, ctr[2]);
    return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
  }

  constexpr void increment_counter() noexcept {
    if (++counter_[0] == 0) {
      ++counter_[1];  // carries never reach the substream words in practice
    }
  }

  key_type key_;
  counter_type counter_;
  counter_type block_{};
  unsigned block_pos_ = 0;
};

}  // namespace are::rng
