#pragma once

#include <cstdint>

#include "rng/splitmix64.hpp"

namespace are::rng {

/// xoshiro256** 1.0 (Blackman & Vigna). A fast sequential generator used
/// where stream independence is not required (e.g. one-off synthetic data
/// generation). Seeded via SplitMix64 per the authors' recommendation.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to operator(); partitions the period into
  /// non-overlapping subsequences for coarse parallel use.
  constexpr void long_jump() noexcept {
    constexpr std::uint64_t kJump[] = {0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                                       0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (std::uint64_t{1} << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        (*this)();
      }
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace are::rng
