#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/stream.hpp"

namespace are::rng {

/// Exponential(rate) via inversion.
double sample_exponential(Stream& stream, double rate);

/// Poisson(mean). Inversion-by-sequential-search for small means, PTRS
/// transformed-rejection (Hörmann 1993) for large means. Exact in
/// distribution in both regimes.
std::uint64_t sample_poisson(Stream& stream, double mean);

/// Gamma(shape, scale) via Marsaglia–Tsang squeeze (shape >= 1) with the
/// standard boost for shape < 1.
double sample_gamma(Stream& stream, double shape, double scale);

/// Beta(a, b) from two gamma draws.
double sample_beta(Stream& stream, double a, double b);

/// Lognormal with parameters of the underlying normal.
double sample_lognormal(Stream& stream, double mu, double sigma);

/// Standard normal via Box–Muller (both values used over successive calls
/// would complicate counter-based reproducibility, so we intentionally burn
/// the second value: one draw == two uniforms, always).
double sample_normal(Stream& stream, double mean = 0.0, double stddev = 1.0);

/// Pareto (Lomax form): scale * ((1-u)^(-1/alpha) - 1) has survival
/// S(x) = (1 + x/scale)^(-alpha). Heavy-tailed severities for catastrophe
/// losses.
double sample_pareto_lomax(Stream& stream, double alpha, double scale);

/// Negative binomial (r, p) as a gamma-mixed Poisson; models over-dispersed
/// annual event counts (catastrophe occurrence is clustered).
std::uint64_t sample_negative_binomial(Stream& stream, double r, double p);

/// Truncated [lo, hi] wrapper by rejection; caller must ensure the window
/// has non-trivial mass.
double sample_lognormal_truncated(Stream& stream, double mu, double sigma, double lo, double hi);

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
/// Used to draw event ids proportional to their annual occurrence rates
/// when generating Year Event Tables over catalogs of millions of events.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from unnormalised non-negative weights. Zero-weight entries are
  /// never sampled. Throws std::invalid_argument if all weights are zero or
  /// any weight is negative/non-finite.
  explicit AliasTable(std::span<const double> weights);

  std::size_t size() const noexcept { return probability_.size(); }
  bool empty() const noexcept { return probability_.empty(); }

  /// Draws an index in [0, size()).
  std::size_t sample(Stream& stream) const noexcept;

  /// Probability that `sample` returns `i` (for tests).
  double probability_of(std::size_t i) const noexcept;

 private:
  std::vector<double> probability_;  // acceptance threshold per cell
  std::vector<std::uint32_t> alias_;
  std::vector<double> normalized_;  // exact per-index probabilities
};

}  // namespace are::rng
