#pragma once

#include <cstdint>

#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"

namespace are::rng {

/// A reproducible random stream addressed by (seed, stream id, substream id).
///
/// The year-event-table sampler gives every trial its own substream so that
/// trial i's event sequence is identical no matter how trials are scheduled
/// across threads — the property the paper relies on when it compares the
/// sequential, OpenMP and GPU engines on "the same" pre-simulated YET.
class Stream {
 public:
  Stream() noexcept : Stream(0, 0, 0) {}

  Stream(std::uint64_t seed, std::uint64_t stream_id, std::uint64_t substream_id = 0) noexcept
      : engine_(SplitMix64::mix(seed) ^ SplitMix64::mix(stream_id * 0x9e3779b97f4a7c15ULL + 1),
                substream_id) {}

  using result_type = Philox4x32::result_type;
  static constexpr result_type min() noexcept { return Philox4x32::min(); }
  static constexpr result_type max() noexcept { return Philox4x32::max(); }

  result_type operator()() noexcept { return engine_(); }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    const std::uint64_t hi = engine_();
    const std::uint64_t lo = engine_();
    const std::uint64_t bits = (hi << 32) | lo;
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0, safe for log().
  double uniform01_open_left() noexcept { return 1.0 - uniform01(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method on
  /// 64-bit intermediate).
  std::uint64_t uniform_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // 64 random bits against a 64-bit bound via 128-bit multiply.
    const std::uint64_t hi = engine_();
    const std::uint64_t lo = engine_();
    const unsigned __int128 wide =
        static_cast<unsigned __int128>((hi << 32) | lo) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(wide >> 64);
  }

 private:
  Philox4x32 engine_;
};

}  // namespace are::rng
