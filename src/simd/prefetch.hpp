#pragma once

// Software-prefetch primitive for the batch-execution subsystem. The
// aggregate engines are memory-access bound (Fig 6b: ~78% of time in ELT
// lookups), and batch entry points know their probe addresses many
// iterations ahead — issuing the loads early converts serial cache misses
// into overlapped ones. A hint only: correctness never depends on it, and
// it compiles to nothing where the builtin is unavailable.

namespace are::simd {

#if defined(__GNUC__) || defined(__clang__)
inline void prefetch_read(const void* address) noexcept {
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/1);
}
#else
inline void prefetch_read(const void*) noexcept {}
#endif

}  // namespace are::simd
