#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "catalog/types.hpp"
#include "yet/year_event_table.hpp"

namespace are::simd {

/// Structure-of-arrays view of a group of consecutive trials: the YET's
/// per-trial event buffers, transposed into lane-major rows so that a
/// vector register can hold "event position j of W adjacent trials".
///
///   row(j) = [ E_{t,j}, E_{t+1,j}, ..., E_{t+W-1,j} ]   (W = lane width)
///
/// Trials have ragged lengths, so rows are padded with kPadEvent up to the
/// longest trial in the group (`depth()`), and lanes past `active()` are
/// entirely padding. kPadEvent is the reserved invalid event id: it fails
/// every lookup's bounds/membership check, yielding loss 0.0, which the
/// financial pipeline maps to exactly 0.0 ceded loss — so processing a pad
/// slot is bit-identical to not processing it at all. (This relies on the
/// ELT universe never containing a real loss at slot kPadEvent, which
/// catalog::kInvalidEvent reserves by construction.)
class TrialBatch {
 public:
  static constexpr yet::EventId kPadEvent = catalog::kInvalidEvent;

  explicit TrialBatch(std::size_t width) : width_(width) {}

  /// Transposes trials [first_trial, first_trial + count) of `table` into
  /// the batch. `count` may be smaller than width() for the final ragged
  /// group; the surplus lanes are pure padding.
  void load(const yet::YearEventTable& table, std::uint64_t first_trial, std::size_t count) {
    active_ = count;
    depth_ = 0;
    for (std::size_t lane = 0; lane < count; ++lane) {
      const std::size_t size = table.trial_size(first_trial + lane);
      if (size > depth_) depth_ = size;
    }
    events_.assign(depth_ * width_, kPadEvent);
    for (std::size_t lane = 0; lane < count; ++lane) {
      const auto trial_events = table.trial_events(first_trial + lane);
      for (std::size_t j = 0; j < trial_events.size(); ++j) {
        events_[j * width_ + lane] = trial_events[j];
      }
    }
  }

  /// Lane width the batch was transposed for (the vector register width).
  std::size_t width() const noexcept { return width_; }
  /// Number of lanes holding real trials (≤ width()).
  std::size_t active() const noexcept { return active_; }
  /// Longest trial in the group = number of rows.
  std::size_t depth() const noexcept { return depth_; }

  /// Lane-major row: width() event ids for trial position `position`.
  const yet::EventId* row(std::size_t position) const noexcept {
    return events_.data() + position * width_;
  }

  std::span<const yet::EventId> events() const noexcept { return events_; }

 private:
  std::size_t width_;
  std::size_t active_ = 0;
  std::size_t depth_ = 0;
  std::vector<yet::EventId> events_;
};

}  // namespace are::simd
