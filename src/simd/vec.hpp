#pragma once

// Portable vector abstraction for the batch-execution subsystem.
//
// One struct template `VecD<Extension>` per instruction-set extension, in
// the template-based vector-extension style of database SIMD libraries:
// the engine kernels are written once against the VecD interface and
// instantiated per extension, so scalar / SSE2 / AVX2 / AVX-512 / NEON all
// share one code path. Scoped deliberately to what the aggregate-analysis
// engine needs — double lanes with load / store / broadcast, add / sub /
// mul, min / max, compare + blend, and a bounds-guarded gather (the ELT
// direct-access lookup is a gather of doubles by u32 event id).
//
// Bit-identity contract: every operation here rounds exactly like the
// corresponding scalar expression in the reference engine, so the SIMD
// engine's YLT is bit-identical to run_sequential's. Two details carry
// that contract:
//   * min/max follow the x86 MINPD/MAXPD convention (return the SECOND
//     operand on equality), which matches the `a < b ? a : b` /
//     `a > b ? a : b` selects of financial::excess_of_loss. Inputs are
//     finite-or-+inf and never NaN, so the NaN corner never arises.
//   * No FMA is used, and the build disables FP contraction
//     (-ffp-contract=off in CMakeLists.txt) so the compiler cannot fuse
//     the scalar engine's mul+sub either.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define ARE_SIMD_HAVE_SSE2 1
#else
#define ARE_SIMD_HAVE_SSE2 0
#endif

#if defined(__AVX2__)
#define ARE_SIMD_HAVE_AVX2 1
#else
#define ARE_SIMD_HAVE_AVX2 0
#endif

#if defined(__AVX512F__)
#define ARE_SIMD_HAVE_AVX512 1
#else
#define ARE_SIMD_HAVE_AVX512 0
#endif

#if defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#define ARE_SIMD_HAVE_NEON 1
#else
#define ARE_SIMD_HAVE_NEON 0
#endif

namespace are::simd {

/// Instruction-set extension tags (compile-time dispatch keys).
struct scalar_ext {};
struct sse2_ext {};
struct avx2_ext {};
struct avx512_ext {};
struct neon_ext {};

template <typename Extension>
struct VecD;

// ---------------------------------------------------------------------------
// Scalar fallback: one lane, plain double arithmetic. Always available and
// the semantic reference for every other specialization.
// ---------------------------------------------------------------------------
template <>
struct VecD<scalar_ext> {
  static constexpr std::size_t kLanes = 1;
  static constexpr std::string_view kName = "scalar";
  using reg = double;
  using mask = bool;

  static reg zero() noexcept { return 0.0; }
  static reg broadcast(double x) noexcept { return x; }
  static reg load(const double* p) noexcept { return *p; }
  static void store(double* p, reg v) noexcept { *p = v; }
  static reg add(reg a, reg b) noexcept { return a + b; }
  static reg sub(reg a, reg b) noexcept { return a - b; }
  static reg mul(reg a, reg b) noexcept { return a * b; }
  /// MINPD convention: second operand on equality.
  static reg min(reg a, reg b) noexcept { return a < b ? a : b; }
  static reg max(reg a, reg b) noexcept { return a > b ? a : b; }
  static mask less(reg a, reg b) noexcept { return a < b; }
  static reg blend(mask m, reg a, reg b) noexcept { return m ? a : b; }

  /// Index register: one row of lane indices, loaded once and reused for
  /// every ELT gathered against that row.
  using ivec = std::uint32_t;
  static ivec load_index(const std::uint32_t* p) noexcept { return *p; }

  /// Lane i = idx[i] < universe ? base[idx[i]] : 0.0 — the direct-access
  /// ELT lookup with its out-of-universe guard.
  static reg gather_guarded(const double* base, ivec idx, std::size_t universe) noexcept {
    return idx < universe ? base[idx] : 0.0;
  }
  static reg gather_guarded(const double* base, const std::uint32_t* idx,
                            std::size_t universe) noexcept {
    return gather_guarded(base, load_index(idx), universe);
  }
};

// ---------------------------------------------------------------------------
// SSE2: 2 double lanes. No gather instruction at this tier — the guarded
// gather is two scalar loads feeding a vector register.
// ---------------------------------------------------------------------------
#if ARE_SIMD_HAVE_SSE2
template <>
struct VecD<sse2_ext> {
  static constexpr std::size_t kLanes = 2;
  static constexpr std::string_view kName = "sse2";
  using reg = __m128d;
  using mask = __m128d;

  static reg zero() noexcept { return _mm_setzero_pd(); }
  static reg broadcast(double x) noexcept { return _mm_set1_pd(x); }
  static reg load(const double* p) noexcept { return _mm_loadu_pd(p); }
  static void store(double* p, reg v) noexcept { _mm_storeu_pd(p, v); }
  static reg add(reg a, reg b) noexcept { return _mm_add_pd(a, b); }
  static reg sub(reg a, reg b) noexcept { return _mm_sub_pd(a, b); }
  static reg mul(reg a, reg b) noexcept { return _mm_mul_pd(a, b); }
  static reg min(reg a, reg b) noexcept { return _mm_min_pd(a, b); }
  static reg max(reg a, reg b) noexcept { return _mm_max_pd(a, b); }
  static mask less(reg a, reg b) noexcept { return _mm_cmplt_pd(a, b); }
  static reg blend(mask m, reg a, reg b) noexcept {
    return _mm_or_pd(_mm_and_pd(m, a), _mm_andnot_pd(m, b));
  }

  using ivec = std::array<std::uint32_t, 2>;
  static ivec load_index(const std::uint32_t* p) noexcept { return {p[0], p[1]}; }

  static reg gather_guarded(const double* base, ivec idx, std::size_t universe) noexcept {
    return _mm_set_pd(idx[1] < universe ? base[idx[1]] : 0.0,
                      idx[0] < universe ? base[idx[0]] : 0.0);
  }
  static reg gather_guarded(const double* base, const std::uint32_t* idx,
                            std::size_t universe) noexcept {
    return gather_guarded(base, load_index(idx), universe);
  }
};
#endif  // ARE_SIMD_HAVE_SSE2

// ---------------------------------------------------------------------------
// AVX2: 4 double lanes with a real masked hardware gather. The u32 event
// ids are widened to i64 so the bounds compare is correct for the
// TrialBatch pad sentinel 0xFFFFFFFF (as i32 it would compare negative).
// Masked-off lanes of VGATHERQPD are not loaded, so out-of-universe ids
// never touch memory.
// ---------------------------------------------------------------------------
#if ARE_SIMD_HAVE_AVX2
template <>
struct VecD<avx2_ext> {
  static constexpr std::size_t kLanes = 4;
  static constexpr std::string_view kName = "avx2";
  using reg = __m256d;
  using mask = __m256d;

  static reg zero() noexcept { return _mm256_setzero_pd(); }
  static reg broadcast(double x) noexcept { return _mm256_set1_pd(x); }
  static reg load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void store(double* p, reg v) noexcept { _mm256_storeu_pd(p, v); }
  static reg add(reg a, reg b) noexcept { return _mm256_add_pd(a, b); }
  static reg sub(reg a, reg b) noexcept { return _mm256_sub_pd(a, b); }
  static reg mul(reg a, reg b) noexcept { return _mm256_mul_pd(a, b); }
  static reg min(reg a, reg b) noexcept { return _mm256_min_pd(a, b); }
  static reg max(reg a, reg b) noexcept { return _mm256_max_pd(a, b); }
  static mask less(reg a, reg b) noexcept { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static reg blend(mask m, reg a, reg b) noexcept { return _mm256_blendv_pd(b, a, m); }

  /// Indices pre-widened to i64 so the bounds compare is correct for the
  /// TrialBatch pad sentinel 0xFFFFFFFF (as i32 it would compare negative).
  using ivec = __m256i;
  static ivec load_index(const std::uint32_t* p) noexcept {
    return _mm256_cvtepu32_epi64(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }

  static reg gather_guarded(const double* base, ivec idx64, std::size_t universe) noexcept {
    const __m256i in_bounds =
        _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<long long>(universe)), idx64);
    return _mm256_mask_i64gather_pd(_mm256_setzero_pd(), base, idx64,
                                    _mm256_castsi256_pd(in_bounds), sizeof(double));
  }
  static reg gather_guarded(const double* base, const std::uint32_t* idx,
                            std::size_t universe) noexcept {
    return gather_guarded(base, load_index(idx), universe);
  }
};
#endif  // ARE_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// AVX-512F: 8 double lanes, predicate masks in k-registers.
// ---------------------------------------------------------------------------
#if ARE_SIMD_HAVE_AVX512
template <>
struct VecD<avx512_ext> {
  static constexpr std::size_t kLanes = 8;
  static constexpr std::string_view kName = "avx512";
  using reg = __m512d;
  using mask = __mmask8;

  static reg zero() noexcept { return _mm512_setzero_pd(); }
  static reg broadcast(double x) noexcept { return _mm512_set1_pd(x); }
  static reg load(const double* p) noexcept { return _mm512_loadu_pd(p); }
  static void store(double* p, reg v) noexcept { _mm512_storeu_pd(p, v); }
  static reg add(reg a, reg b) noexcept { return _mm512_add_pd(a, b); }
  static reg sub(reg a, reg b) noexcept { return _mm512_sub_pd(a, b); }
  static reg mul(reg a, reg b) noexcept { return _mm512_mul_pd(a, b); }
  static reg min(reg a, reg b) noexcept { return _mm512_min_pd(a, b); }
  static reg max(reg a, reg b) noexcept { return _mm512_max_pd(a, b); }
  static mask less(reg a, reg b) noexcept { return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ); }
  static reg blend(mask m, reg a, reg b) noexcept { return _mm512_mask_blend_pd(m, b, a); }

  using ivec = __m512i;
  static ivec load_index(const std::uint32_t* p) noexcept {
    return _mm512_cvtepu32_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }

  static reg gather_guarded(const double* base, ivec idx64, std::size_t universe) noexcept {
    const mask in_bounds =
        _mm512_cmplt_epu64_mask(idx64, _mm512_set1_epi64(static_cast<long long>(universe)));
    return _mm512_mask_i64gather_pd(_mm512_setzero_pd(), in_bounds, idx64, base, sizeof(double));
  }
  static reg gather_guarded(const double* base, const std::uint32_t* idx,
                            std::size_t universe) noexcept {
    return gather_guarded(base, load_index(idx), universe);
  }
};
#endif  // ARE_SIMD_HAVE_AVX512

// ---------------------------------------------------------------------------
// NEON (AArch64): 2 double lanes, scalar guarded gather.
// ---------------------------------------------------------------------------
#if ARE_SIMD_HAVE_NEON
template <>
struct VecD<neon_ext> {
  static constexpr std::size_t kLanes = 2;
  static constexpr std::string_view kName = "neon";
  using reg = float64x2_t;
  using mask = uint64x2_t;

  static reg zero() noexcept { return vdupq_n_f64(0.0); }
  static reg broadcast(double x) noexcept { return vdupq_n_f64(x); }
  static reg load(const double* p) noexcept { return vld1q_f64(p); }
  static void store(double* p, reg v) noexcept { vst1q_f64(p, v); }
  static reg add(reg a, reg b) noexcept { return vaddq_f64(a, b); }
  static reg sub(reg a, reg b) noexcept { return vsubq_f64(a, b); }
  static reg mul(reg a, reg b) noexcept { return vmulq_f64(a, b); }
  /// Select-based min/max to preserve the MINPD second-operand-on-equality
  /// convention (vminq_f64 is IEEE minNum, which differs only for NaN/±0 —
  /// selects keep the contract explicit).
  static reg min(reg a, reg b) noexcept { return vbslq_f64(vcltq_f64(a, b), a, b); }
  static reg max(reg a, reg b) noexcept { return vbslq_f64(vcgtq_f64(a, b), a, b); }
  static mask less(reg a, reg b) noexcept { return vcltq_f64(a, b); }
  static reg blend(mask m, reg a, reg b) noexcept { return vbslq_f64(m, a, b); }

  using ivec = std::array<std::uint32_t, 2>;
  static ivec load_index(const std::uint32_t* p) noexcept { return {p[0], p[1]}; }

  static reg gather_guarded(const double* base, ivec idx, std::size_t universe) noexcept {
    const double lo = idx[0] < universe ? base[idx[0]] : 0.0;
    const double hi = idx[1] < universe ? base[idx[1]] : 0.0;
    return vsetq_lane_f64(hi, vdupq_n_f64(lo), 1);
  }
  static reg gather_guarded(const double* base, const std::uint32_t* idx,
                            std::size_t universe) noexcept {
    return gather_guarded(base, load_index(idx), universe);
  }
};
#endif  // ARE_SIMD_HAVE_NEON

// ---------------------------------------------------------------------------
// Compile-time best extension for this translation unit's target flags.
// ---------------------------------------------------------------------------
#if ARE_SIMD_HAVE_AVX512
using best_ext = avx512_ext;
#elif ARE_SIMD_HAVE_AVX2
using best_ext = avx2_ext;
#elif ARE_SIMD_HAVE_SSE2
using best_ext = sse2_ext;
#elif ARE_SIMD_HAVE_NEON
using best_ext = neon_ext;
#else
using best_ext = scalar_ext;
#endif

using BestVec = VecD<best_ext>;

/// Widest lane count compiled into this build (8 on AVX-512, 4 on AVX2, …).
inline constexpr std::size_t kBestLanes = BestVec::kLanes;

/// Name of the extension `best_ext` resolves to ("avx512", "avx2", …).
inline constexpr std::string_view kBestName = BestVec::kName;

}  // namespace are::simd
