#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define ARE_DISPATCH_X86 1
#else
#define ARE_DISPATCH_X86 0
#endif

namespace are::simd {

namespace {

// One cached resolution per process, refreshable for tests. All fields are
// written under the mutex exactly once per generation; readers go through
// resolved() which does the one-time fill.
struct Resolution {
  ExtensionMask detected = 0;
  std::optional<Extension> override_ext;
  Extension best = Extension::kScalar;
  std::string why;
};

std::mutex resolution_mutex;
Resolution* resolution_cache = nullptr;  // guarded by resolution_mutex

#if ARE_DISPATCH_X86
std::uint64_t read_xcr0() noexcept {
  std::uint32_t eax = 0, edx = 0;
  // xgetbv with xcr=0; only legal once cpuid reports OSXSAVE, which the
  // caller checks before reading.
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}
#endif

ExtensionMask detect_host() noexcept {
#if ARE_DISPATCH_X86
  std::uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
  std::uint32_t leaf1_ecx = 0, leaf1_edx = 0, leaf7_ebx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    leaf1_ecx = ecx;
    leaf1_edx = edx;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) leaf7_ebx = ebx;
  // XCR0 is only readable (and only meaningful) when the OS enabled XSAVE.
  const bool osxsave = (leaf1_ecx & (1u << 27)) != 0;
  const std::uint64_t xcr0 = osxsave ? read_xcr0() : 0;
  return extensions_from_cpuid(leaf1_ecx, leaf1_edx, leaf7_ebx, xcr0);
#elif defined(__ARM_NEON) && defined(__aarch64__)
  return mask_of(Extension::kScalar) | mask_of(Extension::kNeon);
#else
  return mask_of(Extension::kScalar);
#endif
}

const Resolution& resolved() {
  std::lock_guard<std::mutex> guard(resolution_mutex);
  if (resolution_cache == nullptr) {
    auto* fresh = new Resolution;
    fresh->detected = detect_host();
    const ExtensionMask runnable = fresh->detected & compiled_extensions();
    if (const char* env = std::getenv("ARE_SIMD_EXT"); env != nullptr && *env != '\0') {
      if (const auto named = extension_from_name(env); named && mask_has(runnable, *named)) {
        fresh->override_ext = *named;
      }
    }
    fresh->best =
        choose_best(fresh->detected, compiled_extensions(), fresh->override_ext, &fresh->why);
    resolution_cache = fresh;
  }
  return *resolution_cache;
}

}  // namespace

std::string_view name_of(Extension extension) noexcept {
  switch (extension) {
    case Extension::kScalar: return "scalar";
    case Extension::kSse2: return "sse2";
    case Extension::kAvx2: return "avx2";
    case Extension::kAvx512: return "avx512";
    case Extension::kNeon: return "neon";
  }
  return "unknown";
}

std::optional<Extension> extension_from_name(std::string_view name) noexcept {
  for (const Extension extension : {Extension::kScalar, Extension::kSse2, Extension::kAvx2,
                                    Extension::kAvx512, Extension::kNeon}) {
    if (name == name_of(extension)) return extension;
  }
  return std::nullopt;
}

std::size_t lanes_of(Extension extension) noexcept {
  switch (extension) {
    case Extension::kScalar: return 1;
    case Extension::kSse2: return 2;
    case Extension::kAvx2: return 4;
    case Extension::kAvx512: return 8;
    case Extension::kNeon: return 2;
  }
  return 1;
}

std::string describe_mask(ExtensionMask mask) {
  std::string names;
  for (const Extension extension : {Extension::kScalar, Extension::kSse2, Extension::kNeon,
                                    Extension::kAvx2, Extension::kAvx512}) {
    if (!mask_has(mask, extension)) continue;
    if (!names.empty()) names += ",";
    names += name_of(extension);
  }
  return names;
}

ExtensionMask extensions_from_cpuid(std::uint32_t leaf1_ecx, std::uint32_t leaf1_edx,
                                    std::uint32_t leaf7_ebx, std::uint64_t xcr0) noexcept {
  ExtensionMask mask = mask_of(Extension::kScalar);
  if ((leaf1_edx & (1u << 26)) != 0) mask |= mask_of(Extension::kSse2);
  // AVX2/AVX-512 need the CPU feature bits AND the OS saving the wider
  // register state: OSXSAVE on, XCR0 SSE+YMM (bits 1,2) for AVX2, plus
  // opmask+ZMM_hi256+hi16_ZMM (bits 5,6,7) for AVX-512.
  const bool osxsave = (leaf1_ecx & (1u << 27)) != 0;
  const bool ymm_saved = osxsave && (xcr0 & 0x6) == 0x6;
  const bool zmm_saved = ymm_saved && (xcr0 & 0xe0) == 0xe0;
  const bool avx = (leaf1_ecx & (1u << 28)) != 0;
  if (avx && ymm_saved && (leaf7_ebx & (1u << 5)) != 0) mask |= mask_of(Extension::kAvx2);
  if (avx && zmm_saved && (leaf7_ebx & (1u << 16)) != 0) mask |= mask_of(Extension::kAvx512);
  return mask;
}

Extension choose_best(ExtensionMask detected, ExtensionMask compiled,
                      std::optional<Extension> override_ext, std::string* why) {
  const ExtensionMask runnable = detected & compiled;
  if (override_ext && mask_has(runnable, *override_ext)) {
    *why = "ARE_SIMD_EXT=" + std::string(name_of(*override_ext)) + " override";
    return *override_ext;
  }
  // Widest runnable, by lane count then enum order (avx512 > avx2 >
  // sse2/neon > scalar).
  Extension best = Extension::kScalar;
  for (const Extension extension : {Extension::kSse2, Extension::kNeon, Extension::kAvx2,
                                    Extension::kAvx512}) {
    if (mask_has(runnable, extension)) best = extension;
  }
  // Name which cap bound the choice: an extension the binary carries but
  // the host lacks means cpuid capped it; the reverse means the build did.
  std::string reason = "widest of cpuid \xE2\x88\xA9 compiled-in";
  for (const Extension wider : {Extension::kAvx512, Extension::kAvx2}) {
    if (lanes_of(wider) <= lanes_of(best) || wider == best) continue;
    if (mask_has(compiled, wider) && !mask_has(detected, wider)) {
      reason += "; " + std::string(name_of(wider)) + " kernel compiled in but host cpuid lacks it";
      break;
    }
    if (mask_has(detected, wider) && !mask_has(compiled, wider)) {
      reason += "; host supports " + std::string(name_of(wider)) +
                " but its kernel is not compiled into this binary";
      break;
    }
  }
  *why = std::move(reason);
  return best;
}

ExtensionMask detected_extensions() noexcept { return resolved().detected; }

ExtensionMask compiled_extensions() noexcept {
  // The ARE_KERNEL_TU_* definitions are set by CMake on the whole library
  // to mirror exactly which src/core/kernel_ext_*.cpp translation units are
  // in the build — see the "per-extension kernel TUs" stanza there.
  ExtensionMask mask = mask_of(Extension::kScalar);
#if defined(ARE_KERNEL_TU_SSE2)
  mask |= mask_of(Extension::kSse2);
#endif
#if defined(ARE_KERNEL_TU_AVX2)
  mask |= mask_of(Extension::kAvx2);
#endif
#if defined(ARE_KERNEL_TU_AVX512)
  mask |= mask_of(Extension::kAvx512);
#endif
#if defined(ARE_KERNEL_TU_NEON)
  mask |= mask_of(Extension::kNeon);
#endif
  return mask;
}

ExtensionMask runnable_extensions() noexcept {
  return detected_extensions() & compiled_extensions();
}

std::optional<Extension> env_override() noexcept { return resolved().override_ext; }

Extension best_extension() noexcept { return resolved().best; }

std::string best_extension_reason() { return resolved().why; }

void dispatch_refresh_for_testing() noexcept {
  std::lock_guard<std::mutex> guard(resolution_mutex);
  delete resolution_cache;
  resolution_cache = nullptr;
}

}  // namespace are::simd
