#pragma once

// Runtime SIMD dispatch: which instruction-set extensions this *host* can
// execute, which per-extension kernel translation units this *binary* was
// built with, and the load-resolved best of their intersection.
//
// The lane abstraction in simd/vec.hpp is compile-time: each translation
// unit sees only the VecD specializations its own -m flags enable. Before
// this module, the widest lane type was therefore welded to the build box's
// flags (-march=native), so a shipped binary could not use AVX2 on one host
// and SSE2 on another. Now the trial kernel is compiled once per extension
// (src/core/kernel_ext_*.cpp, each with exactly its own -mavx2/-mavx512f/…
// flags and nothing wider) and the extension actually executed is a load
// time decision made here:
//
//     runnable = detected_extensions() ∩ compiled_extensions()
//     best     = ARE_SIMD_EXT override when runnable, else widest runnable
//
// Detection uses cpuid on x86-64 (including the XCR0 OS-support check for
// AVX state — a kernel that does not save YMM/ZMM registers must not be
// offered AVX2/AVX-512) and is a constant on AArch64 (NEON is baseline).
// The pure parsing/selection functions are exposed separately so unit
// tests can drive them with synthetic register values.
//
// Every result is cached after first use; dispatch_refresh_for_testing()
// re-reads the environment for tests that flip ARE_SIMD_EXT in-process.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace are::simd {

/// The dispatchable extensions, ordered narrow to wide within each
/// architecture. Mirrors core::SimdExtension minus kAuto (dispatch is what
/// kAuto resolves *through*); kept separate so src/simd stays below
/// src/core in the layering.
enum class Extension : std::uint8_t {
  kScalar = 0,
  kSse2,
  kAvx2,
  kAvx512,
  kNeon,
};

inline constexpr std::size_t kNumExtensions = 5;

/// Bitmask over Extension (1u << static_cast<int>(e)). kScalar is always a
/// member of every mask this module returns.
using ExtensionMask = std::uint32_t;

constexpr ExtensionMask mask_of(Extension extension) noexcept {
  return ExtensionMask{1} << static_cast<int>(extension);
}

constexpr bool mask_has(ExtensionMask mask, Extension extension) noexcept {
  return (mask & mask_of(extension)) != 0;
}

std::string_view name_of(Extension extension) noexcept;
std::optional<Extension> extension_from_name(std::string_view name) noexcept;

/// Hardware double lanes of the extension (1/2/4/8/2). A property of the
/// ISA, not of this build — valid even for extensions not compiled in.
std::size_t lanes_of(Extension extension) noexcept;

/// Comma-separated names of the mask's members, widest last ("scalar,sse2,
/// avx2"). For notes, /statusz, and list-engines.
std::string describe_mask(ExtensionMask mask);

// --- Pure logic (unit-testable, no host or process state) -------------------

/// Decodes a cpuid/xgetbv register set into the supported-extension mask.
/// Callers pass the real registers (detected_extensions) or synthetic ones
/// (tests). Bits follow the Intel SDM: leaf1_edx[26]=SSE2,
/// leaf1_ecx[27]=OSXSAVE, leaf1_ecx[28]=AVX, leaf7_ebx[5]=AVX2,
/// leaf7_ebx[16]=AVX-512F; xcr0[2:1]=YMM state, xcr0[7:5]=ZMM state.
ExtensionMask extensions_from_cpuid(std::uint32_t leaf1_ecx, std::uint32_t leaf1_edx,
                                    std::uint32_t leaf7_ebx, std::uint64_t xcr0) noexcept;

/// The selection rule behind best_extension(): the override when present
/// and runnable, else the widest member of `runnable`. Writes one human
/// sentence into `why` (never null) naming what decided — the override, the
/// cpuid cap, or the compiled-in cap.
Extension choose_best(ExtensionMask detected, ExtensionMask compiled,
                      std::optional<Extension> override_ext, std::string* why);

// --- Host/process state (cached after first use) ----------------------------

/// Extensions this host's CPU (and OS state-saving support) can execute.
ExtensionMask detected_extensions() noexcept;

/// Extensions whose kernel translation unit is linked into this binary
/// (scalar always; the rest per the ARE_KERNEL_TU_* build configuration).
ExtensionMask compiled_extensions() noexcept;

/// detected ∩ compiled — what dispatch may actually select.
ExtensionMask runnable_extensions() noexcept;

/// Parsed ARE_SIMD_EXT override: the named extension when it parses AND is
/// runnable; std::nullopt otherwise (unset, unknown name, or not runnable —
/// an operator typo degrades to auto selection, surfaced via
/// best_extension_reason(), instead of killing every run at load).
std::optional<Extension> env_override() noexcept;

/// The load-resolved extension kAuto executes: env override when runnable,
/// else the widest runnable extension.
Extension best_extension() noexcept;

/// One sentence explaining best_extension()'s choice ("ARE_SIMD_EXT=sse2
/// override", "widest of cpuid ∩ compiled-in", "cpuid caps at avx2; avx512
/// kernel present but host lacks it", …).
std::string best_extension_reason();

/// Drops every cached result (detection, override, best) so the next call
/// re-reads cpuid and the environment. Test hook for suites that setenv
/// ARE_SIMD_EXT mid-process; production code resolves once at load.
void dispatch_refresh_for_testing() noexcept;

}  // namespace are::simd
