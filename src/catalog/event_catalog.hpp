#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "catalog/types.hpp"

namespace are::catalog {

/// One stochastic event: "a mathematical representation of the natural
/// occurrence patterns and characteristics of catastrophe perils"
/// (paper §I). The rate feeds the Year Event Table sampler; the severity
/// parameters feed the catastrophe model that turns exposure into ELTs.
struct CatalogEvent {
  EventId id = 0;
  Peril peril = Peril::kHurricane;
  Region region = Region::kNorthAtlantic;
  /// Mean annual occurrence frequency of this event (Poisson intensity).
  double annual_rate = 0.0;
  /// Lognormal hazard-intensity parameters at the event's epicentre.
  double intensity_mu = 0.0;
  double intensity_sigma = 0.5;
  /// Footprint decay: how fast hazard intensity falls off with normalized
  /// distance from the event centre (larger = more localized event).
  double footprint_decay = 1.0;
  /// Normalized event centre in [0,1)^2 within its region.
  float centre_x = 0.5f;
  float centre_y = 0.5f;
};

/// An immutable catalog of stochastic events with dense ids [0, size).
class EventCatalog {
 public:
  EventCatalog() = default;
  explicit EventCatalog(std::vector<CatalogEvent> events);

  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  const CatalogEvent& operator[](EventId id) const noexcept { return events_[id]; }
  std::span<const CatalogEvent> events() const noexcept { return events_; }

  /// Sum of annual rates: the expected number of catalog-event occurrences
  /// per contractual year (controls YET trial sizes).
  double total_annual_rate() const noexcept { return total_rate_; }

  /// Per-event rates, in id order — the weight vector for the YET sampler.
  std::vector<double> rates() const;

  /// Number of events of the given peril.
  std::size_t count_of(Peril peril) const noexcept;

 private:
  std::vector<CatalogEvent> events_;
  double total_rate_ = 0.0;
};

/// Configuration for the synthetic catalog builder.
struct CatalogConfig {
  /// Number of events; industrial catalogs run to the millions
  /// (the paper's worked example uses a 2M-event catalog).
  std::size_t num_events = 100'000;
  /// Target expected events per year across the whole catalog. The paper's
  /// YETs carry 800-1500 events per trial; default matches the midpoint.
  double expected_events_per_year = 1000.0;
  /// Peril mix (weights, normalised internally); index by Peril.
  double peril_weights[kPerilCount] = {0.30, 0.25, 0.20, 0.15, 0.10};
  /// Dispersion of per-event rates: rates are Gamma(shape, ·) distributed,
  /// so a small shape gives a few high-frequency events and a long tail of
  /// rare ones, which is what real catalogs look like.
  double rate_shape = 0.5;
  std::uint64_t seed = 20120901;  // SC'12 vintage
};

/// Builds a reproducible synthetic catalog.
EventCatalog build_catalog(const CatalogConfig& config);

/// Seasonality profile: Beta(a,b) density over the fraction-of-year axis.
/// Hurricanes cluster in late summer, winter storms in winter, earthquakes
/// are uniform. Used by the YET generator to place timestamps.
struct SeasonalityProfile {
  double alpha = 1.0;
  double beta = 1.0;
};

SeasonalityProfile seasonality_for(Peril peril) noexcept;

}  // namespace are::catalog
