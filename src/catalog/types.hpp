#pragma once

#include <cstdint>
#include <string_view>

namespace are::catalog {

/// Identifier of a stochastic event in the catalog. Event ids are dense in
/// [0, catalog_size) — the property the direct access table exploits.
using EventId = std::uint32_t;

inline constexpr EventId kInvalidEvent = ~EventId{0};

/// Natural perils covered by the synthetic catalog. Mirrors the paper's
/// "global event catalog covering multiple perils".
enum class Peril : std::uint8_t {
  kHurricane = 0,
  kEarthquake,
  kFlood,
  kWinterStorm,
  kTornado,
};

inline constexpr int kPerilCount = 5;

constexpr std::string_view to_string(Peril peril) noexcept {
  switch (peril) {
    case Peril::kHurricane: return "hurricane";
    case Peril::kEarthquake: return "earthquake";
    case Peril::kFlood: return "flood";
    case Peril::kWinterStorm: return "winter_storm";
    case Peril::kTornado: return "tornado";
  }
  return "unknown";
}

/// Coarse geographic regions used to correlate exposure sites with event
/// footprints.
enum class Region : std::uint8_t {
  kNorthAtlantic = 0,
  kGulfCoast,
  kPacificRim,
  kContinentalInterior,
  kNorthernEurope,
};

inline constexpr int kRegionCount = 5;

constexpr std::string_view to_string(Region region) noexcept {
  switch (region) {
    case Region::kNorthAtlantic: return "north_atlantic";
    case Region::kGulfCoast: return "gulf_coast";
    case Region::kPacificRim: return "pacific_rim";
    case Region::kContinentalInterior: return "continental_interior";
    case Region::kNorthernEurope: return "northern_europe";
  }
  return "unknown";
}

}  // namespace are::catalog
