#include "catalog/event_catalog.hpp"

#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/stream.hpp"

namespace are::catalog {

EventCatalog::EventCatalog(std::vector<CatalogEvent> events) : events_(std::move(events)) {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].id != static_cast<EventId>(i)) {
      throw std::invalid_argument("catalog event ids must be dense and in order");
    }
    if (!(events_[i].annual_rate >= 0.0) || !std::isfinite(events_[i].annual_rate)) {
      throw std::invalid_argument("catalog event rates must be finite and non-negative");
    }
    total_rate_ += events_[i].annual_rate;
  }
}

std::vector<double> EventCatalog::rates() const {
  std::vector<double> out;
  out.reserve(events_.size());
  for (const CatalogEvent& event : events_) out.push_back(event.annual_rate);
  return out;
}

std::size_t EventCatalog::count_of(Peril peril) const noexcept {
  std::size_t count = 0;
  for (const CatalogEvent& event : events_) {
    if (event.peril == peril) ++count;
  }
  return count;
}

namespace {

Region region_for(Peril peril, rng::Stream& stream) {
  // Perils concentrate in characteristic regions but spill elsewhere.
  const double u = stream.uniform01();
  switch (peril) {
    case Peril::kHurricane:
      return u < 0.6 ? Region::kNorthAtlantic : Region::kGulfCoast;
    case Peril::kEarthquake:
      return u < 0.7 ? Region::kPacificRim : Region::kContinentalInterior;
    case Peril::kFlood:
      return u < 0.4 ? Region::kGulfCoast
                     : (u < 0.7 ? Region::kNorthernEurope : Region::kContinentalInterior);
    case Peril::kWinterStorm:
      return u < 0.6 ? Region::kNorthernEurope : Region::kNorthAtlantic;
    case Peril::kTornado:
      return Region::kContinentalInterior;
  }
  return Region::kContinentalInterior;
}

// Severity scale differs by peril: earthquakes are rarer but harder-hitting.
void severity_for(Peril peril, rng::Stream& stream, CatalogEvent& event) {
  switch (peril) {
    // Decay rates are tuned so a typical event's damaging footprint covers
    // a few percent of its region: that is what makes the resulting ELTs
    // sparse relative to the catalog (the regime the paper's direct access
    // table discussion assumes). Hurricanes are broad, tornadoes narrow.
    case Peril::kHurricane:
      event.intensity_mu = 1.2 + 0.4 * stream.uniform01();
      event.intensity_sigma = 0.45;
      event.footprint_decay = 12.0 + 8.0 * stream.uniform01();
      break;
    case Peril::kEarthquake:
      event.intensity_mu = 1.6 + 0.6 * stream.uniform01();
      event.intensity_sigma = 0.60;
      event.footprint_decay = 24.0 + 16.0 * stream.uniform01();
      break;
    case Peril::kFlood:
      event.intensity_mu = 0.8 + 0.4 * stream.uniform01();
      event.intensity_sigma = 0.40;
      event.footprint_decay = 32.0 + 16.0 * stream.uniform01();
      break;
    case Peril::kWinterStorm:
      event.intensity_mu = 0.7 + 0.3 * stream.uniform01();
      event.intensity_sigma = 0.35;
      event.footprint_decay = 8.0 + 4.0 * stream.uniform01();
      break;
    case Peril::kTornado:
      event.intensity_mu = 1.0 + 0.5 * stream.uniform01();
      event.intensity_sigma = 0.55;
      event.footprint_decay = 64.0 + 32.0 * stream.uniform01();
      break;
  }
}

}  // namespace

EventCatalog build_catalog(const CatalogConfig& config) {
  if (config.num_events == 0) throw std::invalid_argument("catalog must have at least one event");
  if (!(config.expected_events_per_year > 0.0)) {
    throw std::invalid_argument("expected events per year must be > 0");
  }
  double weight_total = 0.0;
  for (double w : config.peril_weights) {
    if (!(w >= 0.0)) throw std::invalid_argument("peril weights must be non-negative");
    weight_total += w;
  }
  if (!(weight_total > 0.0)) throw std::invalid_argument("peril weights must not all be zero");

  std::vector<CatalogEvent> events(config.num_events);
  double raw_rate_total = 0.0;

  for (std::size_t i = 0; i < config.num_events; ++i) {
    // One substream per event: the catalog is identical regardless of how
    // many events are generated before/after it.
    rng::Stream stream(config.seed, /*stream_id=*/1, /*substream_id=*/i);
    CatalogEvent& event = events[i];
    event.id = static_cast<EventId>(i);

    // Peril by cumulative weight.
    double u = stream.uniform01() * weight_total;
    int peril_index = 0;
    for (; peril_index < kPerilCount - 1; ++peril_index) {
      if (u < config.peril_weights[peril_index]) break;
      u -= config.peril_weights[peril_index];
    }
    event.peril = static_cast<Peril>(peril_index);
    event.region = region_for(event.peril, stream);
    severity_for(event.peril, stream, event);
    event.centre_x = static_cast<float>(stream.uniform01());
    event.centre_y = static_cast<float>(stream.uniform01());

    event.annual_rate = rng::sample_gamma(stream, config.rate_shape, 1.0);
    raw_rate_total += event.annual_rate;
  }

  // Normalise rates so the catalog-wide expectation matches the target.
  const double scale = config.expected_events_per_year / raw_rate_total;
  for (CatalogEvent& event : events) event.annual_rate *= scale;

  return EventCatalog(std::move(events));
}

SeasonalityProfile seasonality_for(Peril peril) noexcept {
  switch (peril) {
    case Peril::kHurricane: return {7.0, 3.5};    // peaks ~Aug-Sep
    case Peril::kEarthquake: return {1.0, 1.0};   // uniform
    case Peril::kFlood: return {2.5, 3.5};        // spring-heavy
    case Peril::kWinterStorm: return {0.6, 0.6};  // bimodal: Jan + Dec
    case Peril::kTornado: return {3.0, 5.0};      // spring
  }
  return {1.0, 1.0};
}

}  // namespace are::catalog
