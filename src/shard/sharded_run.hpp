#pragma once

#include "core/analysis.hpp"
#include "shard/sharded_ylt.hpp"

namespace are::shard {

/// The sharded front door, the out-of-core sibling of core::run(): builds a
/// ShardedYearLossTable from the request (layer ids from the portfolio,
/// trial count from the YET, shard size / spill dir / memory budget from
/// AnalysisConfig::sharding) and executes the engine through
/// core::run_to_sink, so finished trial-range blocks land directly in
/// their owning shards and the monolithic trials x layers buffer never
/// exists. Requires an engine whose descriptor carries a run_to_sink
/// adapter (seq and fused among the builtins); for engines that also set
/// bit_identical_to_sequential, materialize() of the returned table is
/// byte-for-byte equal to core::run's YearLossTable — including runs whose
/// memory budget forced shards through a spill-and-restore cycle.
ShardedYearLossTable run_sharded(const core::AnalysisRequest& request);

}  // namespace are::shard
