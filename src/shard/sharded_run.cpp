#include "shard/sharded_run.hpp"

#include <vector>

namespace are::shard {

ShardedYearLossTable run_sharded(const core::AnalysisRequest& request) {
  const core::AnalysisConfig& config = request.config;
  config.validate();

  std::vector<std::uint32_t> ids;
  for (const core::Layer& layer : request.portfolio.layers) ids.push_back(layer.id);

  ShardStoreConfig store_config;
  store_config.memory_budget_bytes = config.sharding.memory_budget_bytes;
  store_config.spill_dir = config.sharding.spill_dir;

  ShardedYearLossTable table(std::move(ids), request.yet_table.num_trials(),
                             config.sharding.shard_trials, std::move(store_config));
  ShardedYltSink sink(table);
  core::run_to_sink(request, sink);
  return table;
}

}  // namespace are::shard
