#include "shard/sharded_ylt.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace are::shard {

std::vector<std::size_t> ShardedYearLossTable::shard_sizes(std::size_t num_layers,
                                                           std::uint64_t num_trials,
                                                           std::uint64_t shard_trials) {
  if (shard_trials == 0) {
    throw std::invalid_argument("sharded YLT: shard_trials must be > 0");
  }
  std::vector<std::size_t> sizes;
  for (std::uint64_t begin = 0; begin < num_trials; begin += shard_trials) {
    const std::uint64_t trials = std::min(shard_trials, num_trials - begin);
    sizes.push_back(num_layers * static_cast<std::size_t>(trials));
  }
  return sizes;
}

ShardedYearLossTable::ShardedYearLossTable(std::vector<std::uint32_t> layer_ids,
                                           std::uint64_t num_trials, std::uint64_t shard_trials,
                                           ShardStoreConfig store_config)
    : layer_ids_(std::move(layer_ids)),
      num_trials_(num_trials),
      shard_trials_(shard_trials),
      store_(std::make_unique<ShardStore>(
          shard_sizes(layer_ids_.size(), num_trials, shard_trials), std::move(store_config))) {}

ShardedYearLossTable::ShardView ShardedYearLossTable::shard(std::size_t shard_index) {
  const std::uint64_t begin = shard_begin(shard_index);
  const auto trials = static_cast<std::size_t>(shard_end(shard_index) - begin);
  return ShardView(store_->pin(shard_index), begin, trials);
}

void ShardedYearLossTable::write(std::size_t layer_index, std::uint64_t trial_begin,
                                 std::span<const double> losses) {
  if (losses.empty()) return;
  const auto shard_index = static_cast<std::size_t>(trial_begin / shard_trials_);
  const std::uint64_t last_trial = trial_begin + losses.size() - 1;
  if (shard_index >= num_shards() || last_trial >= num_trials_ ||
      last_trial / shard_trials_ != shard_index) {
    throw std::out_of_range("sharded YLT: emitted block crosses a shard boundary");
  }
  ShardView view = shard(shard_index);
  double* row = view.layer_losses(layer_index).data();
  const auto offset = static_cast<std::size_t>(trial_begin - view.trial_begin());
  std::copy(losses.begin(), losses.end(), row + offset);
}

core::YearLossTable ShardedYearLossTable::materialize() {
  core::YearLossTable ylt(std::vector<std::uint32_t>(layer_ids_.begin(), layer_ids_.end()),
                          static_cast<std::size_t>(num_trials_));
  for_each_shard([&](ShardView& view) {
    for (std::size_t layer = 0; layer < num_layers(); ++layer) {
      const auto shard_row = view.layer_losses(layer);
      double* out = ylt.layer_losses(layer).data() + view.trial_begin();
      std::copy(shard_row.begin(), shard_row.end(), out);
    }
  });
  return ylt;
}

}  // namespace are::shard
